//! Property-based equivalence: `get_many` ≡ N independent `get`s.
//!
//! The batched engine takes a different code path (software-pipelined
//! prefetch + shared-stamp validation, per-key fallback) but must be
//! observationally identical to looping the single-key read: same hits,
//! same misses, same values, in request order — for duplicates within a
//! group, batches longer than the table, and any group-boundary split.

use cuckoo_repro::cuckoo::{CuckooMap, OptimisticCuckooMap};
use proptest::prelude::*;

proptest! {
    /// Optimistic map: batched lookups agree with single-key gets for
    /// arbitrary fill sets and query streams (hits, misses, duplicates).
    #[test]
    fn optimistic_get_many_equals_single_gets(
        fill in proptest::collection::vec(any::<u16>(), 0..300),
        queries in proptest::collection::vec(any::<u16>(), 0..80),
    ) {
        let m: OptimisticCuckooMap<u64, u64, 8> = OptimisticCuckooMap::with_capacity(2048);
        for &k in &fill {
            // Duplicate fill keys simply lose the insert race.
            let _ = m.insert(k as u64, (k as u64) * 31 + 1);
        }
        let keys: Vec<u64> = queries.iter().map(|&k| k as u64).collect();
        let batched = m.get_many(&keys);
        prop_assert_eq!(batched.len(), keys.len());
        for (j, k) in keys.iter().enumerate() {
            prop_assert_eq!(batched[j], m.get(k), "key {}", k);
        }
        // And through the mapping variant.
        let doubled = m.get_with_many(&keys, |v| v * 2);
        for (j, k) in keys.iter().enumerate() {
            prop_assert_eq!(doubled[j], m.get(k).map(|v| v * 2));
        }
    }

    /// General map: same equivalence, including `get_with_many` closure
    /// results, against the locked single-key path.
    #[test]
    fn cuckoo_map_get_many_equals_single_gets(
        fill in proptest::collection::vec(any::<u16>(), 0..300),
        queries in proptest::collection::vec(any::<u16>(), 0..80),
    ) {
        let m: CuckooMap<u64, u64, 8> = CuckooMap::with_capacity(2048);
        for &k in &fill {
            let _ = m.insert(k as u64, (k as u64) * 17 + 3);
        }
        let keys: Vec<u64> = queries.iter().map(|&k| k as u64).collect();
        let batched = m.get_many(&keys);
        prop_assert_eq!(batched.len(), keys.len());
        for (j, k) in keys.iter().enumerate() {
            let single = m.get(k);
            prop_assert_eq!(batched[j].as_ref(), single.as_ref(), "key {}", k);
        }
        let mapped = m.get_with_many(&keys, |v| v + 1);
        for (j, k) in keys.iter().enumerate() {
            prop_assert_eq!(mapped[j], m.get(k).map(|v| v + 1));
        }
    }
}

/// A batch far longer than the table's population (and capacity) walks
/// every group-boundary case: full groups, a ragged tail, all-miss
/// groups, and duplicate-heavy groups.
#[test]
fn batch_longer_than_table() {
    let m: OptimisticCuckooMap<u64, u64, 4> = OptimisticCuckooMap::with_capacity(64);
    let capacity = m.capacity() as u64;
    let mut resident = Vec::new();
    for k in 0..capacity {
        if m.insert(k, k + 100).is_ok() {
            resident.push(k);
        }
    }
    assert!(!resident.is_empty());
    // 4x the table size, cycling hits, misses, and duplicates.
    let keys: Vec<u64> = (0..capacity * 4)
        .map(|i| match i % 3 {
            0 => resident[(i as usize / 3) % resident.len()],
            1 => 1_000_000 + i, // always a miss
            _ => resident[0],   // duplicate of the same hit
        })
        .collect();
    let batched = m.get_many(&keys);
    assert_eq!(batched.len(), keys.len());
    for (j, k) in keys.iter().enumerate() {
        assert_eq!(batched[j], m.get(k), "index {j} key {k}");
    }

    let general: CuckooMap<u64, u64, 4> = CuckooMap::with_capacity(64);
    for &k in &resident {
        general.insert(k, k + 200).unwrap();
    }
    let batched = general.get_many(&keys);
    for (j, k) in keys.iter().enumerate() {
        assert_eq!(batched[j], general.get(k), "index {j} key {k}");
    }
}

/// Batched reads racing a migration: force the general map to expand
/// mid-stream and keep issuing `get_many` over the full key set — every
/// key inserted before the expansion must stay visible with its exact
/// value through the two-table window.
#[test]
fn get_many_sees_all_keys_across_live_expansion() {
    let m: CuckooMap<u64, u64, 8> = CuckooMap::with_capacity(1 << 10);
    let n = m.capacity() as u64; // > capacity * fill threshold → expands
    let keys: Vec<u64> = (0..n).collect();
    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|s| {
        let (m_ref, stop_ref, keys_ref) = (&m, &stop, &keys);
        let reader = s.spawn(move || {
            let mut seen_max = 0u64;
            while !stop_ref.load(std::sync::atomic::Ordering::Acquire) {
                let out = m_ref.get_many(keys_ref);
                for (k, v) in keys_ref.iter().zip(out) {
                    if let Some(v) = v {
                        assert_eq!(v, k * 7 + 5, "key {k} corrupted");
                        seen_max = seen_max.max(*k);
                    }
                }
            }
            seen_max
        });
        for &k in &keys {
            m.insert(k, k * 7 + 5).unwrap();
        }
        stop.store(true, std::sync::atomic::Ordering::Release);
        let _ = reader.join().unwrap();
    });
    // After the dust settles every key is present with its value.
    let out = m.get_many(&keys);
    for (k, v) in keys.iter().zip(out) {
        assert_eq!(v, Some(k * 7 + 5), "key {k} lost");
    }
}
