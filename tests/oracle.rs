//! Cross-table oracle tests: every concurrent table must agree with a
//! `Mutex<HashMap>` oracle under a randomized concurrent workload.

use cuckoo_repro::baselines::locked::{LockKind, Locked};
use cuckoo_repro::baselines::{dense::DenseTable, node_chain::NodeChainTable, ChainingMap};
use cuckoo_repro::cuckoo::{
    CuckooMap, ElidedCuckooMap, MemC3Config, MemC3Cuckoo, OptimisticCuckooMap, WriterLockKind,
};
use cuckoo_repro::workload::keygen::SplitMix64;
use cuckoo_repro::workload::{ConcurrentMap, PutResult};
use std::collections::hash_map::RandomState;
use std::collections::HashMap;
use std::sync::Mutex;

/// Drives a mixed insert/lookup/remove workload with per-thread key
/// ownership, then checks the final contents against the oracle.
fn oracle_test<M: ConcurrentMap<u64>>(map: M, threads: u64, ops: u64) {
    let oracle: Mutex<HashMap<u64, u64>> = Mutex::new(HashMap::new());
    std::thread::scope(|s| {
        for t in 0..threads {
            let map = &map;
            let oracle = &oracle;
            s.spawn(move || {
                let mut rng = SplitMix64::new(0x5eed ^ t);
                for i in 0..ops {
                    // Each thread owns a disjoint key space so oracle
                    // updates are unambiguous.
                    let key = (t << 32) | rng.below(ops / 2 + 1);
                    match rng.below(10) {
                        0..=5 => {
                            let val = i;
                            match map.put(key, val) {
                                PutResult::Inserted => {
                                    let prev = oracle.lock().unwrap().insert(key, val);
                                    assert!(prev.is_none(), "oracle had {key}");
                                }
                                PutResult::Exists => {
                                    assert!(
                                        oracle.lock().unwrap().contains_key(&key),
                                        "table claims {key} exists, oracle disagrees"
                                    );
                                }
                                PutResult::Full => {}
                            }
                        }
                        6..=7 => {
                            let got = map.read(&key);
                            let expect = oracle.lock().unwrap().get(&key).copied();
                            // Own-key space + per-key determinism: values
                            // must match exactly when present.
                            assert_eq!(got, expect, "key {key}");
                        }
                        _ => {
                            let removed = map.del(&key);
                            let oracle_removed =
                                oracle.lock().unwrap().remove(&key).is_some();
                            assert_eq!(removed, oracle_removed, "remove {key}");
                        }
                    }
                }
            });
        }
    });
    let oracle = oracle.into_inner().unwrap();
    assert_eq!(map.items(), oracle.len());
    for (k, v) in &oracle {
        assert_eq!(map.read(k), Some(*v), "final check key {k}");
    }
}

const THREADS: u64 = 4;
const OPS: u64 = 6_000;

#[test]
fn optimistic_cuckoo_matches_oracle() {
    oracle_test(
        OptimisticCuckooMap::<u64, u64, 8>::with_capacity(1 << 16),
        THREADS,
        OPS,
    );
}

#[test]
fn optimistic_cuckoo_4way_small_table_matches_oracle() {
    // Small table: displacement paths and full-table fallbacks exercised.
    oracle_test(
        OptimisticCuckooMap::<u64, u64, 4>::with_capacity(1 << 12),
        THREADS,
        3_000,
    );
}

#[test]
fn elided_cuckoo_matches_oracle() {
    oracle_test(
        ElidedCuckooMap::<u64, u64, 8>::with_capacity(1 << 16),
        THREADS,
        OPS,
    );
}

#[test]
fn memc3_global_matches_oracle() {
    oracle_test(
        MemC3Cuckoo::<u64, u64, 4>::with_capacity(1 << 16, MemC3Config::baseline()),
        THREADS,
        OPS,
    );
}

#[test]
fn memc3_lock_later_bfs_matches_oracle() {
    oracle_test(
        MemC3Cuckoo::<u64, u64, 4>::with_capacity(
            1 << 16,
            MemC3Config::baseline().plus_lock_later().plus_bfs().plus_prefetch(),
        ),
        THREADS,
        OPS,
    );
}

#[test]
fn memc3_elided_glibc_matches_oracle() {
    oracle_test(
        MemC3Cuckoo::<u64, u64, 4>::with_capacity(
            1 << 16,
            MemC3Config::baseline().with_lock(WriterLockKind::ElidedGlibc),
        ),
        THREADS,
        OPS,
    );
}

#[test]
fn general_cuckoo_map_matches_oracle() {
    oracle_test(CuckooMap::<u64, u64, 8>::with_capacity(1 << 10), THREADS, OPS);
}

#[test]
fn chaining_map_matches_oracle() {
    oracle_test(ChainingMap::<u64, u64>::with_capacity(1 << 10), THREADS, OPS);
}

#[test]
fn locked_dense_matches_oracle() {
    oracle_test(
        Locked::new(
            DenseTable::<u64, u64>::with_capacity_and_hasher(1 << 16, RandomState::new()),
            LockKind::Global,
        ),
        THREADS,
        OPS,
    );
}

#[test]
fn elided_dense_matches_oracle() {
    oracle_test(
        Locked::new(
            DenseTable::<u64, u64>::with_capacity_and_hasher(1 << 16, RandomState::new()),
            LockKind::ElidedOptimized,
        ),
        THREADS,
        OPS,
    );
}

#[test]
fn elided_node_chain_matches_oracle() {
    oracle_test(
        Locked::new(
            NodeChainTable::<u64, u64>::with_capacity_and_hasher(1 << 16, RandomState::new()),
            LockKind::ElidedGlibc,
        ),
        THREADS,
        OPS,
    );
}
