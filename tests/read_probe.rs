//! Deterministic read-path probe for A/B overhead measurement (used to
//! bound the observability layer's read-path cost — DESIGN.md §5f).
//! Single-threaded fill (identical table layout every run), then timed
//! passes of uniform single-key gets. Run with:
//!   cargo test --release --test read_probe -- --ignored --nocapture
use cuckoo::OptimisticCuckooMap;

#[test]
#[ignore]
fn read_overhead_probe() {
    let bits = 20u32;
    let map: OptimisticCuckooMap<u64, u64, 8> = OptimisticCuckooMap::with_capacity(1 << bits);
    let n = ((1u64 << bits) as f64 * 0.95) as u64;
    for k in 0..n {
        map.insert(k, k.wrapping_mul(3)).unwrap();
    }
    let ops = 4_000_000u64;
    let mut acc = 0u64;
    for pass in 0..8u64 {
        let t = std::time::Instant::now();
        let mut x = 0x9e37_79b9_7f4a_7c15u64 ^ pass;
        for _ in 0..ops {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let k = (x >> 11) % n;
            if let Some(v) = map.get(&k) {
                acc ^= v;
            }
        }
        let dt = t.elapsed().as_secs_f64();
        println!("PROBE pass {pass}: {:.3} Mops", ops as f64 / dt / 1e6);
    }
    assert_ne!(acc, 1);
}
