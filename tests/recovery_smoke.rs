//! End-to-end durability and replication smoke tests: real servers on
//! ephemeral loopback ports, real data directories, warm restarts, and
//! a primary→replica pair with a mid-stream bootstrap and a promote.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// A small blocking client speaking the memcached text protocol.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).unwrap();
        Client { reader: BufReader::new(stream.try_clone().unwrap()), writer: stream }
    }

    fn line(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read line");
        line.trim_end().to_string()
    }

    fn set(&mut self, key: &str, value: &[u8]) {
        write!(self.writer, "set {} 0 0 {}\r\n", key, value.len()).unwrap();
        self.writer.write_all(value).unwrap();
        self.writer.write_all(b"\r\n").unwrap();
        assert_eq!(self.line(), "STORED", "set {key}");
    }

    fn get(&mut self, key: &str) -> Option<Vec<u8>> {
        write!(self.writer, "get {}\r\n", key).unwrap();
        let header = self.line();
        if header == "END" {
            return None;
        }
        let mut parts = header.split(' ');
        assert_eq!(parts.next(), Some("VALUE"), "header {header:?}");
        assert_eq!(parts.next(), Some(key));
        let _flags = parts.next().unwrap();
        let n: usize = parts.next().unwrap().parse().unwrap();
        let mut data = vec![0u8; n + 2];
        self.reader.read_exact(&mut data).unwrap();
        data.truncate(n);
        assert_eq!(self.line(), "END");
        Some(data)
    }

    fn delete(&mut self, key: &str) -> bool {
        write!(self.writer, "delete {}\r\n", key).unwrap();
        match self.line().as_str() {
            "DELETED" => true,
            "NOT_FOUND" => false,
            other => panic!("unexpected delete reply {other:?}"),
        }
    }

    fn command(&mut self, cmd: &str) -> String {
        write!(self.writer, "{cmd}\r\n").unwrap();
        self.line()
    }

    fn stat_section(&mut self, section: &str) -> std::collections::BTreeMap<String, u64> {
        write!(self.writer, "stats {section}\r\n").unwrap();
        let mut stats = std::collections::BTreeMap::new();
        loop {
            let line = self.line();
            if line == "END" {
                break;
            }
            let rest = line.strip_prefix("STAT ").unwrap_or_else(|| panic!("bad line {line:?}"));
            let (name, value) = rest.split_once(' ').unwrap();
            if let Ok(v) = value.parse::<u64>() {
                stats.insert(name.to_string(), v);
            }
        }
        stats
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("cuckood-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn persistent_config(dir: &std::path::Path) -> server::Config {
    server::Config {
        port: 0,
        capacity: 1 << 16,
        workers: 2,
        data_dir: Some(dir.to_path_buf()),
        fsync_interval_ms: 1,
        snapshot_interval_secs: 0, // no background compaction in tests
        ..Default::default()
    }
}

fn wait_until(what: &str, limit: Duration, mut cond: impl FnMut() -> bool) {
    let t0 = Instant::now();
    while !cond() {
        assert!(t0.elapsed() < limit, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn warm_restart_after_graceful_shutdown_serves_the_full_table() {
    let dir = tmpdir("clean");
    {
        let handle = server::spawn(persistent_config(&dir)).expect("spawn");
        let mut c = Client::connect(handle.local_addr());
        for i in 0..300 {
            c.set(&format!("k{i}"), format!("v{i}").as_bytes());
        }
        for i in (0..300).step_by(3) {
            assert!(c.delete(&format!("k{i}")));
        }
        handle.shutdown(); // graceful: snapshot + clean marker
    }
    let handle = server::spawn(persistent_config(&dir)).expect("respawn");
    let mut c = Client::connect(handle.local_addr());
    for i in 0..300 {
        let got = c.get(&format!("k{i}"));
        if i % 3 == 0 {
            assert_eq!(got, None, "k{i} was deleted before shutdown");
        } else {
            assert_eq!(got, Some(format!("v{i}").into_bytes()), "k{i} lost across restart");
        }
    }
    // A clean restart replays nothing.
    let stats = c.stat_section("cuckoo");
    assert_eq!(stats["cuckoo_persist_replayed_records_total"], 0, "{stats:?}");
    handle.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn warm_restart_after_kill_nine_replays_the_log() {
    let dir = tmpdir("crash");
    std::fs::create_dir_all(&dir).unwrap();
    // A real process and a real SIGKILL: no drain, no final snapshot, no
    // clean-shutdown marker — recovery has only the fsynced log to work
    // with. (An in-process "crash" can't model this: dropping the handle
    // leaves the old writer thread alive and contending for the log.)
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_cuckood"))
        .args([
            "--port",
            "0",
            "--threads",
            "2",
            "--data-dir",
            dir.to_str().unwrap(),
            "--fsync-interval-ms",
            "1",
            "--snapshot-interval-secs",
            "0",
        ])
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn cuckood binary");
    let mut stderr = BufReader::new(child.stderr.take().unwrap());
    let addr: std::net::SocketAddr = loop {
        let mut line = String::new();
        if stderr.read_line(&mut line).unwrap() == 0 {
            panic!("cuckood exited before announcing its address");
        }
        if let Some(rest) = line.strip_prefix("cuckood listening on ") {
            break rest.split_whitespace().next().unwrap().parse().unwrap();
        }
    };
    {
        let mut c = Client::connect(addr);
        for i in 0..100 {
            c.set(&format!("k{i}"), b"v");
        }
    }
    // Every set above was acknowledged; the 1ms group-commit window plus
    // this beat of slack means all of them are on disk before the kill.
    std::thread::sleep(Duration::from_millis(100));
    child.kill().expect("SIGKILL");
    child.wait().expect("reap");

    let handle = server::spawn(persistent_config(&dir)).expect("respawn");
    let mut c = Client::connect(handle.local_addr());
    for i in 0..100 {
        assert_eq!(c.get(&format!("k{i}")), Some(b"v".to_vec()), "k{i} lost in crash recovery");
    }
    let stats = c.stat_section("cuckoo");
    assert!(
        stats["cuckoo_persist_replayed_records_total"] >= 100,
        "dirty restart must replay the log: {stats:?}"
    );
    handle.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn flush_all_drops_everything_and_survives_restart() {
    let dir = tmpdir("flush");
    {
        let handle = server::spawn(persistent_config(&dir)).expect("spawn");
        let mut c = Client::connect(handle.local_addr());
        c.set("keep", b"no");
        assert_eq!(c.command("flush_all"), "OK");
        c.set("after", b"yes");
        // Delayed flushes are refused, not silently approximated.
        assert!(c.command("flush_all 30").starts_with("SERVER_ERROR"));
        handle.shutdown();
    }
    let handle = server::spawn(persistent_config(&dir)).expect("respawn");
    let mut c = Client::connect(handle.local_addr());
    assert_eq!(c.get("keep"), None, "flush_all must hold across restart");
    assert_eq!(c.get("after"), Some(b"yes".to_vec()));
    handle.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn persist_metric_families_are_exposed() {
    let dir = tmpdir("metrics");
    let handle = server::spawn(persistent_config(&dir)).expect("spawn");
    let mut c = Client::connect(handle.local_addr());
    c.set("k", b"v");
    let stats = c.stat_section("cuckoo");
    for family in [
        "cuckoo_persist_log_records_total",
        "cuckoo_persist_log_bytes_total",
        "cuckoo_persist_fsyncs_total",
        "cuckoo_persist_group_commit_us_count",
        "cuckoo_persist_backpressure_waits_total",
        "cuckoo_persist_snapshots_total",
        "cuckoo_persist_snapshot_last_entries",
        "cuckoo_persist_replayed_records_total",
        "cuckoo_persist_torn_tails_total",
        "cuckoo_persist_durable_lsn",
        "cuckoo_persist_replicas_connected",
        "cuckoo_persist_replication_records_sent_total",
        "cuckoo_persist_replication_lag_records",
        "cuckoo_persist_replication_records_applied_total",
    ] {
        assert!(stats.contains_key(family), "missing family {family} in {stats:?}");
    }
    assert!(stats["cuckoo_persist_log_records_total"] >= 1);
    handle.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn replica_bootstraps_mid_stream_converges_and_promotes() {
    let pdir = tmpdir("primary");
    let rdir = tmpdir("replica");

    let primary = server::spawn(persistent_config(&pdir)).expect("spawn primary");
    let mut pc = Client::connect(primary.local_addr());
    // Preload before the replica exists: the bootstrap path must carry
    // these, not the log tail.
    for i in 0..200 {
        pc.set(&format!("pre{i}"), format!("old{i}").as_bytes());
    }
    pc.set("doomed", b"x");
    assert!(pc.delete("doomed"));

    // Start the replica mid-life of the primary.
    let mut rcfg = persistent_config(&rdir);
    rcfg.replica_of = Some(primary.local_addr().to_string());
    let replica = server::spawn(rcfg).expect("spawn replica");
    let mut rc = Client::connect(replica.local_addr());

    // Writes racing the bootstrap must also arrive.
    for i in 0..200 {
        pc.set(&format!("live{i}"), format!("new{i}").as_bytes());
    }

    wait_until("replica convergence", Duration::from_secs(10), || {
        rc.get("pre199").is_some() && rc.get("live199").is_some()
    });
    for i in (0..200).step_by(17) {
        assert_eq!(rc.get(&format!("pre{i}")), Some(format!("old{i}").into_bytes()));
        assert_eq!(rc.get(&format!("live{i}")), Some(format!("new{i}").into_bytes()));
    }
    assert_eq!(rc.get("doomed"), None, "pre-bootstrap delete must hold on the replica");

    // The replica refuses writes until promoted.
    assert!(rc.command("set nope 0 0 1\r\nx").starts_with("SERVER_ERROR"));
    assert!(pc.command("promote").starts_with("SERVER_ERROR"), "primary is not a replica");

    // Deletes stream too.
    assert!(pc.delete("pre0"));
    wait_until("replicated delete", Duration::from_secs(10), || rc.get("pre0").is_none());

    // Promote: the replica detaches and takes writes.
    assert_eq!(rc.command("promote"), "OK");
    rc.set("post-promote", b"mine");
    assert_eq!(rc.get("post-promote"), Some(b"mine".to_vec()));

    // A write on the old primary no longer reaches it.
    pc.set("split", b"brain");
    std::thread::sleep(Duration::from_millis(300));
    assert_eq!(rc.get("split"), None, "promoted replica must not keep following");

    primary.shutdown();
    // The promoted replica's own durability tier still works.
    replica.shutdown();
    let solo = server::spawn(persistent_config(&rdir)).expect("respawn promoted replica");
    let mut sc = Client::connect(solo.local_addr());
    assert_eq!(sc.get("post-promote"), Some(b"mine".to_vec()));
    assert_eq!(sc.get("live100"), Some(b"new100".to_vec()));
    solo.shutdown();

    std::fs::remove_dir_all(&pdir).unwrap();
    std::fs::remove_dir_all(&rdir).unwrap();
}

#[test]
fn replicate_without_data_dir_is_refused() {
    let handle = server::spawn(server::Config {
        port: 0,
        capacity: 1 << 12,
        workers: 1,
        ..Default::default()
    })
    .expect("spawn");
    let mut c = Client::connect(handle.local_addr());
    assert!(c.command("replicate 0").starts_with("SERVER_ERROR"));
    // The connection survives the refusal.
    c.set("still", b"alive");
    assert_eq!(c.get("still"), Some(b"alive".to_vec()));
    handle.shutdown();
}
