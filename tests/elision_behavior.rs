//! Behavioral tests for the simulated-HTM claims the paper relies on:
//! footprint size drives abort rates, glibc vs TSX* fallback behavior,
//! and the interplay of elided tables with optimistic readers.

use cuckoo_repro::cuckoo::{ElidedCuckooMap, MemC3Config, MemC3Cuckoo, WriterLockKind};
use cuckoo_repro::htm::{AbortCode, ElidedLock, ElisionConfig, HtmConfig, HtmDomain, MemCtx};
use cuckoo_repro::workload::keygen::key_of;
use std::sync::Arc;

/// §5: transactions that touch more memory are more likely to abort on
/// capacity. Verify the monotone relationship directly.
#[test]
fn footprint_drives_capacity_aborts() {
    let run = |writes: usize| -> u64 {
        let domain = Arc::new(HtmDomain::with_config(HtmConfig {
            write_capacity_lines: 32,
            ..HtmConfig::default()
        }));
        let lock = ElidedLock::new(domain, ElisionConfig::optimized());
        let mut arr = vec![0u64; 64 * 1024 / 8];
        let base = arr.as_mut_ptr();
        for i in 0..50u64 {
            lock.execute(|ctx| {
                for w in 0..writes {
                    // SAFETY: strided within `arr`; lock coordinates.
                    unsafe { ctx.store(base.add((w * 8) % arr.len()), i)? };
                }
                Ok(())
            });
        }
        lock.stats().snapshot().capacity_aborts
    };
    let small = run(8); // 8 lines << 32-line budget
    let large = run(64); // 64 lines >> budget
    assert_eq!(small, 0, "small sections must fit");
    assert!(large > 0, "oversized sections must abort on capacity");
}

/// The Algorithm-1 baseline (whole insert — including the DFS search —
/// in one transaction) has a far larger transactional footprint than the
/// lock-later + BFS ladder; under a hardware-realistic capacity budget it
/// must abort and fall back far more often — the mechanism behind
/// Figure 5b. (Pure *conflict* abort rates depend on true temporal
/// overlap, which a single-core host cannot reproduce; footprint-driven
/// capacity aborts are deterministic.)
#[test]
fn algorithmic_opts_cut_abort_rate() {
    let run = |cfg: MemC3Config| -> cuckoo_repro::htm::StatsSnapshot {
        // Tight read budget: a long in-transaction path search overflows
        // it; the optimized insert's few-bucket critical section never
        // comes close.
        let domain = Arc::new(HtmDomain::with_config(HtmConfig {
            read_capacity_lines: 48,
            write_capacity_lines: 48,
            ..HtmConfig::default()
        }));
        let m: MemC3Cuckoo<u64, u64, 4> = MemC3Cuckoo::with_capacity_hasher_and_domain(
            1 << 12,
            cfg,
            cuckoo_repro::cuckoo::DefaultHashBuilder::new(),
            domain,
        );
        let per_thread = (m.capacity() * 95 / 100) as u64 / 4;
        // Fill to 95%...
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let m = &m;
                s.spawn(move || {
                    for i in 0..per_thread {
                        m.insert(key_of(t, i), i).unwrap();
                    }
                });
            }
        });
        // ...then churn at sustained 95% occupancy, where inserts
        // regularly need cuckoo paths.
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let m = &m;
                s.spawn(move || {
                    for i in 0..per_thread / 4 {
                        assert_eq!(m.remove(&key_of(t, i)), Some(i));
                        m.insert(key_of(t + 50, i), i).unwrap();
                    }
                });
            }
        });
        m.htm_stats().unwrap()
    };
    let naive = run(MemC3Config::baseline().with_lock(WriterLockKind::ElidedOptimized));
    let optimized = run(
        MemC3Config::baseline()
            .plus_lock_later()
            .plus_bfs()
            .plus_prefetch()
            .with_lock(WriterLockKind::ElidedOptimized),
    );
    assert!(
        naive.capacity_aborts > 0,
        "in-transaction DFS searches must blow the capacity budget: {naive:?}"
    );
    assert_eq!(
        optimized.capacity_aborts, 0,
        "the optimized critical section (a few bucket writes) must always \
         fit: {optimized:?}"
    );
    assert!(
        optimized.abort_rate() < naive.abort_rate(),
        "optimized abort rate {:.4} must undercut naive {:.4}",
        optimized.abort_rate(),
        naive.abort_rate()
    );
}

/// Appendix A: the optimized policy retries aborts without the RTM retry
/// hint; glibc's takes the fallback lock immediately. Under capacity
/// pressure both must remain correct, and glibc must fall back at least
/// as often.
#[test]
fn glibc_falls_back_no_less_than_optimized() {
    let run = |cfg: ElisionConfig| -> (u64, u64) {
        let domain = Arc::new(HtmDomain::with_config(HtmConfig {
            write_capacity_lines: 4,
            ..HtmConfig::default()
        }));
        let lock = ElidedLock::new(domain, cfg);
        let mut arr = vec![0u64; 4096];
        let base = arr.as_mut_ptr();
        for i in 0..200u64 {
            lock.execute(|ctx| {
                // Alternate: small sections commit, big ones overflow.
                let n = if i % 2 == 0 { 2 } else { 16 };
                for w in 0..n {
                    // SAFETY: strided in bounds; lock coordinates.
                    unsafe { ctx.store(base.add(w * 8), i)? };
                }
                Ok(())
            });
        }
        let s = lock.stats().snapshot();
        (s.fallbacks, s.commits)
    };
    let (glibc_fb, glibc_commits) = run(ElisionConfig::glibc());
    let (opt_fb, opt_commits) = run(ElisionConfig::optimized());
    assert_eq!(glibc_fb + glibc_commits, 200);
    assert_eq!(opt_fb + opt_commits, 200);
    assert!(glibc_fb >= opt_fb);
    // Every odd iteration overflows capacity deterministically.
    assert_eq!(glibc_fb, 100);
    assert_eq!(opt_fb, 100);
}

/// Optimistic (non-transactional) readers must observe consistent values
/// while elided writers churn — the seqlock-publication bridge.
#[test]
fn optimistic_readers_vs_elided_writers() {
    let m: ElidedCuckooMap<u64, [u64; 4], 8> = ElidedCuckooMap::with_capacity(1 << 12);
    const KEYS: u64 = 64;
    for k in 0..KEYS {
        m.insert(k, [0; 4]).unwrap();
    }
    let stop = std::sync::atomic::AtomicBool::new(false);
    let stop = &stop;
    let m = &m;
    std::thread::scope(|s| {
        for _ in 0..2 {
            s.spawn(move || {
                let mut i = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Acquire) {
                    let k = i % KEYS;
                    let v = m.get(&k).unwrap_or_else(|| panic!("key {k} missing"));
                    assert!(
                        v.iter().all(|&x| x == v[0]),
                        "torn read through elided writer: {v:?}"
                    );
                    i += 1;
                }
            });
        }
        s.spawn(move || {
            for gen in 1..=500u64 {
                for k in 0..KEYS {
                    assert!(m.update(&k, [gen; 4]), "update {k}");
                }
            }
            stop.store(true, std::sync::atomic::Ordering::Release);
        });
    });
    for k in 0..KEYS {
        assert_eq!(m.get(&k), Some([500; 4]));
    }
}

/// RTM abort-code taxonomy is preserved end to end.
#[test]
fn abort_codes_surface_correctly() {
    let domain = HtmDomain::with_config(HtmConfig {
        read_capacity_lines: 2,
        ..HtmConfig::default()
    });
    let arr = vec![0u64; 4096];
    let base = arr.as_ptr();
    let r = domain.execute(|tx| {
        for i in 0..32 {
            // SAFETY: strided in bounds.
            unsafe { tx.read(base.add(i * 8))? };
        }
        Ok(())
    });
    assert_eq!(r.unwrap_err().code, AbortCode::Capacity);

    let r: Result<(), _> = domain.execute(|_tx| Err(cuckoo_repro::htm::Abort::explicit(0x42)));
    assert_eq!(r.unwrap_err().code, AbortCode::Explicit(0x42));
}
