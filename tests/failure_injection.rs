//! Failure injection: force the rare paths — stale cuckoo paths, abort
//! storms, full tables — and check the system degrades the way the paper
//! says it should.

use cuckoo_repro::cuckoo::{ElidedCuckooMap, InsertError, OptimisticCuckooMap};
use cuckoo_repro::htm::{Abort, ElidedLock, ElisionConfig, HtmDomain};
use cuckoo_repro::workload::keygen::{key_of, SplitMix64};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// An adversary thread churns the exact buckets a victim's cuckoo paths
/// run through; the victim must complete every insert correctly no
/// matter how many paths go stale. (How *often* paths go stale depends
/// on real temporal overlap — near zero on a single core, per Eq. 1 —
/// so this test asserts correctness under fire, not a stale count; the
/// deterministic stale-path detection test lives next to the
/// implementation in `cuckoo::optimistic::tests`.)
#[test]
fn adversary_churn_never_breaks_inserts() {
    // Tiny table + tiny stripe count = maximal overlap between victim
    // paths and adversary writes.
    let m: OptimisticCuckooMap<u64, u64, 4> = OptimisticCuckooMap::<u64, u64, 4>::builder(1 << 11)
        .stripes(16)
        .path_retries(4)
        .build();
    // Fill to 90% so inserts regularly need a path.
    let base = (m.capacity() * 90 / 100) as u64;
    for i in 0..base {
        m.insert(key_of(0, i), i).unwrap();
    }
    let stop = AtomicBool::new(false);
    let stop = &stop;
    let m = &m;
    std::thread::scope(|s| {
        // Adversary: remove/re-insert random residents as fast as
        // possible, invalidating in-flight paths.
        s.spawn(move || {
            let mut rng = SplitMix64::new(0xbad);
            while !stop.load(Ordering::Acquire) {
                let i = rng.below(base);
                let k = key_of(0, i);
                if let Some(v) = m.remove(&k) {
                    // The victim may transiently grab the freed slot;
                    // occupancy stays below capacity, so retry until the
                    // reinsert lands (the key must not be lost).
                    loop {
                        match m.insert(k, v) {
                            Ok(()) => break,
                            Err(InsertError::TableFull) => std::thread::yield_now(),
                            Err(e) => panic!("{e}"),
                        }
                    }
                }
            }
        });
        // Victim: repeatedly push occupancy to ~94% and back, under fire.
        s.spawn(move || {
            let extra = (m.capacity() * 4 / 100) as u64;
            for round in 0..20 {
                for i in 0..extra {
                    m.insert(key_of(7, i), i).unwrap();
                }
                if round < 19 {
                    for i in 0..extra {
                        assert_eq!(m.remove(&key_of(7, i)), Some(i));
                    }
                }
            }
            stop.store(true, Ordering::Release);
        });
    });
    let extra = (m.capacity() * 4 / 100) as u64;
    for i in 0..extra {
        assert_eq!(m.get(&key_of(7, i)), Some(i), "victim key {i}");
    }
    for i in 0..base {
        assert_eq!(m.get(&key_of(0, i)), Some(i), "resident key {i}");
    }
    let stats = m.path_stats();
    assert!(stats.searches > 0, "workload must exercise the slow path");
    println!("path stats under adversarial churn: {stats:?}");
}

/// A table driven to genuine fullness must fail cleanly with `TableFull`,
/// lose nothing, and recover once space is freed.
#[test]
fn full_table_fails_cleanly_and_recovers() {
    let m: OptimisticCuckooMap<u64, u64, 4> =
        OptimisticCuckooMap::<u64, u64, 4>::builder(512).build();
    let mut inserted = Vec::new();
    let mut k = 0u64;
    loop {
        match m.insert(k, k) {
            Ok(()) => inserted.push(k),
            Err(InsertError::TableFull) => break,
            Err(e) => panic!("{e}"),
        }
        k += 1;
    }
    // Everything inserted before the failure is intact.
    for &k in &inserted {
        assert_eq!(m.get(&k), Some(k));
    }
    // Freeing any entry makes the failed insert succeed.
    let victim = inserted[inserted.len() / 2];
    assert_eq!(m.remove(&victim), Some(victim));
    m.insert(k, k).unwrap();
    assert_eq!(m.get(&k), Some(k));
    assert_eq!(m.len(), inserted.len());
}

/// Continuous external invalidation of a transaction's read set must
/// starve speculation into the fallback path, never corrupt data.
#[test]
fn conflict_storm_drives_fallback_not_corruption() {
    let domain = Arc::new(HtmDomain::new());
    let lock = ElidedLock::new(Arc::clone(&domain), ElisionConfig::optimized());
    let mut counter = 0u64;
    let p: *mut u64 = &mut counter;
    let addr = p as usize;
    let stop = AtomicBool::new(false);
    let storming = AtomicBool::new(false);
    let stop = &stop;
    let storming = &storming;
    let lock = &lock;
    let domain = &domain;
    let p = SendPtr(p);
    let mut increments = 0u64;
    std::thread::scope(|s| {
        // Storm: bump the counter's cache line version continuously.
        s.spawn(move || {
            while !stop.load(Ordering::Acquire) {
                domain.invalidate_line(addr);
                storming.store(true, Ordering::Release);
            }
        });
        // Worker: don't start until the storm is live, and keep
        // transacting until the storm has demonstrably forced both a
        // conflict abort and a fallback (a fixed iteration count races
        // the scheduler: the worker can finish before the storm thread
        // ever runs). The deadline keeps a broken implementation from
        // hanging the test instead of failing it.
        while !storming.load(Ordering::Acquire) {
            std::thread::yield_now();
        }
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        loop {
            lock.execute(|ctx| {
                use cuckoo_repro::htm::MemCtx;
                // SAFETY: `counter` outlives the scope; coordinated
                // by the elided lock.
                let v = unsafe { ctx.load(p.0)? };
                unsafe { ctx.store(p.0, v + 1) }
            });
            increments += 1;
            if increments >= 2_000 {
                let s = lock.stats().snapshot();
                if (s.conflict_aborts > 0 && s.fallbacks > 0)
                    || std::time::Instant::now() > deadline
                {
                    break;
                }
            }
        }
        stop.store(true, Ordering::Release);
    });
    assert_eq!(counter, increments, "increments survived the conflict storm");
    let stats = lock.stats().snapshot();
    assert!(
        stats.conflict_aborts > 0,
        "storm must cause conflicts: {stats:?}"
    );
    assert!(
        stats.fallbacks > 0,
        "sustained conflicts must reach the fallback lock: {stats:?}"
    );
}

/// HLE-style single-shot elision (Appendix A) still completes correctly
/// under footprint pressure — it just falls back more.
#[test]
fn hle_semantics_fall_back_once_per_abort() {
    let domain = Arc::new(HtmDomain::with_config(cuckoo_repro::htm::HtmConfig {
        write_capacity_lines: 2,
        ..cuckoo_repro::htm::HtmConfig::default()
    }));
    let lock = ElidedLock::new(domain, ElisionConfig::hle());
    let mut arr = vec![0u64; 512];
    let base = arr.as_mut_ptr();
    for i in 0..100u64 {
        lock.execute(|ctx| {
            use cuckoo_repro::htm::MemCtx;
            for w in 0..8 {
                // SAFETY: strided in bounds; coordinated by the lock.
                unsafe { ctx.store(base.add(w * 8), i)? };
            }
            Ok(())
        });
    }
    let stats = lock.stats().snapshot();
    assert_eq!(stats.fallbacks, 100, "every oversized section falls back");
    assert_eq!(
        stats.starts, 100,
        "HLE speculates exactly once per section"
    );
    for w in 0..8 {
        assert_eq!(arr[w * 8], 99);
    }
}

/// Aborting inside an elided cuckoo insert (by external invalidation of
/// the table's lines) must never lose or duplicate keys.
#[test]
fn elided_table_survives_random_invalidation() {
    // 2 writers x 2000 keys + 200 churn keys in 16384 slots (~26% load).
    let m: ElidedCuckooMap<u64, u64, 4> = ElidedCuckooMap::with_capacity(1 << 14);
    let stop = AtomicBool::new(false);
    let stop = &stop;
    let m = &m;
    std::thread::scope(|s| {
        for t in 0..2u64 {
            s.spawn(move || {
                for i in 0..2_000u64 {
                    m.insert(key_of(t, i), i).unwrap();
                }
            });
        }
        s.spawn(move || {
            // Churn a third key space to keep transactions aborting.
            let mut i = 0u64;
            while !stop.load(Ordering::Acquire) {
                let k = key_of(9, i % 200);
                if m.insert(k, i).is_err() {
                    m.remove(&k);
                }
                i += 1;
            }
        });
        // Let the writers finish, then stop the churner (bounded wait so
        // a writer panic cannot wedge the scope).
        s.spawn(move || {
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(120);
            loop {
                let done = (0..2u64).all(|t| m.get(&key_of(t, 1999)).is_some());
                if done || std::time::Instant::now() > deadline {
                    stop.store(true, Ordering::Release);
                    return;
                }
                std::thread::yield_now();
            }
        });
    });
    for t in 0..2u64 {
        for i in 0..2_000u64 {
            assert_eq!(m.get(&key_of(t, i)), Some(i), "t{t} i{i}");
        }
    }
}

#[derive(Clone, Copy)]
struct SendPtr(*mut u64);
// SAFETY: test-only; the pointee outlives the scope and access is
// coordinated by the lock under test.
unsafe impl Send for SendPtr {}

// Quiet the unused-abort-import lint when compiled without all tests.
#[allow(dead_code)]
fn _uses(_: Abort) {}
