//! End-to-end smoke test for `cuckood`: a real server on an ephemeral
//! loopback port, real TCP clients, concurrent traffic, graceful
//! shutdown.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// A small blocking client speaking the memcached text protocol.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn line(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read line");
        line.trim_end().to_string()
    }

    fn set(&mut self, key: &str, value: &[u8]) {
        write!(self.writer, "set {} 0 0 {}\r\n", key, value.len()).unwrap();
        self.writer.write_all(value).unwrap();
        self.writer.write_all(b"\r\n").unwrap();
        assert_eq!(self.line(), "STORED", "set {key}");
    }

    /// Returns the value, or `None` on a miss.
    fn get(&mut self, key: &str) -> Option<Vec<u8>> {
        write!(self.writer, "get {}\r\n", key).unwrap();
        let header = self.line();
        if header == "END" {
            return None;
        }
        let mut parts = header.split(' ');
        assert_eq!(parts.next(), Some("VALUE"), "header {header:?}");
        assert_eq!(parts.next(), Some(key));
        let _flags = parts.next().unwrap();
        let n: usize = parts.next().unwrap().parse().unwrap();
        let mut data = vec![0u8; n + 2];
        self.reader.read_exact(&mut data).unwrap();
        data.truncate(n);
        assert_eq!(self.line(), "END");
        Some(data)
    }

    fn delete(&mut self, key: &str) -> bool {
        write!(self.writer, "delete {}\r\n", key).unwrap();
        match self.line().as_str() {
            "DELETED" => true,
            "NOT_FOUND" => false,
            other => panic!("unexpected delete reply {other:?}"),
        }
    }
}

#[test]
fn concurrent_clients_set_get_delete_and_drain() {
    let handle = server::spawn(server::Config {
        port: 0,
        capacity: 1 << 16,
        workers: 2,
        ..Default::default()
    })
    .expect("spawn");
    let addr = handle.local_addr();

    const CLIENTS: usize = 6;
    const KEYS_PER_CLIENT: usize = 200;
    std::thread::scope(|s| {
        for c in 0..CLIENTS {
            s.spawn(move || {
                let mut client = Client::connect(addr);
                // Distinct per-client keyspace: no cross-client races on
                // individual keys, full contention on the shared table.
                for i in 0..KEYS_PER_CLIENT {
                    let key = format!("c{c}k{i}");
                    let value = format!("value-{c}-{i}").into_bytes();
                    client.set(&key, &value);
                }
                for i in 0..KEYS_PER_CLIENT {
                    let key = format!("c{c}k{i}");
                    let expect = format!("value-{c}-{i}").into_bytes();
                    assert_eq!(client.get(&key), Some(expect), "{key}");
                }
                // Delete the odd half; verify both halves behave.
                for i in (1..KEYS_PER_CLIENT).step_by(2) {
                    assert!(client.delete(&format!("c{c}k{i}")));
                }
                for i in 0..KEYS_PER_CLIENT {
                    let key = format!("c{c}k{i}");
                    let got = client.get(&key);
                    if i % 2 == 1 {
                        assert_eq!(got, None, "{key} should be deleted");
                    } else {
                        assert!(got.is_some(), "{key} should survive");
                    }
                }
                // Deleting again reports NOT_FOUND, not an error.
                assert!(!client.delete(&format!("c{c}k1")));
            });
        }
    });

    // A fresh connection still sees the surviving keys (shared store,
    // not per-connection state).
    let mut checker = Client::connect(addr);
    assert_eq!(
        checker.get("c0k0"),
        Some(b"value-0-0".to_vec()),
        "data visible across connections"
    );

    // stats reflects the traffic.
    write!(checker.writer, "stats\r\n").unwrap();
    let mut saw_get_hits = false;
    loop {
        let line = checker.line();
        if line == "END" {
            break;
        }
        assert!(line.starts_with("STAT "), "stats line {line:?}");
        if let Some(rest) = line.strip_prefix("STAT cmd_get ") {
            let n: u64 = rest.parse().unwrap();
            assert!(n >= (CLIENTS * KEYS_PER_CLIENT) as u64, "cmd_get {n}");
        }
        if let Some(rest) = line.strip_prefix("STAT get_hits ") {
            saw_get_hits = true;
            assert!(rest.parse::<u64>().unwrap() > 0);
        }
    }
    assert!(saw_get_hits, "stats must include get_hits");

    // version answers; quit closes cleanly.
    write!(checker.writer, "version\r\n").unwrap();
    assert!(checker.line().starts_with("VERSION "));
    write!(checker.writer, "quit\r\n").unwrap();
    let mut rest = Vec::new();
    checker.reader.read_to_end(&mut rest).expect("clean close after quit");
    assert!(rest.is_empty(), "no bytes after quit");

    // Graceful shutdown: joins every worker; afterwards the port refuses
    // new work (accept thread is gone).
    handle.shutdown();
}

#[test]
fn observability_sections_expose_and_reset() {
    let handle = server::spawn(server::Config {
        port: 0,
        capacity: 1 << 14,
        workers: 2,
        ..Default::default()
    })
    .expect("spawn");
    let mut client = Client::connect(handle.local_addr());
    for i in 0..500 {
        client.set(&format!("k{i}"), format!("v{i}").as_bytes());
    }
    for i in 0..500 {
        assert!(client.get(&format!("k{i}")).is_some());
    }

    // `stats cuckoo`: STAT framing, core families present, and the
    // cross-series invariants hold (contended ≤ acquisitions; the
    // histogram count equals its +Inf cumulative bucket).
    let read_stat_section = |client: &mut Client| {
        write!(client.writer, "stats cuckoo\r\n").unwrap();
        let mut stats = std::collections::BTreeMap::new();
        loop {
            let line = client.line();
            if line == "END" {
                break;
            }
            let rest = line.strip_prefix("STAT ").unwrap_or_else(|| panic!("bad line {line:?}"));
            let (name, value) = rest.split_once(' ').unwrap();
            stats.insert(name.to_string(), value.parse::<u64>().unwrap());
        }
        stats
    };
    let stats = read_stat_section(&mut client);
    for family in [
        "cuckoo_lock_acquisitions_total",
        "cuckoo_lock_contended_total",
        "cuckoo_lock_spin_waits_count",
        "cuckoo_read_retries_total",
        "cuckoo_read_lock_fallbacks_total",
        "cuckoo_multiget_fallbacks_total",
        "cuckoo_bfs_path_len_count",
        "cuckoo_bfs_examined_slots_count",
        "cuckoo_path_searches_total",
        "cuckoo_migration_chunks_total",
        "cuckoo_graveyard_depth",
        "htm_starts_total",
        "htm_fallbacks_total",
    ] {
        assert!(stats.contains_key(family), "missing family {family}");
    }
    assert!(stats["cuckoo_lock_acquisitions_total"] >= 500, "{stats:?}");
    assert!(stats["cuckoo_lock_contended_total"] <= stats["cuckoo_lock_acquisitions_total"]);
    assert_eq!(stats["cuckoo_bfs_path_len_count"], stats["cuckoo_bfs_path_len_le_inf"]);

    // `stats prometheus`: text exposition with TYPE headers, cumulative
    // histogram buckets, and labeled HTM abort series.
    write!(client.writer, "stats prometheus\r\n").unwrap();
    let mut body = String::new();
    loop {
        let line = client.line();
        if line == "END" {
            break;
        }
        body.push_str(&line);
        body.push('\n');
    }
    for needle in [
        "# TYPE cuckoo_lock_acquisitions_total counter",
        "# TYPE cuckoo_bfs_path_len histogram",
        "cuckoo_bfs_path_len_bucket{le=\"+Inf\"}",
        "cuckoo_bfs_path_len_sum",
        "cuckoo_bfs_path_len_count",
        "# TYPE cuckoo_graveyard_depth gauge",
        "htm_aborts_total{code=\"conflict\"}",
    ] {
        assert!(body.contains(needle), "missing {needle:?} in:\n{body}");
    }

    // Unknown subcommand: recoverable CLIENT_ERROR, connection usable.
    write!(client.writer, "stats bogus\r\n").unwrap();
    assert!(client.line().starts_with("CLIENT_ERROR"));

    // `stats reset` zeroes the families coherently (no traffic between
    // reset and re-read; the clock engine runs no background threads).
    write!(client.writer, "stats reset\r\n").unwrap();
    assert_eq!(client.line(), "RESET");
    let after = read_stat_section(&mut client);
    assert_eq!(after["cuckoo_lock_acquisitions_total"], 0, "{after:?}");
    assert_eq!(after["cuckoo_lock_contended_total"], 0);
    assert_eq!(after["cuckoo_bfs_path_len_count"], 0);
    assert_eq!(after["cuckoo_read_retries_total"], 0);

    handle.shutdown();
}

/// A pipelined burst of storage commands in one TCP write must coalesce
/// into a batched `store_many` on the server side while producing a
/// reply stream byte-identical to sequential execution — including
/// `noreply` gaps and conditional-verb outcomes.
#[test]
fn pipelined_set_burst_coalesces_with_exact_replies() {
    let handle = server::spawn(server::Config {
        port: 0,
        capacity: 1 << 14,
        workers: 1,
        ..Default::default()
    })
    .expect("spawn");
    let mut client = Client::connect(handle.local_addr());

    // One write carrying a whole burst: 32 sets, one of them noreply,
    // an add that must lose, an add that must win, and a replace miss.
    let mut burst = Vec::new();
    for i in 0..32 {
        let value = format!("burst-{i}");
        let noreply = if i == 7 { " noreply" } else { "" };
        burst.extend_from_slice(
            format!("set bk{i} 0 0 {}{noreply}\r\n{value}\r\n", value.len()).as_bytes(),
        );
    }
    burst.extend_from_slice(b"add bk0 0 0 1\r\nx\r\n"); // present: NOT_STORED
    burst.extend_from_slice(b"add bnew 0 0 1\r\ny\r\n"); // absent: STORED
    burst.extend_from_slice(b"replace bmiss 0 0 1\r\nz\r\n"); // absent: NOT_STORED
    client.writer.write_all(&burst).unwrap();

    // Replies in command order, skipping exactly the noreply set.
    for i in 0..32 {
        if i == 7 {
            continue;
        }
        assert_eq!(client.line(), "STORED", "set bk{i}");
    }
    assert_eq!(client.line(), "NOT_STORED", "add of a present key");
    assert_eq!(client.line(), "STORED", "add of an absent key");
    assert_eq!(client.line(), "NOT_STORED", "replace of an absent key");

    // Every value (noreply one included) landed.
    for i in 0..32 {
        assert_eq!(client.get(&format!("bk{i}")), Some(format!("burst-{i}").into_bytes()));
    }
    assert_eq!(client.get("bnew"), Some(b"y".to_vec()));
    assert_eq!(client.get("bmiss"), None);

    // The server saw at least one coalesced burst covering the sets.
    write!(client.writer, "stats\r\n").unwrap();
    let (mut batches, mut keys) = (0u64, 0u64);
    loop {
        let line = client.line();
        if line == "END" {
            break;
        }
        if let Some(rest) = line.strip_prefix("STAT multiset_batches ") {
            batches = rest.parse().unwrap();
        }
        if let Some(rest) = line.strip_prefix("STAT multiset_keys ") {
            keys = rest.parse().unwrap();
        }
    }
    assert!(batches >= 1, "burst was not coalesced (multiset_batches {batches})");
    assert!(keys >= 32, "coalesced burst lost commands (multiset_keys {keys})");

    handle.shutdown();
}

#[test]
fn no_evict_mode_serves_large_values() {
    let handle = server::spawn(server::Config {
        port: 0,
        capacity: 1 << 12,
        workers: 1,
        no_evict: true,
        ..Default::default()
    })
    .expect("spawn");
    let mut client = Client::connect(handle.local_addr());
    // Far beyond the clock engine's inline-entry limit.
    let big = vec![b'x'; 64 * 1024];
    client.set("big", &big);
    assert_eq!(client.get("big"), Some(big));
    handle.shutdown();
}
