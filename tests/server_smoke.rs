//! End-to-end smoke test for `cuckood`: a real server on an ephemeral
//! loopback port, real TCP clients, concurrent traffic, graceful
//! shutdown.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// A small blocking client speaking the memcached text protocol.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn line(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read line");
        line.trim_end().to_string()
    }

    fn set(&mut self, key: &str, value: &[u8]) {
        write!(self.writer, "set {} 0 0 {}\r\n", key, value.len()).unwrap();
        self.writer.write_all(value).unwrap();
        self.writer.write_all(b"\r\n").unwrap();
        assert_eq!(self.line(), "STORED", "set {key}");
    }

    /// Returns the value, or `None` on a miss.
    fn get(&mut self, key: &str) -> Option<Vec<u8>> {
        write!(self.writer, "get {}\r\n", key).unwrap();
        let header = self.line();
        if header == "END" {
            return None;
        }
        let mut parts = header.split(' ');
        assert_eq!(parts.next(), Some("VALUE"), "header {header:?}");
        assert_eq!(parts.next(), Some(key));
        let _flags = parts.next().unwrap();
        let n: usize = parts.next().unwrap().parse().unwrap();
        let mut data = vec![0u8; n + 2];
        self.reader.read_exact(&mut data).unwrap();
        data.truncate(n);
        assert_eq!(self.line(), "END");
        Some(data)
    }

    fn delete(&mut self, key: &str) -> bool {
        write!(self.writer, "delete {}\r\n", key).unwrap();
        match self.line().as_str() {
            "DELETED" => true,
            "NOT_FOUND" => false,
            other => panic!("unexpected delete reply {other:?}"),
        }
    }
}

#[test]
fn concurrent_clients_set_get_delete_and_drain() {
    let handle = server::spawn(server::Config {
        port: 0,
        capacity: 1 << 16,
        workers: 2,
        ..Default::default()
    })
    .expect("spawn");
    let addr = handle.local_addr();

    const CLIENTS: usize = 6;
    const KEYS_PER_CLIENT: usize = 200;
    std::thread::scope(|s| {
        for c in 0..CLIENTS {
            s.spawn(move || {
                let mut client = Client::connect(addr);
                // Distinct per-client keyspace: no cross-client races on
                // individual keys, full contention on the shared table.
                for i in 0..KEYS_PER_CLIENT {
                    let key = format!("c{c}k{i}");
                    let value = format!("value-{c}-{i}").into_bytes();
                    client.set(&key, &value);
                }
                for i in 0..KEYS_PER_CLIENT {
                    let key = format!("c{c}k{i}");
                    let expect = format!("value-{c}-{i}").into_bytes();
                    assert_eq!(client.get(&key), Some(expect), "{key}");
                }
                // Delete the odd half; verify both halves behave.
                for i in (1..KEYS_PER_CLIENT).step_by(2) {
                    assert!(client.delete(&format!("c{c}k{i}")));
                }
                for i in 0..KEYS_PER_CLIENT {
                    let key = format!("c{c}k{i}");
                    let got = client.get(&key);
                    if i % 2 == 1 {
                        assert_eq!(got, None, "{key} should be deleted");
                    } else {
                        assert!(got.is_some(), "{key} should survive");
                    }
                }
                // Deleting again reports NOT_FOUND, not an error.
                assert!(!client.delete(&format!("c{c}k1")));
            });
        }
    });

    // A fresh connection still sees the surviving keys (shared store,
    // not per-connection state).
    let mut checker = Client::connect(addr);
    assert_eq!(
        checker.get("c0k0"),
        Some(b"value-0-0".to_vec()),
        "data visible across connections"
    );

    // stats reflects the traffic.
    write!(checker.writer, "stats\r\n").unwrap();
    let mut saw_get_hits = false;
    loop {
        let line = checker.line();
        if line == "END" {
            break;
        }
        assert!(line.starts_with("STAT "), "stats line {line:?}");
        if let Some(rest) = line.strip_prefix("STAT cmd_get ") {
            let n: u64 = rest.parse().unwrap();
            assert!(n >= (CLIENTS * KEYS_PER_CLIENT) as u64, "cmd_get {n}");
        }
        if let Some(rest) = line.strip_prefix("STAT get_hits ") {
            saw_get_hits = true;
            assert!(rest.parse::<u64>().unwrap() > 0);
        }
    }
    assert!(saw_get_hits, "stats must include get_hits");

    // version answers; quit closes cleanly.
    write!(checker.writer, "version\r\n").unwrap();
    assert!(checker.line().starts_with("VERSION "));
    write!(checker.writer, "quit\r\n").unwrap();
    let mut rest = Vec::new();
    checker.reader.read_to_end(&mut rest).expect("clean close after quit");
    assert!(rest.is_empty(), "no bytes after quit");

    // Graceful shutdown: joins every worker; afterwards the port refuses
    // new work (accept thread is gone).
    handle.shutdown();
}

#[test]
fn no_evict_mode_serves_large_values() {
    let handle = server::spawn(server::Config {
        port: 0,
        capacity: 1 << 12,
        workers: 1,
        no_evict: true,
        ..Default::default()
    })
    .expect("spawn");
    let mut client = Client::connect(handle.local_addr());
    // Far beyond the clock engine's inline-entry limit.
    let big = vec![b'x'; 64 * 1024];
    client.set("big", &big);
    assert_eq!(client.get("big"), Some(big));
    handle.shutdown();
}
