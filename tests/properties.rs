//! Property-based tests (proptest) over the core invariants.

use cuckoo_repro::cuckoo::analysis::{p_invalid_exact, p_invalid_max};
use cuckoo_repro::cuckoo::hashing::{alt_index, key_slots, tag_of};
use cuckoo_repro::cuckoo::hash::RandomState;
use cuckoo_repro::cuckoo::raw::RawTable;
use cuckoo_repro::cuckoo::search::bfs::{bfs_max_path_len, search as bfs_search};
use cuckoo_repro::cuckoo::search::SearchScratch;
use cuckoo_repro::cuckoo::{CuckooMap, OptimisticCuckooMap};
use cuckoo_repro::htm::HtmDomain;
use proptest::prelude::*;
use std::collections::hash_map::Entry;
use std::collections::HashMap;

proptest! {
    /// alt_index is an involution for any power-of-two table >= 256.
    #[test]
    fn alt_index_involution(index in 0usize..(1 << 20), tag in 1u8..=255, shift in 8u32..=20) {
        let mask = (1usize << shift) - 1;
        let i = index & mask;
        let a = alt_index(i, tag, mask);
        prop_assert_eq!(alt_index(a, tag, mask), i);
        prop_assert_ne!(a, i, "candidates must differ (tag {}, mask {:#x})", tag, mask);
    }

    /// Tags extracted from any hash are non-zero.
    #[test]
    fn tags_never_zero(h in any::<u64>()) {
        prop_assert_ne!(tag_of(h), 0);
    }

    /// key_slots' two buckets are mutually reachable for any key.
    #[test]
    fn key_slots_reachable(key in any::<u64>(), seed in any::<u64>()) {
        let s = RandomState::with_seed(seed);
        let mask = (1usize << 12) - 1;
        let ks = key_slots(&s, &key, mask);
        prop_assert_eq!(alt_index(ks.i1, ks.tag, mask), ks.i2);
    }

    /// A sequential fill + random removals leaves exactly the expected
    /// contents (single-threaded model check of the optimistic table).
    #[test]
    fn optimistic_model_check(ops in proptest::collection::vec((any::<u16>(), any::<bool>()), 1..400)) {
        let m: OptimisticCuckooMap<u64, u64, 4> = OptimisticCuckooMap::with_capacity(4096);
        let mut model: HashMap<u64, u64> = HashMap::new();
        for (k, insert) in ops {
            let k = k as u64;
            if insert {
                let r = m.insert(k, k * 2);
                match model.entry(k) {
                    Entry::Occupied(_) => prop_assert!(r.is_err()),
                    Entry::Vacant(e) => {
                        if r.is_ok() {
                            e.insert(k * 2);
                        }
                    }
                }
            } else {
                let removed = m.remove(&k);
                prop_assert_eq!(removed.is_some(), model.remove(&k).is_some());
            }
        }
        prop_assert_eq!(m.len(), model.len());
        for (k, v) in &model {
            prop_assert_eq!(m.get(k), Some(*v));
        }
    }

    /// Same model check for the general (resizing) map with string keys.
    #[test]
    fn general_map_model_check(ops in proptest::collection::vec((0u16..512, any::<bool>()), 1..300)) {
        let m: CuckooMap<String, u32, 4> = CuckooMap::with_capacity(0);
        let mut model: HashMap<String, u32> = HashMap::new();
        for (k, insert) in ops {
            let key = format!("k{k}");
            if insert {
                let r = m.insert(key.clone(), k as u32);
                match model.entry(key) {
                    Entry::Occupied(_) => prop_assert!(r.is_err()),
                    Entry::Vacant(e) => {
                        prop_assert!(r.is_ok());
                        e.insert(k as u32);
                    }
                }
            } else {
                prop_assert_eq!(m.remove(&key).is_some(), model.remove(&key).is_some());
            }
        }
        prop_assert_eq!(m.len(), model.len());
        for (k, v) in &model {
            prop_assert_eq!(m.get(k), Some(*v));
        }
    }

    /// SWAR tag matching agrees with a naive per-slot scan for arbitrary
    /// tag contents (including the 0x00/0x01/0x80/0xff corner bytes that
    /// break borrow-based zero detectors).
    #[test]
    fn swar_matches_naive(tags in proptest::collection::vec(any::<u8>(), 8), probe in any::<u8>()) {
        use cuckoo_repro::cuckoo::bucket::BucketMeta;
        let m: BucketMeta<8> = BucketMeta::new();
        for (s, &t) in tags.iter().enumerate() {
            m.set_partial(s, t);
        }
        let naive: u16 = (0..8)
            .filter(|&s| tags[s] == probe)
            .fold(0, |acc, s| acc | (1 << s));
        prop_assert_eq!(m.match_tag_mask(probe), naive);
    }

    /// Eq. 2: real BFS paths never exceed the closed-form bound, at any
    /// occupancy pattern.
    #[test]
    fn bfs_respects_eq2_bound(seed in any::<u64>(), load_pct in 50usize..96) {
        let raw: RawTable<u64, u64, 4> = RawTable::with_capacity(1 << 10);
        let total = raw.total_slots() * load_pct / 100;
        let mut x = seed | 1;
        let mut placed = 0;
        for round in 0..raw.n_buckets() * 64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(round as u64);
            let bi = (x >> 32) as usize & raw.mask();
            let tag = ((x >> 24) as u8).max(1);
            if let Some(s) = raw.meta(bi).empty_slot() {
                // SAFETY: single-threaded test.
                unsafe { raw.write_entry(bi, s, tag, 0, 0) };
                placed += 1;
                if placed >= total { break; }
            }
        }
        let bound = bfs_max_path_len(4, 2000);
        let mut scratch = SearchScratch::default();
        for i in (0..raw.n_buckets()).step_by(97) {
            let tag = ((i as u8) | 1).max(1);
            if bfs_search(&raw, i, raw.alt_index(i, tag), 2000, false, &mut scratch).is_ok() {
                prop_assert!(scratch.path.len() <= bound + 1,
                    "path len {} exceeds bound {}", scratch.path.len(), bound);
            }
        }
    }

    /// Eq. 1's approximation stays within 10% of the exact product form
    /// and within [0, 1].
    #[test]
    fn eq1_approximation_quality(
        n in 10_000u64..10_000_000,
        l in 1u64..300,
        t in 1u64..32,
    ) {
        prop_assume!(l * 2 < n / 10);
        let approx = p_invalid_max(n, l, t);
        let exact = p_invalid_exact(n, l, t);
        prop_assert!((0.0..=1.0).contains(&approx));
        prop_assert!((0.0..=1.0).contains(&exact));
        if exact > 1e-9 {
            prop_assert!((approx - exact).abs() / exact < 0.10,
                "approx {approx} vs exact {exact}");
        }
    }

    /// STM serializability: random transactional transfers between
    /// accounts conserve the total balance.
    #[test]
    fn stm_transfers_conserve_total(transfers in proptest::collection::vec((0usize..8, 0usize..8, 1u64..50), 1..60)) {
        let domain = HtmDomain::new();
        let mut accounts = [1000u64; 8];
        let base = accounts.as_mut_ptr();
        for (from, to, amount) in transfers {
            if from == to {
                continue; // self-transfer: modeled as a no-op
            }
            let _ = domain.execute(|tx| {
                // SAFETY: indices < 8; the array outlives the transaction.
                unsafe {
                    let f = tx.read(base.add(from))?;
                    if f >= amount {
                        let t = tx.read(base.add(to))?;
                        tx.write(base.add(from), f - amount)?;
                        tx.write(base.add(to), t + amount)?;
                    }
                }
                Ok(())
            });
        }
        prop_assert_eq!(accounts.iter().sum::<u64>(), 8000);
    }
}

/// Concurrent STM bank: the classic serializability smoke test, outside
/// proptest so it can use real threads.
#[test]
fn stm_concurrent_bank_conserves_total() {
    use cuckoo_repro::workload::keygen::SplitMix64;
    let domain = HtmDomain::new();
    const ACCOUNTS: usize = 16;
    let mut accounts = [1_000u64; ACCOUNTS];
    let base = SendPtr(accounts.as_mut_ptr());
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let domain = &domain;
            s.spawn(move || {
                let base = base;
                let mut rng = SplitMix64::new(t + 1);
                let mut committed = 0u32;
                while committed < 2_000 {
                    let from = rng.below(ACCOUNTS as u64) as usize;
                    let to = rng.below(ACCOUNTS as u64) as usize;
                    if from == to {
                        continue;
                    }
                    let amount = rng.below(10) + 1;
                    let r = domain.execute(|tx| {
                        // SAFETY: indices in bounds; array outlives scope;
                        // all access transactional.
                        unsafe {
                            let f = tx.read(base.0.add(from))?;
                            if f >= amount {
                                let tv = tx.read(base.0.add(to))?;
                                tx.write(base.0.add(from), f - amount)?;
                                tx.write(base.0.add(to), tv + amount)?;
                            }
                        }
                        Ok(())
                    });
                    if r.is_ok() {
                        committed += 1;
                    }
                }
            });
        }
    });
    assert_eq!(accounts.iter().sum::<u64>(), (ACCOUNTS as u64) * 1_000);
}

#[derive(Clone, Copy)]
struct SendPtr(*mut u64);
// SAFETY: test-only; pointee outlives the scope, access is transactional.
unsafe impl Send for SendPtr {}
