//! High-occupancy fill tests: every cuckoo variant must reach 95%
//! occupancy under concurrent writers with nothing lost, matching the
//! paper's experimental procedure ("fills it to 95% capacity").

use cuckoo_repro::cuckoo::{
    CuckooMap, ElidedCuckooMap, MemC3Config, MemC3Cuckoo, OptimisticCuckooMap, WriterLockKind,
};
use cuckoo_repro::workload::keygen::key_of;

const THREADS: u64 = 4;

fn keys_for_fill(capacity: usize) -> Vec<Vec<u64>> {
    let per_thread = (capacity * 95 / 100) as u64 / THREADS;
    (0..THREADS)
        .map(|t| (0..per_thread).map(|i| key_of(t, i)).collect())
        .collect()
}

#[test]
fn optimistic_fill_95_concurrent() {
    let m: OptimisticCuckooMap<u64, u64, 8> = OptimisticCuckooMap::with_capacity(1 << 14);
    let keys = keys_for_fill(m.capacity());
    std::thread::scope(|s| {
        for keyset in &keys {
            let m = &m;
            s.spawn(move || {
                for &k in keyset {
                    m.insert(k, k ^ 0xff).unwrap();
                }
            });
        }
    });
    assert!(m.load_factor() > 0.94);
    for keyset in &keys {
        for &k in keyset {
            assert_eq!(m.get(&k), Some(k ^ 0xff));
        }
    }
    let stats = m.path_stats();
    assert!(
        stats.searches > 0,
        "95% fill must exercise path search: {stats:?}"
    );
}

#[test]
fn optimistic_4way_fill_95_concurrent() {
    // 4-way tables need longer cuckoo paths at the same occupancy.
    let m: OptimisticCuckooMap<u64, u64, 4> = OptimisticCuckooMap::with_capacity(1 << 13);
    let keys = keys_for_fill(m.capacity());
    std::thread::scope(|s| {
        for keyset in &keys {
            let m = &m;
            s.spawn(move || {
                for &k in keyset {
                    m.insert(k, k).unwrap();
                }
            });
        }
    });
    for keyset in &keys {
        for &k in keyset {
            assert_eq!(m.get(&k), Some(k));
        }
    }
}

#[test]
fn elided_fill_95_concurrent() {
    let m: ElidedCuckooMap<u64, u64, 8> = ElidedCuckooMap::with_capacity(1 << 13);
    let keys = keys_for_fill(m.capacity());
    std::thread::scope(|s| {
        for keyset in &keys {
            let m = &m;
            s.spawn(move || {
                for &k in keyset {
                    m.insert(k, k + 1).unwrap();
                }
            });
        }
    });
    for keyset in &keys {
        for &k in keyset {
            assert_eq!(m.get(&k), Some(k + 1));
        }
    }
    let stats = m.htm_stats().unwrap();
    assert!(stats.commits > 0);
}

#[test]
fn memc3_all_lock_kinds_fill_95_concurrent() {
    for lock in [
        WriterLockKind::Global,
        WriterLockKind::ElidedGlibc,
        WriterLockKind::ElidedOptimized,
    ] {
        for lock_later in [false, true] {
            let mut cfg = MemC3Config::baseline().with_lock(lock);
            if lock_later {
                cfg = cfg.plus_lock_later();
            }
            let m: MemC3Cuckoo<u64, u64, 4> = MemC3Cuckoo::with_capacity(1 << 12, cfg);
            let keys = keys_for_fill(m.capacity());
            std::thread::scope(|s| {
                for keyset in &keys {
                    let m = &m;
                    s.spawn(move || {
                        for &k in keyset {
                            m.insert(k, k).unwrap_or_else(|e| {
                                panic!("{lock:?} lock_later={lock_later}: {e}")
                            });
                        }
                    });
                }
            });
            for keyset in &keys {
                for &k in keyset {
                    assert_eq!(m.get(&k), Some(k), "{lock:?} lock_later={lock_later}");
                }
            }
        }
    }
}

#[test]
fn general_map_expands_past_initial_capacity_concurrent() {
    let m: CuckooMap<u64, u64, 8> = CuckooMap::with_capacity(1 << 10);
    let initial = m.capacity();
    let keys = keys_for_fill(initial * 8);
    std::thread::scope(|s| {
        for keyset in &keys {
            let m = &m;
            s.spawn(move || {
                for &k in keyset {
                    m.insert(k, k).unwrap();
                }
            });
        }
    });
    assert!(m.capacity() > initial);
    for keyset in &keys {
        for &k in keyset {
            assert_eq!(m.get(&k), Some(k));
        }
    }
}

#[test]
fn readers_never_miss_during_high_occupancy_displacement() {
    // The §4.2 guarantee: moving holes backwards means a reader can
    // never miss a present key, even while displacement storms run.
    let m: OptimisticCuckooMap<u64, u64, 4> = OptimisticCuckooMap::with_capacity(1 << 12);
    let resident = (m.capacity() / 2) as u64;
    for k in 0..resident {
        m.insert(key_of(9, k), k).unwrap();
    }
    let stop = std::sync::atomic::AtomicBool::new(false);
    let stop = &stop;
    let m = &m;
    std::thread::scope(|s| {
        for _ in 0..2 {
            s.spawn(move || {
                let mut i = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Acquire) {
                    let k = i % resident;
                    assert_eq!(m.get(&key_of(9, k)), Some(k), "resident key went missing");
                    i += 1;
                }
            });
        }
        s.spawn(move || {
            // Writer pushes occupancy to 95%, forcing displacements that
            // shuffle resident keys between their candidate buckets.
            let extra = (m.capacity() * 95 / 100) as u64 - resident;
            for k in 0..extra {
                m.insert(key_of(8, k), k).unwrap();
            }
            stop.store(true, std::sync::atomic::Ordering::Release);
        });
    });
}
