//! Property-based equivalence: `insert_many` ≡ N independent `insert`s.
//!
//! The batched write engine takes a different code path (hash-all +
//! prefetch, stripe-sorted batch locking, SIMD probe, per-key
//! fallback on path search / migration / duplicates) but must be
//! observationally identical to looping the single-key write: same
//! per-entry results in request order — for duplicates within a
//! batch, ragged tails, batches longer than the table, and writes
//! racing a live expansion.

use cuckoo_repro::cuckoo::{
    CuckooMap, InsertError, OptimisticBuilder, OptimisticCuckooMap, RandomState, UpsertOutcome,
};
use proptest::prelude::*;

/// The default hasher seeds every table differently (deliberately), so
/// a differential test comparing two *maps* must pin one hash function:
/// near saturation, `TableFull` outcomes depend on key→bucket geometry,
/// not just on the key set.
const HASH_SEED: u64 = 0xd1f_f00d;

fn opt_map<const B: usize>(capacity: usize) -> OptimisticCuckooMap<u64, u64, B, RandomState> {
    OptimisticBuilder::new(capacity).hasher(RandomState::with_seed(HASH_SEED)).build()
}

fn gen_map(capacity: usize) -> CuckooMap<u64, u64, 8, RandomState> {
    CuckooMap::with_capacity_and_hasher(capacity, RandomState::with_seed(HASH_SEED))
}

/// Replays an op trace on a fresh reference map using only single-key
/// calls, returning the expected per-entry results for one batch.
fn expected_inserts<const B: usize>(
    reference: &OptimisticCuckooMap<u64, u64, B, RandomState>,
    batch: &[(u64, u64)],
) -> Vec<Result<(), InsertError>> {
    batch.iter().map(|&(k, v)| reference.insert(k, v)).collect()
}

proptest! {
    /// Optimistic map: arbitrary interleavings of batched and single
    /// inserts produce the same per-entry results and final contents as
    /// a single-key-only replay. Keys are drawn from a small domain so
    /// duplicates (both within a batch and across ops) are common.
    #[test]
    fn optimistic_insert_many_equals_insert_loop(
        ops in proptest::collection::vec(
            proptest::collection::vec((0u16..400, any::<u64>()), 0..40),
            1..8,
        ),
    ) {
        let batched = opt_map::<8>(2048);
        let looped = opt_map::<8>(2048);
        for batch in &ops {
            let entries: Vec<(u64, u64)> =
                batch.iter().map(|&(k, v)| (k as u64, v)).collect();
            let got = batched.insert_many(&entries);
            let want = expected_inserts(&looped, &entries);
            prop_assert_eq!(&got, &want, "batch {:?}", entries);
        }
        // Final state agrees key-for-key.
        prop_assert_eq!(batched.len(), looped.len());
        for batch in &ops {
            for &(k, _) in batch {
                prop_assert_eq!(batched.get(&(k as u64)), looped.get(&(k as u64)), "key {}", k);
            }
        }
    }

    /// Optimistic map: `upsert_many` last-write-wins semantics match the
    /// single-key `upsert` loop, including Inserted/Updated outcomes for
    /// duplicate keys within one batch (earlier entry inserts, later
    /// entries update).
    #[test]
    fn optimistic_upsert_many_equals_upsert_loop(
        ops in proptest::collection::vec(
            proptest::collection::vec((0u16..200, any::<u64>()), 0..40),
            1..8,
        ),
    ) {
        let batched = opt_map::<8>(2048);
        let looped = opt_map::<8>(2048);
        for batch in &ops {
            let entries: Vec<(u64, u64)> =
                batch.iter().map(|&(k, v)| (k as u64, v)).collect();
            let got = batched.upsert_many(&entries);
            let want: Vec<Result<UpsertOutcome, InsertError>> =
                entries.iter().map(|&(k, v)| looped.upsert(k, v)).collect();
            prop_assert_eq!(&got, &want, "batch {:?}", entries);
        }
        for batch in &ops {
            for &(k, _) in batch {
                prop_assert_eq!(batched.get(&(k as u64)), looped.get(&(k as u64)), "key {}", k);
            }
        }
    }

    /// General map: batched writes agree with the locked single-key path
    /// (which can never observe `TableFull` — it expands instead), for
    /// inserts and upserts over an arbitrary trace.
    #[test]
    fn cuckoo_map_write_many_equals_loop(
        inserts in proptest::collection::vec((0u16..300, any::<u64>()), 0..80),
        upserts in proptest::collection::vec((0u16..300, any::<u64>()), 0..80),
    ) {
        let batched = gen_map(2048);
        let looped = gen_map(2048);
        let ins: Vec<(u64, u64)> = inserts.iter().map(|&(k, v)| (k as u64, v)).collect();
        let got = batched.insert_many(ins.clone());
        let want: Vec<Result<(), InsertError>> =
            ins.iter().map(|&(k, v)| looped.insert(k, v)).collect();
        prop_assert_eq!(&got, &want);
        let ups: Vec<(u64, u64)> = upserts.iter().map(|&(k, v)| (k as u64, v)).collect();
        let got = batched.upsert_many(ups.clone());
        let want: Vec<UpsertOutcome> = ups.iter().map(|&(k, v)| looped.upsert(k, v)).collect();
        prop_assert_eq!(&got, &want);
        prop_assert_eq!(batched.len(), looped.len());
        for &(k, _) in ins.iter().chain(ups.iter()) {
            prop_assert_eq!(batched.get(&k), looped.get(&k), "key {}", k);
        }
    }
}

/// One batch far longer than the table's capacity walks every
/// group-boundary case — full groups, the ragged tail, duplicate-heavy
/// groups — and must degrade exactly like the loop: `KeyExists` for
/// duplicates, `TableFull` once the small optimistic table saturates.
#[test]
fn batch_longer_than_table() {
    let batched = opt_map::<4>(64);
    let looped = opt_map::<4>(64);
    let capacity = batched.capacity() as u64;
    // 4x the table size, cycling fresh keys and duplicates.
    let entries: Vec<(u64, u64)> = (0..capacity * 4)
        .map(|i| match i % 3 {
            0 => (i / 3, i + 100),  // mostly-fresh ascending keys
            1 => (0, i + 200),      // duplicate of the first key
            _ => (i / 3 + 7, i + 300),
        })
        .collect();
    let got = batched.insert_many(&entries);
    let want: Vec<Result<(), InsertError>> =
        entries.iter().map(|&(k, v)| looped.insert(k, v)).collect();
    assert_eq!(got, want);
    assert!(
        want.iter().any(|r| matches!(r, Err(InsertError::TableFull))),
        "trace was meant to saturate the table"
    );
    assert_eq!(batched.len(), looped.len());
    for &(k, _) in &entries {
        assert_eq!(batched.get(&k), looped.get(&k), "key {k}");
    }
}

/// Batched writes racing a migration: a writer thread drives the whole
/// key space through `insert_many` while the general map expands
/// underneath it (capacity overflow triggers expansion; a helper thread
/// keeps migration moving). Every entry must land exactly once.
#[test]
fn insert_many_lands_all_keys_across_live_expansion() {
    let m: CuckooMap<u64, u64, 8> = CuckooMap::with_capacity(1 << 10);
    let n = m.capacity() as u64; // > capacity * fill threshold → expands
    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|s| {
        let (m_ref, stop_ref) = (&m, &stop);
        let helper = s.spawn(move || {
            while !stop_ref.load(std::sync::atomic::Ordering::Acquire) {
                while m_ref.help_migrate(usize::MAX) {}
                std::hint::spin_loop();
            }
        });
        for chunk_start in (0..n).step_by(37) {
            let entries: Vec<(u64, u64)> = (chunk_start..(chunk_start + 37).min(n))
                .map(|k| (k, k * 7 + 5))
                .collect();
            for r in m.insert_many(entries) {
                r.unwrap();
            }
        }
        stop.store(true, std::sync::atomic::Ordering::Release);
        helper.join().unwrap();
    });
    assert_eq!(m.len() as u64, n);
    let keys: Vec<u64> = (0..n).collect();
    for (k, v) in keys.iter().zip(m.get_many(&keys)) {
        assert_eq!(v, Some(k * 7 + 5), "key {k} lost");
    }
}
