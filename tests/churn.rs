//! Delete/insert churn at high occupancy — the "heavy insert/delete
//! workload" use mode the paper calls out when discussing why 90-95%
//! window throughput matters (§6.3: "Others may issue inserts and
//! deletes to a table at high occupancy").

use cuckoo_repro::cuckoo::{
    CuckooMap, ElidedCuckooMap, MemC3Config, MemC3Cuckoo, OptimisticCuckooMap,
};
use cuckoo_repro::workload::keygen::{key_of, SplitMix64};

/// Fills to ~93%, then each thread repeatedly deletes one of its own keys
/// and inserts a replacement, holding occupancy constant. Verifies the
/// final population exactly.
#[test]
fn optimistic_steady_state_churn() {
    const THREADS: u64 = 4;
    let m: OptimisticCuckooMap<u64, u64, 4> = OptimisticCuckooMap::with_capacity(1 << 13);
    let per_thread = (m.capacity() * 93 / 100) as u64 / THREADS;
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let m = &m;
            s.spawn(move || {
                // Generation 0 fill.
                for i in 0..per_thread {
                    m.insert(key_of(t, i), 0).unwrap();
                }
                // Churn: replace each key with its next generation.
                let mut rng = SplitMix64::new(t);
                let mut generation = vec![0u64; per_thread as usize];
                for _ in 0..per_thread * 4 {
                    let i = rng.below(per_thread);
                    let old_gen = generation[i as usize];
                    let old_key = key_of(t + 100 * old_gen, i);
                    assert_eq!(m.remove(&old_key), Some(old_gen), "t{t} i{i}");
                    let new_gen = old_gen + 1;
                    let new_key = key_of(t + 100 * new_gen, i);
                    m.insert(new_key, new_gen).unwrap();
                    generation[i as usize] = new_gen;
                }
                // Verify our slice of the population.
                for (i, &g) in generation.iter().enumerate() {
                    let key = key_of(t + 100 * g, i as u64);
                    assert_eq!(m.get(&key), Some(g), "t{t} i{i} gen{g}");
                }
            });
        }
    });
    assert_eq!(m.len(), (per_thread * THREADS) as usize);
}

#[test]
fn elided_churn_with_stats() {
    const THREADS: u64 = 4;
    let m: ElidedCuckooMap<u64, u64, 8> = ElidedCuckooMap::with_capacity(1 << 12);
    let per_thread = (m.capacity() * 90 / 100) as u64 / THREADS;
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let m = &m;
            s.spawn(move || {
                for i in 0..per_thread {
                    m.insert(key_of(t, i), i).unwrap();
                }
                for round in 0..3u64 {
                    for i in 0..per_thread {
                        assert_eq!(m.remove(&key_of(t + 100 * round, i)), Some(i));
                        m.insert(key_of(t + 100 * (round + 1), i), i).unwrap();
                    }
                }
            });
        }
    });
    assert_eq!(m.len(), (per_thread * THREADS) as usize);
    let stats = m.htm_stats().unwrap();
    // Every remove and insert is a critical section.
    assert!(stats.commits + stats.fallbacks >= per_thread * THREADS * 7);
}

#[test]
fn memc3_churn_mixed_with_readers() {
    let cfg = MemC3Config::baseline().plus_lock_later().plus_bfs();
    let m: MemC3Cuckoo<u64, u64, 4> = MemC3Cuckoo::with_capacity(1 << 12, cfg);
    let resident = (m.capacity() / 2) as u64;
    for i in 0..resident {
        m.insert(key_of(0, i), i).unwrap();
    }
    let stop = std::sync::atomic::AtomicBool::new(false);
    let stop = &stop;
    let m = &m;
    std::thread::scope(|s| {
        // Churning writer on its own key space.
        s.spawn(move || {
            for round in 0..5u64 {
                for i in 0..resident / 2 {
                    m.insert(key_of(1 + round, i), i).unwrap();
                }
                for i in 0..resident / 2 {
                    assert_eq!(m.remove(&key_of(1 + round, i)), Some(i));
                }
            }
            stop.store(true, std::sync::atomic::Ordering::Release);
        });
        // Readers on stable keys.
        for _ in 0..2 {
            s.spawn(move || {
                let mut i = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Acquire) {
                    let k = i % resident;
                    assert_eq!(m.get(&key_of(0, k)), Some(k));
                    i += 1;
                }
            });
        }
    });
    assert_eq!(m.len(), resident as usize);
}

#[test]
fn general_map_churn_with_owned_values() {
    // Heap-owned values through churn: leaks or double-frees would show
    // up under the allocator (and in Arc counts).
    use std::sync::Arc;
    let sentinel = Arc::new(());
    let m: CuckooMap<u64, Arc<()>, 4> = CuckooMap::with_capacity(1 << 10);
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let m = &m;
            let sentinel = &sentinel;
            s.spawn(move || {
                for round in 0..10u64 {
                    for i in 0..200u64 {
                        m.insert(key_of(t + 10 * round, i), Arc::clone(sentinel))
                            .unwrap();
                    }
                    for i in 0..200u64 {
                        assert!(m.remove(&key_of(t + 10 * round, i)).is_some());
                    }
                }
            });
        }
    });
    assert!(m.is_empty());
    assert_eq!(Arc::strong_count(&sentinel), 1, "leaked values");
}
