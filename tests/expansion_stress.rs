//! Expansion stress: concurrent readers and writers across repeated
//! incremental doublings of `CuckooMap`.
//!
//! These tests target the resize-path guarantees:
//!
//! - readers never observe torn or mismatched key/value pairs while
//!   buckets migrate between tables;
//! - no key is lost across any number of doublings, including keys
//!   removed and re-inserted mid-migration;
//! - reader pauses stay bounded (no stop-the-world stall);
//! - memory stays flat across many consecutive doublings (retired
//!   tables are reclaimed, not leaked).
//!
//! Thread counts scale with `CUCKOO_STRESS_THREADS` (default 2 per
//! role) and working-set size with `CUCKOO_STRESS_SCALE` (default 1),
//! so CI can crank both without changing the code.

use cuckoo_repro::cuckoo::{CuckooMap, ResizeMode};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

fn stress_threads() -> usize {
    std::env::var("CUCKOO_STRESS_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(2)
}

fn stress_scale() -> u64 {
    std::env::var("CUCKOO_STRESS_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1)
}

/// The value every key must map to; any other observation is a torn or
/// misattributed read.
fn value_of(k: u64) -> u64 {
    k.wrapping_mul(31).wrapping_add(7)
}

/// A cheap thread-local generator (tests must not depend on ambient
/// randomness for reproducibility of the *shape* of the workload).
struct SplitMix64(u64);
impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

#[test]
fn readers_survive_repeated_doublings_without_stalls_or_torn_reads() {
    let n_writers = stress_threads();
    let n_readers = stress_threads();
    // Start tiny so the fill forces many doublings.
    let m: CuckooMap<u64, u64, 8> =
        CuckooMap::with_capacity_and_mode(1 << 9, ResizeMode::Incremental);
    let initial_capacity = m.capacity();
    let n_keys: u64 = (1 << 15) * stress_scale();
    let per_writer = n_keys / n_writers as u64;
    let n_keys = per_writer * n_writers as u64;

    let stop = AtomicBool::new(false);
    let max_pause_ns = AtomicU64::new(0);
    let published = AtomicU64::new(0);

    std::thread::scope(|s| {
        for w in 0..n_writers as u64 {
            let m = &m;
            let published = &published;
            s.spawn(move || {
                let lo = w * per_writer;
                let mut rng = SplitMix64(w ^ 0xDEAD);
                for i in 0..per_writer {
                    let k = lo + i;
                    m.insert(k, value_of(k)).unwrap();
                    published.fetch_max(k + 1, Ordering::Release);
                    // Sprinkle deletes + re-inserts so migration handles
                    // vanishing and reappearing keys, not just growth.
                    if i > 0 && rng.next().is_multiple_of(64) {
                        let victim = lo + rng.next() % i;
                        if m.remove(&victim).is_some() {
                            m.insert(victim, value_of(victim)).unwrap();
                        }
                    }
                }
            });
        }
        for r in 0..n_readers as u64 {
            let m = &m;
            let stop = &stop;
            let max_pause_ns = &max_pause_ns;
            let published = &published;
            s.spawn(move || {
                let mut rng = SplitMix64(r ^ 0xBEEF);
                while !stop.load(Ordering::Acquire) {
                    let hi = published.load(Ordering::Acquire);
                    if hi == 0 {
                        continue;
                    }
                    let k = rng.next() % hi;
                    let t0 = Instant::now();
                    let got = m.get(&k);
                    let pause = t0.elapsed().as_nanos() as u64;
                    max_pause_ns.fetch_max(pause, Ordering::Relaxed);
                    // A key below the published watermark is either
                    // mid-delete/re-insert (rare) or present with exactly
                    // its expected value. Anything else is a torn read.
                    if let Some(v) = got {
                        assert_eq!(v, value_of(k), "torn/misattributed read of key {k}");
                    }
                }
            });
        }
        // Scope drops writer handles first; signal readers once writers
        // are done by joining via a monitor thread is overkill — instead
        // writers publish completion through the key watermark.
        let m = &m;
        let stop = &stop;
        let published = &published;
        s.spawn(move || {
            while published.load(Ordering::Acquire) < n_keys {
                std::thread::yield_now();
            }
            // Writers are done (watermark full); let readers run one
            // more beat over the complete table, then stop them.
            std::thread::sleep(std::time::Duration::from_millis(20));
            // Drain any still-pending migration so the final
            // verification sees a single-table steady state.
            while m.help_migrate(usize::MAX) {
                std::thread::yield_now();
            }
            stop.store(true, Ordering::Release);
        });
    });

    // No lost keys across however many doublings the fill forced.
    assert_eq!(m.len(), n_keys as usize);
    for k in 0..n_keys {
        assert_eq!(m.get(&k), Some(value_of(k)), "key {k} lost across doublings");
    }
    assert!(
        m.capacity() >= initial_capacity * 8,
        "working set should have forced several doublings (capacity {} -> {})",
        initial_capacity,
        m.capacity()
    );
    // Liveness, not latency benchmarking: a reader must never be parked
    // for anything in the vicinity of a full-table rehash. The bound is
    // deliberately loose so debug builds and loaded CI machines pass.
    let max_pause = std::time::Duration::from_nanos(max_pause_ns.load(Ordering::Relaxed));
    assert!(
        max_pause < std::time::Duration::from_secs(1),
        "reader stalled {max_pause:?} during incremental expansion"
    );
}

#[test]
fn get_or_insert_with_hammer_across_doublings() {
    let n_threads = stress_threads().max(2);
    let m: CuckooMap<u64, u64, 8> =
        CuckooMap::with_capacity_and_mode(1 << 9, ResizeMode::Incremental);
    let n_keys: u64 = (1 << 13) * stress_scale();

    std::thread::scope(|s| {
        for t in 0..n_threads as u64 {
            let m = &m;
            s.spawn(move || {
                let mut rng = SplitMix64(t);
                for i in 0..n_keys {
                    // All racers agree on the value function, so whoever
                    // wins the race the observed value must match.
                    let k = i % n_keys;
                    let v = m.get_or_insert_with(k, || value_of(k));
                    assert_eq!(v, value_of(k));
                    // Concurrent deletes force the retry path inside
                    // get_or_insert_with (insert -> KeyExists -> get ->
                    // gone again -> reinsert).
                    if rng.next().is_multiple_of(32) {
                        m.remove(&(rng.next() % n_keys));
                    }
                }
            });
        }
    });
    // Whatever survived the deletes must carry the agreed value.
    for k in 0..n_keys {
        if let Some(v) = m.get(&k) {
            assert_eq!(v, value_of(k));
        }
    }
}

#[test]
fn memory_stays_flat_across_eight_consecutive_doublings() {
    let m: CuckooMap<u64, u64, 8> =
        CuckooMap::with_capacity_and_mode(1 << 9, ResizeMode::Incremental);
    let initial_capacity = m.capacity();
    let stop = AtomicBool::new(false);

    std::thread::scope(|s| {
        // A reader keeps epochs churning (pin/unpin) while the writer
        // below forces doublings, so reclamation must work under load
        // rather than only at idle.
        let m_ref = &m;
        let stop_ref = &stop;
        s.spawn(move || {
            let mut rng = SplitMix64(42);
            while !stop_ref.load(Ordering::Acquire) {
                let _ = m_ref.get(&(rng.next() % 1024));
            }
        });

        let mut doublings = 0;
        let mut k = 0u64;
        let mut last_capacity = m.capacity();
        while doublings < 8 {
            m.insert(k, value_of(k)).unwrap();
            k += 1;
            let c = m.capacity();
            if c > last_capacity {
                doublings += 1;
                last_capacity = c;
            }
        }
        stop.store(true, Ordering::Release);
    });

    while m.help_migrate(usize::MAX) {
        std::thread::yield_now();
    }
    assert!(m.capacity() >= initial_capacity << 8);

    // After ≥8 doublings the retired tables (whose summed size is about
    // equal to the live table's) must have been reclaimed: the map's
    // footprint must be within a small factor of a pristine map of the
    // same capacity, not 2x+ as a graveyard leak would make it.
    let pristine: CuckooMap<u64, u64, 8> = CuckooMap::with_capacity(m.capacity());
    let leak_factor = m.memory_bytes() as f64 / pristine.memory_bytes() as f64;
    assert!(
        leak_factor < 1.75,
        "memory not flat after 8 doublings: {} bytes vs pristine {} ({}x)",
        m.memory_bytes(),
        pristine.memory_bytes(),
        leak_factor
    );
}
