//! Diagnostic probe for the intermittent hang in concurrent MemC3
//! inserts: runs the failing workload in a loop with a monitor thread
//! that dumps table state and aborts the process when progress stalls.

use cuckoo::{MemC3Config, MemC3Cuckoo, WriterLockKind};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn run_once(round: u64, kind: WriterLockKind) {
    let cfg = MemC3Config::baseline()
        .plus_lock_later()
        .plus_bfs()
        .with_lock(kind);
    let m: Arc<MemC3Cuckoo<u64, u64, 4>> = Arc::new(MemC3Cuckoo::with_capacity(1 << 14, cfg));
    let progress = Arc::new(AtomicU64::new(0));
    let done = Arc::new(AtomicBool::new(false));

    let monitor = {
        let m = Arc::clone(&m);
        let progress = Arc::clone(&progress);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut last = 0;
            let mut stalls = 0;
            loop {
                std::thread::sleep(Duration::from_secs(2));
                if done.load(Ordering::Acquire) {
                    return;
                }
                let cur = progress.load(Ordering::Relaxed);
                if cur == last && cur < 8000 {
                    stalls += 1;
                    if stalls >= 4 {
                        eprintln!(
                            "=== STALL round {round} kind {kind:?}: progress {cur}/8000 ==="
                        );
                        if let Some(stats) = m.htm_stats() {
                            eprintln!("htm: {stats:?}");
                        }
                        eprintln!("path stats: {:?}", m.path_stats());
                        eprintln!("len: {}", m.len());
                        std::process::exit(2);
                    }
                } else {
                    stalls = 0;
                    last = cur;
                }
            }
        })
    };

    let mut workers = Vec::new();
    for t in 0..4u64 {
        let m = Arc::clone(&m);
        let progress = Arc::clone(&progress);
        workers.push(std::thread::spawn(move || {
            for i in 0..2000u64 {
                let key = t * 1_000_000 + i;
                m.insert(key, key + 1).unwrap();
                progress.fetch_add(1, Ordering::Relaxed);
            }
        }));
    }
    for w in workers {
        w.join().unwrap();
    }
    done.store(true, Ordering::Release);
    monitor.join().unwrap();
    assert_eq!(m.len(), 8000);
}

fn main() {
    for round in 0..150 {
        for kind in [WriterLockKind::Global, WriterLockKind::ElidedOptimized] {
            run_once(round, kind);
        }
        if round % 10 == 0 {
            eprintln!("round {round} ok");
        }
    }
    eprintln!("no stall in 150 rounds");
}
