//! Eviction-policy equivalence properties.
//!
//! The [`cuckoo::EvictionPolicy`] knob changes *how* the insert slow
//! path hunts for an empty slot — never *what* the table contains. These
//! generative tests drive random workloads through one table per policy
//! and demand the final membership match the BFS baseline exactly:
//!
//! 1. **Sequential**: an arbitrary insert/upsert/remove trace produces
//!    identical key→value membership under every policy, on both
//!    [`OptimisticCuckooMap`] (cuckoo+ fine-grained) and [`CuckooMap`]
//!    (libcuckoo-style), checked against a `HashMap` oracle.
//! 2. **Concurrent**: multiple writer threads hammering one table with
//!    thread-owned keys (plus churn that punches holes and forces
//!    re-planning of displacement paths that went stale mid-execution)
//!    lose nothing under the walk policies, and end with the same
//!    membership a sequential BFS fill of the surviving keys produces.
//!
//! Load is kept at ~70% of capacity so no policy legitimately reports
//! `TableFull` — any divergence is a policy bug, not saturation skew.
//! Case count respects `PROPTEST_CASES` (CI runs 64).

use cuckoo::{CuckooMap, EvictionPolicy, OptimisticBuilder, OptimisticCuckooMap, RandomState};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

/// Every policy under test, BFS baseline first. Small `max_kicks` /
/// `bfs_slots` values are deliberately included: an exhausted walk that
/// falls back or gives up must still never corrupt membership.
fn policies() -> Vec<EvictionPolicy> {
    vec![
        EvictionPolicy::Bfs,
        EvictionPolicy::RandomWalk { max_kicks: 64 },
        EvictionPolicy::RandomWalk { max_kicks: 500 },
        EvictionPolicy::Hybrid { bfs_slots: 64, max_kicks: 500 },
    ]
}

#[derive(Debug, Clone, Copy)]
enum Op {
    Insert(u64, u64),
    Upsert(u64, u64),
    Remove(u64),
}

/// Decodes a raw generated tuple into an op: 3:2:2 insert/upsert/remove
/// mix. Keys are confined to 0..96 over 128 slots — dense enough that
/// inserts regularly displace, sparse enough that no policy hits
/// `TableFull`.
fn decode_op(&(sel, k, v): &(u64, u64, u64)) -> Op {
    match sel % 7 {
        0..=2 => Op::Insert(k % 96, v),
        3 | 4 => Op::Upsert(k % 96, v),
        _ => Op::Remove(k % 96),
    }
}

proptest! {
    /// Optimistic (cuckoo+ fine-grained) tables: every policy replays an
    /// arbitrary op trace to the same membership as the HashMap oracle —
    /// and therefore as the BFS baseline.
    #[test]
    fn optimistic_membership_matches_bfs_baseline(
        raw_ops in collection::vec((any::<u64>(), any::<u64>(), any::<u64>()), 1..400),
        hash_seed in any::<u64>(),
    ) {
        let ops: Vec<Op> = raw_ops.iter().map(decode_op).collect();
        let maps: Vec<OptimisticCuckooMap<u64, u64, 4, RandomState>> = policies()
            .into_iter()
            .map(|p| {
                OptimisticBuilder::new(128)
                    .hasher(RandomState::with_seed(hash_seed))
                    .eviction(p)
                    .build()
            })
            .collect();
        let mut oracle: HashMap<u64, u64> = HashMap::new();

        for op in &ops {
            for map in &maps {
                match *op {
                    Op::Insert(k, v) => {
                        let r = map.insert(k, v);
                        let expect_exists = oracle.contains_key(&k);
                        prop_assert_eq!(
                            r.is_err(),
                            expect_exists,
                            "insert({}) on {:?} diverged from oracle: {:?}",
                            k, map.eviction(), r
                        );
                    }
                    Op::Upsert(k, v) => { map.upsert(k, v).unwrap(); }
                    Op::Remove(k) => {
                        prop_assert_eq!(map.remove(&k), oracle.get(&k).copied());
                    }
                }
            }
            match *op {
                Op::Insert(k, v) => { oracle.entry(k).or_insert(v); }
                Op::Upsert(k, v) => { oracle.insert(k, v); }
                Op::Remove(k) => { oracle.remove(&k); }
            }
        }

        for map in &maps {
            prop_assert_eq!(map.len(), oracle.len(), "len under {:?}", map.eviction());
            for k in 0..96u64 {
                prop_assert_eq!(
                    map.get(&k),
                    oracle.get(&k).copied(),
                    "membership of key {} under {:?}",
                    k, map.eviction()
                );
            }
        }
    }

    /// Striped (libcuckoo-style) tables: same trace, same property. Each
    /// table draws its own hasher here — membership must not depend on
    /// geometry either.
    #[test]
    fn striped_membership_matches_bfs_baseline(
        raw_ops in collection::vec((any::<u64>(), any::<u64>(), any::<u64>()), 1..400),
    ) {
        let ops: Vec<Op> = raw_ops.iter().map(decode_op).collect();
        let maps: Vec<CuckooMap<u64, u64, 4>> = policies()
            .into_iter()
            .map(|p| CuckooMap::with_capacity_and_eviction(128, p))
            .collect();
        let mut oracle: HashMap<u64, u64> = HashMap::new();

        for op in &ops {
            for map in &maps {
                match *op {
                    Op::Insert(k, v) => {
                        prop_assert_eq!(map.insert(k, v).is_err(), oracle.contains_key(&k));
                    }
                    Op::Upsert(k, v) => { map.upsert(k, v); }
                    Op::Remove(k) => {
                        prop_assert_eq!(map.remove(&k), oracle.get(&k).copied());
                    }
                }
            }
            match *op {
                Op::Insert(k, v) => { oracle.entry(k).or_insert(v); }
                Op::Upsert(k, v) => { oracle.insert(k, v); }
                Op::Remove(k) => { oracle.remove(&k); }
            }
        }

        for map in &maps {
            prop_assert_eq!(map.len(), oracle.len(), "len under {:?}", map.eviction());
            for k in 0..96u64 {
                prop_assert_eq!(map.get(&k), oracle.get(&k).copied());
            }
        }
    }
}

/// Deterministic per-thread churn: thread `t` owns keys `t*10_000 + i`.
/// A SplitMix64 stream (seeded per case) decides which owned keys get a
/// remove + reinsert cycle, punching holes other threads' in-flight
/// displacement paths may have counted on — the stale-path retry case.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

proptest! {
    /// Concurrent writers with churn on the walk policies: every key a
    /// thread owns at the end is present with its final value, and the
    /// surviving membership equals a sequential BFS-baseline fill.
    #[test]
    fn concurrent_churn_agrees_with_bfs_baseline(churn_seed in any::<u64>()) {
        const THREADS: u64 = 4;
        const PER_THREAD: u64 = 180; // 720 keys in 1024 slots: ~70% load.

        for policy in [
            EvictionPolicy::RandomWalk { max_kicks: 500 },
            EvictionPolicy::Hybrid { bfs_slots: 128, max_kicks: 500 },
        ] {
            let map: Arc<OptimisticCuckooMap<u64, u64, 8>> =
                Arc::new(OptimisticBuilder::new(1024).eviction(policy).build());

            let handles: Vec<_> = (0..THREADS)
                .map(|t| {
                    let map = Arc::clone(&map);
                    std::thread::spawn(move || {
                        let mut rng = churn_seed ^ (t.wrapping_mul(0xa076_1d64_78bd_642f));
                        for i in 0..PER_THREAD {
                            let k = t * 10_000 + i;
                            map.insert(k, k + 1).unwrap();
                            // ~25% of owned keys get removed and
                            // reinserted with a new value mid-fill.
                            if splitmix(&mut rng).is_multiple_of(4) {
                                let victim = t * 10_000 + splitmix(&mut rng) % (i + 1);
                                if map.remove(&victim).is_some() {
                                    map.insert(victim, victim + 2).unwrap();
                                }
                            }
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }

            let baseline: OptimisticCuckooMap<u64, u64, 8> =
                OptimisticBuilder::new(1024).build();
            prop_assert_eq!(map.len(), (THREADS * PER_THREAD) as usize);
            for t in 0..THREADS {
                for i in 0..PER_THREAD {
                    let k = t * 10_000 + i;
                    let got = map.get(&k);
                    prop_assert!(
                        got == Some(k + 1) || got == Some(k + 2),
                        "key {} lost or corrupted under {:?}: {:?}",
                        k, policy, got
                    );
                    baseline.insert(k, got.unwrap()).unwrap();
                }
            }
            prop_assert_eq!(baseline.len(), map.len());
        }
    }
}
