//! Deterministic model-checking tests (build with `RUSTFLAGS="--cfg
//! cuckoo_model"`).
//!
//! Each test explores thread interleavings of the *real* table code: the
//! `sync2` facade swaps this crate's atomics/locks for the instrumented
//! `shims/loom` versions, and `loom::explore` serializes the threads
//! through every (bounded) schedule. Small protocol kernels get
//! bounded DFS (deterministic, replayable by construction); whole-
//! structure tests get seeded random walks whose failures print a
//! replayable `LOOM_SEED`.
//!
//! DFS budgets are deliberately modest: two threads with ~15
//! instrumented operations each have a combinatorially large
//! interleaving space, so exhaustion is not a meaningful target —
//! determinism and schedule *diversity* are. Budgets are sized to keep
//! the whole suite in CI-friendly single-digit seconds.
#![cfg(cuckoo_model)]

use cuckoo::hash::RandomState;
use cuckoo::search::PathEntry;
use cuckoo::sync::{EpochRegistry, LockStripes, VersionLock};
use cuckoo::{CuckooMap, OptimisticBuilder, OptimisticCuckooMap};
use loom::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// The central §4.2 invariant: a torn value can never escape seqlock
/// validation. A writer mutates a two-word value under a [`VersionLock`]
/// while a reader copies it racily (chunk by chunk, with a scheduling
/// point between chunks); every schedule in which the reader's stamps
/// validate must have delivered an untorn copy. Bounded DFS.
#[test]
fn seqlock_validation_blocks_torn_reads() {
    loom::explore(loom::Config::dfs(4_000), || {
        // Two 8-byte words the writer always keeps equal.
        let buf = Arc::new(Box::new([0u64; 2]));
        let addr = buf.as_ptr() as usize;
        let lock = Arc::new(VersionLock::new());

        let writer = {
            let (buf, lock) = (Arc::clone(&buf), Arc::clone(&lock));
            loom::thread::spawn(move || {
                lock.lock();
                let v = [7u64, 7u64];
                // SAFETY: `buf` outlives both threads (Arc) and the
                // writer lock excludes other writers.
                unsafe {
                    htm::mem::store_bytes(buf.as_ptr() as usize, v.as_ptr().cast(), 16);
                }
                lock.unlock();
            })
        };
        let reader = {
            let lock = Arc::clone(&lock);
            loom::thread::spawn(move || {
                let stamp = lock.read_begin();
                let mut out = [0u64; 2];
                // SAFETY: the source is live (Arc'd by the closure via
                // `addr`'s owner) and tearing is validated away below.
                unsafe { htm::mem::load_bytes(addr, out.as_mut_ptr().cast(), 16) };
                if lock.read_validate(stamp) {
                    assert_eq!(out[0], out[1], "torn read escaped seqlock validation");
                }
            })
        };
        writer.join().unwrap();
        reader.join().unwrap();
        drop(buf);
    })
    .expect("no schedule may leak a torn read through validation");
}

/// Epoch reclamation kernel: an object may be freed only after every
/// reader pinned before its retirement has unpinned. The "object" is one
/// atomic word; freeing writes POISON. A reader that (a) pins and (b)
/// still observes the object published must never read POISON.
/// Bounded DFS over the pin/retire/min_active protocol.
#[test]
fn epoch_reclamation_never_frees_under_pinned_reader() {
    const POISON: u64 = u64::MAX;
    loom::explore(loom::Config::dfs(4_000), || {
        let reg = Arc::new(EpochRegistry::new());
        let slot = Arc::new(AtomicU64::new(42));
        let published = Arc::new(AtomicBool::new(true));

        let reader = {
            let (reg, slot, published) = (
                Arc::clone(&reg),
                Arc::clone(&slot),
                Arc::clone(&published),
            );
            loom::thread::spawn(move || {
                let _pin = reg.pin();
                // Simulates following a pointer found in the structure:
                // only dereference while pinned AND still published.
                if published.load(Ordering::SeqCst) {
                    let v = slot.load(Ordering::SeqCst);
                    assert_ne!(v, POISON, "read a freed object while pinned");
                }
            })
        };
        let reclaimer = {
            let (reg, slot, published) = (
                Arc::clone(&reg),
                Arc::clone(&slot),
                Arc::clone(&published),
            );
            loom::thread::spawn(move || {
                // Unlink, retire, then free only once quiesced — the
                // same protocol as `CuckooMap::retire` + graveyard drain.
                published.store(false, Ordering::SeqCst);
                let epoch = reg.retire_epoch();
                if reg.min_active() > epoch {
                    slot.store(POISON, Ordering::SeqCst);
                }
            })
        };
        reader.join().unwrap();
        reclaimer.join().unwrap();
    })
    .expect("epoch protocol must never free under a pinned reader");
}

/// The lock-order auditor holds under the model too: ascending pair
/// acquisitions from two threads cannot deadlock in any schedule (the
/// deadlock detector would report it if the ordering were broken).
#[test]
fn ordered_pair_locking_is_deadlock_free_in_all_schedules() {
    loom::explore(loom::Config::dfs(4_000), || {
        let stripes = Arc::new(LockStripes::new(4));
        let t: Vec<_> = [(0usize, 3usize), (3, 0)]
            .into_iter()
            .map(|(a, b)| {
                let stripes = Arc::clone(&stripes);
                loom::thread::spawn(move || {
                    let _g = stripes.lock_pair(a, b);
                })
            })
            .collect();
        for h in t {
            h.join().unwrap();
        }
    })
    .expect("sorted pair acquisition must be deadlock-free");
}

/// Optimistic map: a reader racing a writer that deletes/reinserts the
/// same key must see only complete values (both halves equal) or a clean
/// miss — never a torn value and never a panic. Random walks over the
/// real `OptimisticCuckooMap` code.
#[test]
fn optimistic_read_vs_delete_reinsert() {
    loom::model_with(loom::Config::random(0x5eed_0001, 150), || {
        let map: Arc<OptimisticCuckooMap<u64, [u64; 2], 8>> =
            Arc::new(OptimisticCuckooMap::with_capacity(64));
        map.insert(1, [10, 10]).unwrap();

        let writer = {
            let map = Arc::clone(&map);
            loom::thread::spawn(move || {
                map.remove(&1);
                map.insert(1, [20, 20]).unwrap();
            })
        };
        let reader = {
            let map = Arc::clone(&map);
            loom::thread::spawn(move || {
                if let Some(v) = map.get(&1) {
                    assert_eq!(v[0], v[1], "torn value escaped optimistic read");
                    assert!(v[0] == 10 || v[0] == 20, "phantom value {v:?}");
                }
            })
        };
        writer.join().unwrap();
        reader.join().unwrap();
        assert_eq!(map.get(&1).map(|v| v[0]), Some(20));
    });
}

/// Two-table lookup vs. chunk migration: while one thread drives the
/// incremental migration (chunk claim → move → DONE watermark), a reader
/// must find every pre-migration key with its exact value, whichever
/// side of the watermark the key currently sits on.
#[test]
fn lookup_during_chunk_migration() {
    loom::model_with(loom::Config::random(0x5eed_0002, 80), || {
        let map: Arc<CuckooMap<u64, u64>> = Arc::new(CuckooMap::with_capacity(16));
        for k in 0..4u64 {
            map.insert(k, k * 10 + 1).unwrap();
        }
        map.force_migration();

        let migrator = {
            let map = Arc::clone(&map);
            loom::thread::spawn(move || {
                while map.help_migrate(usize::MAX) {}
            })
        };
        let reader = {
            let map = Arc::clone(&map);
            loom::thread::spawn(move || {
                for k in 0..4u64 {
                    assert_eq!(
                        map.get(&k),
                        Some(k * 10 + 1),
                        "key {k} lost or corrupted mid-migration"
                    );
                }
            })
        };
        migrator.join().unwrap();
        reader.join().unwrap();
        for k in 0..4u64 {
            assert_eq!(map.get(&k), Some(k * 10 + 1), "key {k} lost after migration");
        }
    });
}

/// Batched reads under the same §4.2 invariant as
/// [`optimistic_read_vs_delete_reinsert`]: a `get_many` group whose keys
/// race a delete/reinsert writer must deliver, per key, either a clean
/// miss or a complete (untorn) value from the key's real history — the
/// shared-stamp pipeline and its per-key fallback may never leak a torn
/// or phantom value. Seeded random walks over the real map code.
#[test]
fn get_many_vs_delete_reinsert() {
    loom::model_with(loom::Config::random(0x5eed_0004, 120), || {
        let map: Arc<OptimisticCuckooMap<u64, [u64; 2], 8>> =
            Arc::new(OptimisticCuckooMap::with_capacity(64));
        map.insert(1, [10, 10]).unwrap();
        map.insert(2, [30, 30]).unwrap();

        let writer = {
            let map = Arc::clone(&map);
            loom::thread::spawn(move || {
                map.remove(&1);
                map.insert(1, [20, 20]).unwrap();
            })
        };
        let reader = {
            let map = Arc::clone(&map);
            loom::thread::spawn(move || {
                // One group: the racing key, a stable key, and a miss.
                let out = map.get_many(&[1, 2, 99]);
                if let Some(v) = out[0] {
                    assert_eq!(v[0], v[1], "torn value escaped batched read");
                    assert!(v[0] == 10 || v[0] == 20, "phantom value {v:?}");
                }
                assert_eq!(out[1], Some([30, 30]), "stable key disturbed");
                assert_eq!(out[2], None, "absent key found");
            })
        };
        writer.join().unwrap();
        reader.join().unwrap();
        assert_eq!(map.get(&1).map(|v| v[0]), Some(20));
    });
}

/// Batched two-table lookups vs. chunk migration: a `get_many` over the
/// whole key set while another thread drives the incremental migration
/// must find every key with its exact value — groups fall back to the
/// per-key two-table path while the migration descriptor is live, and
/// the stable-path stage-3 lock probe revalidates against table swaps.
#[test]
fn get_many_during_forced_migration() {
    loom::model_with(loom::Config::random(0x5eed_0005, 60), || {
        let map: Arc<CuckooMap<u64, u64>> = Arc::new(CuckooMap::with_capacity(16));
        for k in 0..4u64 {
            map.insert(k, k * 10 + 1).unwrap();
        }
        map.force_migration();

        let migrator = {
            let map = Arc::clone(&map);
            loom::thread::spawn(move || {
                while map.help_migrate(usize::MAX) {}
            })
        };
        let reader = {
            let map = Arc::clone(&map);
            loom::thread::spawn(move || {
                let out = map.get_many(&[0, 1, 2, 3, 50]);
                for (k, v) in (0..4u64).zip(&out) {
                    assert_eq!(
                        *v,
                        Some(k * 10 + 1),
                        "key {k} lost or corrupted mid-migration"
                    );
                }
                assert_eq!(out[4], None, "absent key found mid-migration");
            })
        };
        migrator.join().unwrap();
        reader.join().unwrap();
        for k in 0..4u64 {
            assert_eq!(map.get(&k), Some(k * 10 + 1), "key {k} lost after migration");
        }
    });
}

/// Batched writes vs. batched reads on overlapping keys: an
/// `upsert_many` group (stripe-sorted batch locking, direct slot
/// claim) racing a `get_many` over the same keys must deliver, per
/// key, either the old or the new complete value — the batch lock
/// makes writers mutually exclusive, and optimistic readers that
/// land inside a batched write's critical section must fail stamp
/// validation and retry, never surfacing a torn or phantom value.
#[test]
fn upsert_many_vs_get_many_overlapping_keys() {
    loom::model_with(loom::Config::random(0x5eed_0006, 120), || {
        let map: Arc<OptimisticCuckooMap<u64, [u64; 2], 8>> =
            Arc::new(OptimisticCuckooMap::with_capacity(64));
        map.insert(1, [10, 10]).unwrap();
        map.insert(2, [30, 30]).unwrap();

        let writer = {
            let map = Arc::clone(&map);
            loom::thread::spawn(move || {
                // One group: an overwrite of a racing key, a fresh
                // insert, and an untouched-key overwrite — all under a
                // single batch acquisition.
                let out = map.upsert_many(&[(1, [20, 20]), (5, [50, 50])]);
                assert_eq!(out[0], Ok(cuckoo::UpsertOutcome::Updated));
                assert_eq!(out[1], Ok(cuckoo::UpsertOutcome::Inserted));
            })
        };
        let reader = {
            let map = Arc::clone(&map);
            loom::thread::spawn(move || {
                let out = map.get_many(&[1, 2, 5, 99]);
                let v = out[0].expect("key 1 never absent");
                assert_eq!(v[0], v[1], "torn value escaped batched write");
                assert!(v[0] == 10 || v[0] == 20, "phantom value {v:?}");
                assert_eq!(out[1], Some([30, 30]), "bystander key disturbed");
                if let Some(v) = out[2] {
                    assert_eq!(v, [50, 50], "torn or phantom insert {v:?}");
                }
                assert_eq!(out[3], None, "absent key found");
            })
        };
        writer.join().unwrap();
        reader.join().unwrap();
        assert_eq!(map.get(&1), Some([20, 20]));
        assert_eq!(map.get(&5), Some([50, 50]));
    });
}

/// Batched writes vs. chunk migration: an `insert_many` burst lands
/// while another thread drives a forced incremental migration. The
/// batch path must demote to the per-key migration-aware insert the
/// moment the table is unstable (the stage-2 stability check and the
/// stage-3 revalidation both guard this), so every pre-migration key
/// and every batched key is present with its exact value afterwards.
#[test]
fn insert_many_during_forced_migration() {
    loom::model_with(loom::Config::random(0x5eed_0009, 60), || {
        let map: Arc<CuckooMap<u64, u64>> = Arc::new(CuckooMap::with_capacity(16));
        for k in 0..4u64 {
            map.insert(k, k * 10 + 1).unwrap();
        }
        map.force_migration();

        let migrator = {
            let map = Arc::clone(&map);
            loom::thread::spawn(move || {
                while map.help_migrate(usize::MAX) {}
            })
        };
        let writer = {
            let map = Arc::clone(&map);
            loom::thread::spawn(move || {
                let entries: Vec<(u64, u64)> =
                    (10..14u64).map(|k| (k, k * 10 + 1)).collect();
                for r in map.insert_many(entries) {
                    r.expect("insert_many must succeed mid-migration");
                }
            })
        };
        migrator.join().unwrap();
        writer.join().unwrap();
        for k in (0..4u64).chain(10..14) {
            assert_eq!(map.get(&k), Some(k * 10 + 1), "key {k} lost across migration");
        }
    });
}

/// Fixed hash seed so key geometry is identical across schedules,
/// processes, and replays.
const DISPLACEMENT_HASH_SEED: u64 = 0xd15b_1ace;

/// Finds two keys and a two-displacement cuckoo path over them:
///
/// - `X` with distinct candidate buckets `x1 != x2`; inserted into an
///   empty table it lands at `(x1, slot 0)`.
/// - `Y` whose first candidate *is* `x2` (so it lands at `(x2, slot 0)`)
///   and whose second candidate `y2` is a third bucket.
///
/// The returned path displaces `Y: x2 → y2`, then `X: x1 → x2` — every
/// move is between the key's own two candidate buckets, so a correct
/// executor keeps both keys reader-visible at every instant.
fn displacement_fixture(
    map: &OptimisticCuckooMap<u64, u64, 8, RandomState>,
) -> (u64, u64, Vec<PathEntry>) {
    let mut x = 0u64;
    let (x1, x2, xt) = loop {
        let (a, b, t) = map.key_coords(&x);
        if a != b && t != 0 {
            break (a, b, t);
        }
        x += 1;
    };
    let mut y = 1_000u64;
    let (y2, yt) = loop {
        let (a, b, t) = map.key_coords(&y);
        if a == x2 && b != x1 && b != x2 && t != 0 {
            break (b, t);
        }
        y += 1;
    };
    let path = vec![
        PathEntry { bucket: x1, slot: 0, tag: xt },
        PathEntry { bucket: x2, slot: 0, tag: yt },
        PathEntry { bucket: y2, slot: 0, tag: 0 },
    ];
    (x, y, path)
}

/// One writer executing a two-displacement path against one reader
/// probing both displaced keys. With the production hole-backwards
/// executor the reader can never miss; with the deliberately split
/// (clear-source, *then* write-destination) executor there is a window
/// in which a key is in neither of its candidate buckets.
fn displacement_vs_reader(split: bool) -> impl Fn() + Send + Sync + 'static {
    move || {
        let map: Arc<OptimisticCuckooMap<u64, u64, 8, RandomState>> = Arc::new(
            OptimisticBuilder::new(64)
                .hasher(RandomState::with_seed(DISPLACEMENT_HASH_SEED))
                .build(),
        );
        let (x, y, path) = displacement_fixture(&map);
        map.insert(x, 1).unwrap();
        map.insert(y, 2).unwrap();

        let writer = {
            let map = Arc::clone(&map);
            loom::thread::spawn(move || {
                let ok = if split {
                    map.execute_path_split_displacement(&path)
                } else {
                    map.execute_path(&path)
                };
                assert!(ok, "freshly planned path went stale with no other writer");
            })
        };
        let reader = {
            let map = Arc::clone(&map);
            loom::thread::spawn(move || {
                assert_eq!(map.get(&x), Some(1), "false miss on displaced key X");
                assert_eq!(map.get(&y), Some(2), "false miss on displaced key Y");
            })
        };
        writer.join().unwrap();
        reader.join().unwrap();
        assert_eq!(map.get(&x), Some(1), "key X lost after displacement");
        assert_eq!(map.get(&y), Some(2), "key Y lost after displacement");
    }
}

/// The SAFETY claim in the shared executor, checked mechanically: an
/// optimistic reader probing both candidate buckets during a multi-step
/// path execution never observes a false miss, because every
/// displacement writes its destination before clearing its source.
#[test]
fn multi_step_displacement_never_hides_keys_from_readers() {
    loom::explore(loom::Config::random(0x5eed_0007, 600), displacement_vs_reader(false))
        .expect("hole-backwards execution must keep both keys visible in every schedule");
}

/// Mutation-catch acceptance: an executor that clears the source in one
/// critical section and writes the destination in a second one (the
/// regression the hole-backwards discipline prevents) must be caught by
/// the same exploration, with a replayable seed. Note a *within*-step
/// order flip is invisible to seqlock readers — they spin until the
/// version is even, so they never validate mid-critical-section; the
/// observable mutation is the split across two critical sections.
#[test]
fn split_displacement_mutation_is_caught_with_replayable_seed() {
    let failure =
        loom::explore(loom::Config::random(0x5eed_0008, 600), displacement_vs_reader(true))
            .expect_err("split displacement must produce a reader-visible false miss");
    assert!(
        failure.message.contains("false miss"),
        "expected the false-miss invariant, got: {}",
        failure.message
    );
    let seed = failure.seed.expect("random-walk failures carry a seed");
    println!("split displacement reproduced; replay with LOOM_SEED={seed}");

    let replayed = loom::explore(
        loom::Config {
            strategy: loom::Strategy::Replay { seed },
            max_schedules: 1,
            ..loom::Config::default()
        },
        displacement_vs_reader(true),
    )
    .expect_err("replaying the reported seed must reproduce the false miss");
    assert_eq!(replayed.seed, Some(seed));
    assert!(replayed.message.contains("false miss"));
}

/// PR 2 regression: `get_or_insert_with` racing a delete of the same key
/// must return a value (the existing one or its own) and never panic —
/// the pre-fix code `expect`ed the winner's value to still be present
/// after losing an insert race, which a concurrent delete violates.
#[test]
fn get_or_insert_with_vs_concurrent_delete() {
    loom::model_with(loom::Config::random(0x6075_u64, 150), || {
        let map: Arc<CuckooMap<u64, u64>> = Arc::new(CuckooMap::with_capacity(16));
        map.insert(7, 1).unwrap();

        let inserter = {
            let map = Arc::clone(&map);
            loom::thread::spawn(move || {
                let v = map.get_or_insert_with(7, || 2);
                assert!(v == 1 || v == 2, "phantom value {v}");
                v
            })
        };
        let deleter = {
            let map = Arc::clone(&map);
            loom::thread::spawn(move || {
                map.remove(&7);
            })
        };
        inserter.join().unwrap();
        deleter.join().unwrap();
        // Whatever interleaved, the key maps to a real value or nothing.
        if let Some(v) = map.get(&7) {
            assert!(v == 1 || v == 2);
        }
    });
}
