//! Software prefetching (paper §4.3.2, "Prefetching").
//!
//! BFS path search makes the schedule of buckets to visit predictable, so
//! "before scanning one neighbor, the processor can load the
//! next_neighbor in cache". On x86-64 this issues `prefetcht0`; on other
//! architectures it is a no-op (a hint, never a semantic requirement).

/// Hints the CPU to pull the cache line(s) at `ptr` into all cache levels.
///
/// Accepts any pointer; never dereferences it architecturally, so it is
/// safe even for dangling pointers (the instruction is a hint).
#[inline]
pub fn prefetch_read<T>(ptr: *const T) {
    // Skipped under Miri: the interpreter has no cache to warm and its
    // support for vendor intrinsics is incidental.
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    // SAFETY: `prefetcht0` is a pure performance hint; it cannot fault on
    // any address and has no architectural side effects.
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(ptr.cast());
    }
    #[cfg(not(all(target_arch = "x86_64", not(miri))))]
    {
        let _ = ptr;
    }
}

#[cfg(test)]
mod tests {
    use super::prefetch_read;

    #[test]
    fn prefetch_never_faults() {
        let v = [1u8; 128];
        prefetch_read(v.as_ptr());
        prefetch_read(core::ptr::null::<u8>());
        prefetch_read(usize::MAX as *const u8);
    }
}
