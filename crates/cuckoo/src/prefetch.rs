//! Software prefetching (paper §4.3.2, "Prefetching").
//!
//! BFS path search makes the schedule of buckets to visit predictable, so
//! "before scanning one neighbor, the processor can load the
//! next_neighbor in cache". The same predictability argument powers the
//! batched lookup pipeline ([`crate::OptimisticCuckooMap::get_many`]):
//! a group of keys' candidate buckets are all known after hashing, so
//! their cache lines can be requested before any is scanned.
//!
//! Per-architecture lowering:
//!
//! - **x86-64**: `prefetcht0` via `_mm_prefetch` (all cache levels).
//! - **aarch64**: `prfm pldl1keep` via inline asm — prefetch for load,
//!   L1, "keep" (temporal) policy, matching `_MM_HINT_T0`'s intent.
//! - **anything else**: documented no-op. Prefetch is a pure hint, never
//!   a semantic requirement, so compiling it away preserves correctness;
//!   ports to further architectures only forgo the overlap win.

/// Hints the CPU to pull the cache line(s) at `ptr` into all cache levels.
///
/// Accepts any pointer; never dereferences it architecturally, so it is
/// safe even for null or dangling pointers (both instructions below are
/// defined to be fault-free hints).
#[inline]
pub fn prefetch_read<T>(ptr: *const T) {
    // Skipped under Miri: the interpreter has no cache to warm and its
    // support for vendor intrinsics is incidental.
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    // SAFETY: `prefetcht0` is a pure performance hint; it cannot fault on
    // any address and has no architectural side effects.
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(ptr.cast());
    }
    #[cfg(all(target_arch = "aarch64", not(miri)))]
    // SAFETY: `prfm pldl1keep` is the AArch64 prefetch-memory hint
    // (prefetch-for-load, target L1, temporal). The architecture defines
    // PRFM to never generate a synchronous abort regardless of the
    // address, so any pointer value — null, dangling, unmapped — is fine;
    // `nostack`/`preserves_flags` hold because the instruction touches
    // neither the stack nor NZCV.
    unsafe {
        core::arch::asm!(
            "prfm pldl1keep, [{addr}]",
            addr = in(reg) ptr,
            options(nostack, preserves_flags, readonly)
        );
    }
    #[cfg(not(any(
        all(target_arch = "x86_64", not(miri)),
        all(target_arch = "aarch64", not(miri))
    )))]
    {
        // No-op fallback: other targets simply skip the hint.
        let _ = ptr;
    }
}

/// Hints the CPU to pull the cache line(s) at `ptr` in anticipation of a
/// *store* — the batched write pipeline's stage-1 hint for the candidate
/// `BucketMeta` lines it is about to lock and mutate.
///
/// On x86-64 this still lowers to `prefetcht0` (portable across vendors;
/// `prefetchw` requires a separate feature probe for marginal gain — the
/// line arrives in Exclusive state on first RFO anyway). On aarch64 it
/// issues `prfm pstl1keep`, the prefetch-for-store variant, which primes
/// the line for ownership directly. Same fault-free-hint contract as
/// [`prefetch_read`].
#[inline]
pub fn prefetch_write<T>(ptr: *const T) {
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    // SAFETY: `prefetcht0` is a pure performance hint; it cannot fault on
    // any address and has no architectural side effects.
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(ptr.cast());
    }
    #[cfg(all(target_arch = "aarch64", not(miri)))]
    // SAFETY: `prfm pstl1keep` (prefetch-for-store, L1, temporal) is
    // defined to never generate a synchronous abort regardless of the
    // address; `nostack`/`preserves_flags` hold as for `prefetch_read`.
    unsafe {
        core::arch::asm!(
            "prfm pstl1keep, [{addr}]",
            addr = in(reg) ptr,
            options(nostack, preserves_flags, readonly)
        );
    }
    #[cfg(not(any(
        all(target_arch = "x86_64", not(miri)),
        all(target_arch = "aarch64", not(miri))
    )))]
    {
        // No-op fallback: other targets simply skip the hint.
        let _ = ptr;
    }
}

#[cfg(test)]
mod tests {
    use super::{prefetch_read, prefetch_write};

    #[test]
    fn prefetch_never_faults() {
        let v = [1u8; 128];
        prefetch_read(v.as_ptr());
        prefetch_read(core::ptr::null::<u8>());
        prefetch_read(usize::MAX as *const u8);
        prefetch_write(v.as_ptr());
        prefetch_write(core::ptr::null::<u8>());
        prefetch_write(usize::MAX as *const u8);
    }
}
