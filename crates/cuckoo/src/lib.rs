//! Concurrent multi-reader/multi-writer cuckoo hash tables.
//!
//! This crate reproduces the data structures from *Algorithmic
//! Improvements for Fast Concurrent Cuckoo Hashing* (Li, Andersen,
//! Kaminsky, Freedman — EuroSys 2014), the design that became
//! [libcuckoo]. Three table flavors share the same storage, hashing, and
//! path-search machinery:
//!
//! - [`OptimisticCuckooMap`] — **cuckoo+ with fine-grained locking**, the
//!   paper's headline table (§4): optimistic lock-free reads validated by
//!   striped version counters, BFS cuckoo-path discovery outside the
//!   critical section, and per-displacement pair locking with striped
//!   spinlocks.
//! - [`ElidedCuckooMap`] — **cuckoo+ with (simulated) TSX lock elision**
//!   (§5): the same algorithmic optimizations with a single elided global
//!   lock; critical sections execute as transactions with genuine
//!   conflict detection via the [`htm`] crate.
//! - [`MemC3Cuckoo`] — the **baseline** multi-reader/*single*-writer
//!   optimistic cuckoo table from MemC3, with configuration knobs
//!   reproducing every step of the paper's factor analysis (Figure 5):
//!   lock-later, BFS vs DFS, prefetch, and glibc vs optimized elision.
//! - [`CuckooMap`] — a libcuckoo-style general-purpose map (§7):
//!   arbitrary key/value types, locks for reads as well as writes, and
//!   dynamic expansion.
//!
//! [libcuckoo]: https://github.com/efficient/libcuckoo
//!
//! # Quick start
//!
//! ```
//! use cuckoo::OptimisticCuckooMap;
//!
//! // 8-way set-associative (the paper's default), 64-bit keys/values.
//! let map: OptimisticCuckooMap<u64, u64> = OptimisticCuckooMap::with_capacity(10_000);
//! map.insert(1, 100).unwrap();
//! map.insert(2, 200).unwrap();
//! assert_eq!(map.get(&1), Some(100));
//! assert_eq!(map.remove(&2), Some(200));
//! assert_eq!(map.get(&2), None);
//! ```

pub mod analysis;
pub mod bucket;
pub mod error;
pub mod hash;
pub mod hashing;
pub mod prefetch;
pub mod raw;
pub mod search;
pub mod stats;
pub mod sync;
pub mod sync2;

mod counter;
mod crit;
mod elided;
mod map;
mod memc3;
mod optimistic;
mod read;

pub use elided::ElidedCuckooMap;
pub use error::{InsertError, UpsertOutcome};
pub use hash::{DefaultHashBuilder, FxHasher64, RandomState, SipHashBuilder, SipHasher13};
pub use htm::Plain;
pub use map::{CuckooMap, ResizeMode};
pub use memc3::{MemC3Config, MemC3Cuckoo, SearchKind, WriterLockKind};
pub use optimistic::{Builder as OptimisticBuilder, OptimisticCuckooMap};
pub use search::EvictionPolicy;
pub use stats::{PathStats, PathStatsSnapshot, TableMetrics};

/// The paper's default search budget `M`: maximum slots examined while
/// looking for an empty slot before declaring the table too full
/// (§4.3.2: "As used in MemC3, B = 4, M = 2000").
pub const DEFAULT_MAX_SEARCH_SLOTS: usize = 2000;

/// Single-threaded smoke tests sized for Miri (`cargo miri test -p
/// cuckoo --lib miri_`, driven by `cargo xtask check`). They walk the
/// unsafe-heavy paths — raw bucket access, seqlock-validated reads,
/// displacement, deletion — where Miri can catch UB that native test
/// runs cannot. They also run as ordinary tests; keep them small, Miri
/// executes ~2 orders of magnitude slower than native.
#[cfg(test)]
mod miri_smoke {
    use super::{CuckooMap, OptimisticCuckooMap};

    #[test]
    fn miri_striped_map_insert_get_remove() {
        let map: CuckooMap<u64, u64> = CuckooMap::with_capacity(64);
        for k in 0..40u64 {
            map.insert(k, k * 3).unwrap();
        }
        for k in 0..40u64 {
            assert_eq!(map.get(&k), Some(k * 3));
        }
        for k in (0..40u64).step_by(2) {
            assert_eq!(map.remove(&k), Some(k * 3));
        }
        assert_eq!(map.len(), 20);
        assert_eq!(map.get(&1), Some(3));
        assert_eq!(map.get(&2), None);
    }

    #[test]
    fn miri_optimistic_map_displacement_paths() {
        // Small table + enough keys to force cuckoo displacement chains
        // (and thus the BFS/DFS search and raw slot moves).
        let map: OptimisticCuckooMap<u64, u64, 4> = OptimisticCuckooMap::with_capacity(32);
        let mut inserted = Vec::new();
        for k in 0..24u64 {
            if map.insert(k, !k).is_ok() {
                inserted.push(k);
            }
        }
        assert!(inserted.len() >= 16, "table filled suspiciously early");
        for &k in &inserted {
            assert_eq!(map.get(&k), Some(!k));
        }
        for &k in &inserted {
            assert_eq!(map.remove(&k), Some(!k));
        }
        assert!(map.is_empty());
    }

    #[test]
    fn miri_map_update_and_reinsert() {
        let map: CuckooMap<u64, u64> = CuckooMap::with_capacity(32);
        map.insert(7, 1).unwrap();
        map.upsert(7, 2);
        assert_eq!(map.get(&7), Some(2));
        map.remove(&7);
        map.insert(7, 3).unwrap();
        assert_eq!(map.get(&7), Some(3));
    }
}
