//! Concurrent multi-reader/multi-writer cuckoo hash tables.
//!
//! This crate reproduces the data structures from *Algorithmic
//! Improvements for Fast Concurrent Cuckoo Hashing* (Li, Andersen,
//! Kaminsky, Freedman — EuroSys 2014), the design that became
//! [libcuckoo]. Three table flavors share the same storage, hashing, and
//! path-search machinery:
//!
//! - [`OptimisticCuckooMap`] — **cuckoo+ with fine-grained locking**, the
//!   paper's headline table (§4): optimistic lock-free reads validated by
//!   striped version counters, BFS cuckoo-path discovery outside the
//!   critical section, and per-displacement pair locking with striped
//!   spinlocks.
//! - [`ElidedCuckooMap`] — **cuckoo+ with (simulated) TSX lock elision**
//!   (§5): the same algorithmic optimizations with a single elided global
//!   lock; critical sections execute as transactions with genuine
//!   conflict detection via the [`htm`] crate.
//! - [`MemC3Cuckoo`] — the **baseline** multi-reader/*single*-writer
//!   optimistic cuckoo table from MemC3, with configuration knobs
//!   reproducing every step of the paper's factor analysis (Figure 5):
//!   lock-later, BFS vs DFS, prefetch, and glibc vs optimized elision.
//! - [`CuckooMap`] — a libcuckoo-style general-purpose map (§7):
//!   arbitrary key/value types, locks for reads as well as writes, and
//!   dynamic expansion.
//!
//! [libcuckoo]: https://github.com/efficient/libcuckoo
//!
//! # Quick start
//!
//! ```
//! use cuckoo::OptimisticCuckooMap;
//!
//! // 8-way set-associative (the paper's default), 64-bit keys/values.
//! let map: OptimisticCuckooMap<u64, u64> = OptimisticCuckooMap::with_capacity(10_000);
//! map.insert(1, 100).unwrap();
//! map.insert(2, 200).unwrap();
//! assert_eq!(map.get(&1), Some(100));
//! assert_eq!(map.remove(&2), Some(200));
//! assert_eq!(map.get(&2), None);
//! ```

pub mod analysis;
pub mod bucket;
pub mod error;
pub mod hash;
pub mod hashing;
pub mod prefetch;
pub mod raw;
pub mod search;
pub mod stats;
pub mod sync;

mod counter;
mod crit;
mod elided;
mod map;
mod memc3;
mod optimistic;
mod read;

pub use elided::ElidedCuckooMap;
pub use error::{InsertError, UpsertOutcome};
pub use hash::{DefaultHashBuilder, FxHasher64, RandomState, SipHashBuilder, SipHasher13};
pub use htm::Plain;
pub use map::{CuckooMap, ResizeMode};
pub use memc3::{MemC3Config, MemC3Cuckoo, SearchKind, WriterLockKind};
pub use optimistic::OptimisticCuckooMap;
pub use stats::{PathStats, PathStatsSnapshot};

/// The paper's default search budget `M`: maximum slots examined while
/// looking for an empty slot before declaring the table too full
/// (§4.3.2: "As used in MemC3, B = 4, M = 2000").
pub const DEFAULT_MAX_SEARCH_SLOTS: usize = 2000;
