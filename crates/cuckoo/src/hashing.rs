//! The two-bucket, partial-key hashing scheme (paper §4.1).
//!
//! Every key maps to two candidate buckets. Following the MemC3 lineage
//! the paper builds on, one 64-bit hash yields:
//!
//! - the **partial key** (or *tag*): one non-zero byte stored next to the
//!   slot. Lookups compare tags before touching full keys, and — crucially
//!   for inserts — a slot's *alternate* bucket is computable from the tag
//!   alone, so path search never reads (or rehashes) full keys.
//! - the **primary bucket index**, from the hash's low bits.
//!
//! The alternate index is `index XOR (tag * ODD_MULT)` masked to the table
//! size. XOR with a value derived only from the tag makes the mapping an
//! involution: `alt_index(alt_index(i, t), t) == i`, which is exactly what
//! lets displacement move an item *back* as well as forward.

use core::hash::{BuildHasher, Hash};

/// Multiplier spreading the 8-bit tag across index bits (the constant is
/// the 64-bit Murmur2 multiplier, also used by MemC3).
const TAG_MULT: u64 = 0xc6a4_a793_5bd1_e995;

/// A key's full placement information: primary/alternate bucket and tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeySlots {
    /// Primary bucket index.
    pub i1: usize,
    /// Alternate bucket index.
    pub i2: usize,
    /// Non-zero partial key stored alongside the slot.
    pub tag: u8,
}

/// Extracts a non-zero tag from a hash's top byte.
#[inline]
pub fn tag_of(hash: u64) -> u8 {
    let t = (hash >> 56) as u8;
    if t == 0 {
        1
    } else {
        t
    }
}

/// Primary bucket index for a hash in a table of `mask + 1` buckets.
#[inline]
pub fn index_of(hash: u64, mask: usize) -> usize {
    (hash as usize) & mask
}

/// The other candidate bucket for an item with `tag` currently in bucket
/// `index`. Involutive: applying it twice returns `index`.
///
/// For the two candidates to be distinct for every tag, the table must
/// have at least 256 buckets (table constructors enforce this minimum).
#[inline]
pub fn alt_index(index: usize, tag: u8, mask: usize) -> usize {
    index ^ ((tag as u64).wrapping_mul(TAG_MULT) as usize & mask)
}

/// Hashes `key` once. Operations that may probe more than one table
/// (migration's two-table lookups) or retry (stale-table loops) hash
/// with this and re-derive per-mask slots via [`slots_from_hash`]
/// instead of paying the full hash on every attempt.
#[inline]
pub fn hash_of<K: Hash + ?Sized, S: BuildHasher>(hash_builder: &S, key: &K) -> u64 {
    hash_builder.hash_one(key)
}

/// Derives both candidate buckets and the tag from an already-computed
/// hash. Tag and primary index depend only on the hash; the alternate
/// index additionally depends on the table's `mask`, so one hash serves
/// any number of table sizes.
#[inline]
pub fn slots_from_hash(hash: u64, mask: usize) -> KeySlots {
    let tag = tag_of(hash);
    let i1 = index_of(hash, mask);
    let i2 = alt_index(i1, tag, mask);
    KeySlots { i1, i2, tag }
}

/// Computes both candidate buckets and the tag for `key`.
#[inline]
pub fn key_slots<K: Hash + ?Sized, S: BuildHasher>(
    hash_builder: &S,
    key: &K,
    mask: usize,
) -> KeySlots {
    slots_from_hash(hash_of(hash_builder, key), mask)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::RandomState;

    const MASK: usize = (1 << 16) - 1;

    #[test]
    fn tag_is_never_zero() {
        for h in [0u64, 1 << 56, u64::MAX, 0x00ff_ffff_ffff_ffff] {
            assert_ne!(tag_of(h), 0, "hash {h:#x}");
        }
        assert_eq!(tag_of(0), 1);
        assert_eq!(tag_of(0xab00_0000_0000_0000), 0xab);
    }

    #[test]
    fn alt_index_is_an_involution() {
        for i in (0..=MASK).step_by(97) {
            for tag in 1..=255u8 {
                let a = alt_index(i, tag, MASK);
                assert_eq!(alt_index(a, tag, MASK), i, "i={i} tag={tag}");
            }
        }
    }

    #[test]
    fn alt_index_differs_from_index() {
        // tag * TAG_MULT masked must be non-zero or both candidate buckets
        // collapse to one. TAG_MULT is odd, so multiplication by it is a
        // bijection mod 2^k: the masked product is zero only when the tag
        // is divisible by the table size, impossible for tables of at
        // least 256 buckets (constructors enforce that minimum).
        for shift in [8usize, 16, 20] {
            let mask = (1usize << shift) - 1;
            for tag in 1..=255u8 {
                assert_ne!(
                    alt_index(0, tag, mask),
                    0,
                    "tag {tag} collapses at mask {mask:#x}"
                );
            }
        }
    }

    #[test]
    fn key_slots_consistent_with_parts() {
        let s = RandomState::with_seed(42);
        let ks = key_slots(&s, &12345u64, MASK);
        assert!(ks.i1 <= MASK && ks.i2 <= MASK);
        assert_ne!(ks.tag, 0);
        assert_eq!(alt_index(ks.i1, ks.tag, MASK), ks.i2);
        assert_eq!(alt_index(ks.i2, ks.tag, MASK), ks.i1);
    }

    #[test]
    fn slots_from_hash_matches_key_slots_across_masks() {
        let s = RandomState::with_seed(17);
        for key in 0..500u64 {
            let h = hash_of(&s, &key);
            for shift in [8usize, 12, 16, 20] {
                let mask = (1usize << shift) - 1;
                assert_eq!(slots_from_hash(h, mask), key_slots(&s, &key, mask));
            }
        }
    }

    #[test]
    fn buckets_spread_over_table() {
        let s = RandomState::with_seed(7);
        let mut hits = vec![0u32; 256];
        let mask = 255;
        for k in 0..10_000u64 {
            let ks = key_slots(&s, &k, mask);
            hits[ks.i1] += 1;
        }
        let max = *hits.iter().max().unwrap();
        let min = *hits.iter().min().unwrap();
        // ~39 expected per bucket; allow generous skew.
        assert!(min > 10 && max < 100, "min={min} max={max}");
    }
}
