//! Striped version-spinlocks (paper §4.4).
//!
//! The paper stores "an actual lock in the stripe in addition to the
//! version counter (our lock uses the high-order bit of the counter)" and
//! favors "lightweight spinlocks using compare-and-swap" because the
//! critical sections are tiny. This module implements exactly that:
//!
//! - [`VersionLock`] — one `AtomicU64` word: bit 63 is the writer lock,
//!   the low 63 bits are a seqlock version counter. Acquiring the lock
//!   makes the version odd; releasing makes it even again, so optimistic
//!   readers validate with two loads and zero cache-line writes (paper
//!   §4.2: "allow reads to be performed with no cache line writes by
//!   using optimistic locking").
//! - [`LockStripes`] — a power-of-two array of cache-line-padded
//!   [`VersionLock`]s. Buckets map to stripes by masking, giving the
//!   "reasonable size lock tables, such as 1K-8K entries" the paper uses
//!   (default 2048, `DEFAULT_STRIPES`).
//! - Ordered two-stripe acquisition ([`LockStripes::lock_pair`]) — "locks
//!   of the pair of buckets are ordered by the bucket id to avoid
//!   deadlock. If two buckets share the same lock, then only one lock is
//!   acquired".
//! - [`LockStripes::lock_all`] — the pessimistic full-table acquisition
//!   the paper describes as the probabilistic-livelock escape hatch
//!   ("acquiring each of the 2048 locks in the lock-striped table").
//! - [`LockStripes::lock_multi`] — ordered acquisition of up to three
//!   stripes at once, used by incremental expansion to move one entry
//!   atomically between an old-table bucket and its two new-table
//!   candidate buckets.
//! - [`EpochRegistry`] — striped epoch counters for quiescence-based
//!   reclamation of retired bucket arrays: every table operation pins
//!   the current epoch in a padded per-thread stripe, and a retired
//!   allocation is freed once every active stripe has advanced past the
//!   retirement epoch (so no in-flight lock-free search can still hold
//!   the pointer).

use crate::sync2::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Number of lock stripes the paper's implementation uses by default.
pub const DEFAULT_STRIPES: usize = 2048;

/// Bit 63 marks the stripe write-locked.
const LOCKED: u64 = 1 << 63;

/// A combined spinlock + seqlock version counter in one word.
///
/// Invariant: the version (low 63 bits) is odd exactly while a writer is
/// active — either because the lock is held, or because a lock-free
/// publication protocol (the elided-execution seqlock bumps) is mid-write.
/// Readers treat "odd or locked" as "retry".
#[derive(Debug)]
pub struct VersionLock {
    word: AtomicU64,
}

/// A validated snapshot of a stripe's version, for optimistic reads.
/// The `Default` stamp (version 0) is a placeholder for pre-sized
/// pipeline buffers, not a valid observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReadStamp(u64);

impl VersionLock {
    /// Creates an unlocked stripe with version 0.
    pub const fn new() -> Self {
        VersionLock {
            word: AtomicU64::new(0),
        }
    }

    /// The raw atomic word (used by transactional execution to register
    /// the stripe as a seqlock publication word). Always the `std`
    /// atomic: the htm subsystem is outside the model checker's scope,
    /// so under `cfg(cuckoo_model)` this unwraps the instrumented word.
    #[inline]
    pub fn word(&self) -> &std::sync::atomic::AtomicU64 {
        #[cfg(not(cuckoo_model))]
        {
            &self.word
        }
        #[cfg(cuckoo_model)]
        {
            self.word.as_std()
        }
    }

    /// Attempts to acquire the writer lock once.
    #[inline]
    pub fn try_lock(&self) -> bool {
        // ORDERING: seqlock.advisory-probe — seeds the CAS below, which
        // re-checks the value it read.
        let cur = self.word.load(Ordering::Relaxed);
        if cur & LOCKED != 0 {
            return false;
        }
        // Acquiring sets the lock bit and makes the version odd in one CAS
        // so readers see a single transition into the write window.
        // ORDERING: seqlock.lock-acquire
        self.word
            .compare_exchange_weak(
                cur,
                (cur + 1) | LOCKED,
                Ordering::Acquire,
                Ordering::Relaxed,
            )
            .is_ok()
    }

    /// Spins (then yields) until the writer lock is acquired.
    #[inline]
    pub fn lock(&self) {
        let mut spins = 0u32;
        let mut watchdog = 0u64;
        while !self.try_lock() {
            watchdog += 1;
            debug_assert!(watchdog < 500_000_000, "VersionLock::lock stuck");
            backoff(&mut spins);
        }
    }

    /// Releases the writer lock, bumping the version back to even.
    ///
    /// # Panics
    ///
    /// Debug-asserts the lock is currently held.
    #[inline]
    pub fn unlock(&self) {
        // ORDERING: seqlock.advisory-probe — the holder wrote this word
        // last (it owns the lock); the store below carries the ordering.
        let cur = self.word.load(Ordering::Relaxed);
        debug_assert_ne!(cur & LOCKED, 0, "unlock of unheld VersionLock");
        debug_assert_eq!((cur & !LOCKED) % 2, 1, "version must be odd while locked");
        // ORDERING: seqlock.unlock-release
        self.word.store((cur & !LOCKED) + 1, Ordering::Release);
    }

    /// Whether the writer lock is currently held.
    #[inline]
    pub fn is_locked(&self) -> bool {
        self.word.load(Ordering::Relaxed) & LOCKED != 0 // ORDERING: seqlock.advisory-probe
    }

    /// Begins an optimistic read: spins until the stripe is quiescent
    /// (unlocked, even version) and returns the observed stamp.
    #[inline]
    pub fn read_begin(&self) -> ReadStamp {
        let mut spins = 0u32;
        let mut watchdog = 0u64;
        loop {
            // ORDERING: seqlock.read-begin
            let v = self.word.load(Ordering::Acquire);
            if v & LOCKED == 0 && v.is_multiple_of(2) {
                return ReadStamp(v);
            }
            watchdog += 1;
            debug_assert!(watchdog < 500_000_000, "read_begin stuck: word={v:#x}");
            backoff(&mut spins);
        }
    }

    /// Ends an optimistic read: `true` when no writer was active since the
    /// matching [`VersionLock::read_begin`].
    ///
    /// The fence orders the caller's racy data reads before the
    /// validating load — see DESIGN.md §5d for the pairing argument.
    #[inline]
    pub fn read_validate(&self, stamp: ReadStamp) -> bool {
        // ORDERING: seqlock.validate — fence first, then the stamp re-load.
        std::sync::atomic::fence(Ordering::Acquire);
        self.word.load(Ordering::Acquire) == stamp.0
    }

    /// Current raw version (for statistics and tests).
    #[inline]
    pub fn version(&self) -> u64 {
        self.word.load(Ordering::Relaxed) & !LOCKED // ORDERING: seqlock.advisory-probe
    }
}

impl Default for VersionLock {
    fn default() -> Self {
        Self::new()
    }
}

/// Spin briefly, then yield to the scheduler; with more threads than
/// cores, pure spinning wastes whole quanta waiting for a preempted lock
/// holder.
#[inline]
pub(crate) fn backoff(spins: &mut u32) {
    if *spins < 64 {
        crate::sync2::hint::spin_loop();
        *spins += 1;
    } else {
        crate::sync2::thread::yield_now();
    }
}

/// Dynamic lock-order auditor (debug builds only).
///
/// Deadlock freedom of the striped locking rests on two disciplines that
/// the type system cannot express:
///
/// 1. **Ascending stripe order** — every multi-stripe acquisition
///    ([`LockStripes::lock_pair`], [`LockStripes::lock_multi`],
///    [`LockStripes::lock_all`]) takes stripes of one table in strictly
///    increasing index order, and no thread starts a new acquisition at
///    an index at or below one it already holds in that table.
/// 2. **Pin before lock** — a thread must not establish an epoch pin
///    ([`EpochRegistry::pin`]) while holding stripe locks: a pinned
///    thread blocked on a stripe would pin the reclamation epoch in
///    place, so garbage retired by the lock holder could never drain
///    (and any future wait-for-quiesce while holding locks would
///    deadlock outright).
///
/// The auditor tracks held stripes per thread and panics the moment
/// either rule is broken, which turns "deadlocks under the right
/// interleaving" into a deterministic failure in any debug run
/// (including every schedule the model checker explores).
#[cfg(debug_assertions)]
mod audit {
    use std::cell::RefCell;

    /// Sentinel recorded while a whole-table [`super::AllGuard`] is held.
    const ALL: usize = usize::MAX;

    thread_local! {
        /// Stripes this thread holds, as (table identity, stripe index).
        static HELD: RefCell<Vec<(usize, usize)>> = const { RefCell::new(Vec::new()) };
    }

    pub(super) fn acquiring(table: usize, stripe: usize) {
        HELD.with(|h| {
            let mut h = h.borrow_mut();
            for &(t, s) in h.iter() {
                if t != table {
                    continue;
                }
                assert!(
                    s != ALL,
                    "lock-order violation: acquiring stripe {stripe} while \
                     holding ALL stripes of the same table (self-deadlock)"
                );
                assert!(
                    s != stripe,
                    "lock-order violation: re-acquiring held stripe {stripe} \
                     (self-deadlock)"
                );
                assert!(
                    s < stripe,
                    "lock-order violation: acquiring stripe {stripe} while \
                     holding stripe {s} of the same table (descending order \
                     can deadlock against a concurrent ascending acquirer)"
                );
            }
            h.push((table, stripe));
        });
    }

    pub(super) fn acquiring_all(table: usize) {
        HELD.with(|h| {
            let mut h = h.borrow_mut();
            assert!(
                !h.iter().any(|&(t, _)| t == table),
                "lock-order violation: lock_all while already holding \
                 stripes of the same table (self-deadlock)"
            );
            h.push((table, ALL));
        });
    }

    pub(super) fn released(table: usize, stripe: usize) {
        released_entry(table, stripe);
    }

    pub(super) fn released_all(table: usize) {
        released_entry(table, ALL);
    }

    fn released_entry(table: usize, stripe: usize) {
        HELD.with(|h| {
            let mut h = h.borrow_mut();
            let pos = h
                .iter()
                .rposition(|&e| e == (table, stripe))
                .expect("released a stripe the auditor never saw acquired");
            h.remove(pos);
        });
    }

    /// [`super::EpochRegistry::pin`] calls this: pinning with stripe
    /// locks held is the lock/pin inversion described above.
    pub(super) fn assert_pin_allowed() {
        HELD.with(|h| {
            let h = h.borrow();
            assert!(
                h.is_empty(),
                "epoch pin while holding stripe locks {:?}: pin must be \
                 established before any stripe acquisition (lock/pin \
                 inversion stalls reclamation)",
                &*h
            );
        });
    }
}

/// A [`VersionLock`] alone on its cache line, so stripe contention does
/// not become false sharing.
///
/// The lock word uses 8 of the line's 64 bytes; the acquisition and
/// contention counters live in the otherwise-wasted padding, so bumping
/// them right after a successful CAS touches a line the owner already
/// holds exclusively (paper principle P1: statistics must not add
/// shared-cache-line traffic).
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct PaddedLock {
    lock: VersionLock,
    /// Writer-side acquisitions of this stripe (via any `lock_*` path).
    acquisitions: metrics::Counter,
    /// Acquisitions whose first `try_lock` failed.
    contended: metrics::Counter,
}

/// The striped lock table.
#[derive(Debug)]
pub struct LockStripes {
    stripes: Box<[PaddedLock]>,
    mask: usize,
    /// Backoff iterations per *contended* acquisition, table-wide.
    /// Recorded only on the slow path, so the uncontended fast path
    /// never touches this (shared) line.
    spin_waits: metrics::Histogram,
}

/// Aggregated writer-lock statistics for one [`LockStripes`] table.
///
/// Relaxed-consistency: counters are summed stripe-by-stripe while
/// writers may still be running, so a snapshot is an in-flight
/// approximation, not a linearizable cut. [`LockStripes::lock_stats`]
/// loads `contended` before `acquisitions` and clamps, so the invariant
/// `contended <= acquisitions` holds in every snapshot regardless of
/// tearing (same discipline as `PathStats::snapshot`).
#[derive(Debug, Clone, Copy, Default)]
pub struct LockStats {
    /// Total writer-side stripe acquisitions.
    pub acquisitions: u64,
    /// Acquisitions that found the stripe already locked.
    pub contended: u64,
    /// Backoff-iteration histogram over contended acquisitions.
    pub spin_waits: metrics::HistogramSnapshot,
}

impl LockStripes {
    /// Creates `count` stripes (rounded up to a power of two, minimum 1).
    pub fn new(count: usize) -> Self {
        let count = count.max(1).next_power_of_two();
        let stripes = (0..count)
            .map(|_| PaddedLock::default())
            .collect::<Vec<_>>()
            .into_boxed_slice();
        LockStripes {
            mask: count - 1,
            stripes,
            spin_waits: metrics::Histogram::new(),
        }
    }

    /// Acquires stripe `idx`'s writer lock, maintaining its counters.
    ///
    /// Counters are bumped *after* the CAS succeeds: the CAS just wrote
    /// the stripe's cache line, so the increments hit a line this core
    /// already owns exclusively and add no coherence traffic.
    #[inline]
    fn lock_counted(&self, idx: usize) {
        let s = &self.stripes[idx];
        if !s.lock.try_lock() {
            let mut iterations = 0u64;
            let mut spins = 0u32;
            loop {
                iterations += 1;
                debug_assert!(iterations < 500_000_000, "lock_counted stuck");
                backoff(&mut spins);
                if s.lock.try_lock() {
                    break;
                }
            }
            s.contended.inc();
            self.spin_waits.record(iterations);
        }
        s.acquisitions.inc();
    }

    /// Number of stripes.
    #[inline]
    pub fn len(&self) -> usize {
        self.stripes.len()
    }

    /// Whether there are zero stripes (never true; kept for API symmetry).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.stripes.is_empty()
    }

    /// Stripe index covering bucket `bucket`.
    #[inline]
    pub fn stripe_of(&self, bucket: usize) -> usize {
        bucket & self.mask
    }

    /// Table identity for the lock-order auditor (address-based: stripe
    /// indices only order within one table).
    #[cfg(debug_assertions)]
    #[inline]
    fn audit_id(&self) -> usize {
        self as *const LockStripes as usize
    }

    /// The stripe lock covering bucket `bucket`.
    #[inline]
    pub fn stripe(&self, bucket: usize) -> &VersionLock {
        &self.stripes[bucket & self.mask].lock
    }

    /// Locks the stripes covering `b1` and `b2` in stripe-index order
    /// (deadlock-free); a shared stripe is locked once.
    #[inline]
    pub fn lock_pair(&self, b1: usize, b2: usize) -> PairGuard<'_> {
        let (s1, s2) = (self.stripe_of(b1), self.stripe_of(b2));
        let (lo, hi) = if s1 <= s2 { (s1, s2) } else { (s2, s1) };
        #[cfg(debug_assertions)]
        audit::acquiring(self.audit_id(), lo);
        self.lock_counted(lo);
        if hi != lo {
            #[cfg(debug_assertions)]
            audit::acquiring(self.audit_id(), hi);
            self.lock_counted(hi);
        }
        PairGuard {
            stripes: self,
            lo,
            hi,
        }
    }

    /// Locks every stripe in index order — the pessimistic full-table
    /// lock. Expensive; used for resizing, whole-table iteration, and as
    /// the livelock escape hatch.
    pub fn lock_all(&self) -> AllGuard<'_> {
        #[cfg(debug_assertions)]
        audit::acquiring_all(self.audit_id());
        for i in 0..self.stripes.len() {
            self.lock_counted(i);
        }
        AllGuard { stripes: self }
    }

    /// Locks the stripes covering up to three buckets in stripe-index
    /// order (deadlock-free with [`LockStripes::lock_pair`] and with
    /// itself); shared stripes are locked once.
    ///
    /// Incremental expansion uses this to move one entry atomically from
    /// an old-table bucket into one of its two new-table candidate
    /// buckets: all three buckets' stripes are held, so no reader or
    /// writer can observe the entry absent from both tables or present in
    /// both.
    pub fn lock_multi(&self, buckets: [usize; 3]) -> MultiGuard<'_> {
        let mut s = buckets.map(|b| self.stripe_of(b));
        s.sort_unstable();
        let mut held = [usize::MAX; 3];
        let mut n = 0;
        for idx in s {
            if n > 0 && held[n - 1] == idx {
                continue; // shared stripe: lock once
            }
            #[cfg(debug_assertions)]
            audit::acquiring(self.audit_id(), idx);
            self.lock_counted(idx);
            held[n] = idx;
            n += 1;
        }
        MultiGuard {
            stripes: self,
            held,
            n,
        }
    }

    /// Locks the stripes covering an arbitrary set of up to
    /// [`MAX_BATCH_BUCKETS`] buckets — one pipelined write group's
    /// candidate pairs — in ascending stripe-index order (deadlock-free
    /// with [`LockStripes::lock_pair`], [`LockStripes::lock_multi`], and
    /// itself). Buckets sharing a stripe are coalesced under a single
    /// acquisition, so a group of G keys costs at most `2·G` lock words
    /// and usually far fewer.
    pub fn lock_batch(&self, buckets: &[usize]) -> BatchGuard<'_> {
        assert!(
            buckets.len() <= MAX_BATCH_BUCKETS,
            "lock_batch covers at most {MAX_BATCH_BUCKETS} buckets"
        );
        let mut stripes = [usize::MAX; MAX_BATCH_BUCKETS];
        let m = buckets.len();
        for (s, &b) in stripes.iter_mut().zip(buckets) {
            *s = self.stripe_of(b);
        }
        stripes[..m].sort_unstable();
        let mut held = [usize::MAX; MAX_BATCH_BUCKETS];
        let mut n = 0;
        for &idx in &stripes[..m] {
            if n > 0 && held[n - 1] == idx {
                continue; // shared stripe: lock once
            }
            #[cfg(debug_assertions)]
            audit::acquiring(self.audit_id(), idx);
            self.lock_counted(idx);
            held[n] = idx;
            n += 1;
        }
        BatchGuard {
            stripes: self,
            held,
            n,
        }
    }

    /// Bytes of memory the stripe table occupies (for the paper's memory
    /// accounting: "the efficiency of the basic table plus the small
    /// additional lock-striping table").
    pub fn memory_bytes(&self) -> usize {
        self.stripes.len() * std::mem::size_of::<PaddedLock>()
    }

    /// Sums the per-stripe counters into one [`LockStats`] snapshot.
    ///
    /// Per stripe, `contended` is loaded *before* `acquisitions`: a
    /// locker bumps them in the opposite order, so any tear biases the
    /// snapshot toward `contended <= acquisitions`; the final clamp
    /// makes that invariant unconditional (see [`LockStats`]).
    pub fn lock_stats(&self) -> LockStats {
        let mut acquisitions = 0u64;
        let mut contended = 0u64;
        for s in self.stripes.iter() {
            contended = contended.saturating_add(s.contended.get());
            acquisitions = acquisitions.saturating_add(s.acquisitions.get());
        }
        LockStats {
            acquisitions,
            contended: contended.min(acquisitions),
            spin_waits: self.spin_waits.snapshot(),
        }
    }

    /// Zeroes every stripe counter and the spin histogram. Not atomic
    /// with respect to concurrent lockers (see the relaxed-consistency
    /// contract on [`LockStats`]).
    pub fn reset_lock_stats(&self) {
        for s in self.stripes.iter() {
            s.acquisitions.reset();
            s.contended.reset();
        }
        self.spin_waits.reset();
    }
}

/// Guard holding one or two stripe locks; releases in reverse order.
#[derive(Debug)]
pub struct PairGuard<'a> {
    stripes: &'a LockStripes,
    lo: usize,
    hi: usize,
}

impl PairGuard<'_> {
    /// Whether this guard covers the stripe of `bucket`.
    #[inline]
    pub fn covers(&self, bucket: usize) -> bool {
        let s = self.stripes.stripe_of(bucket);
        s == self.lo || s == self.hi
    }
}

impl Drop for PairGuard<'_> {
    fn drop(&mut self) {
        if self.hi != self.lo {
            self.stripes.stripes[self.hi].lock.unlock();
            #[cfg(debug_assertions)]
            audit::released(self.stripes.audit_id(), self.hi);
        }
        self.stripes.stripes[self.lo].lock.unlock();
        #[cfg(debug_assertions)]
        audit::released(self.stripes.audit_id(), self.lo);
    }
}

/// Keys per pipelined write group (`insert_many`/`upsert_many`), sized
/// like the read path's multiget group: large enough to overlap a
/// group's DRAM misses, small enough that stage-1 prefetches survive
/// until stage 3 probes them.
pub const WRITE_GROUP: usize = 8;

/// Most buckets one [`LockStripes::lock_batch`] call may cover: a full
/// pipelined write group × two candidate buckets each.
pub const MAX_BATCH_BUCKETS: usize = 2 * WRITE_GROUP;

/// Guard holding the deduplicated stripe set of one write group;
/// releases in reverse acquisition order.
#[derive(Debug)]
pub struct BatchGuard<'a> {
    stripes: &'a LockStripes,
    held: [usize; MAX_BATCH_BUCKETS],
    n: usize,
}

impl BatchGuard<'_> {
    /// Whether this guard covers the stripe of `bucket`.
    #[inline]
    pub fn covers(&self, bucket: usize) -> bool {
        let s = self.stripes.stripe_of(bucket);
        self.held[..self.n].contains(&s)
    }

    /// Distinct stripes actually locked (after coalescing).
    #[inline]
    pub fn stripes_held(&self) -> usize {
        self.n
    }
}

impl Drop for BatchGuard<'_> {
    fn drop(&mut self) {
        for &idx in self.held[..self.n].iter().rev() {
            self.stripes.stripes[idx].lock.unlock();
            #[cfg(debug_assertions)]
            audit::released(self.stripes.audit_id(), idx);
        }
    }
}

/// Guard holding one to three stripe locks; releases in reverse order.
#[derive(Debug)]
pub struct MultiGuard<'a> {
    stripes: &'a LockStripes,
    held: [usize; 3],
    n: usize,
}

impl MultiGuard<'_> {
    /// Whether this guard covers the stripe of `bucket`.
    #[inline]
    pub fn covers(&self, bucket: usize) -> bool {
        let s = self.stripes.stripe_of(bucket);
        self.held[..self.n].contains(&s)
    }
}

impl Drop for MultiGuard<'_> {
    fn drop(&mut self) {
        for &idx in self.held[..self.n].iter().rev() {
            self.stripes.stripes[idx].lock.unlock();
            #[cfg(debug_assertions)]
            audit::released(self.stripes.audit_id(), idx);
        }
    }
}

/// Guard holding every stripe.
#[derive(Debug)]
pub struct AllGuard<'a> {
    stripes: &'a LockStripes,
}

impl Drop for AllGuard<'_> {
    fn drop(&mut self) {
        for s in self.stripes.stripes.iter().rev() {
            s.lock.unlock();
        }
        #[cfg(debug_assertions)]
        audit::released_all(self.stripes.audit_id());
    }
}

/// A plain global spinlock (for the single-writer baseline's whole-table
/// write lock).
#[derive(Debug, Default)]
pub struct SpinLock {
    lock: VersionLock,
}

impl SpinLock {
    /// Creates an unlocked spinlock.
    pub const fn new() -> Self {
        SpinLock {
            lock: VersionLock::new(),
        }
    }

    /// Acquires the lock.
    pub fn lock(&self) -> SpinGuard<'_> {
        self.lock.lock();
        SpinGuard { lock: &self.lock }
    }

    /// Whether the lock is held.
    pub fn is_locked(&self) -> bool {
        self.lock.is_locked()
    }
}

/// Guard for [`SpinLock`].
#[derive(Debug)]
pub struct SpinGuard<'a> {
    lock: &'a VersionLock,
}

impl Drop for SpinGuard<'_> {
    fn drop(&mut self) {
        self.lock.unlock();
    }
}

/// Number of reader-registration stripes in an [`EpochRegistry`].
const EPOCH_SLOTS: usize = 64;

/// Low 48 bits of a slot word hold the pinned epoch; the high 16 bits
/// count how many threads are pinned through the slot.
const EPOCH_MASK: u64 = (1 << 48) - 1;
const COUNT_UNIT: u64 = 1 << 48;

/// One epoch slot alone on its cache line.
#[derive(Debug, Default)]
#[repr(align(64))]
struct PaddedEpochSlot(AtomicU64);

/// Striped epoch counters proving when retired allocations are
/// unreachable.
///
/// Every table operation [`pin`](EpochRegistry::pin)s the registry for
/// its duration. Retiring an allocation stamps it with the then-current
/// global epoch and bumps the epoch, so any *later* pin observes a
/// strictly greater epoch. An allocation stamped `e` is reclaimable once
/// [`min_active`](EpochRegistry::min_active) exceeds `e`: every operation
/// that could have loaded the retired pointer has since unpinned.
///
/// Slot words pack `(count:16, epoch:48)`. A thread joining a non-empty
/// slot keeps the slot's (older) epoch rather than publishing its own —
/// conservative, and what makes a single CAS per pin sufficient.
#[derive(Debug)]
pub struct EpochRegistry {
    global: AtomicU64,
    slots: Box<[PaddedEpochSlot]>,
}

impl Default for EpochRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl EpochRegistry {
    /// Creates a registry at epoch 1 (so epoch 0 can mean "never").
    pub fn new() -> Self {
        EpochRegistry {
            global: AtomicU64::new(1),
            slots: (0..EPOCH_SLOTS)
                .map(|_| PaddedEpochSlot::default())
                .collect(),
        }
    }

    /// Registers the calling thread as active in the current epoch.
    ///
    /// Must be held for the whole window in which a pointer loaded from
    /// shared state is dereferenced.
    pub fn pin(&self) -> EpochGuard<'_> {
        #[cfg(debug_assertions)]
        audit::assert_pin_allowed();
        thread_local! {
            static SLOT: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
        }
        static NEXT_SLOT: AtomicUsize = AtomicUsize::new(0);
        let slot = SLOT.with(|s| {
            let mut v = s.get();
            if v == usize::MAX {
                // ORDERING: alloc.unique-id
                v = NEXT_SLOT.fetch_add(1, Ordering::Relaxed) % EPOCH_SLOTS;
                s.set(v);
            }
            v
        });
        let word = &self.slots[slot].0;
        let mut spins = 0u32;
        loop {
            let cur = word.load(Ordering::SeqCst); // ORDERING: epoch.seqcst
            let next = if cur & !EPOCH_MASK == 0 {
                // First pinner through this slot: publish the current
                // global epoch. SeqCst orders this against the retirer's
                // epoch bump, so a retire that precedes our pin is
                // observed (we publish an epoch > its stamp).
                // ORDERING: epoch.seqcst
                COUNT_UNIT | self.global.load(Ordering::SeqCst)
            } else {
                // Nested/concurrent pin: keep the slot's older epoch.
                cur + COUNT_UNIT
            };
            if word
                // ORDERING: epoch.seqcst
                .compare_exchange_weak(cur, next, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return EpochGuard { word };
            }
            backoff(&mut spins);
        }
    }

    /// Stamps a retirement: returns the epoch to tag the retired
    /// allocation with, and advances the global epoch so later pins
    /// observe a greater value.
    pub fn retire_epoch(&self) -> u64 {
        self.global.fetch_add(1, Ordering::SeqCst) // ORDERING: epoch.seqcst
    }

    /// The smallest epoch any active pin may still observe, or
    /// `u64::MAX` when no thread is pinned. An allocation retired at
    /// epoch `e` is safe to free when `e < min_active()`.
    pub fn min_active(&self) -> u64 {
        let mut min = u64::MAX;
        for s in self.slots.iter() {
            let w = s.0.load(Ordering::SeqCst); // ORDERING: epoch.seqcst
            if w & !EPOCH_MASK != 0 {
                min = min.min(w & EPOCH_MASK);
            }
        }
        min
    }

    /// Bytes occupied by the registry (for memory accounting).
    pub fn memory_bytes(&self) -> usize {
        self.slots.len() * std::mem::size_of::<PaddedEpochSlot>()
    }
}

/// Active-pin token; dropping it deregisters the thread.
#[derive(Debug)]
pub struct EpochGuard<'a> {
    word: &'a AtomicU64,
}

impl Drop for EpochGuard<'_> {
    fn drop(&mut self) {
        // ORDERING: epoch.seqcst
        let prev = self.word.fetch_sub(COUNT_UNIT, Ordering::SeqCst);
        debug_assert!(prev & !EPOCH_MASK != 0, "unpin without matching pin");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn lock_sets_odd_version_unlock_restores_even() {
        let l = VersionLock::new();
        assert_eq!(l.version(), 0);
        assert!(l.try_lock());
        assert!(l.is_locked());
        assert_eq!(l.version() % 2, 1);
        assert!(!l.try_lock());
        l.unlock();
        assert!(!l.is_locked());
        assert_eq!(l.version(), 2);
    }

    #[test]
    fn optimistic_read_detects_writer() {
        let l = VersionLock::new();
        let stamp = l.read_begin();
        assert!(l.read_validate(stamp));
        l.lock();
        l.unlock();
        assert!(!l.read_validate(stamp), "version moved; reader must retry");
    }

    #[test]
    fn read_begin_waits_for_even_version() {
        // An odd version (seqlock mid-write) must not produce a stamp.
        let l = VersionLock::new();
        l.word().fetch_add(1, Ordering::AcqRel); // simulate publication start
        let word = l.word();
        std::thread::scope(|s| {
            let t = s.spawn(|| l.read_begin());
            std::thread::sleep(std::time::Duration::from_millis(10));
            word.fetch_add(1, Ordering::AcqRel); // publication ends
            let stamp = t.join().unwrap();
            assert!(l.read_validate(stamp));
        });
    }

    #[test]
    fn stripes_map_and_pair_lock() {
        let s = LockStripes::new(8);
        assert_eq!(s.len(), 8);
        assert_eq!(s.stripe_of(3), s.stripe_of(11), "wraps by mask");
        {
            let g = s.lock_pair(1, 9); // same stripe
            assert!(g.covers(1));
            assert!(g.covers(9));
            assert!(s.stripe(1).is_locked());
        }
        assert!(!s.stripe(1).is_locked());
        {
            let _g = s.lock_pair(2, 5);
            assert!(s.stripe(2).is_locked());
            assert!(s.stripe(5).is_locked());
            assert!(!s.stripe(3).is_locked());
        }
        assert!(!s.stripe(2).is_locked());
        assert!(!s.stripe(5).is_locked());
    }

    #[test]
    fn lock_batch_coalesces_and_acquires_in_ascending_stripe_order() {
        // Shuffled buckets with stripe-sharing duplicates: the guard must
        // coalesce shared stripes, acquire the distinct set ascending
        // (the debug auditor panics otherwise — this test is the kill for
        // the batch-sort mutation operator), and release everything.
        let s = LockStripes::new(8);
        {
            let g = s.lock_batch(&[6, 1, 14, 3, 9, 6, 0]); // stripes {6,1,3,0}; 14≡6, 9≡1
            assert_eq!(g.stripes_held(), 4);
            for b in [6, 1, 14, 3, 9, 0] {
                assert!(g.covers(b), "bucket {b}");
                assert!(s.stripe(b).is_locked());
            }
            assert!(!g.covers(2));
            assert!(!s.stripe(2).is_locked());
        }
        for b in 0..8 {
            assert!(!s.stripe(b).is_locked(), "released {b}");
        }
        // Empty and full-width batches are legal.
        assert_eq!(s.lock_batch(&[]).stripes_held(), 0);
        let all: Vec<usize> = (0..MAX_BATCH_BUCKETS).collect();
        assert_eq!(s.lock_batch(&all).stripes_held(), 8);
    }

    #[test]
    fn lock_batch_composes_with_pair_and_multi_ordering() {
        // Nested acquisition above the batch's highest stripe stays legal
        // under the auditor, mirroring how the write pipeline's per-key
        // fallback (batch guard dropped first) and independent pair
        // lockers interleave.
        let s = LockStripes::new(16);
        let g = s.lock_batch(&[1, 4, 2]);
        let _h = s.lock_pair(9, 12);
        drop(g);
    }

    #[test]
    #[should_panic(expected = "lock-order violation")]
    #[cfg(debug_assertions)]
    fn auditor_rejects_pair_below_held_batch() {
        let s = LockStripes::new(16);
        let _g = s.lock_batch(&[5, 9]);
        let _bad = s.lock_pair(2, 3);
    }

    #[test]
    fn rounds_stripe_count_to_power_of_two() {
        assert_eq!(LockStripes::new(5).len(), 8);
        assert_eq!(LockStripes::new(2048).len(), 2048);
        assert_eq!(LockStripes::new(0).len(), 1);
    }

    #[test]
    fn lock_all_excludes_pair_lockers() {
        let s = LockStripes::new(4);
        let g = s.lock_all();
        for i in 0..4 {
            assert!(s.stripe(i).is_locked());
        }
        drop(g);
        for i in 0..4 {
            assert!(!s.stripe(i).is_locked());
        }
    }

    #[test]
    fn pair_lock_mutual_exclusion_under_contention() {
        // Classic increment test: two buckets on two stripes, many
        // threads, counter protected by the pair lock.
        let s = LockStripes::new(16);
        let counter = AtomicUsize::new(0);
        let mut shadow = 0usize;
        let shadow_ptr = SendPtr(&mut shadow as *mut usize);
        const THREADS: usize = 4;
        const PER: usize = 2000;
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let s = &s;
                let counter = &counter;
                scope.spawn(move || {
                    let shadow_ptr = shadow_ptr;
                    for i in 0..PER {
                        let b1 = (t + i) % 16;
                        let b2 = (t * 7 + i) % 16;
                        let _g = s.lock_pair(b1, b2);
                        // Only safe because every thread locks *some*
                        // stripe pair... which does NOT serialize them.
                        // Use bucket 3 & 5 always for the shared counter:
                        drop(_g);
                        let _g = s.lock_pair(3, 5);
                        // SAFETY: all mutation happens under the (3,5)
                        // pair lock, serializing access.
                        unsafe { *shadow_ptr.0 += 1 };
                        counter.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(shadow, THREADS * PER);
        assert_eq!(counter.load(Ordering::Relaxed), THREADS * PER);
    }

    #[test]
    fn padded_lock_counters_fit_one_cache_line() {
        assert_eq!(std::mem::size_of::<PaddedLock>(), 64);
        assert_eq!(std::mem::align_of::<PaddedLock>(), 64);
    }

    #[test]
    fn lock_stats_count_acquisitions_and_contention() {
        let s = LockStripes::new(4);
        assert_eq!(s.lock_stats().acquisitions, 0);
        drop(s.lock_pair(0, 1)); // two stripes
        drop(s.lock_pair(2, 2)); // one stripe
        drop(s.lock_all()); // four stripes
        drop(s.lock_multi([0, 1, 2])); // three stripes
        let st = s.lock_stats();
        assert_eq!(st.acquisitions, 2 + 1 + 4 + 3);
        assert_eq!(st.contended, 0, "single-threaded: no contention");
        assert_eq!(st.spin_waits.count(), 0);
        s.reset_lock_stats();
        assert_eq!(s.lock_stats().acquisitions, 0);
    }

    #[test]
    fn contended_acquisitions_record_spin_waits() {
        let s = LockStripes::new(2);
        let barrier = std::sync::Barrier::new(2);
        std::thread::scope(|scope| {
            let held = s.lock_pair(0, 0);
            let (s2, b2) = (&s, &barrier);
            let t = scope.spawn(move || {
                b2.wait();
                drop(s2.lock_pair(0, 0)); // blocks until main unlocks
            });
            barrier.wait();
            std::thread::sleep(std::time::Duration::from_millis(20));
            drop(held);
            t.join().unwrap();
        });
        let st = s.lock_stats();
        assert_eq!(st.acquisitions, 2);
        assert_eq!(st.contended, 1);
        assert_eq!(st.spin_waits.count(), 1);
        assert!(st.contended <= st.acquisitions);
    }

    #[test]
    fn spinlock_guards() {
        let l = SpinLock::new();
        {
            let _g = l.lock();
            assert!(l.is_locked());
        }
        assert!(!l.is_locked());
    }

    #[derive(Clone, Copy)]
    struct SendPtr(*mut usize);
    // SAFETY: test-only; the pointee outlives the scope and access is
    // serialized by the lock under test.
    unsafe impl Send for SendPtr {}

    #[test]
    fn multi_lock_dedupes_shared_stripes() {
        let s = LockStripes::new(8);
        {
            let g = s.lock_multi([1, 9, 3]); // 1 and 9 share a stripe
            assert!(g.covers(1));
            assert!(g.covers(9));
            assert!(g.covers(3));
            assert!(!g.covers(4));
            assert!(s.stripe(1).is_locked());
            assert!(s.stripe(3).is_locked());
        }
        assert!(!s.stripe(1).is_locked());
        assert!(!s.stripe(3).is_locked());
        {
            let _g = s.lock_multi([5, 5, 5]);
            assert!(s.stripe(5).is_locked());
        }
        assert!(!s.stripe(5).is_locked());
    }

    #[test]
    fn multi_lock_orders_against_pair_lock() {
        // Interleave lock_multi and lock_pair over overlapping stripes
        // from several threads; ordered acquisition must not deadlock.
        let s = LockStripes::new(4);
        let hits = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let s = &s;
                let hits = &hits;
                scope.spawn(move || {
                    for i in 0..500 {
                        if (t + i) % 2 == 0 {
                            let _g = s.lock_multi([i % 4, (i + 1) % 4, (i + 3) % 4]);
                            hits.fetch_add(1, Ordering::Relaxed);
                        } else {
                            let _g = s.lock_pair((i + 2) % 4, i % 4);
                            hits.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 2000);
    }

    #[test]
    fn epoch_pin_blocks_reclamation_until_dropped() {
        let r = EpochRegistry::new();
        assert_eq!(r.min_active(), u64::MAX, "no pins: everything freeable");
        let g = r.pin();
        let before = r.min_active();
        assert_ne!(before, u64::MAX);
        let tag = r.retire_epoch();
        // The pre-existing pin observed an epoch <= tag, so the retired
        // allocation is not yet freeable.
        assert!(r.min_active() <= tag);
        drop(g);
        // A fresh pin starts after the retire; it must not hold the tag back.
        let _g2 = r.pin();
        assert!(r.min_active() > tag, "post-retire pin observes newer epoch");
    }

    #[test]
    fn epoch_nested_pins_keep_oldest() {
        let r = EpochRegistry::new();
        // Two pins from the same thread share a slot; the second must not
        // advance the slot's published epoch past the first.
        let g1 = r.pin();
        let floor = r.min_active();
        r.retire_epoch();
        let g2 = r.pin();
        assert_eq!(r.min_active(), floor, "nested pin kept the older epoch");
        drop(g1);
        drop(g2);
        assert_eq!(r.min_active(), u64::MAX);
    }

    /// Deterministic ordering probe: `lock_pair` must sort its stripes,
    /// so descending arguments still acquire ascending. The CI mutation
    /// smoke test breaks the sort and expects the auditor to fail this.
    #[test]
    fn lock_pair_sorts_descending_arguments() {
        let stripes = LockStripes::new(8);
        let g = stripes.lock_pair(7, 3);
        assert!(g.covers(7) && g.covers(3));
        drop(g);
        let g = stripes.lock_multi([6, 1, 4]);
        drop(g);
        let _all = stripes.lock_all();
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "lock-order violation")]
    fn auditor_rejects_descending_nested_acquisition() {
        let stripes = LockStripes::new(8);
        let _outer = stripes.lock_pair(5, 5);
        let _inner = stripes.lock_pair(3, 3); // 3 < 5: would deadlock
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "lock-order violation")]
    fn auditor_rejects_lock_all_under_held_stripe() {
        let stripes = LockStripes::new(8);
        let _outer = stripes.lock_pair(2, 2);
        let _all = stripes.lock_all(); // would self-deadlock on stripe 2
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "epoch pin while holding stripe locks")]
    fn auditor_rejects_pin_while_holding_stripe() {
        let stripes = LockStripes::new(8);
        let r = EpochRegistry::new();
        let _g = stripes.lock_pair(1, 2);
        let _pin = r.pin(); // lock/pin inversion
    }

    /// Two tables have independent stripe orders: interleaved
    /// acquisition across tables is legitimate (migration holds the
    /// map's stripes only, but keep the auditor honest about scoping).
    #[cfg(debug_assertions)]
    #[test]
    fn auditor_scopes_order_per_table() {
        let a = LockStripes::new(8);
        let b = LockStripes::new(8);
        let _ga = a.lock_pair(6, 6);
        let _gb = b.lock_pair(2, 2); // 2 < 6 but a different table
    }

    #[test]
    fn epoch_concurrent_pin_unpin_balances() {
        let r = EpochRegistry::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let r = &r;
                scope.spawn(move || {
                    for _ in 0..2000 {
                        let _g = r.pin();
                        std::hint::spin_loop();
                    }
                });
            }
        });
        assert_eq!(r.min_active(), u64::MAX, "all pins released");
    }
}
