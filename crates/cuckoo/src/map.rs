//! A libcuckoo-style general-purpose concurrent map (paper §7).
//!
//! The paper's research table trades generality for speed: fixed-size
//! [`Plain`](htm::Plain) keys and values, no growth. §7 describes the
//! production descendant, libcuckoo: "an easy-to-use interface that
//! supports variable length key value pairs of arbitrary types, including
//! those with pointers or strings, provides iterators, and dynamically
//! resizes itself as it fills. The price of this generality is that it
//! uses locks for reads as well as writes, so that pointer-valued items
//! can be safely dereferenced."
//!
//! [`CuckooMap`] is that design:
//!
//! - arbitrary `K: Hash + Eq`, `V` (owned, dropped correctly);
//! - **reads take the bucket-pair stripe lock** (no torn-value hazard, so
//!   no `Plain` bound; 5–20 % slower than optimistic reads per the
//!   paper);
//! - inserts still use lock-free BFS path discovery — the search touches
//!   only atomic metadata (occupancy bitmaps and tags), never keys — with
//!   per-displacement pair-locked validated execution, exactly like
//!   `cuckoo+`;
//! - **incremental expansion** (default): when a path search fails, a
//!   doubled table is allocated and buckets migrate in fixed-size chunks
//!   under their stripe locks only. Writers help-migrate the chunks
//!   covering their own candidate buckets before operating (and sweep one
//!   extra chunk so the tail completes); readers route through a
//!   two-table lookup gated by per-chunk migration watermarks and never
//!   block on migration. No operation ever stalls for a whole-table
//!   rehash. [`ResizeMode::StopTheWorld`] keeps the old behavior — the
//!   table doubles under the full-stripe lock — as a baseline and
//!   fallback.
//! - **quiescence-based reclamation**: retired bucket arrays go to a
//!   graveyard stamped with an epoch from a striped
//!   [`EpochRegistry`]; they are freed once every in-flight operation
//!   pinned before the retirement has finished, so in-flight lock-free
//!   searches never dereference freed memory (their stale paths simply
//!   fail validation) and long-running processes no longer leak one
//!   table per doubling.

use crate::counter::ShardedCounter;
use crate::error::{InsertError, UpsertOutcome};
use crate::hash::DefaultHashBuilder;
use crate::hashing::{hash_of, key_slots, slots_from_hash, KeySlots};
use crate::raw::RawTable;
use crate::search::{self, bfs, exec, EvictionPolicy, PathEntry};
use crate::sync::{EpochRegistry, LockStripes, DEFAULT_STRIPES, MAX_BATCH_BUCKETS, WRITE_GROUP};
use crate::stats::TableMetrics;
use crate::DEFAULT_MAX_SEARCH_SLOTS;
use core::hash::{BuildHasher, Hash};
use crate::sync2::atomic::{AtomicPtr, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use crate::sync2::Mutex;

/// How [`CuckooMap`] grows when a path search fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResizeMode {
    /// Chunked, cooperative migration: operations keep running against an
    /// old/new table pair while buckets move a chunk at a time. The
    /// default.
    Incremental,
    /// The classic behavior: take every stripe lock and rehash the whole
    /// table in one multi-millisecond critical section. Kept as the
    /// measurable baseline for the `resize_latency` bench.
    StopTheWorld,
}

/// Buckets migrated per claimed chunk. Bounds the pause any single
/// operation can absorb while helping: one chunk is at most
/// `MIGRATION_CHUNK * B` entry moves, each under briefly-held stripe
/// locks. Kept small — a write that lands on a not-yet-migrated bucket
/// must drive that bucket's chunk to DONE before it can proceed, so the
/// chunk *is* the write-latency tax during an expansion; at 4 buckets
/// (≤32 entries, single-digit microseconds) the tax stays well under
/// typical arrival gaps, while a near-full doubling still finishes
/// within a few thousand writes.
const MIGRATION_CHUNK: usize = 4;

/// One in this many writes (that land during a migration) volunteers to
/// sweep an extra chunk beyond its own mandatory ones. See
/// [`CuckooMap::writer_table`].
const HELP_SWEEP_INTERVAL: u64 = 8;

/// Soft bound on retired allocations parked in the graveyard before a
/// retire forces a drain attempt. Purely advisory: entries still pinned
/// by in-flight operations survive the drain regardless.
const GRAVEYARD_SOFT_CAP: usize = 4;

/// Chunk watermark states: `PENDING → BUSY → DONE`, monotonic.
const CHUNK_PENDING: u8 = 0;
const CHUNK_BUSY: u8 = 1;
const CHUNK_DONE: u8 = 2;

/// Shared descriptor of one in-flight incremental expansion.
///
/// `storage` keeps pointing at `old` until the last chunk completes, so
/// a thread that observed no migration still reads a coherent (if
/// stale) table pointer; every path re-validates under its stripe locks.
struct Migration<K, V, const B: usize> {
    /// The table being drained (== `storage` until finalization).
    old: *mut RawTable<K, V, B>,
    /// The doubled table being filled.
    new: *mut RawTable<K, V, B>,
    /// Per-chunk watermark; index = old bucket index / [`MIGRATION_CHUNK`].
    chunk_states: Box<[AtomicU8]>,
    /// Number of chunks in state `DONE`; the thread that completes the
    /// last one finalizes the migration.
    chunks_done: AtomicUsize,
    /// Rotating start point for cooperative sweeps, so helpers spread out
    /// instead of contending on the same chunk.
    next_hint: AtomicUsize,
}

impl<K, V, const B: usize> Migration<K, V, B> {
    fn n_chunks(&self) -> usize {
        self.chunk_states.len()
    }

    #[inline]
    fn chunk_of(bucket: usize) -> usize {
        bucket / MIGRATION_CHUNK
    }

    #[inline]
    fn chunk_done(&self, chunk: usize) -> bool {
        // ORDERING: migration.chunk-poll
        self.chunk_states[chunk].load(Ordering::Acquire) == CHUNK_DONE
    }
}

/// A retired allocation awaiting quiescence.
enum RetiredAlloc<K, V, const B: usize> {
    Table(Box<RawTable<K, V, B>>),
    Desc(Box<Migration<K, V, B>>),
}

struct Retired<K, V, const B: usize> {
    /// Epoch stamped at retirement; freeable once
    /// `EpochRegistry::min_active()` exceeds it.
    epoch: u64,
    alloc: RetiredAlloc<K, V, B>,
}

impl<K, V, const B: usize> Retired<K, V, B> {
    fn memory_bytes(&self) -> usize {
        match &self.alloc {
            RetiredAlloc::Table(t) => t.memory_bytes(),
            RetiredAlloc::Desc(d) => d.chunk_states.len(),
        }
    }
}

/// A dynamically-resizing concurrent cuckoo map for arbitrary key/value
/// types (locked reads).
///
/// # Examples
///
/// ```
/// use cuckoo::CuckooMap;
///
/// let m: CuckooMap<String, Vec<u32>> = CuckooMap::new();
/// m.insert("a".into(), vec![1, 2])?;
/// m.modify(&"a".to_string(), |v| v.push(3));
/// assert_eq!(m.get_with(&"a".to_string(), |v| v.len()), Some(3));
///
/// // Consistent whole-table iteration under the table lock:
/// let locked = m.lock_table();
/// assert_eq!(locked.iter().count(), 1);
/// # drop(locked);
/// # Ok::<(), cuckoo::InsertError>(())
/// ```
pub struct CuckooMap<K, V, const B: usize = 8, S = DefaultHashBuilder> {
    /// Current bucket array. During an incremental migration this stays
    /// the *old* table until the last chunk completes; swapped under
    /// `resize_lock` (plus all stripes in the stop-the-world paths).
    storage: AtomicPtr<RawTable<K, V, B>>,
    /// In-flight incremental expansion, or null. Transitions
    /// null → descriptor (begin) → null (finalize/emergency), all
    /// serialized by `resize_lock`.
    migration: AtomicPtr<Migration<K, V, B>>,
    /// Serializes begin/finalize/emergency so exactly one resolution of
    /// each migration wins. Always acquired *before* any stripe lock.
    resize_lock: Mutex<()>,
    resize_mode: ResizeMode,
    /// How the insert slow path plans kick-out eviction (default BFS).
    eviction: EvictionPolicy,
    stripes: LockStripes,
    hash_builder: S,
    count: ShardedCounter,
    max_search_slots: usize,
    /// Tracks in-flight operations so retired allocations are freed only
    /// after every operation that could hold their pointer has finished.
    epochs: EpochRegistry,
    /// Retired allocations awaiting quiescence. Boxed so raced pointers
    /// into a retired table stay stable when the vector reallocates.
    graveyard: Mutex<Vec<Retired<K, V, B>>>,
    /// Write counter sampling which migration-era writes volunteer an
    /// extra chunk sweep (see [`HELP_SWEEP_INTERVAL`]).
    help_tick: AtomicU64,
    /// Total cuckoo-path displacement steps ever executed. Correctness-
    /// bearing (not a resettable metric): [`scan`](Self::scan) validates
    /// it to detect an entry hopping between stripes mid-scan, which
    /// would otherwise let a live key escape a fuzzy snapshot.
    displacements: AtomicU64,
    /// Observability counters (migration progress, graveyard depth).
    /// Boxed so the counters don't dilute the struct's hot cache lines.
    table_metrics: Box<TableMetrics>,
}

// SAFETY: the map owns its entries (moving the map moves them) and
// synchronizes all shared access through the stripe locks; `K`/`V` cross
// threads both by move (displacement, expansion) and by reference
// (lookups), hence `Send + Sync` on both. The hasher is shared by
// reference.
unsafe impl<K: Send + Sync, V: Send + Sync, const B: usize, S: Send + Sync> Send
    for CuckooMap<K, V, B, S>
{
}
// SAFETY: as above.
unsafe impl<K: Send + Sync, V: Send + Sync, const B: usize, S: Send + Sync> Sync
    for CuckooMap<K, V, B, S>
{
}

impl<K, V, const B: usize> CuckooMap<K, V, B, DefaultHashBuilder>
where
    K: Hash + Eq,
{
    /// Creates a map with at least `capacity` slots.
    pub fn with_capacity(capacity: usize) -> Self {
        Self::with_capacity_and_hasher(capacity, DefaultHashBuilder::new())
    }

    /// Creates an empty map with a small initial capacity.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates a map with an explicit [`ResizeMode`] (the default is
    /// [`ResizeMode::Incremental`]).
    pub fn with_capacity_and_mode(capacity: usize, mode: ResizeMode) -> Self {
        let mut map = Self::with_capacity(capacity);
        map.resize_mode = mode;
        map
    }

    /// Creates a map with an explicit [`EvictionPolicy`] for the insert
    /// slow path (the default is [`EvictionPolicy::Bfs`]).
    pub fn with_capacity_and_eviction(capacity: usize, policy: EvictionPolicy) -> Self {
        let mut map = Self::with_capacity(capacity);
        map.eviction = policy;
        map
    }
}

impl<K, V, const B: usize> Default for CuckooMap<K, V, B, DefaultHashBuilder>
where
    K: Hash + Eq,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V, const B: usize, S> CuckooMap<K, V, B, S>
where
    K: Hash + Eq,
    S: BuildHasher,
{
    /// Creates a map with an explicit hasher.
    pub fn with_capacity_and_hasher(capacity: usize, hasher: S) -> Self {
        let raw = Box::new(RawTable::with_capacity(capacity));
        CuckooMap {
            storage: AtomicPtr::new(Box::into_raw(raw)),
            migration: AtomicPtr::new(std::ptr::null_mut()),
            resize_lock: Mutex::new(()),
            resize_mode: ResizeMode::Incremental,
            eviction: EvictionPolicy::Bfs,
            stripes: LockStripes::new(DEFAULT_STRIPES),
            hash_builder: hasher,
            count: ShardedCounter::new(),
            max_search_slots: DEFAULT_MAX_SEARCH_SLOTS,
            epochs: EpochRegistry::new(),
            graveyard: Mutex::new(Vec::new()),
            help_tick: AtomicU64::new(0),
            displacements: AtomicU64::new(0),
            table_metrics: Box::new(TableMetrics::new()),
        }
    }

    /// How this map resizes.
    pub fn resize_mode(&self) -> ResizeMode {
        self.resize_mode
    }

    /// How the insert slow path plans kick-out eviction.
    pub fn eviction(&self) -> EvictionPolicy {
        self.eviction
    }

    /// Whether an incremental expansion is currently in flight.
    pub fn is_migrating(&self) -> bool {
        !self.migration.load(Ordering::SeqCst).is_null()
    }

    /// The observability counters (migration progress, graveyard depth).
    pub fn metrics(&self) -> &TableMetrics {
        &self.table_metrics
    }

    /// Appends this map's metric sample set under the stable `cuckoo_*`
    /// exposition names. This map's reads are lock-based (no seqlock
    /// retries) and it keeps no path stats, so those families report
    /// zero; the migration and lock-stripe families are live.
    pub fn metric_samples(&self, out: &mut Vec<metrics::Sample>) {
        self.table_metrics.collect(
            &self.stripes.lock_stats(),
            &crate::stats::PathStatsSnapshot::default(),
            out,
        );
    }

    /// Resets every metric family this map exports (not atomic with
    /// respect to concurrent operations).
    pub fn reset_metrics(&self) {
        self.table_metrics.reset();
        self.stripes.reset_lock_stats();
    }

    /// The current bucket array.
    ///
    /// The reference is only guaranteed live while the caller holds an
    /// epoch pin (every public operation takes one): retired arrays are
    /// freed once the registry proves no pinned operation can still hold
    /// them.
    #[inline]
    fn current(&self) -> &RawTable<K, V, B> {
        // SAFETY: callers hold an epoch pin (or `&mut self`), so the
        // loaded pointer cannot be reclaimed while in use.
        unsafe { &*self.storage.load(Ordering::SeqCst) }
    }

    #[inline]
    fn is_current(&self, raw: &RawTable<K, V, B>) -> bool {
        std::ptr::eq(self.storage.load(Ordering::SeqCst), raw)
    }

    /// Normal-path validation, checked *inside* the stripe locks: `raw`
    /// is still the live table and no migration has begun. The second
    /// clause is load-bearing — once a migration starts, buckets drain
    /// old → new, and a write landing in an already-migrated old bucket
    /// (or a read trusting one) would be lost.
    #[inline]
    fn table_is_stable(&self, raw: &RawTable<K, V, B>) -> bool {
        self.is_current(raw) && self.migration.load(Ordering::SeqCst).is_null()
    }

    /// Migration-path validation, checked inside the stripe locks on the
    /// *new* table: the migration `m` is still in flight, or it finalized
    /// and `m`'s new table became current (operating on it is then just a
    /// normal-path operation). A different live migration or an emergency
    /// rebuild invalidates the caller's view.
    ///
    /// # Safety
    ///
    /// `m` must be a descriptor the caller observed while pinned.
    #[inline]
    fn migration_still_targets(&self, m: *mut Migration<K, V, B>) -> bool {
        let cur = self.migration.load(Ordering::SeqCst);
        if cur == m {
            return true;
        }
        if !cur.is_null() {
            return false;
        }
        // SAFETY: caller is pinned and observed `m` live, so the
        // descriptor is at worst retired-but-not-freed.
        let mig = unsafe { &*m };
        self.storage.load(Ordering::SeqCst) == mig.new
    }

    /// Looks up `key`, applying `f` to the value under the lock.
    ///
    /// Readers never help (or wait for) a migration: during one they
    /// check the old table, then the new — correct because entries only
    /// ever move old → new, atomically under both tables' stripe locks.
    pub fn get_with<R>(&self, key: &K, f: impl FnOnce(&V) -> R) -> Option<R> {
        let _pin = self.epochs.pin();
        // Hash exactly once: retries and the two-table migration path
        // re-derive per-mask slots from this hash instead of rehashing.
        let h = hash_of(&self.hash_builder, key);
        self.get_with_hashed(h, key, f)
    }

    /// [`get_with`](Self::get_with) body, reusing an already-computed
    /// hash. Caller must hold an epoch pin.
    fn get_with_hashed<R>(&self, h: u64, key: &K, f: impl FnOnce(&V) -> R) -> Option<R> {
        loop {
            let m = self.migration.load(Ordering::SeqCst);
            if !m.is_null() {
                // SAFETY: pinned; the descriptor and both tables outlive
                // this operation even if the migration resolves.
                let mig = unsafe { &*m };
                let old = unsafe { &*mig.old };
                let new = unsafe { &*mig.new };
                let ks_old = slots_from_hash(h, old.mask());
                let both_done = mig.chunk_done(Migration::<K, V, B>::chunk_of(ks_old.i1))
                    && mig.chunk_done(Migration::<K, V, B>::chunk_of(ks_old.i2));
                if !both_done {
                    let _g = self.stripes.lock_pair(ks_old.i1, ks_old.i2);
                    if self.migration.load(Ordering::SeqCst) != m {
                        continue; // emergency rebuild resolved it; retry
                    }
                    if let Some((bi, s)) = Self::locked_find(old, ks_old, key) {
                        // SAFETY: pair lock held; chunk movers need these
                        // stripes too, so the slot is stable.
                        return Some(f(unsafe { &*old.bucket(bi).val_ptr(s) }));
                    }
                    // Miss in old: the entry is in new or absent, and can
                    // never move back, so checking new second is sound.
                }
                let ks = slots_from_hash(h, new.mask());
                let _g = self.stripes.lock_pair(ks.i1, ks.i2);
                if !self.migration_still_targets(m) {
                    continue;
                }
                return Self::locked_find(new, ks, key)
                    // SAFETY: pair lock held; the slot is occupied.
                    .map(|(bi, s)| f(unsafe { &*new.bucket(bi).val_ptr(s) }));
            }
            let raw = self.current();
            let ks = slots_from_hash(h, raw.mask());
            let _g = self.stripes.lock_pair(ks.i1, ks.i2);
            if !self.table_is_stable(raw) {
                continue; // expanded or migration began while locking
            }
            return Self::locked_find(raw, ks, key)
                // SAFETY: pair lock held; the slot is occupied.
                .map(|(bi, s)| f(unsafe { &*raw.bucket(bi).val_ptr(s) }));
        }
    }

    /// Batched lookup applying `f` to each found value under its bucket
    /// lock: one result per key, in order (`None` = miss). Equivalent to
    /// [`get_with`](Self::get_with) per key, but groups of
    /// [`MULTIGET_GROUP`](crate::read::MULTIGET_GROUP) keys are
    /// software-pipelined — all hashes computed up front, candidate
    /// metadata then tag-hit data buckets prefetched — so the per-key
    /// cache misses overlap before the (serializing) per-key lock
    /// acquisitions. During an in-flight migration keys fall back to the
    /// two-table single-key path individually.
    pub fn get_with_many<R>(
        &self,
        keys: &[K],
        mut f: impl FnMut(&V) -> R,
    ) -> Vec<Option<R>> {
        let _pin = self.epochs.pin();
        let mut out = Vec::with_capacity(keys.len());
        let mut hashes = [0u64; crate::read::MULTIGET_GROUP];
        let mut ks_buf = [KeySlots { i1: 0, i2: 0, tag: 1 }; crate::read::MULTIGET_GROUP];
        for group in keys.chunks(crate::read::MULTIGET_GROUP) {
            let raw = self.current();
            let migrating = !self.migration.load(Ordering::SeqCst).is_null();
            // Stage 1: hash every key; on the stable path also prefetch
            // both candidate metadata words.
            for (j, key) in group.iter().enumerate() {
                let h = hash_of(&self.hash_builder, key);
                hashes[j] = h;
                if !migrating {
                    let ks = slots_from_hash(h, raw.mask());
                    ks_buf[j] = ks;
                    raw.prefetch_meta(ks.i1);
                    raw.prefetch_meta(ks.i2);
                }
            }
            if migrating {
                // Two-table lookups take locks per table anyway; the
                // single-key path already orders those correctly.
                for (j, key) in group.iter().enumerate() {
                    out.push(self.get_with_hashed(hashes[j], key, &mut f));
                }
                continue;
            }
            // Stage 2: SWAR-probe the (warm) metadata and prefetch entry
            // storage for buckets reporting a candidate. The masks are
            // only prefetch hints — the stage-3 probe re-reads metadata
            // under the pair lock — so racing writers cost at most a
            // wasted hint.
            for ks in ks_buf.iter().take(group.len()) {
                let m1 = raw.meta(ks.i1);
                if m1.match_tag_mask(ks.tag) & m1.occupied_mask() != 0 {
                    raw.prefetch_data(ks.i1);
                }
                let m2 = raw.meta(ks.i2);
                if ks.i2 != ks.i1 && m2.match_tag_mask(ks.tag) & m2.occupied_mask() != 0 {
                    raw.prefetch_data(ks.i2);
                }
            }
            // Stage 3: per-key locked probe; a table swap or migration
            // begun mid-group demotes that key to the single-key path.
            for (j, key) in group.iter().enumerate() {
                let ks = ks_buf[j];
                let g = self.stripes.lock_pair(ks.i1, ks.i2);
                if !self.table_is_stable(raw) {
                    drop(g);
                    out.push(self.get_with_hashed(hashes[j], key, &mut f));
                    continue;
                }
                out.push(
                    Self::locked_find(raw, ks, key)
                        // SAFETY: pair lock held; the slot is occupied.
                        .map(|(bi, s)| f(unsafe { &*raw.bucket(bi).val_ptr(s) })),
                );
            }
        }
        out
    }

    /// Batched [`get`](Self::get): one cloned value per key, in order.
    pub fn get_many(&self, keys: &[K]) -> Vec<Option<V>>
    where
        V: Clone,
    {
        self.get_with_many(keys, V::clone)
    }

    /// [`get_many`](Self::get_many) into a caller-provided buffer
    /// (cleared first), so steady-state batched readers reuse one
    /// allocation.
    pub fn get_many_into(&self, keys: &[K], out: &mut Vec<Option<V>>)
    where
        V: Clone,
    {
        out.clear();
        out.append(&mut self.get_with_many(keys, V::clone));
    }

    /// Looks up `key`, returning a clone of its value.
    pub fn get(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        self.get_with(key, V::clone)
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.get_with(key, |_| ()).is_some()
    }

    /// Inserts `key → val`; `Err(KeyExists)` leaves the old value.
    ///
    /// Expands the table automatically instead of returning
    /// `Err(TableFull)`.
    pub fn insert(&self, key: K, val: V) -> Result<(), InsertError> {
        match self.insert_inner(key, val, false) {
            Ok(UpsertOutcome::Inserted) => Ok(()),
            Ok(UpsertOutcome::Updated) => unreachable!("non-upsert updated"),
            Err(e) => Err(e),
        }
    }

    /// Inserts or replaces, returning which happened.
    pub fn upsert(&self, key: K, val: V) -> UpsertOutcome {
        self.insert_inner(key, val, true)
            .expect("upsert cannot fail: expansion handles fullness")
    }

    /// Batched insert: one result per entry, in order, equivalent to
    /// calling [`insert`](Self::insert) per entry (duplicates within a
    /// batch included). Groups of [`WRITE_GROUP`] entries are
    /// software-pipelined: all keys hashed and both candidate metadata
    /// lines prefetched with write intent, then the group's stripe set
    /// acquired in one ascending, deduplicated
    /// [`lock_batch`](LockStripes::lock_batch) pass, then each key
    /// probed (vector tag match) and written in request order. Entries
    /// needing a cuckoo path search — or hitting an in-flight migration
    /// — individually fall back to the single-key insert.
    pub fn insert_many(&self, entries: Vec<(K, V)>) -> Vec<Result<(), InsertError>> {
        self.write_many_inner(entries, false)
            .into_iter()
            .map(|r| match r {
                Ok(UpsertOutcome::Inserted) => Ok(()),
                Ok(UpsertOutcome::Updated) => unreachable!("non-upsert updated"),
                Err(e) => Err(e),
            })
            .collect()
    }

    /// Batched [`upsert`](Self::upsert): same pipeline and equivalence
    /// contract as [`insert_many`](Self::insert_many), reporting which of
    /// insert/update happened per entry.
    pub fn upsert_many(&self, entries: Vec<(K, V)>) -> Vec<UpsertOutcome> {
        self.write_many_inner(entries, true)
            .into_iter()
            .map(|r| r.expect("upsert cannot fail: expansion handles fullness"))
            .collect()
    }

    /// The pipelined engine behind `insert_many`/`upsert_many`.
    fn write_many_inner(
        &self,
        entries: Vec<(K, V)>,
        upsert: bool,
    ) -> Vec<Result<UpsertOutcome, InsertError>> {
        let _pin = self.epochs.pin();
        let n = entries.len();
        let mut out = Vec::with_capacity(n);
        // `Option` slots so the group loop can move each entry exactly
        // once (into a bucket, or into the single-key fallback).
        let mut slots: Vec<Option<(K, V)>> = entries.into_iter().map(Some).collect();
        let mut ks_buf = [KeySlots { i1: 0, i2: 0, tag: 1 }; WRITE_GROUP];
        let mut buckets = [0usize; MAX_BATCH_BUCKETS];
        let mut start = 0usize;
        while start < n {
            let glen = WRITE_GROUP.min(n - start);
            let group = &mut slots[start..start + glen];
            self.table_metrics.insert_batch_groups.inc();
            self.table_metrics.insert_batch_keys.add(glen as u64);
            let raw = self.current();
            let migrating = !self.migration.load(Ordering::SeqCst).is_null();
            // Stage 1: hash every key; on the stable path also prefetch
            // both candidate metadata lines with write intent.
            if !migrating {
                for (j, e) in group.iter().enumerate() {
                    let (key, _) = e.as_ref().expect("slot unconsumed before its group runs");
                    let ks = slots_from_hash(hash_of(&self.hash_builder, key), raw.mask());
                    ks_buf[j] = ks;
                    buckets[2 * j] = ks.i1;
                    buckets[2 * j + 1] = ks.i2;
                    raw.prefetch_meta_write(ks.i1);
                    raw.prefetch_meta_write(ks.i2);
                }
            }
            if migrating {
                // Migration in flight: the two-table single-key writer
                // already orders its per-chunk work correctly; run the
                // whole group through it.
                self.table_metrics.insert_batch_fallbacks.add(glen as u64);
                for e in group.iter_mut() {
                    let (key, val) = e.take().expect("slot unconsumed");
                    out.push(self.insert_inner(key, val, upsert));
                }
                start += glen;
                continue;
            }
            // Stages 2+3 under the group's coalesced batch lock.
            let g = self.stripes.lock_batch(&buckets[..glen * 2]);
            if !self.table_is_stable(raw) {
                // The table swapped (or a migration began) between
                // `current()` and the lock: demote the whole group.
                drop(g);
                self.table_metrics.insert_batch_fallbacks.add(glen as u64);
                for e in group.iter_mut() {
                    let (key, val) = e.take().expect("slot unconsumed");
                    out.push(self.insert_inner(key, val, upsert));
                }
                start += glen;
                continue;
            }
            // Stage 3: in request order, so duplicate keys within the
            // group observe one another exactly like a loop of single
            // inserts would. The first key whose candidate pair is full
            // demotes itself AND the rest of the group to the in-order
            // single-key path below: its path search displaces entries
            // that later keys' outcomes may depend on, so finishing the
            // group under the batch lock first would not be
            // loop-equivalent.
            let mut demote_from = glen;
            for (j, e) in group.iter_mut().enumerate() {
                let ks = ks_buf[j];
                let found = {
                    let (key, _) = e.as_ref().expect("slot unconsumed");
                    Self::locked_find(raw, ks, key)
                };
                if let Some((bi, s)) = found {
                    if upsert {
                        let (_key, val) = e.take().expect("slot unconsumed");
                        // SAFETY: batch lock covers `bi`; slot occupied
                        // (just found); readers are locked out.
                        unsafe { *raw.bucket(bi).val_ptr(s) = val };
                        out.push(Ok(UpsertOutcome::Updated));
                    } else {
                        *e = None; // drop the rejected entry
                        out.push(Err(InsertError::KeyExists));
                    }
                } else if let Some((bi, slot)) = Self::locked_empty_slot(raw, ks) {
                    let (key, val) = e.take().expect("slot unconsumed");
                    // SAFETY: batch lock held; slot empty. Keys and
                    // values move by plain writes — readers are locked
                    // out, unlike the optimistic table.
                    unsafe { raw.write_entry(bi, slot, ks.tag, key, val) };
                    self.count.add(bi, 1);
                    out.push(Ok(UpsertOutcome::Inserted));
                } else {
                    demote_from = j;
                    break;
                }
            }
            drop(g);
            if demote_from < glen {
                self.table_metrics.insert_batch_fallbacks.add((glen - demote_from) as u64);
                for e in group[demote_from..].iter_mut() {
                    let (key, val) = e.take().expect("fallback entry present");
                    out.push(self.insert_inner(key, val, upsert));
                }
            }
            start += glen;
        }
        out
    }

    /// Removes `key`, returning its value.
    pub fn remove(&self, key: &K) -> Option<V> {
        let _pin = self.epochs.pin();
        let h = hash_of(&self.hash_builder, key);
        loop {
            if let Some((new, m)) = self.writer_table(h) {
                let ks = slots_from_hash(h, new.mask());
                let _g = self.stripes.lock_pair(ks.i1, ks.i2);
                if !self.migration_still_targets(m) {
                    continue;
                }
                return match Self::locked_find(new, ks, key) {
                    Some((bi, s)) => {
                        // SAFETY: pair lock held; slot occupied.
                        let (_, v) = unsafe { new.take_entry(bi, s) };
                        self.count.add(bi, -1);
                        Some(v)
                    }
                    None => None,
                };
            }
            let raw = self.current();
            let ks = slots_from_hash(h, raw.mask());
            let _g = self.stripes.lock_pair(ks.i1, ks.i2);
            if !self.table_is_stable(raw) {
                continue;
            }
            return match Self::locked_find(raw, ks, key) {
                Some((bi, s)) => {
                    // SAFETY: pair lock held; slot occupied.
                    let (_, v) = unsafe { raw.take_entry(bi, s) };
                    self.count.add(bi, -1);
                    Some(v)
                }
                None => None,
            };
        }
    }

    /// Replaces the value of an existing key, returning the old value.
    pub fn update(&self, key: &K, val: V) -> Option<V> {
        let _pin = self.epochs.pin();
        let h = hash_of(&self.hash_builder, key);
        loop {
            if let Some((new, m)) = self.writer_table(h) {
                let ks = slots_from_hash(h, new.mask());
                let _g = self.stripes.lock_pair(ks.i1, ks.i2);
                if !self.migration_still_targets(m) {
                    continue;
                }
                return match Self::locked_find(new, ks, key) {
                    // SAFETY: pair lock held; slot occupied.
                    Some((bi, s)) => Some(std::mem::replace(
                        unsafe { &mut *new.bucket(bi).val_ptr(s) },
                        val,
                    )),
                    None => None,
                };
            }
            let raw = self.current();
            let ks = slots_from_hash(h, raw.mask());
            let _g = self.stripes.lock_pair(ks.i1, ks.i2);
            if !self.table_is_stable(raw) {
                continue;
            }
            return match Self::locked_find(raw, ks, key) {
                Some((bi, s)) => {
                    // SAFETY: pair lock held; slot occupied.
                    Some(std::mem::replace(
                        unsafe { &mut *raw.bucket(bi).val_ptr(s) },
                        val,
                    ))
                }
                None => None,
            };
        }
    }

    /// Writer-side migration checkpoint: when a migration is in flight,
    /// migrates (or waits for) the chunks covering `key`'s old-table
    /// buckets, occasionally sweeps one extra chunk so the tail
    /// completes without a dedicated thread, and returns the *new*
    /// table to operate on.
    ///
    /// `None` means no migration is in flight (operate on `current()`),
    /// or the observed migration resolved mid-checkpoint (the caller's
    /// loop re-reads state either way).
    #[allow(clippy::type_complexity)]
    fn writer_table(&self, h: u64) -> Option<(&RawTable<K, V, B>, *mut Migration<K, V, B>)> {
        let m = self.migration.load(Ordering::SeqCst);
        if m.is_null() {
            return None;
        }
        // SAFETY: caller is pinned; descriptor and tables stay live.
        let mig = unsafe { &*m };
        let old = unsafe { &*mig.old };
        let ks_old = slots_from_hash(h, old.mask());
        if !self.ensure_chunks_done(mig, m, ks_old.i1, ks_old.i2) {
            return None;
        }
        // Voluntary helping is throttled: the mandatory own-chunk work
        // above already guarantees every write lands in the new table,
        // and random keys cover the chunk space on their own. Sweeping
        // on every write would put a whole extra chunk move on every
        // write's latency; sweeping on a sampled subset keeps the
        // common write at its baseline cost while still pushing the
        // migration tail (cold chunks no write happens to cover) to
        // completion even without a background sweeper.
        // ORDERING: advisory.relaxed — a sampling tick; only steers how
        // often this writer volunteers for a sweep.
        if self.help_tick.fetch_add(1, Ordering::Relaxed).is_multiple_of(HELP_SWEEP_INTERVAL) {
            self.help_sweep(mig, m, 1);
        }
        // SAFETY: the caller is pinned and `mig` was loaded from
        // `self.migration` under that pin, so the new table it points to
        // cannot be reclaimed before the returned borrow ends (epoch
        // ordering argument: DESIGN.md §5d).
        Some((unsafe { &*mig.new }, m))
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.count.sum()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current slot capacity (doubles on expansion).
    pub fn capacity(&self) -> usize {
        self.current().total_slots()
    }

    /// Fraction of slots occupied.
    pub fn load_factor(&self) -> f64 {
        self.len() as f64 / self.capacity() as f64
    }

    /// Bytes used by the live bucket array, stripes, counters, epoch
    /// registry, any in-flight migration target, and any retired
    /// allocations still parked in the graveyard.
    pub fn memory_bytes(&self) -> usize {
        let _pin = self.epochs.pin();
        let graveyard: usize = self
            .graveyard
            .lock()
            .expect("graveyard mutex poisoned: a drain panicked mid-free")
            .iter()
            .map(|r| r.memory_bytes())
            .sum();
        let mut total = self.current().memory_bytes()
            + self.stripes.memory_bytes()
            + self.count.memory_bytes()
            + self.epochs.memory_bytes()
            + graveyard;
        let m = self.migration.load(Ordering::SeqCst);
        if !m.is_null() {
            // SAFETY: pinned; descriptor and its new table are live.
            let mig = unsafe { &*m };
            total += unsafe { &*mig.new }.memory_bytes() + mig.chunk_states.len();
        }
        total
    }

    /// Frees retired allocations unconditionally. Callers must guarantee
    /// no concurrent operations are in flight (hence `&mut self`).
    pub fn purge_retired(&mut self) {
        // `&mut self` proves no guard is live, so poison is the only
        // possible error; the retired tables are freed either way.
        self.graveyard
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clear();
    }

    /// Visits every entry under the full-table lock.
    pub fn for_each(&self, mut f: impl FnMut(&K, &V)) {
        let _pin = self.epochs.pin();
        let _g = self.lock_all_quiesced();
        let raw = self.current();
        for (bi, s) in raw.occupied_coords() {
            let b = raw.bucket(bi);
            // SAFETY: all stripes held; slots stable and occupied.
            unsafe { f(&*b.key_ptr(s), &*b.val_ptr(s)) };
        }
    }

    /// Acquires every stripe with no migration in flight, so all entries
    /// live in `current()`. A mid-flight migration is driven to
    /// completion first (entries would otherwise be split across the
    /// old/new pair); one that begins *after* we hold the stripes is
    /// harmless — no chunk can migrate until the guard drops, so
    /// `current()` still holds every entry.
    fn lock_all_quiesced(&self) -> crate::sync::AllGuard<'_> {
        loop {
            while self.help_migrate(usize::MAX) {
                crate::sync2::thread::yield_now();
            }
            let g = self.stripes.lock_all();
            if self.migration.load(Ordering::SeqCst).is_null() {
                return g;
            }
            drop(g);
        }
    }

    /// Claims and migrates up to `max_chunks` chunks of any in-flight
    /// incremental expansion. Returns whether a migration was active —
    /// so `while map.help_migrate(usize::MAX) {}` drives one to
    /// completion. Intended for background sweeper threads (`cuckood`
    /// runs one) so migrations finish even when writers go idle.
    pub fn help_migrate(&self, max_chunks: usize) -> bool {
        let _pin = self.epochs.pin();
        let m = self.migration.load(Ordering::SeqCst);
        if m.is_null() {
            return false;
        }
        // SAFETY: pinned; the descriptor stays live.
        let mig = unsafe { &*m };
        self.help_sweep(mig, m, max_chunks);
        true
    }

    /// Clones every entry out (snapshot).
    pub fn snapshot(&self) -> Vec<(K, V)>
    where
        K: Clone,
        V: Clone,
    {
        let mut out = Vec::with_capacity(self.len());
        self.for_each(|k, v| out.push((k.clone(), v.clone())));
        out
    }

    /// Visits every entry **without ever blocking readers**: one stripe
    /// lock at a time instead of [`for_each`](Self::for_each)'s
    /// full-table lock, under an epoch pin so the visited table cannot
    /// be reclaimed mid-scan.
    ///
    /// The view is *per-bucket consistent but not point-in-time*: each
    /// entry is its key's live value at the moment its stripe was
    /// visited, and concurrent writers keep running on every other
    /// stripe. That fuzziness is exactly what the durability tier's
    /// snapshot-then-replay recovery tolerates (each key's snapshot
    /// value is a state at-or-after the log rotation point, and replay
    /// of the log tail converges it — see `DESIGN.md` §5g).
    ///
    /// Returns `false` (visiting may stop early, and entries may have
    /// been visited twice) if a table swap or migration started
    /// mid-scan; the caller discards accumulated state and retries, or
    /// falls back to `for_each`. An in-flight migration is driven to
    /// completion before scanning so every entry lives in one table.
    pub fn scan(&self, mut f: impl FnMut(&K, &V)) -> bool {
        let _pin = self.epochs.pin();
        while self.help_migrate(usize::MAX) {
            crate::sync2::thread::yield_now();
        }
        if !self.migration.load(Ordering::SeqCst).is_null() {
            return false;
        }
        // A cuckoo-path displacement can hop an entry from a bucket this
        // scan has not reached yet into one it already passed — the
        // entry would silently vanish from the snapshot. Validate the
        // displacement count across the whole scan and abort on change.
        let displacements_before = self.displacements.load(Ordering::SeqCst);
        let raw = self.current();
        let nbuckets = raw.n_buckets();
        let nstripes = self.stripes.len().min(nbuckets);
        for s in 0..nstripes {
            // `stripe_of(s) == s` for `s < nstripes`; the pair guard
            // with both buckets equal holds exactly one stripe.
            let _g = self.stripes.lock_pair(s, s);
            // A migration (incremental) or table swap (stop-the-world)
            // that started since the check above strands entries
            // outside `raw`: abort, the caller restarts on the new
            // table. The pin keeps `raw` alive either way.
            if !self.migration.load(Ordering::SeqCst).is_null()
                || !std::ptr::eq(self.current(), raw)
            {
                return false;
            }
            let mut bi = s;
            while bi < nbuckets {
                let mask = raw.meta(bi).occupied_mask();
                let b = raw.bucket(bi);
                for slot in 0..B {
                    if mask & (1 << slot) != 0 {
                        // SAFETY: the stripe covering `bi` is held, so
                        // the occupied slot's entry is stable.
                        unsafe { f(&*b.key_ptr(slot), &*b.val_ptr(slot)) };
                    }
                }
                bi += self.stripes.len();
            }
        }
        self.displacements.load(Ordering::SeqCst) == displacements_before
    }

    fn insert_inner(&self, key: K, val: V, upsert: bool) -> Result<UpsertOutcome, InsertError> {
        let _pin = self.epochs.pin();
        let h = hash_of(&self.hash_builder, &key);
        let mut stale_retries = 0usize;
        loop {
            if let Some((new, m)) = self.writer_table(h) {
                // Migration in flight: our old-table chunks are drained,
                // so the key (if present) and the insert target are both
                // in the new table.
                let ks = slots_from_hash(h, new.mask());
                {
                    let _g = self.stripes.lock_pair(ks.i1, ks.i2);
                    if !self.migration_still_targets(m) {
                        continue;
                    }
                    if let Some((bi, s)) = Self::locked_find(new, ks, &key) {
                        if upsert {
                            // SAFETY: pair lock held; slot occupied.
                            unsafe { *new.bucket(bi).val_ptr(s) = val };
                            return Ok(UpsertOutcome::Updated);
                        }
                        return Err(InsertError::KeyExists);
                    }
                    if let Some((bi, slot)) = Self::locked_empty_slot(new, ks) {
                        // SAFETY: pair lock held; slot empty.
                        unsafe { new.write_entry(bi, slot, ks.tag, key, val) };
                        self.count.add(bi, 1);
                        return Ok(UpsertOutcome::Inserted);
                    }
                }
                // Candidate pair full: displace within the new table.
                let searched = search::with_scratch(|scratch| {
                    let r = search::plan(
                        self.eviction,
                        new,
                        ks.i1,
                        ks.i2,
                        self.max_search_slots,
                        true,
                        scratch,
                    );
                    if self.eviction != EvictionPolicy::Bfs {
                        self.table_metrics.record_eviction(scratch, r.is_err());
                    }
                    r.map(|()| scratch.path.clone())
                });
                match searched {
                    Err(_) => {
                        // Even the doubled table is full: rebuild bigger
                        // under the full-table lock (rare).
                        self.emergency_rebuild(m);
                    }
                    Ok(path) => {
                        if self.execute_path_on(new, &path, || self.migration_still_targets(m)) {
                            stale_retries = 0;
                        } else {
                            stale_retries += 1;
                            if stale_retries > 16 {
                                self.emergency_rebuild(m);
                                stale_retries = 0;
                            }
                        }
                    }
                }
                continue;
            }

            let raw = self.current();
            let ks = slots_from_hash(h, raw.mask());
            // Fast path under the candidate pair lock.
            {
                let _g = self.stripes.lock_pair(ks.i1, ks.i2);
                if !self.table_is_stable(raw) {
                    continue;
                }
                if let Some((bi, s)) = Self::locked_find(raw, ks, &key) {
                    if upsert {
                        // SAFETY: pair lock held; slot occupied.
                        unsafe { *raw.bucket(bi).val_ptr(s) = val };
                        return Ok(UpsertOutcome::Updated);
                    }
                    return Err(InsertError::KeyExists);
                }
                if let Some((bi, slot)) = Self::locked_empty_slot(raw, ks) {
                    // SAFETY: pair lock held; slot empty. Keys and values
                    // move by plain writes — readers are locked out,
                    // unlike the optimistic table.
                    unsafe { raw.write_entry(bi, slot, ks.tag, key, val) };
                    self.count.add(bi, 1);
                    return Ok(UpsertOutcome::Inserted);
                }
            }

            // Slow path: lock-free path search over atomic metadata only
            // (safe even for non-`Plain` keys — keys are never read).
            let searched = search::with_scratch(|scratch| {
                let r = search::plan(
                    self.eviction,
                    raw,
                    ks.i1,
                    ks.i2,
                    self.max_search_slots,
                    true,
                    scratch,
                );
                if self.eviction != EvictionPolicy::Bfs {
                    self.table_metrics.record_eviction(scratch, r.is_err());
                }
                r.map(|()| scratch.path.clone())
            });
            match searched {
                Err(_) => {
                    self.grow(raw);
                    // Re-enter with the (possibly) new table.
                }
                Ok(path) => {
                    if self.execute_path_on(raw, &path, || self.table_is_stable(raw)) {
                        stale_retries = 0;
                    } else {
                        stale_retries += 1;
                        if stale_retries > 16 {
                            // Livelock escape hatch: force an expansion.
                            self.grow(raw);
                            stale_retries = 0;
                        }
                    }
                }
            }
            // `key`/`val` were not consumed this round; loop.
        }
    }

    /// First empty slot in either candidate bucket; pair lock must be
    /// held.
    fn locked_empty_slot(raw: &RawTable<K, V, B>, ks: KeySlots) -> Option<(usize, usize)> {
        for bi in [ks.i1, ks.i2] {
            if let Some(slot) = raw.meta(bi).empty_slot() {
                return Some((bi, slot));
            }
            if ks.i2 == ks.i1 {
                break;
            }
        }
        None
    }

    /// Mode dispatch for a full table: begin an incremental migration or
    /// fall back to the stop-the-world rehash.
    fn grow(&self, seen: &RawTable<K, V, B>) {
        match self.resize_mode {
            ResizeMode::Incremental => self.begin_migration(seen),
            ResizeMode::StopTheWorld => self.expand(seen),
        }
    }

    /// Finds `key` in its candidate buckets; pair lock must be held.
    fn locked_find(raw: &RawTable<K, V, B>, ks: KeySlots, key: &K) -> Option<(usize, usize)> {
        for bi in [ks.i1, ks.i2] {
            let b = raw.bucket(bi);
            let m = raw.meta(bi);
            let mut cand = m.match_tag_mask(ks.tag) & m.occupied_mask();
            while cand != 0 {
                let s = cand.trailing_zeros() as usize;
                cand &= cand - 1;
                // SAFETY: pair lock held; slot occupied; no concurrent
                // writer can mutate it.
                if unsafe { &*b.key_ptr(s) } == key {
                    return Some((bi, s));
                }
            }
            if ks.i2 == ks.i1 {
                break;
            }
        }
        None
    }

    /// Validated per-pair-locked path execution over `raw` (which must be
    /// the table the path was discovered on). `valid` is re-checked
    /// inside every pair lock: a concurrent expansion, migration start,
    /// or emergency rebuild makes the step fail validation instead of
    /// displacing entries in a table that is being drained.
    ///
    /// Delegates to the shared hole-backwards executor
    /// ([`exec::execute_hole_backwards`]) with the plain mover
    /// ([`RawTable::move_entry`]): readers here are locked out, but the
    /// destination-before-source discipline is uniform across tables —
    /// this map used to clear the source first (`take_entry`) while its
    /// comment claimed otherwise, exactly the drift the shared executor
    /// exists to prevent.
    fn execute_path_on(
        &self,
        raw: &RawTable<K, V, B>,
        path: &[PathEntry],
        valid: impl Fn() -> bool,
    ) -> bool {
        exec::execute_hole_backwards(
            raw,
            Some(&self.stripes),
            path,
            &self.displacements,
            valid,
            RawTable::move_entry,
        )
    }

    /// Doubles the table under the full-stripe lock and rehashes every
    /// entry — the stop-the-world fallback. `seen` is the table the
    /// caller found full; if another thread already expanded, this
    /// returns immediately.
    fn expand(&self, seen: &RawTable<K, V, B>) {
        let _g = self.stripes.lock_all();
        if !self.is_current(seen) {
            return; // someone else already expanded
        }
        let old_ptr = self.storage.load(Ordering::SeqCst);
        // SAFETY: all stripes held — exclusive access to the live table.
        let old = unsafe { &*old_ptr };

        // Move every entry out of the old table.
        let coords: Vec<(usize, usize)> = old.occupied_coords().collect();
        let mut entries: Vec<(K, V)> = Vec::with_capacity(coords.len());
        for (bi, s) in coords {
            // SAFETY: all stripes held; slot occupied.
            entries.push(unsafe { old.take_entry(bi, s) });
        }

        // Rebuild at double the size; in the pathological case the rebuild
        // itself fails, keep doubling.
        let mut new_slots = old.total_slots() * 2;
        let new = loop {
            match self.try_rebuild(new_slots, &mut entries) {
                Some(table) => break table,
                None => new_slots *= 2,
            }
        };
        debug_assert!(entries.is_empty());

        self.storage.store(Box::into_raw(new), Ordering::SeqCst);
        // SAFETY: `old_ptr` came from `Box::into_raw` at construction or a
        // previous expansion, and is no longer reachable as current.
        let retired = unsafe { Box::from_raw(old_ptr) };
        self.retire([RetiredAlloc::Table(retired)]);
    }

    /// Starts an incremental migration to a doubled table: allocates the
    /// target and publishes the descriptor. No entries move here — chunks
    /// migrate via [`CuckooMap::help_migrate`] and the per-operation
    /// checkpoints. No-ops if a migration is already running or `seen` is
    /// no longer current.
    fn begin_migration(&self, seen: &RawTable<K, V, B>) {
        self.try_drain_graveyard();
        let _lk = self.resize_lock.lock().expect("resize_lock poisoned: an expansion panicked mid-flight");
        if !self.migration.load(Ordering::SeqCst).is_null() {
            return; // a migration is already in flight
        }
        if !self.is_current(seen) {
            return; // resolved by an expansion we raced with
        }
        let old_ptr = self.storage.load(Ordering::SeqCst);
        // SAFETY: caller is pinned and `seen` is current.
        let old = unsafe { &*old_ptr };
        let new = Box::new(RawTable::<K, V, B>::with_capacity(old.total_slots() * 2));
        debug_assert_eq!(new.n_buckets(), old.n_buckets() * 2);
        let n_chunks = old.n_buckets().div_ceil(MIGRATION_CHUNK);
        let desc = Box::new(Migration {
            old: old_ptr,
            new: Box::into_raw(new),
            chunk_states: (0..n_chunks).map(|_| AtomicU8::new(CHUNK_PENDING)).collect(),
            chunks_done: AtomicUsize::new(0),
            next_hint: AtomicUsize::new(0),
        });
        self.migration.store(Box::into_raw(desc), Ordering::SeqCst);
        self.table_metrics.migrations_started.inc();
    }

    /// Model-only: starts an incremental migration immediately, exactly
    /// as load-factor pressure would, so model tests can explore
    /// lookup-vs-migration interleavings without the ~thousand inserts
    /// needed to trip the organic trigger.
    #[cfg(cuckoo_model)]
    pub fn force_migration(&self) {
        let _pin = self.epochs.pin();
        self.begin_migration(self.current());
    }

    /// Migrates (or waits out) the chunks covering old-table buckets
    /// `b1`/`b2`. `false` means the migration resolved underneath us.
    fn ensure_chunks_done(
        &self,
        mig: &Migration<K, V, B>,
        m: *mut Migration<K, V, B>,
        b1: usize,
        b2: usize,
    ) -> bool {
        let c1 = Migration::<K, V, B>::chunk_of(b1);
        let c2 = Migration::<K, V, B>::chunk_of(b2);
        if !self.wait_chunk_done(mig, m, c1) {
            return false;
        }
        c2 == c1 || self.wait_chunk_done(mig, m, c2)
    }

    /// Drives chunk `c` to `DONE`: claims it if pending, else spins until
    /// its owner finishes. Spinners hold no locks, so an owner escalating
    /// to the full-table emergency rebuild cannot deadlock against them.
    fn wait_chunk_done(&self, mig: &Migration<K, V, B>, m: *mut Migration<K, V, B>, c: usize) -> bool {
        let mut spins = 0u32;
        loop {
            // ORDERING: migration.chunk-poll
            match mig.chunk_states[c].load(Ordering::Acquire) {
                CHUNK_DONE => return true,
                CHUNK_PENDING => {
                    // ORDERING: migration.chunk-claim
                    if mig.chunk_states[c]
                        .compare_exchange(
                            CHUNK_PENDING,
                            CHUNK_BUSY,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        )
                        .is_ok()
                    {
                        return self.complete_chunk(mig, m, c);
                    }
                }
                _ => {
                    if self.migration.load(Ordering::SeqCst) != m {
                        return false; // resolved by emergency rebuild
                    }
                    crate::sync::backoff(&mut spins);
                }
            }
        }
    }

    /// Migrates an owned (`BUSY`) chunk, publishes `DONE`, and finalizes
    /// the whole migration if this was the last chunk.
    fn complete_chunk(
        &self,
        mig: &Migration<K, V, B>,
        m: *mut Migration<K, V, B>,
        c: usize,
    ) -> bool {
        if !self.migrate_chunk(mig, m, c) {
            return false; // migration resolved (emergency rebuild)
        }
        // ORDERING: migration.chunk-done
        mig.chunk_states[c].store(CHUNK_DONE, Ordering::Release);
        self.table_metrics.migration_chunks.inc();
        // ORDERING: cold.seqcst — completion count; one increment per chunk.
        if mig.chunks_done.fetch_add(1, Ordering::SeqCst) + 1 == mig.n_chunks() {
            self.finalize_migration(m);
        }
        true
    }

    /// Claims and migrates up to `max_chunks` pending chunks — the
    /// cooperative tail sweep.
    fn help_sweep(&self, mig: &Migration<K, V, B>, m: *mut Migration<K, V, B>, max_chunks: usize) {
        self.table_metrics.help_sweeps.inc();
        let total = mig.n_chunks();
        for _ in 0..max_chunks {
            // ORDERING: alloc.unique-id — a rotation hint; any value works,
            // distinct values just spread sweepers over the chunks.
            let start = mig.next_hint.fetch_add(1, Ordering::Relaxed) % total;
            let mut claimed = None;
            for off in 0..total {
                let c = (start + off) % total;
                // ORDERING: migration.chunk-poll, migration.chunk-claim — probe, then claim.
                if mig.chunk_states[c].load(Ordering::Acquire) == CHUNK_PENDING
                    && mig.chunk_states[c]
                        .compare_exchange(
                            CHUNK_PENDING,
                            CHUNK_BUSY,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        )
                        .is_ok()
                {
                    claimed = Some(c);
                    break;
                }
            }
            match claimed {
                None => return, // nothing pending; the tail is others' BUSY chunks
                Some(c) => {
                    if !self.complete_chunk(mig, m, c) {
                        return;
                    }
                }
            }
        }
    }

    /// Moves every entry of one owned chunk from the old table into the
    /// new. Each entry moves atomically under the stripes of its old
    /// bucket and both new-table candidate buckets, so no concurrent
    /// operation can observe it absent from both tables or present in
    /// both. `false` means the migration resolved underneath us.
    fn migrate_chunk(
        &self,
        mig: &Migration<K, V, B>,
        m: *mut Migration<K, V, B>,
        chunk: usize,
    ) -> bool {
        // SAFETY: (both derefs) callers are pinned and own the chunk, so
        // both tables are live (epoch + chunk-state ordering argument:
        // DESIGN.md §5d).
        let old = unsafe { &*mig.old };
        let new = unsafe { &*mig.new };
        let lo = chunk * MIGRATION_CHUNK;
        let hi = (lo + MIGRATION_CHUNK).min(old.n_buckets());
        for ob in lo..hi {
            let mut room_attempts = 0u32;
            loop {
                // Phase 1: pick the bucket's next entry and hash its key
                // for the new table, under the old bucket's stripe only.
                // Owning the chunk means only we (or an emergency
                // rebuild, which the validation below catches) can touch
                // this bucket's entries.
                let (slot, ks_new);
                {
                    let _g = self.stripes.lock_pair(ob, ob);
                    if self.migration.load(Ordering::SeqCst) != m {
                        return false;
                    }
                    match old.first_occupied_slot(ob) {
                        None => break, // bucket drained; next bucket
                        Some(s) => {
                            // SAFETY: stripe lock held; slot occupied.
                            let key = unsafe { &*old.bucket(ob).key_ptr(s) };
                            slot = s;
                            ks_new = key_slots(&self.hash_builder, key, new.mask());
                        }
                    }
                }
                // Phase 2: move the entry under all three stripes.
                let moved = {
                    let _g = self.stripes.lock_multi([ob, ks_new.i1, ks_new.i2]);
                    if self.migration.load(Ordering::SeqCst) != m {
                        return false;
                    }
                    debug_assert!(
                        old.meta(ob).is_occupied(slot),
                        "only the chunk owner may drain its buckets"
                    );
                    match Self::locked_empty_slot(new, ks_new) {
                        Some((nbi, ns)) => {
                            // SAFETY: all three stripes held; source
                            // occupied, destination empty.
                            unsafe {
                                let (k, v) = old.take_entry(ob, slot);
                                new.write_entry(nbi, ns, ks_new.tag, k, v);
                            }
                            true
                        }
                        None => false,
                    }
                };
                if !moved {
                    // Both new candidate buckets are full: displace
                    // within the new table, then retry this entry.
                    room_attempts += 1;
                    if room_attempts > 8 || !self.make_room_in_new(mig, m, ks_new) {
                        if self.migration.load(Ordering::SeqCst) != m {
                            return false;
                        }
                        self.emergency_rebuild(m);
                        return false;
                    }
                }
            }
        }
        true
    }

    /// BFS-displaces entries inside the new table to open a slot in one
    /// of `ks`'s candidate buckets. `false` only when even BFS finds no
    /// slot (the new table is effectively full).
    fn make_room_in_new(
        &self,
        mig: &Migration<K, V, B>,
        m: *mut Migration<K, V, B>,
        ks: KeySlots,
    ) -> bool {
        // SAFETY: caller is pinned; the new table is live.
        let new = unsafe { &*mig.new };
        let searched = search::with_scratch(|scratch| {
            bfs::search(new, ks.i1, ks.i2, self.max_search_slots, true, scratch)
                .map(|()| scratch.path.clone())
        });
        match searched {
            Err(_) => false,
            Ok(path) => {
                // A failed step just means a concurrent writer got there
                // first; the caller re-examines the buckets either way.
                let _ = self.execute_path_on(new, &path, || {
                    self.migration.load(Ordering::SeqCst) == m
                });
                true
            }
        }
    }

    /// Publishes the fully-migrated new table and retires the old one.
    /// Serialized with begin/emergency by `resize_lock`; only the
    /// transition that still sees `m` live wins.
    fn finalize_migration(&self, m: *mut Migration<K, V, B>) {
        {
            let _lk = self.resize_lock.lock().expect("resize_lock poisoned: an expansion panicked mid-flight");
            if self.migration.load(Ordering::SeqCst) != m {
                return; // an emergency rebuild beat us to it
            }
            // SAFETY: `m` is the live descriptor (checked under the lock).
            let mig = unsafe { &*m };
            debug_assert_eq!(mig.chunks_done.load(Ordering::SeqCst), mig.n_chunks());
            // Order matters for lock-free observers: after the first
            // store, readers see (storage = new, migration = m) — the
            // two-table path handles that (old is drained). After the
            // second, the normal path takes over.
            self.storage.store(mig.new, Ordering::SeqCst);
            self.migration.store(std::ptr::null_mut(), Ordering::SeqCst);
            self.table_metrics.migrations_completed.inc();
        }
        // SAFETY: the descriptor is disconnected (no new loads of `m` can
        // occur); re-owning the boxes exactly once. Pinned stragglers are
        // covered by the epoch stamp.
        let (old_box, desc_box) = unsafe {
            let desc = Box::from_raw(m);
            (Box::from_raw(desc.old), desc)
        };
        self.retire([
            RetiredAlloc::Table(old_box),
            RetiredAlloc::Desc(desc_box),
        ]);
    }

    /// Escape hatch when the migration target itself cannot absorb the
    /// load (BFS failure or livelock on the new table): rebuild
    /// everything into a bigger table under the full-table lock, ending
    /// the migration. The pause is proportional to table size, but this
    /// only triggers when a doubling was insufficient mid-flight.
    fn emergency_rebuild(&self, m: *mut Migration<K, V, B>) {
        let _lk = self.resize_lock.lock().expect("resize_lock poisoned: an expansion panicked mid-flight");
        let all = self.stripes.lock_all();
        if self.migration.load(Ordering::SeqCst) != m {
            return; // finalized or already rebuilt by someone else
        }
        // SAFETY: `m` is the live descriptor; all stripes held, so we
        // have exclusive access to both tables.
        let mig = unsafe { &*m };
        let old = unsafe { &*mig.old };
        let new = unsafe { &*mig.new };
        let mut entries: Vec<(K, V)> = Vec::new();
        for t in [old, new] {
            let coords: Vec<(usize, usize)> = t.occupied_coords().collect();
            entries.reserve(coords.len());
            for (bi, s) in coords {
                // SAFETY: all stripes held; slot occupied.
                entries.push(unsafe { t.take_entry(bi, s) });
            }
        }
        let mut slots = new.total_slots() * 2;
        let rebuilt = loop {
            match self.try_rebuild(slots, &mut entries) {
                Some(table) => break table,
                None => slots *= 2,
            }
        };
        debug_assert!(entries.is_empty());
        // Disconnect the migration before publishing the rebuilt table;
        // both orders are safe here because every observer re-validates
        // under stripe locks we still hold.
        self.migration.store(std::ptr::null_mut(), Ordering::SeqCst);
        self.storage.store(Box::into_raw(rebuilt), Ordering::SeqCst);
        self.table_metrics.emergency_rebuilds.inc();
        drop(all);
        // SAFETY: descriptor and both tables are disconnected; re-owning
        // each box exactly once.
        let (old_box, new_box, desc_box) = unsafe {
            let desc = Box::from_raw(m);
            (Box::from_raw(desc.old), Box::from_raw(desc.new), desc)
        };
        self.retire([
            RetiredAlloc::Table(old_box),
            RetiredAlloc::Table(new_box),
            RetiredAlloc::Desc(desc_box),
        ]);
    }

    /// Stamps `allocs` with a fresh retirement epoch and parks them in
    /// the graveyard; over the soft cap, drains whatever older garbage
    /// has quiesced.
    fn retire<I: IntoIterator<Item = RetiredAlloc<K, V, B>>>(&self, allocs: I) {
        let epoch = self.epochs.retire_epoch();
        let mut g = self.graveyard.lock().expect("graveyard mutex poisoned: a drain panicked mid-free");
        g.extend(allocs.into_iter().map(|alloc| Retired { epoch, alloc }));
        if g.len() > GRAVEYARD_SOFT_CAP {
            let min = self.epochs.min_active();
            g.retain(|r| r.epoch >= min);
        }
        self.table_metrics.graveyard_depth.set(g.len() as u64);
    }

    /// Opportunistically frees retired allocations no in-flight operation
    /// can still reference.
    fn try_drain_graveyard(&self) {
        if let Ok(mut g) = self.graveyard.try_lock() {
            if g.is_empty() {
                return;
            }
            let min = self.epochs.min_active();
            g.retain(|r| r.epoch >= min);
            self.table_metrics.graveyard_depth.set(g.len() as u64);
        }
    }

    /// Builds a table of `slots` capacity containing `entries` (drained on
    /// success; restored on failure).
    fn try_rebuild(
        &self,
        slots: usize,
        entries: &mut Vec<(K, V)>,
    ) -> Option<Box<RawTable<K, V, B>>> {
        let table: Box<RawTable<K, V, B>> = Box::new(RawTable::with_capacity(slots));
        let mut inserted: usize = 0;
        let ok = search::with_scratch(|scratch| {
            while let Some((k, v)) = entries.pop() {
                let ks = key_slots(&self.hash_builder, &k, table.mask());
                let mut target = None;
                for bi in [ks.i1, ks.i2] {
                    if let Some(slot) = table.meta(bi).empty_slot() {
                        target = Some((bi, slot));
                        break;
                    }
                    if ks.i2 == ks.i1 {
                        break;
                    }
                }
                if let Some((bi, slot)) = target {
                    // SAFETY: the new table is private to this thread.
                    unsafe { table.write_entry(bi, slot, ks.tag, k, v) };
                    inserted += 1;
                    continue;
                }
                if bfs::search(&table, ks.i1, ks.i2, self.max_search_slots, true, scratch)
                    .is_err()
                {
                    entries.push((k, v));
                    return false;
                }
                let path = scratch.path.clone();
                for i in (0..path.len() - 1).rev() {
                    let (src, dst) = (path[i], path[i + 1]);
                    // SAFETY: private table; path valid (single-threaded).
                    unsafe {
                        let (mk, mv) = table.take_entry(src.bucket, src.slot as usize);
                        table.write_entry(dst.bucket, dst.slot as usize, src.tag, mk, mv);
                    }
                }
                let head = path[0];
                // SAFETY: private table; head slot vacated.
                unsafe { table.write_entry(head.bucket, head.slot as usize, ks.tag, k, v) };
                inserted += 1;
            }
            true
        });
        if ok {
            Some(table)
        } else {
            // Drain the partial table back into `entries` for the retry.
            let coords: Vec<(usize, usize)> = table.occupied_coords().collect();
            for (bi, s) in coords {
                // SAFETY: private table; slots occupied.
                entries.push(unsafe { table.take_entry(bi, s) });
            }
            debug_assert!(entries.len() >= inserted);
            None
        }
    }
}

impl<K, V, const B: usize, S> CuckooMap<K, V, B, S>
where
    K: Hash + Eq,
    S: BuildHasher,
{
    /// Locks the whole table and returns a guard providing consistent
    /// iteration — libcuckoo's `lock_table()`. All concurrent operations
    /// block until the guard drops. Any in-flight migration is driven to
    /// completion first, so every entry is in one table.
    pub fn lock_table(&self) -> LockedTable<'_, K, V, B, S> {
        let guard = self.lock_all_quiesced();
        LockedTable { map: self, _guard: guard }
    }

    /// Returns a clone of `key`'s value, inserting `make()` first if the
    /// key is absent.
    ///
    /// On a race where another thread inserts the key between the miss
    /// and our insert, `make`'s value is discarded and the winner's value
    /// is returned (so `make` may run without its result being used).
    pub fn get_or_insert_with(&self, key: K, make: impl FnOnce() -> V) -> V
    where
        K: Clone,
        V: Clone,
    {
        if let Some(v) = self.get(&key) {
            return v;
        }
        let val = make();
        loop {
            match self.insert(key.clone(), val.clone()) {
                Ok(()) => return val,
                Err(InsertError::KeyExists) => {
                    if let Some(v) = self.get(&key) {
                        return v;
                    }
                    // A concurrent delete removed the winner between our
                    // failed insert and the read; retry our own insert.
                }
                Err(InsertError::TableFull) => unreachable!("insert expands instead"),
            }
        }
    }

    /// Applies `f` to `key`'s value in place under the lock; `false` when
    /// absent.
    pub fn modify(&self, key: &K, f: impl FnOnce(&mut V)) -> bool {
        let _pin = self.epochs.pin();
        let h = hash_of(&self.hash_builder, key);
        loop {
            if let Some((new, m)) = self.writer_table(h) {
                let ks = slots_from_hash(h, new.mask());
                let _g = self.stripes.lock_pair(ks.i1, ks.i2);
                if !self.migration_still_targets(m) {
                    continue;
                }
                return match Self::locked_find(new, ks, key) {
                    Some((bi, s)) => {
                        // SAFETY: pair lock held; slot occupied.
                        f(unsafe { &mut *new.bucket(bi).val_ptr(s) });
                        true
                    }
                    None => false,
                };
            }
            let raw = self.current();
            let ks = slots_from_hash(h, raw.mask());
            let _g = self.stripes.lock_pair(ks.i1, ks.i2);
            if !self.table_is_stable(raw) {
                continue;
            }
            return match Self::locked_find(raw, ks, key) {
                Some((bi, s)) => {
                    // SAFETY: pair lock held; slot occupied.
                    f(unsafe { &mut *raw.bucket(bi).val_ptr(s) });
                    true
                }
                None => false,
            };
        }
    }

    /// Removes every entry for which `f` returns `false`, under the
    /// full-table lock. Returns how many entries were removed.
    pub fn retain(&self, mut f: impl FnMut(&K, &V) -> bool) -> usize {
        let _pin = self.epochs.pin();
        let _g = self.lock_all_quiesced();
        let raw = self.current();
        let coords: Vec<(usize, usize)> = raw.occupied_coords().collect();
        let mut removed = 0;
        for (bi, s) in coords {
            let b = raw.bucket(bi);
            // SAFETY: all stripes held; slots stable and occupied.
            let keep = unsafe { f(&*b.key_ptr(s), &*b.val_ptr(s)) };
            if !keep {
                // SAFETY: as above.
                drop(unsafe { raw.take_entry(bi, s) });
                self.count.add(bi, -1);
                removed += 1;
            }
        }
        removed
    }
}

impl<K, V, const B: usize, S> core::fmt::Debug for CuckooMap<K, V, B, S>
where
    K: Hash + Eq,
    S: BuildHasher,
{
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("CuckooMap")
            .field("len", &self.len())
            .field("capacity", &self.capacity())
            .field("ways", &B)
            .finish()
    }
}

impl<K, V, const B: usize> FromIterator<(K, V)> for CuckooMap<K, V, B, DefaultHashBuilder>
where
    K: Hash + Eq,
{
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let iter = iter.into_iter();
        let map = CuckooMap::with_capacity(iter.size_hint().0 * 2);
        for (k, v) in iter {
            let _ = map.insert(k, v); // later duplicates lose, like libcuckoo
        }
        map
    }
}

/// Full-table lock guard with consistent iteration (libcuckoo's
/// `locked_table`).
pub struct LockedTable<'a, K, V, const B: usize, S> {
    map: &'a CuckooMap<K, V, B, S>,
    _guard: crate::sync::AllGuard<'a>,
}

impl<'a, K, V, const B: usize, S> LockedTable<'a, K, V, B, S>
where
    K: Hash + Eq,
    S: BuildHasher,
{
    /// Iterates over `(&K, &V)` pairs.
    pub fn iter(&self) -> LockedIter<'_, K, V, B> {
        // SAFETY: the full-table guard excludes all writers for the
        // iterator's lifetime.
        LockedIter {
            raw: self.map.current(),
            bucket: 0,
            slot: 0,
        }
    }

    /// Number of entries (exact under the lock).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<'a, 'g, K, V, const B: usize, S> IntoIterator for &'g LockedTable<'a, K, V, B, S>
where
    K: Hash + Eq,
    S: BuildHasher,
{
    type Item = (&'g K, &'g V);
    type IntoIter = LockedIter<'g, K, V, B>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Iterator over a [`LockedTable`].
pub struct LockedIter<'g, K, V, const B: usize> {
    raw: &'g RawTable<K, V, B>,
    bucket: usize,
    slot: usize,
}

impl<'g, K, V, const B: usize> Iterator for LockedIter<'g, K, V, B> {
    type Item = (&'g K, &'g V);

    fn next(&mut self) -> Option<(&'g K, &'g V)> {
        while self.bucket < self.raw.n_buckets() {
            let b = self.raw.bucket(self.bucket);
            let m = self.raw.meta(self.bucket);
            while self.slot < B {
                let s = self.slot;
                self.slot += 1;
                if m.is_occupied(s) {
                    // SAFETY: the enclosing LockedTable holds every
                    // stripe, so occupied slots are stable and
                    // initialized for the iterator's lifetime.
                    return Some(unsafe { (&*b.key_ptr(s), &*b.val_ptr(s)) });
                }
            }
            self.slot = 0;
            self.bucket += 1;
        }
        None
    }
}

impl<K, V, const B: usize, S> Drop for CuckooMap<K, V, B, S> {
    fn drop(&mut self) {
        let m = *self.migration.get_mut();
        if !m.is_null() {
            // Dropped mid-migration: entries are split across old and
            // new. `old` is the storage pointer (freed below); the
            // descriptor and its new table are owned only by us.
            // SAFETY: `&mut self` — no concurrent users; both pointers
            // came from `Box::into_raw` exactly once.
            let desc = unsafe { Box::from_raw(m) };
            drop(unsafe { Box::from_raw(desc.new) });
            drop(desc);
        }
        let ptr = *self.storage.get_mut();
        if !ptr.is_null() {
            // SAFETY: `ptr` came from `Box::into_raw` and is owned solely
            // by this map.
            drop(unsafe { Box::from_raw(ptr) });
        }
        // graveyard drops via Mutex<Vec<Retired<_>>>.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_keys_and_values() {
        let m: CuckooMap<String, String> = CuckooMap::with_capacity(1000);
        m.insert("hello".into(), "world".into()).unwrap();
        m.insert("foo".into(), "bar".into()).unwrap();
        assert_eq!(m.get(&"hello".to_string()), Some("world".to_string()));
        assert_eq!(
            m.insert("hello".into(), "x".into()),
            Err(InsertError::KeyExists)
        );
        assert_eq!(m.update(&"foo".to_string(), "baz".into()), Some("bar".into()));
        assert_eq!(m.remove(&"foo".to_string()), Some("baz".to_string()));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn insert_many_batch_semantics_with_owned_types() {
        // Non-`Plain` keys/values: every rejected or replaced entry must
        // be dropped exactly once (no leaks, no double frees).
        let m: CuckooMap<String, String, 8> = CuckooMap::with_capacity(512);
        let entries: Vec<(String, String)> =
            (0..100).map(|i| (format!("k{i}"), format!("v{i}"))).collect();
        assert!(m.insert_many(entries.clone()).into_iter().all(|r| r.is_ok()));
        let dup = m.insert_many(entries);
        assert!(dup.into_iter().all(|r| r == Err(InsertError::KeyExists)));
        let ups =
            m.upsert_many((0..100).map(|i| (format!("k{i}"), format!("w{i}"))).collect());
        assert!(ups.into_iter().all(|o| o == UpsertOutcome::Updated));
        assert_eq!(m.get(&"k7".to_string()), Some("w7".to_string()));
        assert_eq!(m.len(), 100);
        assert!(m.metrics().insert_batch_groups.get() >= 3 * (100 / 8) as u64);
        assert_eq!(m.metrics().insert_batch_keys.get(), 300);
    }

    #[test]
    fn insert_many_expands_automatically_like_single_inserts() {
        // A batch far beyond capacity forces expansion mid-stream; the
        // group path must hand keys to the migrating single-key writer
        // without losing or duplicating any.
        let m: CuckooMap<u64, u64, 8> = CuckooMap::with_capacity(64);
        let entries: Vec<(u64, u64)> = (0..1000).map(|k| (k, k ^ 0xabcd)).collect();
        assert!(m.insert_many(entries).into_iter().all(|r| r.is_ok()));
        assert_eq!(m.len(), 1000);
        for k in 0..1000 {
            assert_eq!(m.get(&k), Some(k ^ 0xabcd), "key {k}");
        }
        assert!(m.capacity() >= 1000);
    }

    #[test]
    fn upsert_and_get_with() {
        let m: CuckooMap<u32, Vec<u8>> = CuckooMap::new();
        assert_eq!(m.upsert(1, vec![1, 2, 3]), UpsertOutcome::Inserted);
        assert_eq!(m.upsert(1, vec![4]), UpsertOutcome::Updated);
        assert_eq!(m.get_with(&1, |v| v.len()), Some(1));
        assert_eq!(m.get_with(&2, |v| v.len()), None);
    }

    #[test]
    fn automatic_expansion_preserves_contents() {
        let m: CuckooMap<u64, u64, 4> = CuckooMap::with_capacity(0);
        let initial_cap = m.capacity();
        let n = (initial_cap * 4) as u64;
        for k in 0..n {
            m.insert(k, k * 2).unwrap();
        }
        assert!(m.capacity() > initial_cap, "table must have expanded");
        assert_eq!(m.len(), n as usize);
        for k in 0..n {
            assert_eq!(m.get(&k), Some(k * 2), "key {k} lost in expansion");
        }
    }

    #[test]
    fn drop_frees_owned_values() {
        use std::sync::Arc;
        let sentinel = Arc::new(());
        {
            let m: CuckooMap<u64, Arc<()>> = CuckooMap::with_capacity(1000);
            for k in 0..100 {
                m.insert(k, Arc::clone(&sentinel)).unwrap();
            }
            assert_eq!(Arc::strong_count(&sentinel), 101);
            m.remove(&0);
            assert_eq!(Arc::strong_count(&sentinel), 100);
        }
        assert_eq!(Arc::strong_count(&sentinel), 1);
    }

    #[test]
    fn expansion_drops_nothing() {
        use std::sync::Arc;
        let sentinel = Arc::new(());
        let m: CuckooMap<u64, Arc<()>, 4> = CuckooMap::with_capacity(0);
        let n = (m.capacity() * 3) as u64;
        for k in 0..n {
            m.insert(k, Arc::clone(&sentinel)).unwrap();
        }
        assert_eq!(Arc::strong_count(&sentinel), n as usize + 1);
        drop(m);
        assert_eq!(Arc::strong_count(&sentinel), 1);
    }

    #[test]
    fn concurrent_insert_during_expansion() {
        let m: CuckooMap<u64, u64, 4> = CuckooMap::with_capacity(0);
        const THREADS: u64 = 4;
        const PER: u64 = 3_000;
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let m = &m;
                s.spawn(move || {
                    for i in 0..PER {
                        let key = t * 1_000_000 + i;
                        m.insert(key, key).unwrap();
                    }
                });
            }
        });
        assert_eq!(m.len(), (THREADS * PER) as usize);
        for t in 0..THREADS {
            for i in 0..PER {
                let key = t * 1_000_000 + i;
                assert_eq!(m.get(&key), Some(key));
            }
        }
    }

    #[test]
    fn for_each_and_snapshot() {
        let m: CuckooMap<u64, u64> = CuckooMap::with_capacity(1000);
        for k in 0..50 {
            m.insert(k, k + 1).unwrap();
        }
        let mut count = 0;
        m.for_each(|k, v| {
            assert_eq!(*v, *k + 1);
            count += 1;
        });
        assert_eq!(count, 50);
        let mut snap = m.snapshot();
        snap.sort_unstable();
        assert_eq!(snap[0], (0, 1));
        assert_eq!(snap.len(), 50);
    }

    #[test]
    fn locked_table_iterates_consistently() {
        let m: CuckooMap<u64, u64> = CuckooMap::with_capacity(1000);
        for k in 0..200u64 {
            m.insert(k, k * 2).unwrap();
        }
        let locked = m.lock_table();
        assert_eq!(locked.len(), 200);
        let mut seen: Vec<u64> = locked.iter().map(|(k, _)| *k).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..200).collect::<Vec<_>>());
        for (k, v) in &locked {
            assert_eq!(*v, *k * 2);
        }
        drop(locked);
        // Operations work again after the guard drops.
        m.insert(1000, 1).unwrap();
    }

    #[test]
    fn get_or_insert_with_semantics() {
        let m: CuckooMap<String, u64> = CuckooMap::new();
        assert_eq!(m.get_or_insert_with("a".into(), || 1), 1);
        assert_eq!(m.get_or_insert_with("a".into(), || 2), 1, "existing wins");
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn modify_in_place() {
        let m: CuckooMap<u64, Vec<u8>> = CuckooMap::new();
        m.insert(1, vec![1]).unwrap();
        assert!(m.modify(&1, |v| v.push(9)));
        assert_eq!(m.get(&1), Some(vec![1, 9]));
        assert!(!m.modify(&2, |_| unreachable!("absent key")));
    }

    #[test]
    fn retain_filters_and_counts() {
        let m: CuckooMap<u64, u64> = CuckooMap::with_capacity(1000);
        for k in 0..100u64 {
            m.insert(k, k).unwrap();
        }
        let removed = m.retain(|k, _| k % 2 == 0);
        assert_eq!(removed, 50);
        assert_eq!(m.len(), 50);
        assert_eq!(m.get(&2), Some(2));
        assert_eq!(m.get(&3), None);
    }

    #[test]
    fn from_iterator_and_debug() {
        let m: CuckooMap<u64, u64> = (0..50u64).map(|k| (k, k + 1)).collect();
        assert_eq!(m.len(), 50);
        assert_eq!(m.get(&10), Some(11));
        let dbg = format!("{m:?}");
        assert!(dbg.contains("CuckooMap"));
        assert!(dbg.contains("len: 50"));
    }

    #[test]
    fn retain_drops_removed_values() {
        use std::sync::Arc;
        let sentinel = Arc::new(());
        let m: CuckooMap<u64, Arc<()>> = CuckooMap::with_capacity(100);
        for k in 0..20 {
            m.insert(k, Arc::clone(&sentinel)).unwrap();
        }
        m.retain(|k, _| *k < 5);
        assert_eq!(Arc::strong_count(&sentinel), 6);
    }

    #[test]
    fn incremental_migration_serves_reads_mid_flight() {
        let m: CuckooMap<u64, u64, 4> = CuckooMap::with_capacity(0);
        let initial_cap = m.capacity();
        let n = 512u64;
        for k in 0..n {
            m.insert(k, k + 7).unwrap();
        }
        m.begin_migration(m.current());
        assert!(m.is_migrating());
        // Nothing migrated yet: every read goes through the two-table
        // path and must still see every key.
        for k in 0..n {
            assert_eq!(m.get(&k), Some(k + 7), "mid-migration read of {k}");
        }
        // A write migrates only the chunks covering its own buckets
        // (plus one swept chunk), not the whole table.
        assert_eq!(m.remove(&3), Some(10));
        assert!(m.is_migrating(), "one write must not finish the migration");
        assert_eq!(m.get(&3), None);
        for k in 4..n {
            assert_eq!(m.get(&k), Some(k + 7));
        }
        // Drive the migration to completion.
        while m.help_migrate(usize::MAX) {}
        assert!(!m.is_migrating());
        assert_eq!(m.capacity(), initial_cap * 2);
        assert_eq!(m.len(), n as usize - 1);
        for k in 4..n {
            assert_eq!(m.get(&k), Some(k + 7), "key {k} lost in migration");
        }
    }

    #[test]
    fn migration_writer_protocol_updates_land_in_new_table() {
        let m: CuckooMap<u64, u64, 4> = CuckooMap::with_capacity(0);
        for k in 0..400u64 {
            m.insert(k, k).unwrap();
        }
        m.begin_migration(m.current());
        // Mutations mid-migration: each first migrates its key's chunks.
        assert_eq!(m.update(&10, 99), Some(10));
        assert!(m.modify(&11, |v| *v += 1));
        m.insert(1_000, 1).unwrap();
        assert_eq!(m.upsert(1_001, 2), UpsertOutcome::Inserted);
        assert_eq!(m.upsert(10, 100), UpsertOutcome::Updated);
        while m.help_migrate(usize::MAX) {}
        assert_eq!(m.get(&10), Some(100));
        assert_eq!(m.get(&11), Some(12));
        assert_eq!(m.get(&1_000), Some(1));
        assert_eq!(m.get(&1_001), Some(2));
        assert_eq!(m.len(), 402);
    }

    #[test]
    fn stop_the_world_mode_expands_and_drains_graveyard() {
        let m: CuckooMap<u64, u64, 4> =
            CuckooMap::with_capacity_and_mode(0, ResizeMode::StopTheWorld);
        assert_eq!(m.resize_mode(), ResizeMode::StopTheWorld);
        let initial = m.capacity();
        let n = (initial * 16) as u64;
        for k in 0..n {
            m.insert(k, k).unwrap();
        }
        assert!(!m.is_migrating(), "stop-the-world mode never migrates");
        assert!(m.capacity() >= initial * 16);
        for k in 0..n {
            assert_eq!(m.get(&k), Some(k));
        }
        // The old leak: one table parked forever per doubling. Retires
        // now drain at the soft cap once older epochs quiesce.
        assert!(
            m.graveyard.lock().unwrap().len() <= GRAVEYARD_SOFT_CAP + 1,
            "retired tables must drain at quiescent points"
        );
    }

    #[test]
    fn graveyard_drains_across_incremental_doublings() {
        let m: CuckooMap<u64, u64, 4> = CuckooMap::with_capacity(0);
        let initial = m.capacity();
        let mut k = 0u64;
        // Force at least 8 consecutive doublings.
        while m.capacity() < initial * 256 {
            m.insert(k, k).unwrap();
            k += 1;
        }
        let live = m.current().memory_bytes();
        assert!(
            m.graveyard.lock().unwrap().len() <= GRAVEYARD_SOFT_CAP + 2,
            "graveyard must stay bounded across doublings"
        );
        assert!(
            m.memory_bytes() < live * 4,
            "retired tables must not accumulate: total {} vs live {live}",
            m.memory_bytes()
        );
        for i in 0..k {
            assert_eq!(m.get(&i), Some(i), "key {i} lost across doublings");
        }
    }

    #[test]
    fn get_or_insert_with_survives_concurrent_deletes() {
        // Regression: a concurrent delete between this call's failed
        // insert (KeyExists) and its follow-up get used to panic on
        // `.expect("exists")`.
        let m: CuckooMap<u64, u64> = CuckooMap::with_capacity(4096);
        std::thread::scope(|s| {
            for _ in 0..2 {
                let m = &m;
                s.spawn(move || {
                    for i in 0..20_000u64 {
                        let k = i % 8;
                        let v = m.get_or_insert_with(k, || 7);
                        assert!(v == 1 || v == 7, "value must come from insert or racer");
                    }
                });
            }
            let m = &m;
            s.spawn(move || {
                for i in 0..20_000u64 {
                    let k = i % 8;
                    let _ = m.insert(k, 1);
                    m.remove(&k);
                }
            });
        });
    }

    #[test]
    fn concurrent_mixed_ops_during_incremental_migrations() {
        // Writers force doublings while readers hammer gets; values
        // carry an invariant so any torn/stale read is caught.
        let m: CuckooMap<u64, u64, 4> = CuckooMap::with_capacity(0);
        const WRITERS: u64 = 2;
        const READERS: u64 = 2;
        const PER: u64 = 8_000;
        std::thread::scope(|s| {
            for t in 0..WRITERS {
                let m = &m;
                s.spawn(move || {
                    for i in 0..PER {
                        let key = t * 1_000_000 + i;
                        m.insert(key, key * 2 + 1).unwrap();
                        if i % 64 == 0 {
                            m.remove(&key);
                        }
                    }
                });
            }
            for t in 0..READERS {
                let m = &m;
                s.spawn(move || {
                    for i in 0..PER {
                        let key = (t % WRITERS) * 1_000_000 + (i * 7) % PER;
                        if let Some(v) = m.get(&key) {
                            assert_eq!(v, key * 2 + 1, "torn read of {key}");
                        }
                    }
                });
            }
        });
        for t in 0..WRITERS {
            for i in 0..PER {
                let key = t * 1_000_000 + i;
                if i % 64 != 0 {
                    assert_eq!(m.get(&key), Some(key * 2 + 1), "key {key} lost");
                }
            }
        }
    }

    #[test]
    fn purge_retired_reclaims_memory() {
        let mut m: CuckooMap<u64, u64, 4> = CuckooMap::with_capacity(0);
        let n = (m.capacity() * 8) as u64;
        for k in 0..n {
            m.insert(k, k).unwrap();
        }
        // Finish any in-flight expansion: finalization retires the old
        // table into the graveyard, and the finalizing operation's own
        // epoch pin keeps that entry parked there (nothing after it
        // drains), so `purge_retired` has something to reclaim.
        while m.help_migrate(usize::MAX) {}
        let before = m.memory_bytes();
        m.purge_retired();
        let after = m.memory_bytes();
        assert!(after < before, "graveyard should have held memory");
        for k in 0..n {
            assert_eq!(m.get(&k), Some(k));
        }
    }
}
