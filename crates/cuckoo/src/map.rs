//! A libcuckoo-style general-purpose concurrent map (paper §7).
//!
//! The paper's research table trades generality for speed: fixed-size
//! [`Plain`](htm::Plain) keys and values, no growth. §7 describes the
//! production descendant, libcuckoo: "an easy-to-use interface that
//! supports variable length key value pairs of arbitrary types, including
//! those with pointers or strings, provides iterators, and dynamically
//! resizes itself as it fills. The price of this generality is that it
//! uses locks for reads as well as writes, so that pointer-valued items
//! can be safely dereferenced."
//!
//! [`CuckooMap`] is that design:
//!
//! - arbitrary `K: Hash + Eq`, `V` (owned, dropped correctly);
//! - **reads take the bucket-pair stripe lock** (no torn-value hazard, so
//!   no `Plain` bound; 5–20 % slower than optimistic reads per the
//!   paper);
//! - inserts still use lock-free BFS path discovery — the search touches
//!   only atomic metadata (occupancy bitmaps and tags), never keys — with
//!   per-displacement pair-locked validated execution, exactly like
//!   `cuckoo+`;
//! - **automatic expansion**: when a path search fails, the table doubles
//!   under the full-stripe lock and rehashes. Retired bucket arrays are
//!   kept until drop so in-flight lock-free searches never dereference
//!   freed memory (their stale paths simply fail validation).

use crate::counter::ShardedCounter;
use crate::error::{InsertError, UpsertOutcome};
use crate::hash::DefaultHashBuilder;
use crate::hashing::{key_slots, KeySlots};
use crate::raw::RawTable;
use crate::search::{self, bfs, PathEntry};
use crate::sync::{LockStripes, DEFAULT_STRIPES};
use crate::DEFAULT_MAX_SEARCH_SLOTS;
use core::hash::{BuildHasher, Hash};
use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::Mutex;

/// A dynamically-resizing concurrent cuckoo map for arbitrary key/value
/// types (locked reads).
///
/// # Examples
///
/// ```
/// use cuckoo::CuckooMap;
///
/// let m: CuckooMap<String, Vec<u32>> = CuckooMap::new();
/// m.insert("a".into(), vec![1, 2])?;
/// m.modify(&"a".to_string(), |v| v.push(3));
/// assert_eq!(m.get_with(&"a".to_string(), |v| v.len()), Some(3));
///
/// // Consistent whole-table iteration under the table lock:
/// let locked = m.lock_table();
/// assert_eq!(locked.iter().count(), 1);
/// # drop(locked);
/// # Ok::<(), cuckoo::InsertError>(())
/// ```
pub struct CuckooMap<K, V, const B: usize = 8, S = DefaultHashBuilder> {
    /// Current bucket array. Swapped (under all stripes) on expansion.
    storage: AtomicPtr<RawTable<K, V, B>>,
    stripes: LockStripes,
    hash_builder: S,
    count: ShardedCounter,
    max_search_slots: usize,
    /// Retired bucket arrays, kept so unlocked searchers racing an
    /// expansion read live (if stale) memory. The boxes are load-bearing:
    /// raced pointers into a retired table must stay stable when the
    /// graveyard vector reallocates.
    #[allow(clippy::vec_box)]
    graveyard: Mutex<Vec<Box<RawTable<K, V, B>>>>,
}

// SAFETY: the map owns its entries (moving the map moves them) and
// synchronizes all shared access through the stripe locks; `K`/`V` cross
// threads both by move (displacement, expansion) and by reference
// (lookups), hence `Send + Sync` on both. The hasher is shared by
// reference.
unsafe impl<K: Send + Sync, V: Send + Sync, const B: usize, S: Send + Sync> Send
    for CuckooMap<K, V, B, S>
{
}
// SAFETY: as above.
unsafe impl<K: Send + Sync, V: Send + Sync, const B: usize, S: Send + Sync> Sync
    for CuckooMap<K, V, B, S>
{
}

impl<K, V, const B: usize> CuckooMap<K, V, B, DefaultHashBuilder>
where
    K: Hash + Eq,
{
    /// Creates a map with at least `capacity` slots.
    pub fn with_capacity(capacity: usize) -> Self {
        Self::with_capacity_and_hasher(capacity, DefaultHashBuilder::new())
    }

    /// Creates an empty map with a small initial capacity.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }
}

impl<K, V, const B: usize> Default for CuckooMap<K, V, B, DefaultHashBuilder>
where
    K: Hash + Eq,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V, const B: usize, S> CuckooMap<K, V, B, S>
where
    K: Hash + Eq,
    S: BuildHasher,
{
    /// Creates a map with an explicit hasher.
    pub fn with_capacity_and_hasher(capacity: usize, hasher: S) -> Self {
        let raw = Box::new(RawTable::with_capacity(capacity));
        CuckooMap {
            storage: AtomicPtr::new(Box::into_raw(raw)),
            stripes: LockStripes::new(DEFAULT_STRIPES),
            hash_builder: hasher,
            count: ShardedCounter::new(),
            max_search_slots: DEFAULT_MAX_SEARCH_SLOTS,
            graveyard: Mutex::new(Vec::new()),
        }
    }

    /// The current bucket array.
    ///
    /// The reference is valid for `'_` (the borrow of `self`): bucket
    /// arrays are only retired to the graveyard, never freed before the
    /// map itself drops.
    #[inline]
    fn current(&self) -> &RawTable<K, V, B> {
        // SAFETY: the pointer is always a live allocation per the
        // graveyard discipline documented above.
        unsafe { &*self.storage.load(Ordering::Acquire) }
    }

    #[inline]
    fn is_current(&self, raw: &RawTable<K, V, B>) -> bool {
        std::ptr::eq(self.storage.load(Ordering::Acquire), raw)
    }

    /// Looks up `key`, applying `f` to the value under the lock.
    pub fn get_with<R>(&self, key: &K, f: impl FnOnce(&V) -> R) -> Option<R> {
        loop {
            let raw = self.current();
            let ks = key_slots(&self.hash_builder, key, raw.mask());
            let _g = self.stripes.lock_pair(ks.i1, ks.i2);
            if !self.is_current(raw) {
                continue; // expanded while we were locking
            }
            return Self::locked_find(raw, ks, key)
                // SAFETY: pair lock held; the slot is occupied.
                .map(|(bi, s)| f(unsafe { &*raw.bucket(bi).val_ptr(s) }));
        }
    }

    /// Looks up `key`, returning a clone of its value.
    pub fn get(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        self.get_with(key, V::clone)
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.get_with(key, |_| ()).is_some()
    }

    /// Inserts `key → val`; `Err(KeyExists)` leaves the old value.
    ///
    /// Expands the table automatically instead of returning
    /// `Err(TableFull)`.
    pub fn insert(&self, key: K, val: V) -> Result<(), InsertError> {
        match self.insert_inner(key, val, false) {
            Ok(UpsertOutcome::Inserted) => Ok(()),
            Ok(UpsertOutcome::Updated) => unreachable!("non-upsert updated"),
            Err(e) => Err(e),
        }
    }

    /// Inserts or replaces, returning which happened.
    pub fn upsert(&self, key: K, val: V) -> UpsertOutcome {
        self.insert_inner(key, val, true)
            .expect("upsert cannot fail: expansion handles fullness")
    }

    /// Removes `key`, returning its value.
    pub fn remove(&self, key: &K) -> Option<V> {
        loop {
            let raw = self.current();
            let ks = key_slots(&self.hash_builder, key, raw.mask());
            let _g = self.stripes.lock_pair(ks.i1, ks.i2);
            if !self.is_current(raw) {
                continue;
            }
            return match Self::locked_find(raw, ks, key) {
                Some((bi, s)) => {
                    // SAFETY: pair lock held; slot occupied.
                    let (_, v) = unsafe { raw.take_entry(bi, s) };
                    self.count.add(bi, -1);
                    Some(v)
                }
                None => None,
            };
        }
    }

    /// Replaces the value of an existing key, returning the old value.
    pub fn update(&self, key: &K, val: V) -> Option<V> {
        loop {
            let raw = self.current();
            let ks = key_slots(&self.hash_builder, key, raw.mask());
            let _g = self.stripes.lock_pair(ks.i1, ks.i2);
            if !self.is_current(raw) {
                continue;
            }
            return match Self::locked_find(raw, ks, key) {
                Some((bi, s)) => {
                    // SAFETY: pair lock held; slot occupied.
                    Some(std::mem::replace(
                        unsafe { &mut *raw.bucket(bi).val_ptr(s) },
                        val,
                    ))
                }
                None => None,
            };
        }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.count.sum()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current slot capacity (doubles on expansion).
    pub fn capacity(&self) -> usize {
        self.current().total_slots()
    }

    /// Fraction of slots occupied.
    pub fn load_factor(&self) -> f64 {
        self.len() as f64 / self.capacity() as f64
    }

    /// Bytes used by the live bucket array, stripes, counters, and any
    /// retired arrays still parked in the graveyard.
    pub fn memory_bytes(&self) -> usize {
        let graveyard: usize = self
            .graveyard
            .lock()
            .unwrap()
            .iter()
            .map(|t| t.memory_bytes())
            .sum();
        self.current().memory_bytes()
            + self.stripes.memory_bytes()
            + self.count.memory_bytes()
            + graveyard
    }

    /// Frees retired bucket arrays. Callers must guarantee no concurrent
    /// operations are in flight (hence `&mut self`).
    pub fn purge_retired(&mut self) {
        self.graveyard.get_mut().unwrap().clear();
    }

    /// Visits every entry under the full-table lock.
    pub fn for_each(&self, mut f: impl FnMut(&K, &V)) {
        let _g = self.stripes.lock_all();
        let raw = self.current();
        for (bi, s) in raw.occupied_coords() {
            let b = raw.bucket(bi);
            // SAFETY: all stripes held; slots stable and occupied.
            unsafe { f(&*b.key_ptr(s), &*b.val_ptr(s)) };
        }
    }

    /// Clones every entry out (snapshot).
    pub fn snapshot(&self) -> Vec<(K, V)>
    where
        K: Clone,
        V: Clone,
    {
        let mut out = Vec::with_capacity(self.len());
        self.for_each(|k, v| out.push((k.clone(), v.clone())));
        out
    }

    fn insert_inner(&self, key: K, val: V, upsert: bool) -> Result<UpsertOutcome, InsertError> {
        let mut stale_retries = 0usize;
        loop {
            let raw = self.current();
            let ks = key_slots(&self.hash_builder, &key, raw.mask());
            // Fast path under the candidate pair lock.
            {
                let _g = self.stripes.lock_pair(ks.i1, ks.i2);
                if !self.is_current(raw) {
                    continue;
                }
                if let Some((bi, s)) = Self::locked_find(raw, ks, &key) {
                    if upsert {
                        // SAFETY: pair lock held; slot occupied.
                        unsafe { *raw.bucket(bi).val_ptr(s) = val };
                        return Ok(UpsertOutcome::Updated);
                    }
                    return Err(InsertError::KeyExists);
                }
                let mut target = None;
                for bi in [ks.i1, ks.i2] {
                    if let Some(slot) = raw.meta(bi).empty_slot() {
                        target = Some((bi, slot));
                        break;
                    }
                    if ks.i2 == ks.i1 {
                        break;
                    }
                }
                if let Some((bi, slot)) = target {
                    // SAFETY: pair lock held; slot empty. Keys and values
                    // move by plain writes — readers are locked out,
                    // unlike the optimistic table.
                    unsafe { raw.write_entry(bi, slot, ks.tag, key, val) };
                    self.count.add(bi, 1);
                    return Ok(UpsertOutcome::Inserted);
                }
            }

            // Slow path: lock-free BFS over atomic metadata only (safe
            // even for non-`Plain` keys — keys are never read).
            let searched = search::with_scratch(|scratch| {
                bfs::search(raw, ks.i1, ks.i2, self.max_search_slots, true, scratch)
                    .map(|()| scratch.path.clone())
            });
            match searched {
                Err(_) => {
                    self.expand(raw);
                    // Re-enter with the (possibly) new table.
                }
                Ok(path) => {
                    if self.execute_path(raw, &path) {
                        stale_retries = 0;
                    } else {
                        stale_retries += 1;
                        if stale_retries > 16 {
                            // Livelock escape hatch: force an expansion,
                            // which completes under the full-table lock.
                            self.expand(raw);
                            stale_retries = 0;
                        }
                    }
                }
            }
            // `key`/`val` were not consumed this round; loop.
        }
    }

    /// Finds `key` in its candidate buckets; pair lock must be held.
    fn locked_find(raw: &RawTable<K, V, B>, ks: KeySlots, key: &K) -> Option<(usize, usize)> {
        for bi in [ks.i1, ks.i2] {
            let b = raw.bucket(bi);
            let m = raw.meta(bi);
            let mut cand = m.match_tag_mask(ks.tag) & m.occupied_mask();
            while cand != 0 {
                let s = cand.trailing_zeros() as usize;
                cand &= cand - 1;
                // SAFETY: pair lock held; slot occupied; no concurrent
                // writer can mutate it.
                if unsafe { &*b.key_ptr(s) } == key {
                    return Some((bi, s));
                }
            }
            if ks.i2 == ks.i1 {
                break;
            }
        }
        None
    }

    /// Validated per-pair-locked path execution over `raw` (which must be
    /// the table the path was discovered on; a concurrent expansion makes
    /// every step fail validation or the current-table check).
    fn execute_path(&self, raw: &RawTable<K, V, B>, path: &[PathEntry]) -> bool {
        if path.len() < 2 {
            return true;
        }
        for i in (0..path.len() - 1).rev() {
            let src = path[i];
            let dst = path[i + 1];
            let _g = self.stripes.lock_pair(src.bucket, dst.bucket);
            if !self.is_current(raw) {
                return false;
            }
            let sm = raw.meta(src.bucket);
            let dm = raw.meta(dst.bucket);
            let (ss, ds) = (src.slot as usize, dst.slot as usize);
            if !sm.is_occupied(ss) || sm.partial(ss) != src.tag || dm.is_occupied(ds) {
                return false;
            }
            // SAFETY: pair lock held; source occupied, destination empty.
            // Destination written before source cleared (readers are
            // locked, but the invariant costs nothing and keeps the
            // discipline uniform).
            unsafe {
                let (k, v) = raw.take_entry(src.bucket, ss);
                raw.write_entry(dst.bucket, ds, src.tag, k, v);
            }
        }
        true
    }

    /// Doubles the table under the full-stripe lock and rehashes every
    /// entry. `seen` is the table the caller found full; if another thread
    /// already expanded, this returns immediately.
    fn expand(&self, seen: &RawTable<K, V, B>) {
        let _g = self.stripes.lock_all();
        if !self.is_current(seen) {
            return; // someone else already expanded
        }
        let old_ptr = self.storage.load(Ordering::Acquire);
        // SAFETY: all stripes held — exclusive access to the live table.
        let old = unsafe { &*old_ptr };

        // Move every entry out of the old table.
        let coords: Vec<(usize, usize)> = old.occupied_coords().collect();
        let mut entries: Vec<(K, V)> = Vec::with_capacity(coords.len());
        for (bi, s) in coords {
            // SAFETY: all stripes held; slot occupied.
            entries.push(unsafe { old.take_entry(bi, s) });
        }

        // Rebuild at double the size; in the pathological case the rebuild
        // itself fails, keep doubling.
        let mut new_slots = old.total_slots() * 2;
        let new = loop {
            match self.try_rebuild(new_slots, &mut entries) {
                Some(table) => break table,
                None => new_slots *= 2,
            }
        };
        debug_assert!(entries.is_empty());

        self.storage.store(Box::into_raw(new), Ordering::Release);
        // SAFETY: `old_ptr` came from `Box::into_raw` at construction or a
        // previous expansion, and is no longer reachable as current.
        let retired = unsafe { Box::from_raw(old_ptr) };
        self.graveyard.lock().unwrap().push(retired);
    }

    /// Builds a table of `slots` capacity containing `entries` (drained on
    /// success; restored on failure).
    fn try_rebuild(
        &self,
        slots: usize,
        entries: &mut Vec<(K, V)>,
    ) -> Option<Box<RawTable<K, V, B>>> {
        let table: Box<RawTable<K, V, B>> = Box::new(RawTable::with_capacity(slots));
        let mut inserted: usize = 0;
        let ok = search::with_scratch(|scratch| {
            while let Some((k, v)) = entries.pop() {
                let ks = key_slots(&self.hash_builder, &k, table.mask());
                let mut target = None;
                for bi in [ks.i1, ks.i2] {
                    if let Some(slot) = table.meta(bi).empty_slot() {
                        target = Some((bi, slot));
                        break;
                    }
                    if ks.i2 == ks.i1 {
                        break;
                    }
                }
                if let Some((bi, slot)) = target {
                    // SAFETY: the new table is private to this thread.
                    unsafe { table.write_entry(bi, slot, ks.tag, k, v) };
                    inserted += 1;
                    continue;
                }
                if bfs::search(&table, ks.i1, ks.i2, self.max_search_slots, true, scratch)
                    .is_err()
                {
                    entries.push((k, v));
                    return false;
                }
                let path = scratch.path.clone();
                for i in (0..path.len() - 1).rev() {
                    let (src, dst) = (path[i], path[i + 1]);
                    // SAFETY: private table; path valid (single-threaded).
                    unsafe {
                        let (mk, mv) = table.take_entry(src.bucket, src.slot as usize);
                        table.write_entry(dst.bucket, dst.slot as usize, src.tag, mk, mv);
                    }
                }
                let head = path[0];
                // SAFETY: private table; head slot vacated.
                unsafe { table.write_entry(head.bucket, head.slot as usize, ks.tag, k, v) };
                inserted += 1;
            }
            true
        });
        if ok {
            Some(table)
        } else {
            // Drain the partial table back into `entries` for the retry.
            let coords: Vec<(usize, usize)> = table.occupied_coords().collect();
            for (bi, s) in coords {
                // SAFETY: private table; slots occupied.
                entries.push(unsafe { table.take_entry(bi, s) });
            }
            debug_assert!(entries.len() >= inserted);
            None
        }
    }
}

impl<K, V, const B: usize, S> CuckooMap<K, V, B, S>
where
    K: Hash + Eq,
    S: BuildHasher,
{
    /// Locks the whole table and returns a guard providing consistent
    /// iteration — libcuckoo's `lock_table()`. All concurrent operations
    /// block until the guard drops.
    pub fn lock_table(&self) -> LockedTable<'_, K, V, B, S> {
        let guard = self.stripes.lock_all();
        LockedTable { map: self, _guard: guard }
    }

    /// Returns a clone of `key`'s value, inserting `make()` first if the
    /// key is absent.
    ///
    /// On a race where another thread inserts the key between the miss
    /// and our insert, `make`'s value is discarded and the winner's value
    /// is returned (so `make` may run without its result being used).
    pub fn get_or_insert_with(&self, key: K, make: impl FnOnce() -> V) -> V
    where
        K: Clone,
        V: Clone,
    {
        if let Some(v) = self.get(&key) {
            return v;
        }
        match self.insert(key.clone(), make()) {
            Ok(()) => self.get(&key).expect("just inserted"),
            Err(InsertError::KeyExists) => self.get(&key).expect("exists"),
            Err(InsertError::TableFull) => unreachable!("insert expands instead"),
        }
    }

    /// Applies `f` to `key`'s value in place under the lock; `false` when
    /// absent.
    pub fn modify(&self, key: &K, f: impl FnOnce(&mut V)) -> bool {
        loop {
            let raw = self.current();
            let ks = key_slots(&self.hash_builder, key, raw.mask());
            let _g = self.stripes.lock_pair(ks.i1, ks.i2);
            if !self.is_current(raw) {
                continue;
            }
            return match Self::locked_find(raw, ks, key) {
                Some((bi, s)) => {
                    // SAFETY: pair lock held; slot occupied.
                    f(unsafe { &mut *raw.bucket(bi).val_ptr(s) });
                    true
                }
                None => false,
            };
        }
    }

    /// Removes every entry for which `f` returns `false`, under the
    /// full-table lock. Returns how many entries were removed.
    pub fn retain(&self, mut f: impl FnMut(&K, &V) -> bool) -> usize {
        let _g = self.stripes.lock_all();
        let raw = self.current();
        let coords: Vec<(usize, usize)> = raw.occupied_coords().collect();
        let mut removed = 0;
        for (bi, s) in coords {
            let b = raw.bucket(bi);
            // SAFETY: all stripes held; slots stable and occupied.
            let keep = unsafe { f(&*b.key_ptr(s), &*b.val_ptr(s)) };
            if !keep {
                // SAFETY: as above.
                drop(unsafe { raw.take_entry(bi, s) });
                self.count.add(bi, -1);
                removed += 1;
            }
        }
        removed
    }
}

impl<K, V, const B: usize, S> core::fmt::Debug for CuckooMap<K, V, B, S>
where
    K: Hash + Eq,
    S: BuildHasher,
{
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("CuckooMap")
            .field("len", &self.len())
            .field("capacity", &self.capacity())
            .field("ways", &B)
            .finish()
    }
}

impl<K, V, const B: usize> FromIterator<(K, V)> for CuckooMap<K, V, B, DefaultHashBuilder>
where
    K: Hash + Eq,
{
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let iter = iter.into_iter();
        let map = CuckooMap::with_capacity(iter.size_hint().0 * 2);
        for (k, v) in iter {
            let _ = map.insert(k, v); // later duplicates lose, like libcuckoo
        }
        map
    }
}

/// Full-table lock guard with consistent iteration (libcuckoo's
/// `locked_table`).
pub struct LockedTable<'a, K, V, const B: usize, S> {
    map: &'a CuckooMap<K, V, B, S>,
    _guard: crate::sync::AllGuard<'a>,
}

impl<'a, K, V, const B: usize, S> LockedTable<'a, K, V, B, S>
where
    K: Hash + Eq,
    S: BuildHasher,
{
    /// Iterates over `(&K, &V)` pairs.
    pub fn iter(&self) -> LockedIter<'_, K, V, B> {
        // SAFETY: the full-table guard excludes all writers for the
        // iterator's lifetime.
        LockedIter {
            raw: self.map.current(),
            bucket: 0,
            slot: 0,
        }
    }

    /// Number of entries (exact under the lock).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<'a, 'g, K, V, const B: usize, S> IntoIterator for &'g LockedTable<'a, K, V, B, S>
where
    K: Hash + Eq,
    S: BuildHasher,
{
    type Item = (&'g K, &'g V);
    type IntoIter = LockedIter<'g, K, V, B>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Iterator over a [`LockedTable`].
pub struct LockedIter<'g, K, V, const B: usize> {
    raw: &'g RawTable<K, V, B>,
    bucket: usize,
    slot: usize,
}

impl<'g, K, V, const B: usize> Iterator for LockedIter<'g, K, V, B> {
    type Item = (&'g K, &'g V);

    fn next(&mut self) -> Option<(&'g K, &'g V)> {
        while self.bucket < self.raw.n_buckets() {
            let b = self.raw.bucket(self.bucket);
            let m = self.raw.meta(self.bucket);
            while self.slot < B {
                let s = self.slot;
                self.slot += 1;
                if m.is_occupied(s) {
                    // SAFETY: the enclosing LockedTable holds every
                    // stripe, so occupied slots are stable and
                    // initialized for the iterator's lifetime.
                    return Some(unsafe { (&*b.key_ptr(s), &*b.val_ptr(s)) });
                }
            }
            self.slot = 0;
            self.bucket += 1;
        }
        None
    }
}

impl<K, V, const B: usize, S> Drop for CuckooMap<K, V, B, S> {
    fn drop(&mut self) {
        let ptr = *self.storage.get_mut();
        if !ptr.is_null() {
            // SAFETY: `ptr` came from `Box::into_raw` and is owned solely
            // by this map.
            drop(unsafe { Box::from_raw(ptr) });
        }
        // graveyard drops via Mutex<Vec<Box<_>>>.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_keys_and_values() {
        let m: CuckooMap<String, String> = CuckooMap::with_capacity(1000);
        m.insert("hello".into(), "world".into()).unwrap();
        m.insert("foo".into(), "bar".into()).unwrap();
        assert_eq!(m.get(&"hello".to_string()), Some("world".to_string()));
        assert_eq!(
            m.insert("hello".into(), "x".into()),
            Err(InsertError::KeyExists)
        );
        assert_eq!(m.update(&"foo".to_string(), "baz".into()), Some("bar".into()));
        assert_eq!(m.remove(&"foo".to_string()), Some("baz".to_string()));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn upsert_and_get_with() {
        let m: CuckooMap<u32, Vec<u8>> = CuckooMap::new();
        assert_eq!(m.upsert(1, vec![1, 2, 3]), UpsertOutcome::Inserted);
        assert_eq!(m.upsert(1, vec![4]), UpsertOutcome::Updated);
        assert_eq!(m.get_with(&1, |v| v.len()), Some(1));
        assert_eq!(m.get_with(&2, |v| v.len()), None);
    }

    #[test]
    fn automatic_expansion_preserves_contents() {
        let m: CuckooMap<u64, u64, 4> = CuckooMap::with_capacity(0);
        let initial_cap = m.capacity();
        let n = (initial_cap * 4) as u64;
        for k in 0..n {
            m.insert(k, k * 2).unwrap();
        }
        assert!(m.capacity() > initial_cap, "table must have expanded");
        assert_eq!(m.len(), n as usize);
        for k in 0..n {
            assert_eq!(m.get(&k), Some(k * 2), "key {k} lost in expansion");
        }
    }

    #[test]
    fn drop_frees_owned_values() {
        use std::sync::Arc;
        let sentinel = Arc::new(());
        {
            let m: CuckooMap<u64, Arc<()>> = CuckooMap::with_capacity(1000);
            for k in 0..100 {
                m.insert(k, Arc::clone(&sentinel)).unwrap();
            }
            assert_eq!(Arc::strong_count(&sentinel), 101);
            m.remove(&0);
            assert_eq!(Arc::strong_count(&sentinel), 100);
        }
        assert_eq!(Arc::strong_count(&sentinel), 1);
    }

    #[test]
    fn expansion_drops_nothing() {
        use std::sync::Arc;
        let sentinel = Arc::new(());
        let m: CuckooMap<u64, Arc<()>, 4> = CuckooMap::with_capacity(0);
        let n = (m.capacity() * 3) as u64;
        for k in 0..n {
            m.insert(k, Arc::clone(&sentinel)).unwrap();
        }
        assert_eq!(Arc::strong_count(&sentinel), n as usize + 1);
        drop(m);
        assert_eq!(Arc::strong_count(&sentinel), 1);
    }

    #[test]
    fn concurrent_insert_during_expansion() {
        let m: CuckooMap<u64, u64, 4> = CuckooMap::with_capacity(0);
        const THREADS: u64 = 4;
        const PER: u64 = 3_000;
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let m = &m;
                s.spawn(move || {
                    for i in 0..PER {
                        let key = t * 1_000_000 + i;
                        m.insert(key, key).unwrap();
                    }
                });
            }
        });
        assert_eq!(m.len(), (THREADS * PER) as usize);
        for t in 0..THREADS {
            for i in 0..PER {
                let key = t * 1_000_000 + i;
                assert_eq!(m.get(&key), Some(key));
            }
        }
    }

    #[test]
    fn for_each_and_snapshot() {
        let m: CuckooMap<u64, u64> = CuckooMap::with_capacity(1000);
        for k in 0..50 {
            m.insert(k, k + 1).unwrap();
        }
        let mut count = 0;
        m.for_each(|k, v| {
            assert_eq!(*v, *k + 1);
            count += 1;
        });
        assert_eq!(count, 50);
        let mut snap = m.snapshot();
        snap.sort_unstable();
        assert_eq!(snap[0], (0, 1));
        assert_eq!(snap.len(), 50);
    }

    #[test]
    fn locked_table_iterates_consistently() {
        let m: CuckooMap<u64, u64> = CuckooMap::with_capacity(1000);
        for k in 0..200u64 {
            m.insert(k, k * 2).unwrap();
        }
        let locked = m.lock_table();
        assert_eq!(locked.len(), 200);
        let mut seen: Vec<u64> = locked.iter().map(|(k, _)| *k).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..200).collect::<Vec<_>>());
        for (k, v) in &locked {
            assert_eq!(*v, *k * 2);
        }
        drop(locked);
        // Operations work again after the guard drops.
        m.insert(1000, 1).unwrap();
    }

    #[test]
    fn get_or_insert_with_semantics() {
        let m: CuckooMap<String, u64> = CuckooMap::new();
        assert_eq!(m.get_or_insert_with("a".into(), || 1), 1);
        assert_eq!(m.get_or_insert_with("a".into(), || 2), 1, "existing wins");
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn modify_in_place() {
        let m: CuckooMap<u64, Vec<u8>> = CuckooMap::new();
        m.insert(1, vec![1]).unwrap();
        assert!(m.modify(&1, |v| v.push(9)));
        assert_eq!(m.get(&1), Some(vec![1, 9]));
        assert!(!m.modify(&2, |_| unreachable!("absent key")));
    }

    #[test]
    fn retain_filters_and_counts() {
        let m: CuckooMap<u64, u64> = CuckooMap::with_capacity(1000);
        for k in 0..100u64 {
            m.insert(k, k).unwrap();
        }
        let removed = m.retain(|k, _| k % 2 == 0);
        assert_eq!(removed, 50);
        assert_eq!(m.len(), 50);
        assert_eq!(m.get(&2), Some(2));
        assert_eq!(m.get(&3), None);
    }

    #[test]
    fn from_iterator_and_debug() {
        let m: CuckooMap<u64, u64> = (0..50u64).map(|k| (k, k + 1)).collect();
        assert_eq!(m.len(), 50);
        assert_eq!(m.get(&10), Some(11));
        let dbg = format!("{m:?}");
        assert!(dbg.contains("CuckooMap"));
        assert!(dbg.contains("len: 50"));
    }

    #[test]
    fn retain_drops_removed_values() {
        use std::sync::Arc;
        let sentinel = Arc::new(());
        let m: CuckooMap<u64, Arc<()>> = CuckooMap::with_capacity(100);
        for k in 0..20 {
            m.insert(k, Arc::clone(&sentinel)).unwrap();
        }
        m.retain(|k, _| *k < 5);
        assert_eq!(Arc::strong_count(&sentinel), 6);
    }

    #[test]
    fn purge_retired_reclaims_memory() {
        let mut m: CuckooMap<u64, u64, 4> = CuckooMap::with_capacity(0);
        let n = (m.capacity() * 8) as u64;
        for k in 0..n {
            m.insert(k, k).unwrap();
        }
        let before = m.memory_bytes();
        m.purge_retired();
        let after = m.memory_bytes();
        assert!(after < before, "graveyard should have held memory");
        for k in 0..n {
            assert_eq!(m.get(&k), Some(k));
        }
    }
}
