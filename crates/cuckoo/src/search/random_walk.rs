//! Bounded random-walk kick-out eviction with fingerprint loop
//! detection — the high-density scheme from Kuszmaul's *Fast Concurrent
//! Cuckoo Kick-out Eviction Schemes for High-Density Tables*.
//!
//! BFS (the paper's §4.3.2 scheme) finds provably short paths but gives
//! up once its breadth budget `M` is exhausted, which caps sustainable
//! load around 95-97%. A random walk keeps kicking: each step evicts a
//! random victim from the current bucket and follows it to its alternate
//! bucket, so the only limit is the kick budget. The classic failure
//! mode — the walk wandering into a cycle and burning its budget
//! revisiting the same handful of buckets — is what the loop detection
//! removes.
//!
//! # Loop detection via visited-slot fingerprints
//!
//! Every `(bucket, slot)` coordinate the walk kicks is remembered as a
//! 32-bit **fingerprint**: the high half of `mix64(bucket << 8 | slot)`.
//! A victim whose fingerprint was already recorded is skipped (the walk
//! tries the bucket's other slots, re-randomized). Storing fingerprints
//! instead of full coordinates halves the footprint; a fingerprint
//! collision merely skips a viable victim — conservative, never unsafe.
//! Cycle-free paths have a second benefit beyond budget: a path that
//! never revisits a slot cannot *self-invalidate* during execution
//! (an earlier displacement emptying a slot a later step expects full),
//! so validated execution needs no special-casing for repeats.
//!
//! Like [`bfs`](super::bfs) and [`dfs`](super::dfs), the walk is
//! lock-free and read-only: it plans displacements over the atomic
//! metadata for later validated execution. Two walks run in parallel
//! (one per candidate bucket, the MemC3 refinement) and the first to
//! stand on a vacancy wins.

use super::{PathEntry, SearchFailure, SearchScratch};
use crate::hash::mix64;
use crate::raw::RawTable;

/// Fingerprint of a visited `(bucket, slot)` coordinate.
#[inline]
pub(crate) fn fingerprint(bucket: usize, slot: usize) -> u32 {
    (mix64(((bucket as u64) << 8) | slot as u64) >> 32) as u32
}

/// One of the two parallel walks.
struct Walk {
    /// Path steps so far (slots whose occupant will be displaced).
    entries: Vec<PathEntry>,
    /// Bucket the walk currently stands on.
    bucket: usize,
    /// Set when every victim in the current bucket is already visited:
    /// the walk is wedged and only the other walk can still succeed.
    stuck: bool,
}

/// Searches for a cuckoo path by bounded two-way random walk, kicking at
/// most `max_kicks` victims. On success the path is left in
/// `scratch.path` (root first, vacancy last); `scratch.kicks` and
/// `scratch.loops_detected` report the walk's effort either way.
pub fn search<K, V, const B: usize>(
    raw: &RawTable<K, V, B>,
    i1: usize,
    i2: usize,
    max_kicks: usize,
    scratch: &mut SearchScratch,
) -> Result<(), SearchFailure> {
    scratch.path.clear();
    scratch.fingerprints.clear();
    scratch.examined = 0;
    scratch.kicks = 0;
    scratch.loops_detected = 0;

    let mut walks = [
        Walk { entries: Vec::with_capacity(64), bucket: i1, stuck: false },
        Walk { entries: Vec::with_capacity(64), bucket: i2, stuck: false },
    ];
    let n_walks = if i1 == i2 { 1 } else { 2 };

    loop {
        let mut all_stuck = true;
        for walk in walks.iter_mut().take(n_walks) {
            if walk.stuck {
                continue;
            }
            all_stuck = false;
            if scratch.kicks >= max_kicks {
                return Err(SearchFailure::TableFull);
            }
            scratch.examined += B;

            let meta = raw.meta(walk.bucket);
            if let Some(slot) = meta.empty_slot() {
                scratch.path.append(&mut walk.entries);
                scratch.path.push(PathEntry {
                    bucket: walk.bucket,
                    slot: slot as u8,
                    tag: 0,
                });
                return Ok(());
            }

            // Kick a random victim — the first of the bucket's slots
            // (scanned from a random offset) that is not already on a
            // walk. Skipped slots are the detected loops.
            let offset = (scratch.next_random() % B as u64) as usize;
            let mut victim = None;
            for j in 0..B {
                let slot = (offset + j) % B;
                let tag = meta.partial(slot);
                if tag == 0 {
                    // Racy uninitialized tag: a degenerate edge, skip.
                    continue;
                }
                if scratch.fingerprints.contains(&fingerprint(walk.bucket, slot)) {
                    scratch.loops_detected += 1;
                    continue;
                }
                victim = Some((slot, tag));
                break;
            }
            let Some((slot, tag)) = victim else {
                // Every occupant of this bucket is already on a walk:
                // kicking any of them would close a cycle. Wedge this
                // walk; its twin may still find a vacancy elsewhere.
                walk.stuck = true;
                continue;
            };
            scratch.kicks += 1;
            scratch.fingerprints.push(fingerprint(walk.bucket, slot));
            walk.entries.push(PathEntry {
                bucket: walk.bucket,
                slot: slot as u8,
                tag,
            });
            walk.bucket = raw.alt_index(walk.bucket, tag);
        }
        if all_stuck {
            return Err(SearchFailure::TableFull);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn immediate_vacancy_yields_single_entry() {
        let raw: RawTable<u64, u64, 4> = RawTable::with_capacity(4096);
        let mut scratch = SearchScratch::default();
        search(&raw, 8, 9, 128, &mut scratch).unwrap();
        assert_eq!(scratch.path.len(), 1);
        assert_eq!(scratch.kicks, 0);
        assert!(scratch.path[0].bucket == 8 || scratch.path[0].bucket == 9);
    }

    #[test]
    fn walk_follows_alt_index_edges_and_never_repeats_a_slot() {
        let raw: RawTable<u64, u64, 4> = RawTable::with_capacity(4096);
        let i1 = 42;
        let tag = 5u8;
        let i2 = raw.alt_index(i1, tag);
        for bi in [i1, i2] {
            while let Some(s) = raw.meta(bi).empty_slot() {
                // SAFETY: single-threaded test.
                unsafe { raw.write_entry(bi, s, 9, 0, 0) };
            }
        }
        let mut scratch = SearchScratch::default();
        search(&raw, i1, i2, 128, &mut scratch).unwrap();
        let path = &scratch.path;
        assert!(path.len() >= 2);
        for w in path.windows(2) {
            assert_eq!(raw.alt_index(w[0].bucket, w[0].tag), w[1].bucket);
        }
        let last = path.last().unwrap();
        assert!(!raw.meta(last.bucket).is_occupied(last.slot as usize));
        // Loop detection: no (bucket, slot) appears twice.
        let mut coords: Vec<(usize, u8)> =
            path[..path.len() - 1].iter().map(|e| (e.bucket, e.slot)).collect();
        coords.sort_unstable();
        coords.dedup();
        assert_eq!(coords.len(), path.len() - 1, "walk revisited a slot");
    }

    #[test]
    fn closed_cycle_is_detected_not_spun_on() {
        // Two buckets pointing only at each other, both full: the walk
        // must detect the 2-cycle and give up with kicks ≪ budget,
        // instead of bouncing until the budget dies.
        let raw: RawTable<u64, u64, 4> = RawTable::with_capacity(4096);
        let a = 7;
        let t = 3u8;
        let b = raw.alt_index(a, t);
        for bi in [a, b] {
            while let Some(s) = raw.meta(bi).empty_slot() {
                // SAFETY: single-threaded test.
                unsafe { raw.write_entry(bi, s, t, 0, 0) };
            }
        }
        let mut scratch = SearchScratch::default();
        assert_eq!(search(&raw, a, b, 10_000, &mut scratch), Err(SearchFailure::TableFull));
        assert!(scratch.kicks <= 8, "cycle not detected: {} kicks", scratch.kicks);
        assert!(scratch.loops_detected > 0, "no loop events recorded");
    }

    #[test]
    fn kick_budget_bounds_the_walk() {
        // A sparse-but-locally-full neighborhood: the walk from a full
        // pair must stop at the kick budget.
        let raw: RawTable<u64, u64, 4> = RawTable::with_capacity(1 << 12);
        let mut x = 1u64;
        // ~97% full with varied tags so walks roam far.
        let target = raw.total_slots() * 97 / 100;
        let mut placed = 0;
        'fill: for bi in 0..raw.n_buckets() {
            for _ in 0..4 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let tag = ((x >> 56) as u8).max(1);
                if let Some(s) = raw.meta(bi).empty_slot() {
                    // SAFETY: single-threaded test.
                    unsafe { raw.write_entry(bi, s, tag, 0, 0) };
                    placed += 1;
                    if placed >= target {
                        break 'fill;
                    }
                }
            }
        }
        let mut scratch = SearchScratch::default();
        for i in 0..64 {
            let tag = ((i as u8) | 1).max(1);
            let b1 = (i * 13) & raw.mask();
            let _ = search(&raw, b1, raw.alt_index(b1, tag), 32, &mut scratch);
            assert!(scratch.kicks <= 32, "budget exceeded: {}", scratch.kicks);
        }
    }

    #[test]
    fn sustains_higher_density_than_bounded_bfs() {
        // The scheme's reason to exist: with comparable effort budgets,
        // the loop-detecting walk packs a table further than BFS before
        // the first failure.
        fn fill(policy: crate::search::EvictionPolicy, budget: usize) -> usize {
            let raw: RawTable<u64, u64, 4> = RawTable::with_capacity(1 << 10);
            let mut scratch = SearchScratch::default();
            let mut placed = 0usize;
            let mut x = 7u64;
            loop {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let i1 = (x >> 32) as usize & raw.mask();
                let tag = ((x >> 24) as u8).max(1);
                let i2 = raw.alt_index(i1, tag);
                let direct = [i1, i2]
                    .iter()
                    .find_map(|&bi| raw.meta(bi).empty_slot().map(|s| (bi, s)));
                let (bi, slot) = match direct {
                    Some(t) => t,
                    None => {
                        if crate::search::plan(policy, &raw, i1, i2, budget, false, &mut scratch)
                            .is_err()
                        {
                            return placed;
                        }
                        // Execute the plan single-threadedly.
                        let path = scratch.path.clone();
                        for i in (0..path.len() - 1).rev() {
                            let (src, dst) = (path[i], path[i + 1]);
                            // SAFETY: single-threaded test; path valid.
                            unsafe {
                                raw.move_entry(
                                    src.bucket,
                                    src.slot as usize,
                                    dst.bucket,
                                    dst.slot as usize,
                                    src.tag,
                                );
                            }
                        }
                        (path[0].bucket, path[0].slot as usize)
                    }
                };
                // SAFETY: single-threaded test; slot free.
                unsafe { raw.write_entry(bi, slot, tag, 0, 0) };
                placed += 1;
            }
        }
        // 256 slots examined ≈ 64 buckets for BFS; 64 kicks for the walk.
        let bfs = fill(crate::search::EvictionPolicy::Bfs, 256);
        let walk = fill(crate::search::EvictionPolicy::RandomWalk { max_kicks: 64 }, 256);
        assert!(
            walk > bfs,
            "random walk should out-pack budget-limited BFS: walk={walk} bfs={bfs}"
        );
    }
}
