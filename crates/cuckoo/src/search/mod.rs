//! Cuckoo-path search: BFS (the paper's contribution) and DFS (baseline).
//!
//! A *cuckoo path* is the sequence of displacements that frees a slot in
//! one of a key's two candidate buckets (paper §4.1, Figure 3). Both
//! searchers run **without any locks held** (§4.3.1): they read only the
//! atomic occupancy bitmaps and partial-key bytes, so a discovered path is
//! merely a *plan* that execution re-validates displacement by
//! displacement.

pub mod bfs;
pub mod dfs;
pub(crate) mod exec;
pub mod random_walk;

use crate::hash::mix64;
use crate::raw::RawTable;

/// How the insert slow path plans kick-out eviction when both candidate
/// buckets are full.
///
/// The policy only selects how a cuckoo *path* is discovered; execution
/// is always the shared validated hole-backwards routine
/// (`search::exec`), so every policy provides the same reader-visibility
/// guarantees. The trade-off is density versus tail latency:
///
/// - [`Bfs`](EvictionPolicy::Bfs) finds *shortest* paths (≈5 steps at
///   95% load, Eq. 2) but declares the table full once its breadth
///   budget `M` is exhausted — in practice ~95-97% sustainable load.
/// - [`RandomWalk`](EvictionPolicy::RandomWalk) follows Kuszmaul's
///   high-density kick-out schemes: a bounded random walk that keeps
///   kicking far past BFS's give-up point, with loop detection via
///   visited-slot fingerprints so the walk never revisits (and thus
///   never self-invalidates) a slot. Longer paths, higher sustainable
///   density (98%+).
/// - [`Hybrid`](EvictionPolicy::Hybrid) is the breadth-bounded
///   compromise: a small BFS first (short paths for the common case),
///   falling back to the random walk only when the bounded breadth
///   search fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvictionPolicy {
    /// Breadth-first search with the configured budget `M` (§4.3.2) —
    /// the paper's scheme and this crate's default.
    #[default]
    Bfs,
    /// Bounded random-walk kick-out with fingerprint loop detection.
    RandomWalk {
        /// Maximum victim kicks before the insert gives up.
        max_kicks: usize,
    },
    /// Breadth-bounded hybrid: BFS over at most `bfs_slots` slots, then
    /// random walk on failure.
    Hybrid {
        /// BFS slot budget for the first phase.
        bfs_slots: usize,
        /// Random-walk kick budget for the fallback phase.
        max_kicks: usize,
    },
}

/// Discovers a cuckoo path from `(i1, i2)` under `policy`, leaving it in
/// `scratch.path` (root first, vacancy last — the format
/// [`exec`] executes). `max_slots` and `prefetch` parameterize the BFS
/// phases; random-walk phases are bounded by their own kick budgets.
///
/// Like [`bfs::search`] and [`dfs::search`], this runs with **no locks
/// held** and reads only atomic metadata: the result is a plan that
/// execution re-validates step by step.
pub fn plan<K, V, const B: usize>(
    policy: EvictionPolicy,
    raw: &RawTable<K, V, B>,
    i1: usize,
    i2: usize,
    max_slots: usize,
    prefetch: bool,
    scratch: &mut SearchScratch,
) -> Result<(), SearchFailure> {
    scratch.kicks = 0;
    scratch.loops_detected = 0;
    match policy {
        EvictionPolicy::Bfs => bfs::search(raw, i1, i2, max_slots, prefetch, scratch),
        EvictionPolicy::RandomWalk { max_kicks } => {
            random_walk::search(raw, i1, i2, max_kicks, scratch)
        }
        EvictionPolicy::Hybrid { bfs_slots, max_kicks } => {
            if bfs::search(raw, i1, i2, bfs_slots.min(max_slots), prefetch, scratch).is_ok() {
                return Ok(());
            }
            let bfs_examined = scratch.examined;
            let r = random_walk::search(raw, i1, i2, max_kicks, scratch);
            // Report the whole search's cost, both phases.
            scratch.examined += bfs_examined;
            r
        }
    }
}

/// One step of a cuckoo path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathEntry {
    /// Bucket this step operates on.
    pub bucket: usize,
    /// For intermediate steps: the slot whose occupant moves to the next
    /// entry's bucket. For the final entry: the empty slot discovered.
    pub slot: u8,
    /// The occupant's partial key as observed during search (0 and unused
    /// for the final entry). Execution re-validates it: a changed tag
    /// means the path is stale.
    pub tag: u8,
}

/// Search bookkeeping reused across inserts so the hot path does not
/// allocate.
pub struct SearchScratch {
    pub(crate) visited: Vec<Visited>,
    /// The discovered path, root first, empty-slot bucket last.
    pub path: Vec<PathEntry>,
    /// Slots examined by the most recent search (success or failure) —
    /// the observability layer's search-depth sample.
    pub examined: usize,
    /// Victim kicks performed by the most recent random-walk search
    /// (0 for BFS/DFS) — the eviction-engine kick-count sample.
    pub kicks: usize,
    /// Walk steps the most recent random-walk search rejected because
    /// their slot fingerprint was already visited (loop detection).
    pub loops_detected: usize,
    /// Fingerprints of `(bucket, slot)` coordinates visited by the
    /// current random-walk search (see `random_walk::fingerprint`).
    pub(crate) fingerprints: Vec<u32>,
    rng_state: u64,
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct Visited {
    pub bucket: usize,
    /// Index of the parent in the visited list, or `u32::MAX` for roots.
    pub parent: u32,
    /// Slot in the parent bucket whose occupant leads here.
    pub slot_in_parent: u8,
    /// That occupant's observed tag.
    pub tag_in_parent: u8,
}

pub(crate) const NO_PARENT: u32 = u32::MAX;

impl SearchScratch {
    /// Creates scratch buffers seeded for victim selection.
    pub fn new(seed: u64) -> Self {
        SearchScratch {
            visited: Vec::with_capacity(512),
            path: Vec::with_capacity(16),
            examined: 0,
            kicks: 0,
            loops_detected: 0,
            fingerprints: Vec::with_capacity(128),
            rng_state: mix64(seed | 1),
        }
    }

    /// SplitMix64 step for DFS victim selection.
    #[inline]
    pub(crate) fn next_random(&mut self) -> u64 {
        self.rng_state = self.rng_state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        mix64(self.rng_state)
    }
}

impl Default for SearchScratch {
    fn default() -> Self {
        Self::new(0x5eed)
    }
}

/// Why a search ended without a path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchFailure {
    /// The slot-examination budget `M` was exhausted: the table is
    /// (effectively) too full.
    TableFull,
}

thread_local! {
    /// Per-thread pool of search scratch buffers so inserts never allocate
    /// on the hot path.
    static SCRATCH_POOL: std::cell::RefCell<Vec<SearchScratch>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

static SCRATCH_SEED: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

/// Runs `f` with a pooled per-thread [`SearchScratch`]. Reentrant (nested
/// calls get distinct buffers).
pub fn with_scratch<R>(f: impl FnOnce(&mut SearchScratch) -> R) -> R {
    let mut scratch = SCRATCH_POOL.with(|p| p.borrow_mut().pop()).unwrap_or_else(|| {
        let seed = SCRATCH_SEED.fetch_add(0x9e37_79b9, std::sync::atomic::Ordering::Relaxed); // ORDERING: alloc.unique-id
        SearchScratch::new(seed)
    });
    let r = f(&mut scratch);
    SCRATCH_POOL.with(|p| p.borrow_mut().push(scratch));
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_rng_is_deterministic_per_seed() {
        let mut a = SearchScratch::new(1);
        let mut b = SearchScratch::new(1);
        let mut c = SearchScratch::new(2);
        let xa: Vec<u64> = (0..4).map(|_| a.next_random()).collect();
        let xb: Vec<u64> = (0..4).map(|_| b.next_random()).collect();
        let xc: Vec<u64> = (0..4).map(|_| c.next_random()).collect();
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }
}
