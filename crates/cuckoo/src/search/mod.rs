//! Cuckoo-path search: BFS (the paper's contribution) and DFS (baseline).
//!
//! A *cuckoo path* is the sequence of displacements that frees a slot in
//! one of a key's two candidate buckets (paper §4.1, Figure 3). Both
//! searchers run **without any locks held** (§4.3.1): they read only the
//! atomic occupancy bitmaps and partial-key bytes, so a discovered path is
//! merely a *plan* that execution re-validates displacement by
//! displacement.

pub mod bfs;
pub mod dfs;

use crate::hash::mix64;

/// One step of a cuckoo path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathEntry {
    /// Bucket this step operates on.
    pub bucket: usize,
    /// For intermediate steps: the slot whose occupant moves to the next
    /// entry's bucket. For the final entry: the empty slot discovered.
    pub slot: u8,
    /// The occupant's partial key as observed during search (0 and unused
    /// for the final entry). Execution re-validates it: a changed tag
    /// means the path is stale.
    pub tag: u8,
}

/// Search bookkeeping reused across inserts so the hot path does not
/// allocate.
pub struct SearchScratch {
    pub(crate) visited: Vec<Visited>,
    /// The discovered path, root first, empty-slot bucket last.
    pub path: Vec<PathEntry>,
    /// Slots examined by the most recent search (success or failure) —
    /// the observability layer's search-depth sample.
    pub examined: usize,
    rng_state: u64,
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct Visited {
    pub bucket: usize,
    /// Index of the parent in the visited list, or `u32::MAX` for roots.
    pub parent: u32,
    /// Slot in the parent bucket whose occupant leads here.
    pub slot_in_parent: u8,
    /// That occupant's observed tag.
    pub tag_in_parent: u8,
}

pub(crate) const NO_PARENT: u32 = u32::MAX;

impl SearchScratch {
    /// Creates scratch buffers seeded for victim selection.
    pub fn new(seed: u64) -> Self {
        SearchScratch {
            visited: Vec::with_capacity(512),
            path: Vec::with_capacity(16),
            examined: 0,
            rng_state: mix64(seed | 1),
        }
    }

    /// SplitMix64 step for DFS victim selection.
    #[inline]
    pub(crate) fn next_random(&mut self) -> u64 {
        self.rng_state = self.rng_state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        mix64(self.rng_state)
    }
}

impl Default for SearchScratch {
    fn default() -> Self {
        Self::new(0x5eed)
    }
}

/// Why a search ended without a path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchFailure {
    /// The slot-examination budget `M` was exhausted: the table is
    /// (effectively) too full.
    TableFull,
}

thread_local! {
    /// Per-thread pool of search scratch buffers so inserts never allocate
    /// on the hot path.
    static SCRATCH_POOL: std::cell::RefCell<Vec<SearchScratch>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

static SCRATCH_SEED: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

/// Runs `f` with a pooled per-thread [`SearchScratch`]. Reentrant (nested
/// calls get distinct buffers).
pub fn with_scratch<R>(f: impl FnOnce(&mut SearchScratch) -> R) -> R {
    let mut scratch = SCRATCH_POOL.with(|p| p.borrow_mut().pop()).unwrap_or_else(|| {
        let seed = SCRATCH_SEED.fetch_add(0x9e37_79b9, std::sync::atomic::Ordering::Relaxed);
        SearchScratch::new(seed)
    });
    let r = f(&mut scratch);
    SCRATCH_POOL.with(|p| p.borrow_mut().push(scratch));
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_rng_is_deterministic_per_seed() {
        let mut a = SearchScratch::new(1);
        let mut b = SearchScratch::new(1);
        let mut c = SearchScratch::new(2);
        let xa: Vec<u64> = (0..4).map(|_| a.next_random()).collect();
        let xb: Vec<u64> = (0..4).map(|_| b.next_random()).collect();
        let xc: Vec<u64> = (0..4).map(|_| c.next_random()).collect();
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }
}
