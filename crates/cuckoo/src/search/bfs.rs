//! Breadth-first search for an empty slot (paper §4.3.2, Figure 4b).
//!
//! Basic cuckoo hashing frees a slot with a greedy random walk — a random
//! *depth*-first search of the cuckoo graph that can displace hundreds of
//! items per insert near full occupancy. BFS instead treats every slot of
//! a bucket as a candidate path and expands them level by level, so the
//! first empty slot found yields a *shortest* path: for a `B`-way table
//! with an `M`-slot search budget the path length is bounded by
//! `ceil(log_B(M/2 - M/(2B) + 1))` (Eq. 2, Appendix C) — 5 for the
//! MemC3 configuration (B = 4, M = 2000) versus 250 for two-way DFS.
//!
//! Short paths are what make fine-grained locking practical (§4.4: "at
//! most one new item inserted and four item displacements") and shrink
//! the transactional footprint (§5).
//!
//! Because the expansion schedule is known in advance, the searcher can
//! **prefetch** the next frontier bucket while scanning the current one —
//! impossible for DFS, where "the next bucket location is unknown until
//! one key in the current bucket is 'kicked out'".

use super::{PathEntry, SearchFailure, SearchScratch, Visited, NO_PARENT};
use crate::prefetch::prefetch_read;
use crate::raw::RawTable;

/// Maximum cuckoo-path length from a BFS over a `B`-way table with an
/// `M`-slot budget (Eq. 2 / Appendix C):
/// `L_BFS = ceil(log_B(M/2 - M/(2B) + 1))`.
///
/// Computed in integer arithmetic as the smallest `L` with
/// `2·B^(L+1) ≥ M·(B−1) + 2·B` (Eq. 2 with both sides multiplied by
/// `2B`). The obvious float form `(leaves.ln()/b.ln()).ceil()` rounds
/// *up* across exact integer boundaries when the quotient lands a few
/// ulps high — e.g. B = 5, M = 310 gives `log_5(125) = 3.0000000000000004`
/// and a bound of 4 instead of the correct 3.
pub fn bfs_max_path_len(ways: usize, max_slots: usize) -> usize {
    assert!(ways >= 2, "Eq. 2 requires B >= 2");
    let b = ways as u128;
    let m = max_slots as u128;
    // leaves * 2B = M(B-1) + 2B; find the smallest L with B^L >= leaves.
    let rhs = m * (b - 1) + 2 * b;
    let mut l = 0usize;
    let mut pow = 2 * b; // 2B * B^L at L = 0
    while pow < rhs {
        l += 1;
        pow = pow.saturating_mul(b);
    }
    l
}

/// Searches for a cuckoo path from buckets `i1`/`i2` to an empty slot,
/// examining at most `max_slots` slots.
///
/// On success the path is left in `scratch.path` (root bucket first,
/// empty-slot bucket last; see [`PathEntry`]). Runs lock-free over the
/// table's atomic metadata; the result must be re-validated by execution.
pub fn search<K, V, const B: usize>(
    raw: &RawTable<K, V, B>,
    i1: usize,
    i2: usize,
    max_slots: usize,
    prefetch: bool,
    scratch: &mut SearchScratch,
) -> Result<(), SearchFailure> {
    scratch.visited.clear();
    scratch.path.clear();

    scratch.visited.push(Visited {
        bucket: i1,
        parent: NO_PARENT,
        slot_in_parent: 0,
        tag_in_parent: 0,
    });
    if i2 != i1 {
        scratch.visited.push(Visited {
            bucket: i2,
            parent: NO_PARENT,
            slot_in_parent: 0,
            tag_in_parent: 0,
        });
    }

    let mut head = 0usize;
    let mut examined = 0usize;
    while head < scratch.visited.len() {
        let cur = scratch.visited[head];

        if prefetch {
            // The BFS frontier is a queue, so the next bucket to scan is
            // already known: warm it while we scan this one.
            if let Some(next) = scratch.visited.get(head + 1) {
                // Metadata drives the search; entry storage is touched by
                // the later execution. Warm both.
                prefetch_read(raw.meta(next.bucket) as *const _);
                prefetch_read(raw.bucket(next.bucket) as *const _);
            }
        }

        if examined >= max_slots {
            scratch.examined = examined;
            return Err(SearchFailure::TableFull);
        }
        examined += B;

        let meta = raw.meta(cur.bucket);
        let mask = meta.occupied_mask();
        let free = !mask & crate::bucket::BucketMeta::<B>::FULL_MASK;
        if free != 0 {
            let empty_slot = free.trailing_zeros() as u8;
            scratch.examined = examined;
            reconstruct(scratch, head, empty_slot);
            return Ok(());
        }

        // No vacancy: every slot extends its own path to its occupant's
        // alternate bucket.
        let parent = head as u32;
        for s in 0..B {
            let tag = meta.partial(s);
            if tag == 0 {
                // Racy read of a slot that has never been written; the
                // alt-index of tag 0 is degenerate, skip it.
                continue;
            }
            scratch.visited.push(Visited {
                bucket: raw.alt_index(cur.bucket, tag),
                parent,
                slot_in_parent: s as u8,
                tag_in_parent: tag,
            });
        }
        head += 1;
    }
    scratch.examined = examined;
    Err(SearchFailure::TableFull)
}

/// Rebuilds the root-to-vacancy path from the visited tree.
fn reconstruct(scratch: &mut SearchScratch, leaf: usize, empty_slot: u8) {
    let mut cur = leaf as u32;
    scratch.path.push(PathEntry {
        bucket: scratch.visited[leaf].bucket,
        slot: empty_slot,
        tag: 0,
    });
    while scratch.visited[cur as usize].parent != NO_PARENT {
        let v = scratch.visited[cur as usize];
        let parent = &scratch.visited[v.parent as usize];
        scratch.path.push(PathEntry {
            bucket: parent.bucket,
            slot: v.slot_in_parent,
            tag: v.tag_in_parent,
        });
        cur = v.parent;
    }
    scratch.path.reverse();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raw::RawTable;

    fn fill_bucket(raw: &RawTable<u64, u64, 4>, bi: usize, tag: u8) {
        while let Some(s) = raw.meta(bi).empty_slot() {
            // SAFETY: single-threaded test.
            unsafe { raw.write_entry(bi, s, tag, 0, 0) };
        }
    }

    #[test]
    fn eq2_reference_values() {
        // The paper: "As used in MemC3, B = 4, M = 2000 ... L_BFS = 5."
        assert_eq!(bfs_max_path_len(4, 2000), 5);
        // 8-way shortens the bound further.
        assert!(bfs_max_path_len(8, 2000) <= 4);
        // 2-way set-associative (Figure 4's example scale).
        assert_eq!(bfs_max_path_len(2, 4), 1);
    }

    #[test]
    fn eq2_exact_integer_boundaries() {
        // Configurations where `leaves` is an exact power of B, so the
        // log quotient sits on an integer boundary. Float evaluation of
        // `ln(leaves)/ln(b)` lands a few ulps high for B=5, M=310
        // (log_5(125) = 3.0000000000000004) and used to report 4.
        assert_eq!(bfs_max_path_len(5, 310), 3);
        assert_eq!(bfs_max_path_len(2, 12), 2); // leaves = 4 = 2^2
        assert_eq!(bfs_max_path_len(2, 28), 3); // leaves = 8 = 2^3
        assert_eq!(bfs_max_path_len(3, 24), 2); // leaves = 9 = 3^2
        // Degenerate small-M edges: a budget that cannot even cover one
        // bucket still yields a well-defined (zero-length) bound.
        assert_eq!(bfs_max_path_len(2, 0), 0); // leaves = 1 = 2^0
        assert_eq!(bfs_max_path_len(2, 2), 1);
    }

    #[test]
    fn eq2_monotonic_in_budget() {
        // The bound must never decrease as the search budget grows.
        for ways in [2usize, 4, 8] {
            let mut prev = 0;
            for m in 0..4096 {
                let l = bfs_max_path_len(ways, m);
                assert!(l >= prev, "bound regressed at B={ways}, M={m}");
                prev = l;
            }
        }
    }

    #[test]
    fn empty_root_gives_single_entry_path() {
        let raw: RawTable<u64, u64, 4> = RawTable::with_capacity(4096);
        let mut scratch = SearchScratch::default();
        search(&raw, 10, 20, 2000, false, &mut scratch).unwrap();
        assert_eq!(scratch.path.len(), 1);
        assert_eq!(scratch.path[0].bucket, 10);
        assert_eq!(scratch.path[0].slot, 0);
    }

    #[test]
    fn finds_path_through_full_roots() {
        let raw: RawTable<u64, u64, 4> = RawTable::with_capacity(4096);
        let i1 = 100;
        let tag = 7u8;
        let i2 = raw.alt_index(i1, tag);
        // Both candidate buckets full of tag-7 items; their mutual
        // alternate is each other, except we also fill i2 with a tag that
        // leads to a third, empty bucket.
        fill_bucket(&raw, i1, tag);
        let tag2 = 9u8;
        fill_bucket(&raw, i2, tag2);
        let mut scratch = SearchScratch::default();
        search(&raw, i1, i2, 2000, false, &mut scratch).unwrap();
        let path = &scratch.path;
        assert!(path.len() >= 2, "roots are full: at least one displacement");
        // Path must start at a root...
        assert!(path[0].bucket == i1 || path[0].bucket == i2);
        // ...follow alt-index edges...
        for w in path.windows(2) {
            assert_eq!(raw.alt_index(w[0].bucket, w[0].tag), w[1].bucket);
        }
        // ...and end at a bucket with an empty slot.
        let last = path.last().unwrap();
        assert!(!raw.meta(last.bucket).is_occupied(last.slot as usize));
    }

    #[test]
    fn path_length_respects_eq2_bound() {
        // Build an adversarial dense region and check the bound holds for
        // every search that succeeds.
        let raw: RawTable<u64, u64, 4> = RawTable::with_capacity(1 << 12);
        // Fill ~93% of slots with pseudo-random tags.
        let total = raw.total_slots() * 93 / 100;
        let mut placed = 0;
        let mut x = 1u64;
        'fill: for round in 0..raw.n_buckets() * 8 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(round as u64);
            let bi = (x >> 32) as usize & raw.mask();
            let tag = ((x >> 24) as u8).max(1);
            if let Some(s) = raw.meta(bi).empty_slot() {
                // SAFETY: single-threaded test.
                unsafe { raw.write_entry(bi, s, tag, 0, 0) };
                placed += 1;
                if placed >= total {
                    break 'fill;
                }
            }
        }
        let bound = bfs_max_path_len(4, 2000);
        let mut scratch = SearchScratch::default();
        let mut found = 0;
        for i in (0..raw.n_buckets()).step_by(37) {
            let tag = ((i as u8) | 1).max(1);
            let i2 = raw.alt_index(i, tag);
            if search(&raw, i, i2, 2000, true, &mut scratch).is_ok() {
                found += 1;
                assert!(
                    scratch.path.len() <= bound + 1,
                    "path of {} displacements exceeds L_BFS={} (+1 for the \
                     vacancy entry)",
                    scratch.path.len(),
                    bound
                );
            }
        }
        assert!(found > 0, "no successful searches in a 93% full table");
    }

    #[test]
    fn budget_exhaustion_reports_full() {
        let raw: RawTable<u64, u64, 4> = RawTable::with_capacity(4096);
        // A tiny closed cycle: bucket A full of tag t (alt = B), bucket B
        // full of tag t (alt = A). No vacancy is reachable.
        let a = 50;
        let t = 3u8;
        let b = raw.alt_index(a, t);
        fill_bucket(&raw, a, t);
        fill_bucket(&raw, b, t);
        let mut scratch = SearchScratch::default();
        let r = search(&raw, a, b, 64, false, &mut scratch);
        assert_eq!(r, Err(SearchFailure::TableFull));
    }

    #[test]
    fn same_primary_and_alternate_bucket() {
        let raw: RawTable<u64, u64, 4> = RawTable::with_capacity(4096);
        let mut scratch = SearchScratch::default();
        search(&raw, 5, 5, 2000, false, &mut scratch).unwrap();
        assert_eq!(scratch.path[0].bucket, 5);
    }
}
