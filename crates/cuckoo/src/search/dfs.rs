//! Random-walk depth-first search (the MemC3 baseline, paper §4.3.2).
//!
//! "If the current bucket is full, a random key is 'kicked out' to its
//! alternate location, and possibly kicks out another random key there,
//! until a vacant position is found." MemC3's refinement — which this
//! implements — tracks **two** paths in parallel (one per candidate
//! bucket) and completes when either finds an empty slot, halving the
//! expected path length but leaving it linear in the budget: up to 250
//! displacements at M = 2000, versus BFS's logarithmic 5.
//!
//! Like the BFS, the walk itself is lock-free and read-only: it plans
//! displacements for later validated execution. (MemC3 separates path
//! discovery from item movement precisely to keep readers from ever
//! missing an item.)

use super::{PathEntry, SearchFailure, SearchScratch};
use crate::raw::RawTable;

/// One of the two parallel walks.
struct Walk {
    /// Path steps so far (buckets whose occupant will be displaced).
    entries: Vec<PathEntry>,
    /// Bucket the walk currently stands on.
    bucket: usize,
}

/// Searches for a cuckoo path by two-way random walk, examining at most
/// `max_slots` slots. On success the path is left in `scratch.path`.
pub fn search<K, V, const B: usize>(
    raw: &RawTable<K, V, B>,
    i1: usize,
    i2: usize,
    max_slots: usize,
    scratch: &mut SearchScratch,
) -> Result<(), SearchFailure> {
    scratch.path.clear();

    let mut walks = [
        Walk {
            entries: Vec::with_capacity(64),
            bucket: i1,
        },
        Walk {
            entries: Vec::with_capacity(64),
            bucket: i2,
        },
    ];
    let n_walks = if i1 == i2 { 1 } else { 2 };

    let mut examined = 0usize;
    loop {
        for walk in walks.iter_mut().take(n_walks) {
            if examined >= max_slots {
                return Err(SearchFailure::TableFull);
            }
            examined += B;

            let meta = raw.meta(walk.bucket);
            if let Some(slot) = meta.empty_slot() {
                scratch.path.append(&mut walk.entries);
                scratch.path.push(PathEntry {
                    bucket: walk.bucket,
                    slot: slot as u8,
                    tag: 0,
                });
                return Ok(());
            }

            // Kick out a random victim and follow it.
            let slot = (scratch.next_random() % B as u64) as usize;
            let tag = meta.partial(slot);
            if tag == 0 {
                // Racy uninitialized tag: step again from the same bucket
                // next round rather than following a degenerate edge.
                continue;
            }
            walk.entries.push(PathEntry {
                bucket: walk.bucket,
                slot: slot as u8,
                tag,
            });
            walk.bucket = raw.alt_index(walk.bucket, tag);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raw::RawTable;

    #[test]
    fn immediate_vacancy_yields_single_entry() {
        let raw: RawTable<u64, u64, 4> = RawTable::with_capacity(4096);
        let mut scratch = SearchScratch::default();
        search(&raw, 8, 9, 2000, &mut scratch).unwrap();
        assert_eq!(scratch.path.len(), 1);
        assert!(scratch.path[0].bucket == 8 || scratch.path[0].bucket == 9);
    }

    #[test]
    fn walk_follows_alt_index_edges() {
        let raw: RawTable<u64, u64, 4> = RawTable::with_capacity(4096);
        let i1 = 42;
        let tag = 5u8;
        let i2 = raw.alt_index(i1, tag);
        for bi in [i1, i2] {
            while let Some(s) = raw.meta(bi).empty_slot() {
                // Occupants of i1/i2 with tag 9 lead to vacancies.
                // SAFETY: single-threaded test.
                unsafe { raw.write_entry(bi, s, 9, 0, 0) };
            }
        }
        let mut scratch = SearchScratch::default();
        search(&raw, i1, i2, 2000, &mut scratch).unwrap();
        let path = &scratch.path;
        assert!(path.len() >= 2);
        for w in path.windows(2) {
            assert_eq!(raw.alt_index(w[0].bucket, w[0].tag), w[1].bucket);
        }
        let last = path.last().unwrap();
        assert!(!raw.meta(last.bucket).is_occupied(last.slot as usize));
    }

    #[test]
    fn budget_exhaustion_reports_full() {
        let raw: RawTable<u64, u64, 4> = RawTable::with_capacity(4096);
        let a = 7;
        let t = 3u8;
        let b = raw.alt_index(a, t);
        for bi in [a, b] {
            while let Some(s) = raw.meta(bi).empty_slot() {
                // SAFETY: single-threaded test.
                unsafe { raw.write_entry(bi, s, t, 0, 0) };
            }
        }
        let mut scratch = SearchScratch::default();
        assert_eq!(
            search(&raw, a, b, 64, &mut scratch),
            Err(SearchFailure::TableFull)
        );
    }

    #[test]
    fn dfs_paths_are_longer_than_bfs_at_high_load() {
        // The paper's core claim for §4.3.2: at high occupancy, BFS paths
        // are dramatically shorter than DFS paths.
        let raw: RawTable<u64, u64, 4> = RawTable::with_capacity(1 << 12);
        let total = raw.total_slots() * 95 / 100;
        let mut placed = 0;
        let mut x = 99u64;
        for round in 0..raw.n_buckets() * 64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(round as u64);
            let bi = (x >> 32) as usize & raw.mask();
            let tag = ((x >> 24) as u8).max(1);
            if let Some(s) = raw.meta(bi).empty_slot() {
                // SAFETY: single-threaded test.
                unsafe { raw.write_entry(bi, s, tag, 0, 0) };
                placed += 1;
                if placed >= total {
                    break;
                }
            }
        }
        let mut scratch = SearchScratch::default();
        let mut dfs_total = 0usize;
        let mut bfs_total = 0usize;
        let mut n = 0usize;
        for i in (0..raw.n_buckets()).step_by(53) {
            let tag = ((i as u8) | 1).max(1);
            let i2 = raw.alt_index(i, tag);
            let dfs_ok = search(&raw, i, i2, 2000, &mut scratch).is_ok();
            let dfs_len = scratch.path.len();
            let bfs_ok =
                super::super::bfs::search(&raw, i, i2, 2000, false, &mut scratch).is_ok();
            let bfs_len = scratch.path.len();
            if dfs_ok && bfs_ok {
                dfs_total += dfs_len;
                bfs_total += bfs_len;
                n += 1;
            }
        }
        assert!(n > 10, "too few comparable searches: {n}");
        assert!(
            dfs_total as f64 >= 1.5 * bfs_total as f64,
            "expected DFS paths much longer: dfs={dfs_total} bfs={bfs_total} over {n}"
        );
    }
}
