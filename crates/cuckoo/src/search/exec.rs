//! The single validated hole-backwards path executor shared by every
//! table flavor.
//!
//! A discovered cuckoo path is a *plan* over unstable metadata; this
//! module is the one place that turns a plan into displacements. The
//! path is executed **hole-backwards** (SNIPPETS item 4): walking from
//! the vacancy toward the root and moving each entry *forward* into the
//! hole means every displacement writes its destination before clearing
//! its source, so an in-flight entry is present in at least one of its
//! two candidate buckets at every instant. Items-forward execution has
//! the opposite order — source cleared while the destination is still
//! empty — and a reader probing both buckets in that window misses a
//! live key. `CuckooMap::execute_path_on` and `OptimisticCuckooMap::
//! execute_path_fg{,_locked}` used to each hand-roll this loop; the
//! invariants (step order, per-step locking, the validation triple, the
//! `displacements` SeqCst bump that `scan` depends on) now live here and
//! cannot drift apart again.
//!
//! The model suite (`tests/model.rs`) proves the reader-survivability
//! claim mechanically, and proves the checker would catch a split
//! source-before-destination mutation; CI additionally sed-mutates this
//! file's step order and requires the unit tests below to fail.

use super::PathEntry;
use crate::raw::RawTable;
use crate::sync::LockStripes;
use crate::sync2::atomic::{AtomicU64, Ordering};

/// Per-step move discipline. The two implementations are
/// [`RawTable::move_entry`] (plain moves — readers are locked out, any
/// `K`/`V`) and [`RawTable::move_entry_racy`] (atomic-chunk publication
/// for optimistic readers, `K: Plain`/`V: Plain`); both write the
/// destination before clearing the source. Arguments: `(raw, src_bucket,
/// src_slot, dst_bucket, dst_slot, tag)`.
///
/// # Safety
///
/// The executor calls the mover with writer exclusion held over both
/// buckets and the (source occupied ∧ tag matches ∧ destination empty)
/// triple freshly validated — exactly the movers' safety contract.
pub(crate) type Mover<K, V, const B: usize> =
    // SAFETY: see `# Safety` above — exclusion + validation precede every call.
    unsafe fn(&RawTable<K, V, B>, usize, usize, usize, usize, u8);

/// Executes `path` (root first, vacancy last) over `raw`, hole-backwards,
/// one validated displacement at a time. Returns `false` as soon as a
/// step fails validation — the path went stale; each displacement already
/// applied is individually valid, so no undo is needed.
///
/// `stripes`: `Some` locks each step's bucket pair (ordered by stripe
/// rank, see [`LockStripes::lock_pair`]); `None` means the caller already
/// holds table-wide writer exclusion (the pessimistic full-table paths).
///
/// `valid` is re-checked inside every step's lock: a concurrent
/// expansion, migration start, or emergency rebuild makes the step fail
/// validation instead of displacing entries in a table being drained.
///
/// `displacements` is bumped SeqCst under the step's lock — correctness-
/// bearing for both maps' `scan`, which detects an entry hopping between
/// stripes mid-snapshot by this counter.
pub(crate) fn execute_hole_backwards<K, V, const B: usize>(
    raw: &RawTable<K, V, B>,
    stripes: Option<&LockStripes>,
    path: &[PathEntry],
    displacements: &AtomicU64,
    valid: impl Fn() -> bool,
    mover: Mover<K, V, B>,
) -> bool {
    if path.len() < 2 {
        return true;
    }
    for i in (0..path.len() - 1).rev() {
        let src = path[i];
        let dst = path[i + 1];
        let _g = stripes.map(|s| s.lock_pair(src.bucket, dst.bucket));
        if !valid() {
            return false;
        }
        let sm = raw.meta(src.bucket);
        let dm = raw.meta(dst.bucket);
        let (ss, ds) = (src.slot as usize, dst.slot as usize);
        if !sm.is_occupied(ss) || sm.partial(ss) != src.tag || dm.is_occupied(ds) {
            return false;
        }
        // SAFETY: writer exclusion over both buckets is held (the step's
        // pair lock, or the caller's table-wide lock when `stripes` is
        // `None`); the triple above established source occupied with the
        // expected tag and destination empty — the mover's contract.
        unsafe { mover(raw, src.bucket, ss, dst.bucket, ds, src.tag) };
        // Bumped under the lock so `scan` (one stripe at a time)
        // observes the count move whenever an entry crosses stripes
        // during a fuzzy snapshot.
        displacements.fetch_add(1, Ordering::SeqCst); // ORDERING: exec.scan-counter
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::PathEntry;

    fn entry(bucket: usize, slot: u8, tag: u8) -> PathEntry {
        PathEntry { bucket, slot, tag }
    }

    /// Plants a 2-displacement chain: key A at (10,0) → (20,1) → hole at
    /// (30,2). This is the CI mutation smoke's named target: executing
    /// the steps in *forward* order moves A onto the still-occupied
    /// (20,1) — validation rejects it — so stripping the `.rev()` makes
    /// this test fail.
    fn two_step_fixture() -> (RawTable<u64, u64, 4>, Vec<PathEntry>) {
        let raw: RawTable<u64, u64, 4> = RawTable::with_capacity(1024);
        // SAFETY: single-threaded test; slots unoccupied.
        unsafe {
            raw.write_entry(10, 0, 0xAA, 1, 100);
            raw.write_entry(20, 1, 0xBB, 2, 200);
        }
        let path = vec![entry(10, 0, 0xAA), entry(20, 1, 0xBB), entry(30, 2, 0)];
        (raw, path)
    }

    #[test]
    fn hole_backwards_executes_multi_step_paths() {
        let (raw, path) = two_step_fixture();
        let stripes = LockStripes::new(8);
        let displacements = AtomicU64::new(0);
        assert!(execute_hole_backwards(
            &raw,
            Some(&stripes),
            &path,
            &displacements,
            || true,
            RawTable::move_entry,
        ));
        assert_eq!(displacements.load(Ordering::SeqCst), 2);
        // The hole moved to the root; both entries shifted one step.
        assert!(!raw.meta(10).is_occupied(0));
        assert!(raw.meta(20).is_occupied(1));
        assert_eq!(raw.meta(20).partial(1), 0xAA);
        assert!(raw.meta(30).is_occupied(2));
        assert_eq!(raw.meta(30).partial(2), 0xBB);
        // SAFETY: single-threaded; slots occupied as just asserted.
        unsafe {
            assert_eq!(raw.take_entry(20, 1), (1, 100));
            assert_eq!(raw.take_entry(30, 2), (2, 200));
        }
    }

    #[test]
    fn stale_source_tag_rejects_the_path() {
        let (raw, path) = two_step_fixture();
        let stripes = LockStripes::new(8);
        let displacements = AtomicU64::new(0);
        // Concurrent writer "replaced" the root occupant: tag mismatch.
        let mut stale = path.clone();
        stale[0].tag = 0x77;
        // The vacancy-adjacent step executes; the stale root step aborts.
        assert!(!execute_hole_backwards(
            &raw,
            Some(&stripes),
            &stale,
            &displacements,
            || true,
            RawTable::move_entry,
        ));
        assert_eq!(displacements.load(Ordering::SeqCst), 1);
        // Each applied displacement remains individually valid.
        assert!(raw.meta(10).is_occupied(0));
        assert!(raw.meta(30).is_occupied(2));
        assert!(!raw.meta(20).is_occupied(1));
    }

    #[test]
    fn occupied_destination_rejects_the_path() {
        let (raw, path) = two_step_fixture();
        // SAFETY: single-threaded; the hole slot is unoccupied.
        unsafe { raw.write_entry(30, 2, 0xCC, 3, 300) };
        let stripes = LockStripes::new(8);
        let displacements = AtomicU64::new(0);
        assert!(!execute_hole_backwards(
            &raw,
            Some(&stripes),
            &path,
            &displacements,
            || true,
            RawTable::move_entry,
        ));
        assert_eq!(displacements.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn invalidated_table_stops_before_any_move() {
        let (raw, path) = two_step_fixture();
        let stripes = LockStripes::new(8);
        let displacements = AtomicU64::new(0);
        assert!(!execute_hole_backwards(
            &raw,
            Some(&stripes),
            &path,
            &displacements,
            || false, // e.g. a migration began
            RawTable::move_entry,
        ));
        assert_eq!(displacements.load(Ordering::SeqCst), 0);
        assert!(raw.meta(10).is_occupied(0));
        assert!(raw.meta(20).is_occupied(1));
    }

    #[test]
    fn trivial_paths_are_noops() {
        let raw: RawTable<u64, u64, 4> = RawTable::with_capacity(1024);
        let displacements = AtomicU64::new(0);
        let stripes = LockStripes::new(8);
        for p in [vec![], vec![entry(5, 0, 0)]] {
            assert!(execute_hole_backwards(
                &raw,
                Some(&stripes),
                &p,
                &displacements,
                || true,
                RawTable::move_entry,
            ));
        }
        assert_eq!(displacements.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn racy_mover_works_under_held_exclusion() {
        // The `stripes: None` flavor (full-table lock held) with the
        // optimistic tables' atomic-chunk mover.
        let (raw, path) = two_step_fixture();
        let displacements = AtomicU64::new(0);
        assert!(execute_hole_backwards(
            &raw,
            None,
            &path,
            &displacements,
            || true,
            RawTable::move_entry_racy,
        ));
        assert_eq!(displacements.load(Ordering::SeqCst), 2);
        // SAFETY: slots in range.
        unsafe {
            assert_eq!(raw.read_key_racy(20, 1), 1);
            assert_eq!(raw.read_val_racy(30, 2), 200);
        }
    }
}
