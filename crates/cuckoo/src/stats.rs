//! Insert slow-path statistics (for the Appendix B validation bench) and
//! the per-table metrics block feeding the unified observability layer.
//!
//! Appendix B bounds the probability that a discovered cuckoo path is
//! invalidated by concurrent writers before it executes (Eq. 1). These
//! counters measure the real rate: path executions attempted versus paths
//! found stale at validation time. They are bumped only on the insert
//! *slow path* (a path search already costs hundreds of slot reads), so
//! they do not violate principle P1 on the hot path.
//!
//! # Relaxed-consistency contract
//!
//! All counters use relaxed atomics and snapshots are taken with
//! independent loads while writers may be running, so a snapshot is
//! *per-field atomic but not mutually consistent*. [`PathStats::snapshot`]
//! loads `stale` before `executions` and clamps, so the documented
//! invariant `stale <= executions` always holds in a snapshot; all
//! derived rates saturate instead of trusting cross-field invariants.
//! `reset` is likewise not atomic with respect to concurrent writers —
//! it is for quiescent or operator-initiated use (`stats reset`), where
//! losing a handful of in-flight increments is acceptable.

// ORDERING-FILE: stats.counter — every atomic here is a monotonic reporting counter.

use metrics::{Counter, Gauge, Histogram};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counters for cuckoo-path discovery and execution.
#[derive(Debug, Default)]
pub struct PathStats {
    /// Path searches performed.
    pub searches: AtomicU64,
    /// Path executions attempted.
    pub executions: AtomicU64,
    /// Executions aborted because validation found the path stale.
    pub stale: AtomicU64,
    /// Inserts that escalated to the pessimistic full-table lock.
    pub full_table_fallbacks: AtomicU64,
}

/// Snapshot of [`PathStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PathStatsSnapshot {
    /// Path searches performed.
    pub searches: u64,
    /// Path executions attempted.
    pub executions: u64,
    /// Stale-path aborts.
    pub stale: u64,
    /// Full-table-lock escalations.
    pub full_table_fallbacks: u64,
}

impl PathStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub(crate) fn record_search(&self) {
        self.searches.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn record_execution(&self, stale: bool) {
        self.executions.fetch_add(1, Ordering::Relaxed);
        if stale {
            self.stale.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[inline]
    pub(crate) fn record_full_table_fallback(&self) {
        self.full_table_fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a snapshot.
    ///
    /// Writers bump `executions` before `stale`, so loading `stale`
    /// *first* biases any tear toward `stale <= executions`; the clamp
    /// makes the invariant unconditional even if the relaxed stores are
    /// observed out of order (see the module-level contract).
    pub fn snapshot(&self) -> PathStatsSnapshot {
        let stale = self.stale.load(Ordering::Relaxed);
        let executions = self.executions.load(Ordering::Relaxed);
        PathStatsSnapshot {
            searches: self.searches.load(Ordering::Relaxed),
            executions,
            stale: stale.min(executions),
            full_table_fallbacks: self.full_table_fallbacks.load(Ordering::Relaxed),
        }
    }

    /// Resets all counters.
    pub fn reset(&self) {
        self.searches.store(0, Ordering::Relaxed);
        self.executions.store(0, Ordering::Relaxed);
        self.stale.store(0, Ordering::Relaxed);
        self.full_table_fallbacks.store(0, Ordering::Relaxed);
    }
}

impl PathStatsSnapshot {
    /// Observed path-invalidation probability (stale / executions),
    /// saturating at 1.0 so a hand-built (or torn, pre-clamp) snapshot
    /// can never report a probability above certainty.
    pub fn invalidation_rate(&self) -> f64 {
        if self.executions == 0 {
            0.0
        } else {
            self.stale.min(self.executions) as f64 / self.executions as f64
        }
    }
}

/// Per-table hot-path metrics for the unified observability layer.
///
/// One instance is owned by each concurrent table. Every counter here is
/// bumped only on an *event* path (a failed optimistic validation, a BFS
/// search, a migration chunk) — the success fast path never touches this
/// struct, keeping instrumentation overhead within the ≤1% budget
/// (see DESIGN.md §5f).
#[derive(Debug, Default)]
pub struct TableMetrics {
    /// Optimistic (seqlock) read attempts that failed validation and
    /// retried — the read-side analogue of Eq. 1's invalidation events.
    pub read_retries: Counter,
    /// Reads that exhausted the optimistic retry budget and fell back to
    /// taking the bucket pair's stripe locks.
    pub read_lock_fallbacks: Counter,
    /// Multiget keys whose pipelined group probe failed validation and
    /// were re-fetched through the single-key path.
    pub multiget_fallbacks: Counter,
    /// Pipelined write groups executed by `insert_many`/`upsert_many`
    /// (one batch-lock acquisition each).
    pub insert_batch_groups: Counter,
    /// Keys submitted through the batched write path (group fast path
    /// *and* fallbacks; `keys - fallbacks` completed under the group
    /// lock).
    pub insert_batch_keys: Counter,
    /// Batched-write keys that left the group fast path for the single-
    /// key insert (path search, migration, or full candidate buckets).
    pub insert_batch_fallbacks: Counter,
    /// BFS cuckoo path length in slots (path entries, i.e. displacements
    /// + 1 for the vacancy) — the Eq. 2 distribution.
    pub bfs_path_len: Histogram,
    /// Slots examined per BFS search (search-tree breadth actually
    /// visited before a vacancy was found).
    pub bfs_examined_slots: Histogram,
    /// Incremental migrations begun (table expansions).
    pub migrations_started: Counter,
    /// Incremental migrations finalized.
    pub migrations_completed: Counter,
    /// Migration chunks fully moved to the new table.
    pub migration_chunks: Counter,
    /// Writer help-sweep volunteer passes during migrations.
    pub help_sweeps: Counter,
    /// Retired allocations currently parked in the graveyard.
    pub graveyard_depth: Gauge,
    /// Stop-the-world emergency rebuilds (insert failed mid-migration).
    pub emergency_rebuilds: Counter,
    /// Victim kicks per non-BFS eviction search (random-walk/hybrid) —
    /// the per-policy effort distribution the density bench A/Bs.
    pub eviction_kicks: Histogram,
    /// Walk steps rejected by fingerprint loop detection.
    pub eviction_loops_detected: Counter,
    /// Non-BFS eviction searches that exhausted their kick budget.
    pub eviction_give_ups: Counter,
}

impl TableMetrics {
    pub fn new() -> Self {
        Self::default()
    }

    /// Flattens this table's full metric set — hot-path counters plus
    /// the caller-supplied lock and path snapshots — into exposition
    /// samples. The emitted names are a stable API (golden-tested);
    /// extend, never rename.
    pub fn collect(
        &self,
        locks: &crate::sync::LockStats,
        path: &PathStatsSnapshot,
        out: &mut Vec<metrics::Sample>,
    ) {
        use metrics::Sample;
        out.push(Sample::counter("cuckoo_lock_acquisitions_total", locks.acquisitions));
        out.push(Sample::counter("cuckoo_lock_contended_total", locks.contended));
        out.push(Sample::histogram("cuckoo_lock_spin_waits", locks.spin_waits));
        out.push(Sample::counter("cuckoo_read_retries_total", self.read_retries.get()));
        out.push(Sample::counter(
            "cuckoo_read_lock_fallbacks_total",
            self.read_lock_fallbacks.get(),
        ));
        out.push(Sample::counter("cuckoo_multiget_fallbacks_total", self.multiget_fallbacks.get()));
        out.push(Sample::counter(
            "cuckoo_insert_batch_groups_total",
            self.insert_batch_groups.get(),
        ));
        out.push(Sample::counter("cuckoo_insert_batch_keys_total", self.insert_batch_keys.get()));
        out.push(Sample::counter(
            "cuckoo_insert_batch_fallbacks_total",
            self.insert_batch_fallbacks.get(),
        ));
        out.push(Sample::histogram("cuckoo_bfs_path_len", self.bfs_path_len.snapshot()));
        out.push(Sample::histogram(
            "cuckoo_bfs_examined_slots",
            self.bfs_examined_slots.snapshot(),
        ));
        out.push(Sample::counter("cuckoo_path_searches_total", path.searches));
        out.push(Sample::counter("cuckoo_path_executions_total", path.executions));
        out.push(Sample::counter("cuckoo_path_stale_total", path.stale));
        out.push(Sample::counter(
            "cuckoo_full_table_fallbacks_total",
            path.full_table_fallbacks,
        ));
        out.push(Sample::counter("cuckoo_migrations_started_total", self.migrations_started.get()));
        out.push(Sample::counter(
            "cuckoo_migrations_completed_total",
            self.migrations_completed.get(),
        ));
        out.push(Sample::counter("cuckoo_migration_chunks_total", self.migration_chunks.get()));
        out.push(Sample::counter("cuckoo_help_sweeps_total", self.help_sweeps.get()));
        out.push(Sample::gauge("cuckoo_graveyard_depth", self.graveyard_depth.get()));
        out.push(Sample::counter(
            "cuckoo_emergency_rebuilds_total",
            self.emergency_rebuilds.get(),
        ));
        out.push(Sample::histogram("cuckoo_eviction_kicks", self.eviction_kicks.snapshot()));
        out.push(Sample::counter(
            "cuckoo_eviction_loops_detected_total",
            self.eviction_loops_detected.get(),
        ));
        out.push(Sample::counter("cuckoo_eviction_give_ups_total", self.eviction_give_ups.get()));
    }

    /// Records one non-BFS eviction search's effort: kick count, loop-
    /// detection events, and whether the search exhausted its budget.
    /// Called from the insert slow path only when the table's policy is
    /// not plain BFS, so the default configuration pays nothing.
    pub(crate) fn record_eviction(&self, scratch: &crate::search::SearchScratch, gave_up: bool) {
        self.eviction_kicks.record(scratch.kicks as u64);
        if scratch.loops_detected > 0 {
            self.eviction_loops_detected.add(scratch.loops_detected as u64);
        }
        if gave_up {
            self.eviction_give_ups.inc();
        }
    }

    /// Zeroes every series (same non-atomic caveat as [`PathStats::reset`]).
    pub fn reset(&self) {
        self.read_retries.reset();
        self.read_lock_fallbacks.reset();
        self.multiget_fallbacks.reset();
        self.insert_batch_groups.reset();
        self.insert_batch_keys.reset();
        self.insert_batch_fallbacks.reset();
        self.bfs_path_len.reset();
        self.bfs_examined_slots.reset();
        self.migrations_started.reset();
        self.migrations_completed.reset();
        self.migration_chunks.reset();
        self.help_sweeps.reset();
        self.graveyard_depth.reset();
        self.emergency_rebuilds.reset();
        self.eviction_kicks.reset();
        self.eviction_loops_detected.reset();
        self.eviction_give_ups.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_and_reset() {
        let s = PathStats::new();
        s.record_search();
        s.record_execution(false);
        s.record_execution(true);
        s.record_execution(true);
        s.record_full_table_fallback();
        let snap = s.snapshot();
        assert_eq!(snap.searches, 1);
        assert_eq!(snap.executions, 3);
        assert_eq!(snap.stale, 2);
        assert_eq!(snap.full_table_fallbacks, 1);
        assert!((snap.invalidation_rate() - 2.0 / 3.0).abs() < 1e-12);
        s.reset();
        assert_eq!(s.snapshot(), PathStatsSnapshot::default());
        assert_eq!(s.snapshot().invalidation_rate(), 0.0);
    }

    #[test]
    fn snapshot_clamps_torn_stale_reading() {
        // Simulate the torn interleaving the clamp defends against:
        // `stale` observed ahead of `executions`.
        let s = PathStats::new();
        s.stale.store(5, Ordering::Relaxed);
        s.executions.store(2, Ordering::Relaxed);
        let snap = s.snapshot();
        assert_eq!(snap.stale, 2, "clamped to executions");
        assert!(snap.invalidation_rate() <= 1.0);
        // And a hand-built inconsistent snapshot still saturates.
        let bad = PathStatsSnapshot { searches: 0, executions: 2, stale: 7, full_table_fallbacks: 0 };
        assert_eq!(bad.invalidation_rate(), 1.0);
    }

    #[test]
    fn collect_emits_the_golden_name_set() {
        // The exposition names are a stable external API: monitoring
        // dashboards and the CI scrape test grep for them. This golden
        // list may be extended, but an existing entry changing (name,
        // kind, or order) is a breaking change — fail loudly here.
        let m = TableMetrics::new();
        let mut out = Vec::new();
        m.collect(&crate::sync::LockStats::default(), &PathStatsSnapshot::default(), &mut out);
        let got: Vec<(&str, &str)> = out
            .iter()
            .map(|s| {
                let kind = match s.value {
                    metrics::Value::Counter(_) => "counter",
                    metrics::Value::Gauge(_) => "gauge",
                    metrics::Value::Histogram(_) => "histogram",
                };
                (s.name, kind)
            })
            .collect();
        let golden = [
            ("cuckoo_lock_acquisitions_total", "counter"),
            ("cuckoo_lock_contended_total", "counter"),
            ("cuckoo_lock_spin_waits", "histogram"),
            ("cuckoo_read_retries_total", "counter"),
            ("cuckoo_read_lock_fallbacks_total", "counter"),
            ("cuckoo_multiget_fallbacks_total", "counter"),
            ("cuckoo_insert_batch_groups_total", "counter"),
            ("cuckoo_insert_batch_keys_total", "counter"),
            ("cuckoo_insert_batch_fallbacks_total", "counter"),
            ("cuckoo_bfs_path_len", "histogram"),
            ("cuckoo_bfs_examined_slots", "histogram"),
            ("cuckoo_path_searches_total", "counter"),
            ("cuckoo_path_executions_total", "counter"),
            ("cuckoo_path_stale_total", "counter"),
            ("cuckoo_full_table_fallbacks_total", "counter"),
            ("cuckoo_migrations_started_total", "counter"),
            ("cuckoo_migrations_completed_total", "counter"),
            ("cuckoo_migration_chunks_total", "counter"),
            ("cuckoo_help_sweeps_total", "counter"),
            ("cuckoo_graveyard_depth", "gauge"),
            ("cuckoo_emergency_rebuilds_total", "counter"),
            ("cuckoo_eviction_kicks", "histogram"),
            ("cuckoo_eviction_loops_detected_total", "counter"),
            ("cuckoo_eviction_give_ups_total", "counter"),
        ];
        assert_eq!(got, golden);
    }

    #[test]
    fn table_metrics_reset_zeroes_every_series() {
        let m = TableMetrics::new();
        m.read_retries.inc();
        m.read_lock_fallbacks.inc();
        m.multiget_fallbacks.inc();
        m.insert_batch_groups.inc();
        m.insert_batch_keys.add(8);
        m.insert_batch_fallbacks.inc();
        m.bfs_path_len.record(3);
        m.bfs_examined_slots.record(40);
        m.migrations_started.inc();
        m.migrations_completed.inc();
        m.migration_chunks.add(7);
        m.help_sweeps.inc();
        m.graveyard_depth.set(2);
        m.emergency_rebuilds.inc();
        m.eviction_kicks.record(12);
        m.eviction_loops_detected.add(3);
        m.eviction_give_ups.inc();
        m.reset();
        assert_eq!(m.read_retries.get(), 0);
        assert_eq!(m.multiget_fallbacks.get(), 0);
        assert_eq!(m.insert_batch_groups.get(), 0);
        assert_eq!(m.insert_batch_keys.get(), 0);
        assert_eq!(m.insert_batch_fallbacks.get(), 0);
        assert_eq!(m.bfs_path_len.snapshot().count(), 0);
        assert_eq!(m.bfs_examined_slots.snapshot().count(), 0);
        assert_eq!(m.migration_chunks.get(), 0);
        assert_eq!(m.graveyard_depth.get(), 0);
        assert_eq!(m.emergency_rebuilds.get(), 0);
        assert_eq!(m.eviction_kicks.snapshot().count(), 0);
        assert_eq!(m.eviction_loops_detected.get(), 0);
        assert_eq!(m.eviction_give_ups.get(), 0);
    }
}
