//! Insert slow-path statistics (for the Appendix B validation bench).
//!
//! Appendix B bounds the probability that a discovered cuckoo path is
//! invalidated by concurrent writers before it executes (Eq. 1). These
//! counters measure the real rate: path executions attempted versus paths
//! found stale at validation time. They are bumped only on the insert
//! *slow path* (a path search already costs hundreds of slot reads), so
//! they do not violate principle P1 on the hot path.

use std::sync::atomic::{AtomicU64, Ordering};

/// Counters for cuckoo-path discovery and execution.
#[derive(Debug, Default)]
pub struct PathStats {
    /// Path searches performed.
    pub searches: AtomicU64,
    /// Path executions attempted.
    pub executions: AtomicU64,
    /// Executions aborted because validation found the path stale.
    pub stale: AtomicU64,
    /// Inserts that escalated to the pessimistic full-table lock.
    pub full_table_fallbacks: AtomicU64,
}

/// Snapshot of [`PathStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PathStatsSnapshot {
    /// Path searches performed.
    pub searches: u64,
    /// Path executions attempted.
    pub executions: u64,
    /// Stale-path aborts.
    pub stale: u64,
    /// Full-table-lock escalations.
    pub full_table_fallbacks: u64,
}

impl PathStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub(crate) fn record_search(&self) {
        self.searches.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn record_execution(&self, stale: bool) {
        self.executions.fetch_add(1, Ordering::Relaxed);
        if stale {
            self.stale.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[inline]
    pub(crate) fn record_full_table_fallback(&self) {
        self.full_table_fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a snapshot.
    pub fn snapshot(&self) -> PathStatsSnapshot {
        PathStatsSnapshot {
            searches: self.searches.load(Ordering::Relaxed),
            executions: self.executions.load(Ordering::Relaxed),
            stale: self.stale.load(Ordering::Relaxed),
            full_table_fallbacks: self.full_table_fallbacks.load(Ordering::Relaxed),
        }
    }

    /// Resets all counters.
    pub fn reset(&self) {
        self.searches.store(0, Ordering::Relaxed);
        self.executions.store(0, Ordering::Relaxed);
        self.stale.store(0, Ordering::Relaxed);
        self.full_table_fallbacks.store(0, Ordering::Relaxed);
    }
}

impl PathStatsSnapshot {
    /// Observed path-invalidation probability (stale / executions).
    pub fn invalidation_rate(&self) -> f64 {
        if self.executions == 0 {
            0.0
        } else {
            self.stale as f64 / self.executions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_and_reset() {
        let s = PathStats::new();
        s.record_search();
        s.record_execution(false);
        s.record_execution(true);
        s.record_execution(true);
        s.record_full_table_fallback();
        let snap = s.snapshot();
        assert_eq!(snap.searches, 1);
        assert_eq!(snap.executions, 3);
        assert_eq!(snap.stale, 2);
        assert_eq!(snap.full_table_fallbacks, 1);
        assert!((snap.invalidation_rate() - 2.0 / 3.0).abs() < 1e-12);
        s.reset();
        assert_eq!(s.snapshot(), PathStatsSnapshot::default());
        assert_eq!(s.snapshot().invalidation_rate(), 0.0);
    }
}
