//! The MemC3 baseline: optimistic multi-reader / *single*-writer cuckoo
//! hashing (paper §4.2), with knobs for every step of the factor analysis.
//!
//! [`MemC3Cuckoo`] is the table the paper starts from: optimistic
//! lock-free reads (version-striped, identical to cuckoo+'s) but writers
//! serialized through one global lock. Its [`MemC3Config`] reproduces the
//! cumulative optimization ladder of Figure 5:
//!
//! | figure label      | config                                            |
//! |-------------------|---------------------------------------------------|
//! | `cuckoo`          | [`MemC3Config::baseline`] — Algorithm 1: DFS search *inside* the critical section |
//! | `+lock later`     | `.plus_lock_later()` — Algorithm 2: search first, lock for validate-execute only |
//! | `+BFS`            | `.plus_bfs()` — breadth-first path search          |
//! | `+prefetch`       | `.plus_prefetch()` — prefetch the BFS frontier     |
//! | `+TSX-glibc`      | `.with_lock(WriterLockKind::ElidedGlibc)`          |
//! | `+TSX*`           | `.with_lock(WriterLockKind::ElidedOptimized)`      |
//!
//! The lock kinds map the global spinlock onto the simulated-HTM elision
//! wrappers of the [`htm`] crate; critical sections run through
//! [`htm::MemCtx`] so elided execution gets genuine conflict detection.

use crate::counter::ShardedCounter;
use crate::crit::{self, CritOutcome};
use crate::error::InsertError;
use crate::hash::DefaultHashBuilder;
use crate::hashing::{key_slots, KeySlots};
use crate::raw::RawTable;
use crate::search::{self, dfs, exec, EvictionPolicy, SearchScratch};
use crate::stats::{PathStats, PathStatsSnapshot, TableMetrics};
use crate::sync::{LockStripes, SpinLock, DEFAULT_STRIPES};
use crate::DEFAULT_MAX_SEARCH_SLOTS;
use core::hash::{BuildHasher, Hash};
use htm::{
    DirectCtx, ElidedLock, ElisionConfig, ExecCtx, HtmDomain, MemCtx, Plain, StatsSnapshot,
};
use std::sync::Arc;

/// How the writer looks for an empty slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchKind {
    /// Two-way random-walk depth-first search (basic cuckoo / MemC3).
    Dfs,
    /// Breadth-first search (§4.3.2).
    Bfs,
}

/// What protects the write-side critical sections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriterLockKind {
    /// A plain global spinlock (the paper's pthread-style global lock).
    Global,
    /// Simulated TSX lock elision with the released glibc retry policy.
    ElidedGlibc,
    /// Simulated TSX lock elision with the paper's optimized `TSX*`
    /// policy (Appendix A).
    ElidedOptimized,
}

/// Configuration ladder for the factor analysis.
#[derive(Debug, Clone, Copy)]
pub struct MemC3Config {
    /// Path-search strategy.
    pub search: SearchKind,
    /// Prefetch the BFS frontier (no effect on DFS).
    pub prefetch: bool,
    /// Algorithm 2 (search outside the critical section) instead of
    /// Algorithm 1.
    pub lock_later: bool,
    /// Write-side concurrency control.
    pub lock: WriterLockKind,
    /// Search budget `M` in slots.
    pub max_search_slots: usize,
    /// Version-counter stripes.
    pub n_stripes: usize,
    /// Stale-path retries before falling back to an in-critical-section
    /// search (lock-later mode only).
    pub path_retries: usize,
    /// Kick-out eviction policy for [`SearchKind::Bfs`] configurations:
    /// `Bfs` keeps the ladder's plain breadth-first search, while
    /// `RandomWalk`/`Hybrid` substitute the high-density planners for
    /// A/B factor analysis. Ignored by [`SearchKind::Dfs`] rungs (DFS
    /// *is* a legacy random walk; the ladder keeps it verbatim).
    pub eviction: EvictionPolicy,
}

impl MemC3Config {
    /// The unmodified MemC3 design ("cuckoo" in Figure 5).
    pub fn baseline() -> Self {
        MemC3Config {
            search: SearchKind::Dfs,
            prefetch: false,
            lock_later: false,
            lock: WriterLockKind::Global,
            max_search_slots: DEFAULT_MAX_SEARCH_SLOTS,
            n_stripes: DEFAULT_STRIPES,
            path_retries: 16,
            eviction: EvictionPolicy::Bfs,
        }
    }

    /// Enables Algorithm 2: lock after discovering the cuckoo path.
    pub fn plus_lock_later(mut self) -> Self {
        self.lock_later = true;
        self
    }

    /// Switches path search to BFS.
    pub fn plus_bfs(mut self) -> Self {
        self.search = SearchKind::Bfs;
        self
    }

    /// Enables BFS frontier prefetching.
    pub fn plus_prefetch(mut self) -> Self {
        self.prefetch = true;
        self
    }

    /// Selects the writer lock kind.
    pub fn with_lock(mut self, lock: WriterLockKind) -> Self {
        self.lock = lock;
        self
    }

    /// Overrides the search budget.
    pub fn with_search_budget(mut self, m: usize) -> Self {
        self.max_search_slots = m;
        self
    }

    /// Selects the kick-out eviction policy (BFS configurations only).
    pub fn with_eviction(mut self, policy: EvictionPolicy) -> Self {
        self.eviction = policy;
        self
    }
}

impl Default for MemC3Config {
    fn default() -> Self {
        Self::baseline()
    }
}

enum WriterLock {
    Spin(SpinLock),
    Elided(ElidedLock),
}

/// Optimistic multi-reader/single-writer cuckoo table (MemC3 baseline).
pub struct MemC3Cuckoo<K, V, const B: usize = 4, S = DefaultHashBuilder> {
    raw: RawTable<K, V, B>,
    stripes: LockStripes,
    hash_builder: S,
    count: ShardedCounter,
    config: MemC3Config,
    writer: WriterLock,
    path_stats: PathStats,
    /// Boxed: keeps the read path's fields (`raw`, `stripes`) densely
    /// packed instead of interleaved with ~400 B of counters.
    table_metrics: Box<TableMetrics>,
}

impl<K, V, const B: usize> MemC3Cuckoo<K, V, B, DefaultHashBuilder>
where
    K: Plain + Eq + Hash,
    V: Plain,
{
    /// Creates a table with the given capacity and configuration.
    pub fn with_capacity(capacity: usize, config: MemC3Config) -> Self {
        Self::with_capacity_and_hasher(capacity, config, DefaultHashBuilder::new())
    }
}

impl<K, V, const B: usize, S> MemC3Cuckoo<K, V, B, S>
where
    K: Plain + Eq + Hash,
    V: Plain,
    S: BuildHasher,
{
    /// Creates a table with an explicit hasher; elided configurations get
    /// a fresh transactional domain with default capacity limits.
    pub fn with_capacity_and_hasher(capacity: usize, config: MemC3Config, hasher: S) -> Self {
        Self::with_capacity_hasher_and_domain(capacity, config, hasher, Arc::new(HtmDomain::new()))
    }

    /// Creates a table whose elided critical sections run in the supplied
    /// transactional domain (to model specific hardware capacity limits;
    /// ignored for [`WriterLockKind::Global`]).
    pub fn with_capacity_hasher_and_domain(
        capacity: usize,
        config: MemC3Config,
        hasher: S,
        domain: Arc<HtmDomain>,
    ) -> Self {
        let writer = match config.lock {
            WriterLockKind::Global => WriterLock::Spin(SpinLock::new()),
            WriterLockKind::ElidedGlibc => {
                WriterLock::Elided(ElidedLock::new(domain, ElisionConfig::glibc()))
            }
            WriterLockKind::ElidedOptimized => {
                WriterLock::Elided(ElidedLock::new(domain, ElisionConfig::optimized()))
            }
        };
        MemC3Cuckoo {
            raw: RawTable::with_capacity(capacity),
            stripes: LockStripes::new(config.n_stripes),
            hash_builder: hasher,
            count: ShardedCounter::new(),
            config,
            writer,
            path_stats: PathStats::new(),
            table_metrics: Box::new(TableMetrics::new()),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &MemC3Config {
        &self.config
    }

    /// Slow-path statistics: searches, path executions, stale paths.
    pub fn path_stats(&self) -> PathStatsSnapshot {
        self.path_stats.snapshot()
    }

    /// The hot-path metrics block (read retries / lock fallbacks).
    pub fn metrics(&self) -> &TableMetrics {
        &self.table_metrics
    }

    /// Appends this table's full observability sample set.
    pub fn metric_samples(&self, out: &mut Vec<metrics::Sample>) {
        self.table_metrics.collect(&self.stripes.lock_stats(), &self.path_stats.snapshot(), out);
    }

    /// Zeroes every metric family (lock, path, and table counters).
    pub fn reset_metrics(&self) {
        self.table_metrics.reset();
        self.path_stats.reset();
        self.stripes.reset_lock_stats();
    }

    /// Transactional statistics when running elided, else `None`.
    pub fn htm_stats(&self) -> Option<StatsSnapshot> {
        match &self.writer {
            WriterLock::Spin(_) => None,
            WriterLock::Elided(l) => Some(l.stats().snapshot()),
        }
    }

    #[inline]
    fn slots_of(&self, key: &K) -> KeySlots {
        key_slots(&self.hash_builder, key, self.raw.mask())
    }

    /// Lock-free optimistic lookup (identical protocol to cuckoo+).
    #[inline]
    pub fn get(&self, key: &K) -> Option<V> {
        crate::read::get(&self.raw, &self.stripes, &self.table_metrics, self.slots_of(key), key)
    }

    /// Lock-free presence check.
    #[inline]
    pub fn contains_key(&self, key: &K) -> bool {
        crate::read::contains(&self.raw, &self.stripes, &self.table_metrics, self.slots_of(key), key)
    }

    /// Runs a critical section under the configured writer lock.
    fn run_crit<R>(&self, mut f: impl FnMut(&mut ExecCtx<'_, '_>) -> Result<R, htm::Abort>) -> R {
        match &self.writer {
            WriterLock::Spin(lock) => {
                let _g = lock.lock();
                let mut ctx = ExecCtx::Direct(DirectCtx::new());
                let r = f(&mut ctx).unwrap_or_else(|a| {
                    panic!("critical section aborted under the global lock: {a}")
                });
                ctx.finish();
                r
            }
            WriterLock::Elided(lock) => lock.execute(f),
        }
    }

    /// Inserts `key → val` (paper §2.1 semantics).
    pub fn insert(&self, key: K, val: V) -> Result<(), InsertError> {
        let ks = self.slots_of(&key);
        search::with_scratch(|scratch| {
            if self.config.lock_later {
                self.insert_lock_later(ks, key, val, scratch)
            } else {
                self.insert_algorithm1(ks, key, val, scratch)
            }
        })
    }

    /// Algorithm 1: the whole insert (duplicate check, DFS search, path
    /// execution) inside one critical section.
    fn insert_algorithm1(
        &self,
        ks: KeySlots,
        key: K,
        val: V,
        scratch: &mut SearchScratch,
    ) -> Result<(), InsertError> {
        let mut watchdog = 0u64;
        loop {
            watchdog += 1;
            debug_assert!(watchdog < 1_000_000, "insert_algorithm1 livelock: ks={ks:?}");
            let out = self.run_crit(|ctx| {
                crit::insert_critical_full(
                    ctx,
                    &self.raw,
                    &self.stripes,
                    ks,
                    key,
                    val,
                    self.config.max_search_slots,
                    scratch,
                )
            });
            match out {
                CritOutcome::Inserted => {
                    self.count.add(ks.i1, 1);
                    return Ok(());
                }
                CritOutcome::Exists => return Err(InsertError::KeyExists),
                CritOutcome::SearchFull => return Err(InsertError::TableFull),
                // The in-section path cannot be stale under the global
                // lock, but an elided attempt that lost a race and fell
                // back may see it: just go around.
                CritOutcome::PathStale | CritOutcome::NeedPath => {}
            }
        }
    }

    /// Algorithm 2: search with no lock held, lock only for the
    /// validate-and-execute (§4.3.1).
    fn insert_lock_later(
        &self,
        ks: KeySlots,
        key: K,
        val: V,
        scratch: &mut SearchScratch,
    ) -> Result<(), InsertError> {
        let mut stale_retries = 0usize;
        let mut watchdog = 0u64;
        loop {
            watchdog += 1;
            debug_assert!(
                watchdog < 1_000_000,
                "insert_lock_later livelock: ks={ks:?} stale={stale_retries}"
            );
            // Fast availability probe (Algorithm 2 lines 3-8): skip the
            // search when a candidate bucket has room.
            let available =
                !self.raw.meta(ks.i1).is_full() || !self.raw.meta(ks.i2).is_full();
            if !available {
                self.path_stats.record_search();
                let found = match self.config.search {
                    SearchKind::Bfs => {
                        let r = search::plan(
                            self.config.eviction,
                            &self.raw,
                            ks.i1,
                            ks.i2,
                            self.config.max_search_slots,
                            self.config.prefetch,
                            scratch,
                        );
                        if self.config.eviction != EvictionPolicy::Bfs {
                            self.table_metrics.record_eviction(scratch, r.is_err());
                        }
                        r.is_ok()
                    }
                    SearchKind::Dfs => dfs::search(
                        &self.raw,
                        ks.i1,
                        ks.i2,
                        self.config.max_search_slots,
                        scratch,
                    )
                    .is_ok(),
                };
                if !found {
                    return Err(InsertError::TableFull);
                }
            } else {
                scratch.path.clear();
            }

            let path = std::mem::take(&mut scratch.path);
            let out = self.run_crit(|ctx| {
                crit::insert_critical(
                    ctx,
                    &self.raw,
                    &self.stripes,
                    ks,
                    key,
                    val,
                    if path.is_empty() { None } else { Some(&path) },
                )
            });
            let had_path = !path.is_empty();
            scratch.path = path;

            if had_path {
                self.path_stats
                    .record_execution(out == CritOutcome::PathStale);
            }
            match out {
                CritOutcome::Inserted => {
                    self.count.add(ks.i1, 1);
                    return Ok(());
                }
                CritOutcome::Exists => return Err(InsertError::KeyExists),
                CritOutcome::NeedPath => { /* probe raced; search next round */ }
                CritOutcome::PathStale => {
                    stale_retries += 1;
                    if stale_retries > self.config.path_retries {
                        // Deterministic completion: search inside the
                        // critical section once.
                        return self.insert_algorithm1(ks, key, val, scratch);
                    }
                }
                CritOutcome::SearchFull => unreachable!("no in-section search ran"),
            }
        }
    }

    /// Removes `key`, returning its value.
    pub fn remove(&self, key: &K) -> Option<V> {
        let ks = self.slots_of(key);
        let removed =
            self.run_crit(|ctx| crit::remove_key(ctx, &self.raw, &self.stripes, ks, key));
        if removed.is_some() {
            self.count.add(ks.i1, -1);
        }
        removed
    }

    /// Replaces the value of an existing key.
    pub fn update(&self, key: &K, val: V) -> bool {
        let ks = self.slots_of(key);
        self.run_crit(|ctx| crit::update_key(ctx, &self.raw, &self.stripes, ks, key, val))
    }

    /// Single-threaded insert with all locking disabled (Figure 5a's
    /// baseline mode); exclusive access via `&mut self`.
    pub fn insert_unlocked(&mut self, key: K, val: V) -> Result<(), InsertError> {
        let ks = self.slots_of(&key);
        // Duplicate check and direct add.
        for bi in [ks.i1, ks.i2] {
            let b = self.raw.bucket(bi);
            let m = self.raw.meta(bi);
            let mask = m.occupied_mask();
            for s in 0..B {
                if mask & (1 << s) != 0 && m.partial(s) == ks.tag {
                    // SAFETY: exclusive access via `&mut self`.
                    if unsafe { b.key_ptr(s).read() } == key {
                        return Err(InsertError::KeyExists);
                    }
                }
            }
            if ks.i2 == ks.i1 {
                break;
            }
        }
        search::with_scratch(|scratch| loop {
            let mut target = None;
            for bi in [ks.i1, ks.i2] {
                if let Some(slot) = self.raw.meta(bi).empty_slot() {
                    target = Some((bi, slot));
                    break;
                }
            }
            if let Some((bi, slot)) = target {
                // SAFETY: exclusive access.
                unsafe { self.raw.write_entry(bi, slot, ks.tag, key, val) };
                self.count.add(bi, 1);
                return Ok(());
            }
            let found = match self.config.search {
                SearchKind::Bfs => search::plan(
                    self.config.eviction,
                    &self.raw,
                    ks.i1,
                    ks.i2,
                    self.config.max_search_slots,
                    self.config.prefetch,
                    scratch,
                )
                .is_ok(),
                SearchKind::Dfs => dfs::search(
                    &self.raw,
                    ks.i1,
                    ks.i2,
                    self.config.max_search_slots,
                    scratch,
                )
                .is_ok(),
            };
            if !found {
                return Err(InsertError::TableFull);
            }
            // Execute with validation even though we are single-threaded:
            // a DFS random walk may revisit the same (bucket, slot), in
            // which case a later-executed displacement empties a slot an
            // earlier one expects full. Each applied displacement is
            // individually valid, so on a mismatch we simply search again
            // (the walk is randomized). The shared executor (`stripes:
            // None` — exclusive access via `&mut self`) does exactly that
            // validation per step.
            let displacements = crate::sync2::atomic::AtomicU64::new(0);
            let valid = exec::execute_hole_backwards(
                &self.raw,
                None,
                &scratch.path,
                &displacements,
                || true,
                RawTable::move_entry,
            );
            if !valid {
                continue;
            }
            let path = &scratch.path;
            let head = path[0];
            if self.raw.meta(head.bucket).is_occupied(head.slot as usize) {
                continue;
            }
            // SAFETY: exclusive access; head slot was just vacated (or was
            // the found empty slot for trivial paths).
            unsafe {
                self.raw
                    .write_entry(head.bucket, head.slot as usize, ks.tag, key, val)
            };
            self.count.add(head.bucket, 1);
            return Ok(());
        })
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.count.sum()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total slot capacity.
    pub fn capacity(&self) -> usize {
        self.raw.total_slots()
    }

    /// Fraction of slots occupied.
    pub fn load_factor(&self) -> f64 {
        self.len() as f64 / self.capacity() as f64
    }

    /// Bytes used by buckets, stripes, and counters.
    pub fn memory_bytes(&self) -> usize {
        self.raw.memory_bytes() + self.stripes.memory_bytes() + self.count.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_configs() -> Vec<(&'static str, MemC3Config)> {
        let base = MemC3Config::baseline();
        vec![
            ("cuckoo", base),
            ("lock_later", base.plus_lock_later()),
            ("lock_later+bfs", base.plus_lock_later().plus_bfs()),
            (
                "lock_later+bfs+prefetch",
                base.plus_lock_later().plus_bfs().plus_prefetch(),
            ),
            (
                "tsx_glibc",
                base.with_lock(WriterLockKind::ElidedGlibc),
            ),
            (
                "tsx_opt",
                base.with_lock(WriterLockKind::ElidedOptimized),
            ),
            (
                "full_ladder_tsx",
                base.plus_lock_later()
                    .plus_bfs()
                    .plus_prefetch()
                    .with_lock(WriterLockKind::ElidedOptimized),
            ),
        ]
    }

    #[test]
    fn crud_under_every_config() {
        for (name, cfg) in all_configs() {
            let m: MemC3Cuckoo<u64, u64, 4> = MemC3Cuckoo::with_capacity(8192, cfg);
            for k in 0..500u64 {
                m.insert(k, k * 7).unwrap_or_else(|e| panic!("{name}: {e}"));
            }
            assert_eq!(m.insert(5, 1), Err(InsertError::KeyExists), "{name}");
            for k in 0..500u64 {
                assert_eq!(m.get(&k), Some(k * 7), "{name} key {k}");
            }
            assert_eq!(m.len(), 500, "{name}");
            assert_eq!(m.remove(&10), Some(70), "{name}");
            assert_eq!(m.remove(&10), None, "{name}");
            assert!(m.update(&11, 1), "{name}");
            assert_eq!(m.get(&11), Some(1), "{name}");
            assert_eq!(m.len(), 499, "{name}");
        }
    }

    #[test]
    fn fills_to_high_occupancy_under_every_config() {
        for (name, cfg) in all_configs() {
            let m: MemC3Cuckoo<u64, u64, 4> = MemC3Cuckoo::with_capacity(1 << 11, cfg);
            let target = m.capacity() * 95 / 100;
            for k in 0..target as u64 {
                m.insert(k, k).unwrap_or_else(|e| panic!("{name} at {k}: {e}"));
            }
            for k in 0..target as u64 {
                assert_eq!(m.get(&k), Some(k), "{name} key {k}");
            }
        }
    }

    #[test]
    fn concurrent_writers_are_serialized_but_correct() {
        for (name, cfg) in [
            ("global", MemC3Config::baseline().plus_lock_later().plus_bfs()),
            (
                "elided",
                MemC3Config::baseline()
                    .plus_lock_later()
                    .plus_bfs()
                    .with_lock(WriterLockKind::ElidedOptimized),
            ),
        ] {
            let m: MemC3Cuckoo<u64, u64, 4> = MemC3Cuckoo::with_capacity(1 << 14, cfg);
            std::thread::scope(|s| {
                for t in 0..4u64 {
                    let m = &m;
                    s.spawn(move || {
                        for i in 0..2000u64 {
                            let key = t * 1_000_000 + i;
                            m.insert(key, key + 1).unwrap();
                        }
                    });
                }
            });
            assert_eq!(m.len(), 8000, "{name}");
            for t in 0..4u64 {
                for i in 0..2000u64 {
                    let key = t * 1_000_000 + i;
                    assert_eq!(m.get(&key), Some(key + 1), "{name} key {key}");
                }
            }
        }
    }

    #[test]
    fn elided_configs_report_stats() {
        let cfg = MemC3Config::baseline()
            .plus_lock_later()
            .plus_bfs()
            .with_lock(WriterLockKind::ElidedOptimized);
        let m: MemC3Cuckoo<u64, u64, 4> = MemC3Cuckoo::with_capacity(4096, cfg);
        for k in 0..1000u64 {
            m.insert(k, k).unwrap();
        }
        let stats = m.htm_stats().expect("elided table has stats");
        assert!(stats.commits + stats.fallbacks >= 1000);
        let plain: MemC3Cuckoo<u64, u64, 4> =
            MemC3Cuckoo::with_capacity(4096, MemC3Config::baseline());
        assert!(plain.htm_stats().is_none());
    }

    #[test]
    fn unlocked_single_thread_mode() {
        for search in [SearchKind::Dfs, SearchKind::Bfs] {
            let mut cfg = MemC3Config::baseline();
            cfg.search = search;
            cfg.prefetch = search == SearchKind::Bfs;
            let mut m: MemC3Cuckoo<u64, u64, 4> = MemC3Cuckoo::with_capacity(1 << 11, cfg);
            let target = m.capacity() * 95 / 100;
            for k in 0..target as u64 {
                m.insert_unlocked(k, k * 3)
                    .unwrap_or_else(|e| panic!("{search:?} at {k}: {e}"));
            }
            assert_eq!(
                m.insert_unlocked(0, 9),
                Err(InsertError::KeyExists),
                "{search:?}"
            );
            for k in 0..target as u64 {
                assert_eq!(m.get(&k), Some(k * 3), "{search:?} key {k}");
            }
        }
    }
}
