//! The raw bucket array shared by every table flavor.
//!
//! A [`RawTable`] is pure storage: a power-of-two array of entry
//! [`Bucket`]s, the parallel packed [`BucketMeta`] array (occupancy
//! bitmaps + tags — everything path search reads), and the index mask.
//! Concurrency control (striped locks, global locks, transactions) lives
//! in the table types layered on top.

use crate::bucket::{Bucket, BucketMeta};
use crate::hashing;
use htm::Plain;

/// Power-of-two array of B-way buckets plus their metadata.
pub struct RawTable<K, V, const B: usize> {
    buckets: Box<[Bucket<K, V, B>]>,
    meta: Box<[BucketMeta<B>]>,
    mask: usize,
}

// SAFETY: the table owns its entries; transferring the whole table moves
// them, which is safe exactly when the entry types are `Send`.
unsafe impl<K: Send, V: Send, const B: usize> Send for RawTable<K, V, B> {}

// SAFETY: shared access to the table hands out entry copies/references
// across threads, requiring `Sync`; displacement also moves entries
// between buckets while shared, requiring `Send`.
unsafe impl<K: Send + Sync, V: Send + Sync, const B: usize> Sync for RawTable<K, V, B> {}

impl<K, V, const B: usize> RawTable<K, V, B> {
    /// Minimum bucket count: guarantees every tag's alternate bucket is
    /// distinct from its primary (see [`crate::hashing::alt_index`]).
    pub const MIN_BUCKETS: usize = 256;

    /// Creates a table with at least `capacity` item slots, rounding the
    /// bucket count up to a power of two.
    ///
    /// Both arrays come from zeroed allocations rather than per-element
    /// construction: for large tables the allocator serves zeroed pages
    /// lazily, so construction is O(1) and the touch cost is paid as
    /// buckets are first used. This keeps `begin_migration` — which
    /// allocates the doubled table inline in whichever insert trips the
    /// expansion — off the latency tail.
    pub fn with_capacity(capacity: usize) -> Self {
        // Bucket::new() carries the associativity bound; keep it here.
        assert!(B > 0 && B <= crate::bucket::MAX_WAYS, "set-associativity must be 1..=16");
        let want_buckets = capacity.div_ceil(B).max(Self::MIN_BUCKETS);
        let n = want_buckets.next_power_of_two();
        // SAFETY: all-zero bytes are a valid `BucketMeta` (atomics at 0 =
        // nothing occupied, no tags) and a valid `Bucket` (entry storage
        // is `MaybeUninit`; occupancy lives solely in the metadata).
        let buckets = unsafe { Box::new_zeroed_slice(n).assume_init() };
        // SAFETY: as above.
        let meta = unsafe { Box::new_zeroed_slice(n).assume_init() };
        RawTable { buckets, meta, mask: n - 1 }
    }

    /// Number of buckets (a power of two).
    #[inline]
    pub fn n_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// The bucket index mask (`n_buckets - 1`).
    #[inline]
    pub fn mask(&self) -> usize {
        self.mask
    }

    /// Total item capacity (`n_buckets * B`).
    #[inline]
    pub fn total_slots(&self) -> usize {
        self.n_buckets() * B
    }

    /// The entry storage of bucket `index`.
    #[inline]
    pub fn bucket(&self, index: usize) -> &Bucket<K, V, B> {
        &self.buckets[index]
    }

    /// The metadata (occupancy + tags) of bucket `index`.
    #[inline]
    pub fn meta(&self, index: usize) -> &BucketMeta<B> {
        &self.meta[index]
    }

    /// The alternate bucket index for an item with `tag` in `index`.
    #[inline]
    pub fn alt_index(&self, index: usize, tag: u8) -> usize {
        hashing::alt_index(index, tag, self.mask)
    }

    /// Hints bucket `index`'s metadata word (tags + occupancy) into
    /// cache. The SWAR tag probe touches only this line, so prefetching
    /// it for a whole batch of keys overlaps their (usually-missing)
    /// metadata loads.
    #[inline]
    pub fn prefetch_meta(&self, index: usize) {
        crate::prefetch::prefetch_read(self.meta(index) as *const BucketMeta<B>);
    }

    /// Write-intent variant of [`prefetch_meta`](Self::prefetch_meta)
    /// for the batched insert pipeline: the metadata line is about to be
    /// locked and stored to, so prime it for ownership.
    #[inline]
    pub fn prefetch_meta_write(&self, index: usize) {
        crate::prefetch::prefetch_write(self.meta(index) as *const BucketMeta<B>);
    }

    /// Hints the start of bucket `index`'s entry storage (the key array)
    /// into cache, for lookups whose tag probe reported a candidate and
    /// will follow up with full-key comparisons.
    #[inline]
    pub fn prefetch_data(&self, index: usize) {
        crate::prefetch::prefetch_read(self.bucket(index) as *const Bucket<K, V, B>);
    }

    /// Writes a full entry into `(bucket, slot)` and publishes it,
    /// assuming exclusive write access to that bucket.
    ///
    /// # Safety
    ///
    /// The caller must hold whatever writer-side mutual exclusion covers
    /// the bucket, and `slot` must currently be unoccupied (its storage
    /// is treated as uninitialized).
    pub unsafe fn write_entry(&self, bucket: usize, slot: usize, tag: u8, key: K, val: V) {
        let m = self.meta(bucket);
        debug_assert!(!m.is_occupied(slot));
        m.set_partial(slot, tag);
        let b = self.bucket(bucket);
        // SAFETY: slot is unoccupied, so the storage is ours to
        // initialize; exclusive write access per this function's contract.
        unsafe {
            b.key_ptr(slot).write(key);
            b.val_ptr(slot).write(val);
        }
        m.set_occupied(slot);
    }

    /// Removes the entry at `(bucket, slot)`, returning its key and
    /// value, assuming exclusive write access.
    ///
    /// # Safety
    ///
    /// The caller must hold writer-side mutual exclusion for the bucket
    /// and `slot` must be occupied.
    pub unsafe fn take_entry(&self, bucket: usize, slot: usize) -> (K, V) {
        let m = self.meta(bucket);
        debug_assert!(m.is_occupied(slot));
        m.clear_occupied(slot);
        let b = self.bucket(bucket);
        // SAFETY: the slot was occupied, so both fields are initialized;
        // after `clear_occupied` the storage is logically dead and we may
        // move out of it.
        unsafe { (b.key_ptr(slot).read(), b.val_ptr(slot).read()) }
    }

    /// Moves the entry at `(src_bucket, src_slot)` into the empty slot
    /// `(dst_bucket, dst_slot)` with plain reads/writes, **destination
    /// first**: the destination is fully written and published before
    /// the source's occupied bit is cleared, so there is no instant at
    /// which the entry is in neither bucket. This is the move discipline
    /// the shared hole-backwards path executor
    /// ([`crate::search::exec`]) relies on.
    ///
    /// # Safety
    ///
    /// The caller must hold writer-side mutual exclusion over *both*
    /// buckets; `src_slot` must be occupied and `dst_slot` unoccupied.
    pub unsafe fn move_entry(
        &self,
        src_bucket: usize,
        src_slot: usize,
        dst_bucket: usize,
        dst_slot: usize,
        tag: u8,
    ) {
        let sm = self.meta(src_bucket);
        debug_assert!(sm.is_occupied(src_slot));
        let sb = self.bucket(src_bucket);
        // SAFETY: the source slot is occupied, so both fields are
        // initialized; reading (not taking) duplicates the bits, but the
        // source's occupied bit is cleared below before this function
        // returns, so exactly one logically-live copy ever exists and
        // drop glue runs once.
        let (k, v) = unsafe { (sb.key_ptr(src_slot).read(), sb.val_ptr(src_slot).read()) };
        // SAFETY: destination unoccupied and covered by the caller's
        // exclusion, per this function's contract.
        unsafe { self.write_entry(dst_bucket, dst_slot, tag, k, v) };
        sm.clear_occupied(src_slot);
    }

    /// Exact number of occupied slots. Only meaningful when writers are
    /// quiescent (or all stripes are held); individual tables maintain
    /// faster sharded counters for concurrent use.
    pub fn count_occupied(&self) -> usize {
        self.meta.iter().map(|m| m.occupied_count()).sum()
    }

    /// Bytes of memory the bucket and metadata arrays occupy.
    pub fn memory_bytes(&self) -> usize {
        self.buckets.len() * core::mem::size_of::<Bucket<K, V, B>>()
            + self.meta.len() * core::mem::size_of::<BucketMeta<B>>()
    }

    /// Lowest occupied slot index in `bucket`, if any. Incremental
    /// migration drains buckets one entry at a time with this, so each
    /// move holds its stripe locks only briefly.
    #[inline]
    pub fn first_occupied_slot(&self, bucket: usize) -> Option<usize> {
        let mask = self.meta(bucket).occupied_mask();
        if mask == 0 {
            None
        } else {
            Some(mask.trailing_zeros() as usize)
        }
    }

    /// Iterates over `(bucket_index, slot)` of every occupied slot.
    ///
    /// Only sound to *use* the yielded coordinates while writers are
    /// excluded; the iteration itself reads only atomics.
    pub fn occupied_coords(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.meta.iter().enumerate().flat_map(|(bi, m)| {
            let mask = m.occupied_mask();
            (0..B).filter_map(move |s| {
                if mask & (1 << s) != 0 {
                    Some((bi, s))
                } else {
                    None
                }
            })
        })
    }
}

impl<K: Plain, V, const B: usize> RawTable<K, V, B> {
    /// Racy-but-race-free copy of the key at `(bucket, slot)`, for
    /// optimistic readers that validate a version counter afterwards.
    ///
    /// The returned value may be torn if a writer raced us — `K: Plain`
    /// makes that merely a wrong value, which the caller's validation
    /// discards.
    ///
    /// # Safety
    ///
    /// `slot < B`. (The slot need not be stably occupied.)
    #[inline]
    pub unsafe fn read_key_racy(&self, bucket: usize, slot: usize) -> K {
        let mut out = core::mem::MaybeUninit::<K>::uninit();
        // SAFETY: key storage is always valid bucket memory; racing
        // writers are tolerated because the copy is per-chunk atomic.
        unsafe {
            htm::mem::load_bytes(
                self.bucket(bucket).key_ptr(slot) as usize,
                out.as_mut_ptr().cast::<u8>(),
                core::mem::size_of::<K>(),
            );
            out.assume_init()
        }
    }
}

impl<K, V: Plain, const B: usize> RawTable<K, V, B> {
    /// Racy-but-race-free copy of the value at `(bucket, slot)`; see
    /// [`RawTable::read_key_racy`].
    ///
    /// # Safety
    ///
    /// `slot < B`.
    #[inline]
    pub unsafe fn read_val_racy(&self, bucket: usize, slot: usize) -> V {
        let mut out = core::mem::MaybeUninit::<V>::uninit();
        // SAFETY: as for `read_key_racy`.
        unsafe {
            htm::mem::load_bytes(
                self.bucket(bucket).val_ptr(slot) as usize,
                out.as_mut_ptr().cast::<u8>(),
                core::mem::size_of::<V>(),
            );
            out.assume_init()
        }
    }
}

impl<K: Plain, V: Plain, const B: usize> RawTable<K, V, B> {
    /// Writes a full entry with atomic-chunk stores, for writers whose
    /// readers are optimistic (they may observe the write in progress and
    /// must merely never see garbage *after validation passes*).
    ///
    /// # Safety
    ///
    /// The caller must hold writer-side mutual exclusion for the bucket
    /// (and have made the covering version counter odd, so readers racing
    /// these stores fail validation); `slot` must be unoccupied.
    pub unsafe fn write_entry_racy(&self, bucket: usize, slot: usize, tag: u8, key: K, val: V) {
        let m = self.meta(bucket);
        debug_assert!(!m.is_occupied(slot));
        m.set_partial(slot, tag);
        let b = self.bucket(bucket);
        // SAFETY: exclusive writer per contract; destination is bucket
        // storage valid for K/V bytes.
        unsafe {
            htm::mem::store_bytes(
                b.key_ptr(slot) as usize,
                &key as *const K as *const u8,
                core::mem::size_of::<K>(),
            );
            htm::mem::store_bytes(
                b.val_ptr(slot) as usize,
                &val as *const V as *const u8,
                core::mem::size_of::<V>(),
            );
        }
        m.set_occupied(slot);
    }

    /// Moves the entry at `(src_bucket, src_slot)` into the empty slot
    /// `(dst_bucket, dst_slot)` with atomic-chunk publication
    /// (destination first, like [`RawTable::move_entry`]) for tables
    /// whose readers are optimistic: the destination becomes visible —
    /// occupied bit and all — *before* the source's occupied bit clears,
    /// so a reader probing both candidate buckets finds the entry in at
    /// least one of them at every instant and never validates a false
    /// miss.
    ///
    /// # Safety
    ///
    /// The caller must hold writer-side mutual exclusion over both
    /// buckets (with the covering version counters odd, so readers
    /// racing the stores fail validation); `src_slot` must be occupied
    /// and `dst_slot` unoccupied.
    pub unsafe fn move_entry_racy(
        &self,
        src_bucket: usize,
        src_slot: usize,
        dst_bucket: usize,
        dst_slot: usize,
        tag: u8,
    ) {
        let sm = self.meta(src_bucket);
        debug_assert!(sm.is_occupied(src_slot));
        let sb = self.bucket(src_bucket);
        // SAFETY: writer exclusion covers the source bucket, so plain
        // reads of its occupied slot are race-free; `K: Plain`/`V: Plain`
        // have no drop glue, so the bitwise duplicate left behind (until
        // `clear_occupied` below) needs no cleanup.
        let (k, v) = unsafe { (sb.key_ptr(src_slot).read(), sb.val_ptr(src_slot).read()) };
        // SAFETY: destination unoccupied per contract; atomic-chunk
        // stores keep racing optimistic readers race-free.
        unsafe { self.write_entry_racy(dst_bucket, dst_slot, tag, k, v) };
        sm.clear_occupied(src_slot);
    }
}

impl<K, V, const B: usize> Drop for RawTable<K, V, B> {
    fn drop(&mut self) {
        if !core::mem::needs_drop::<K>() && !core::mem::needs_drop::<V>() {
            return;
        }
        for (bi, m) in self.meta.iter().enumerate() {
            let mask = m.occupied_mask();
            for slot in 0..B {
                if mask & (1 << slot) != 0 {
                    let b = &self.buckets[bi];
                    // SAFETY: `&mut self`; occupied slots hold initialized
                    // values, dropped exactly once here.
                    unsafe {
                        core::ptr::drop_in_place(b.key_ptr(slot));
                        core::ptr::drop_in_place(b.val_ptr(slot));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn capacity_rounding() {
        let t: RawTable<u64, u64, 4> = RawTable::with_capacity(1000);
        assert!(t.n_buckets().is_power_of_two());
        assert!(t.total_slots() >= 1000);
        assert_eq!(t.mask(), t.n_buckets() - 1);
    }

    #[test]
    fn enforces_minimum_buckets() {
        let t: RawTable<u64, u64, 8> = RawTable::with_capacity(1);
        assert!(t.n_buckets() >= RawTable::<u64, u64, 8>::MIN_BUCKETS);
    }

    #[test]
    fn alt_index_roundtrip_through_table() {
        let t: RawTable<u64, u64, 4> = RawTable::with_capacity(4096);
        for i in [0usize, 17, 300, t.mask()] {
            for tag in [1u8, 77, 255] {
                let a = t.alt_index(i, tag);
                assert_ne!(a, i);
                assert_eq!(t.alt_index(a, tag), i);
            }
        }
    }

    #[test]
    fn write_take_roundtrip_and_occupancy() {
        let t: RawTable<u32, u32, 4> = RawTable::with_capacity(1024);
        assert_eq!(t.count_occupied(), 0);
        // SAFETY: single-threaded exclusive access; slots unoccupied.
        unsafe {
            t.write_entry(3, 0, 9, 1, 2);
            t.write_entry(3, 2, 9, 3, 4);
            t.write_entry(100, 1, 5, 5, 6);
        }
        assert_eq!(t.count_occupied(), 3);
        assert_eq!(t.meta(3).partial(0), 9);
        let coords: Vec<_> = t.occupied_coords().collect();
        assert_eq!(coords, vec![(3, 0), (3, 2), (100, 1)]);
        // SAFETY: slot (3, 2) occupied.
        let (k, v) = unsafe { t.take_entry(3, 2) };
        assert_eq!((k, v), (3, 4));
        assert_eq!(t.count_occupied(), 2);
    }

    #[test]
    fn racy_ops_roundtrip_when_quiescent() {
        let t: RawTable<u64, [u8; 24], 4> = RawTable::with_capacity(1024);
        // SAFETY: single-threaded; slot unoccupied.
        unsafe { t.write_entry_racy(7, 1, 3, 99, [5u8; 24]) };
        // SAFETY: slot in range.
        unsafe {
            assert_eq!(t.read_key_racy(7, 1), 99);
            assert_eq!(t.read_val_racy(7, 1), [5u8; 24]);
        }
        assert!(t.meta(7).is_occupied(1));
    }

    #[test]
    fn drop_runs_for_occupied_slots_only() {
        let counter = Arc::new(());
        {
            let t: RawTable<Arc<()>, Arc<()>, 4> = RawTable::with_capacity(1024);
            // SAFETY: exclusive access; slots unoccupied.
            unsafe {
                t.write_entry(0, 0, 1, Arc::clone(&counter), Arc::clone(&counter));
                t.write_entry(9, 3, 2, Arc::clone(&counter), Arc::clone(&counter));
            }
            assert_eq!(Arc::strong_count(&counter), 5);
        }
        assert_eq!(Arc::strong_count(&counter), 1, "drop freed occupied slots");
    }

    #[test]
    fn take_entry_does_not_double_drop() {
        let counter = Arc::new(());
        {
            let t: RawTable<Arc<()>, u8, 2> = RawTable::with_capacity(512);
            // SAFETY: exclusive access.
            unsafe {
                t.write_entry(0, 0, 1, Arc::clone(&counter), 0);
                let (k, _) = t.take_entry(0, 0);
                drop(k);
            }
        }
        assert_eq!(Arc::strong_count(&counter), 1);
    }

    #[test]
    fn move_entry_relocates_without_double_drop() {
        let counter = Arc::new(());
        {
            let t: RawTable<Arc<()>, u8, 4> = RawTable::with_capacity(1024);
            // SAFETY: exclusive access; slot unoccupied.
            unsafe { t.write_entry(2, 1, 7, Arc::clone(&counter), 9) };
            // SAFETY: source occupied, destination empty.
            unsafe { t.move_entry(2, 1, 50, 3, 7) };
            assert!(!t.meta(2).is_occupied(1));
            assert!(t.meta(50).is_occupied(3));
            assert_eq!(t.meta(50).partial(3), 7);
            // SAFETY: slot occupied (just moved there).
            let (k, v) = unsafe { t.take_entry(50, 3) };
            assert_eq!(v, 9);
            drop(k);
            assert_eq!(Arc::strong_count(&counter), 1, "exactly one live copy");
        }
        assert_eq!(Arc::strong_count(&counter), 1);
    }

    #[test]
    fn move_entry_racy_relocates_and_publishes() {
        let t: RawTable<u64, u64, 4> = RawTable::with_capacity(1024);
        // SAFETY: single-threaded; slot unoccupied.
        unsafe { t.write_entry_racy(7, 1, 3, 99, 77) };
        // SAFETY: source occupied, destination empty.
        unsafe { t.move_entry_racy(7, 1, 200, 0, 3) };
        assert!(!t.meta(7).is_occupied(1));
        assert!(t.meta(200).is_occupied(0));
        // SAFETY: slot in range.
        unsafe {
            assert_eq!(t.read_key_racy(200, 0), 99);
            assert_eq!(t.read_val_racy(200, 0), 77);
        }
    }

    #[test]
    fn memory_accounting_matches_paper_layout() {
        // 8-way, 8B/8B: 128B of entries + 16B of metadata per bucket =
        // 18B per slot (vs 24B/slot when metadata was inlined and padded).
        let t: RawTable<u64, u64, 8> = RawTable::with_capacity(1 << 14);
        let per_slot = t.memory_bytes() as f64 / t.total_slots() as f64;
        assert!(
            (17.5..18.5).contains(&per_slot),
            "bytes/slot = {per_slot} (paper layout: 16B data + 2B metadata)"
        );
    }
}
