//! B-way set-associative buckets (paper §4.1, §4.3.3).
//!
//! All items live inline in a flat array of buckets — "no pointers or
//! linked lists" — which is where cuckoo hashing's memory efficiency for
//! small key-value pairs comes from. Following the paper's layout, "each
//! bucket has all the keys come first and then the values, and fits
//! exactly two cache lines" for the default 8-way, 8-byte/8-byte
//! configuration: a [`Bucket`] holds **only** keys then values (128
//! bytes), while the hot per-bucket metadata — the occupancy bitmap and
//! the one-byte *partial keys* (tags) — lives in a parallel packed
//! [`BucketMeta`] array (see [`crate::raw::RawTable`]). The split keeps
//! data buckets padding-free (memory efficiency is a headline claim,
//! §6.2) and concentrates everything path search reads into a dense
//! metadata array.
//!
//! Tags let lookups compare one byte before touching full keys, and make
//! a slot's alternate bucket computable without reading the key (see
//! [`crate::hashing`]).
//!
//! Buckets and metadata are *passive*: no locking, no version
//! management. Callers combine them with [`crate::sync`] stripes
//! (fine-grained or global locking) or transactional execution. Methods
//! that touch key/value memory are `unsafe` with explicit contracts; the
//! metadata words are atomics, so unlocked path search may read them
//! freely (racy-but-validated, §4.3.1).

use core::cell::UnsafeCell;
use core::mem::MaybeUninit;
use crate::sync2::atomic::{AtomicU16, AtomicU64, AtomicU8, Ordering};

/// Maximum supported set-associativity (occupancy bitmap is 16 bits).
pub const MAX_WAYS: usize = 16;

/// Hot per-bucket metadata: per-slot tags + occupancy bitmap.
///
/// Nearly packed (`repr(C, align(8))`: 8 bytes for a 4-way bucket, 16 for
/// 8-way) — the "small additional" overhead the paper accepts on top of
/// the raw entries. Tags come first and the struct is 8-aligned so
/// [`BucketMeta::match_tag_mask`] can compare eight tags per 64-bit SWAR
/// step.
#[repr(C, align(8))]
pub struct BucketMeta<const B: usize> {
    /// Per-slot partial keys; meaningful only for occupied slots.
    partials: [AtomicU8; B],
    /// Bit `s` set means slot `s` holds an initialized key/value.
    occupied: AtomicU16,
}

impl<const B: usize> BucketMeta<B> {
    /// Bitmask with one bit per way.
    pub const FULL_MASK: u16 = if B >= 16 { u16::MAX } else { (1 << B) - 1 };

    /// Creates empty metadata.
    pub fn new() -> Self {
        assert!(B > 0 && B <= MAX_WAYS, "set-associativity must be 1..=16");
        BucketMeta {
            partials: [(); B].map(|_| AtomicU8::new(0)),
            occupied: AtomicU16::new(0),
        }
    }

    /// Bitmask of slots whose tag equals `tag` (the lookup fast path
    /// scans `candidates = match_tag_mask(tag) & occupied_mask()` instead
    /// of probing tags one by one).
    ///
    /// Dispatches to an explicit vector probe where one exists — SSE2 (or
    /// AVX2, which selects the same 128-bit kernel at ≤16 ways) on
    /// x86_64, runtime-detected once via `is_x86_feature_detected!`;
    /// NEON on aarch64, compile-time — and otherwise to the portable
    /// SWAR kernel [`BucketMeta::match_tag_mask_swar`], which also
    /// serves as the differential-test oracle for every vector path.
    /// Sanitized/model builds (`miri`, `cuckoo_model`, `cuckoo_tsan`)
    /// and `--cfg cuckoo_force_swar` always take the SWAR kernel, whose
    /// atomic block loads those tools understand; `--cfg
    /// cuckoo_force_simd` asserts the vector path is live (see
    /// [`tag_probe_kind`]).
    #[inline]
    pub fn match_tag_mask(&self, tag: u8) -> u16 {
        #[cfg(all(
            target_arch = "x86_64",
            not(any(miri, cuckoo_model, cuckoo_tsan, cuckoo_force_swar))
        ))]
        return self.match_tag_mask_sse2(tag);
        #[cfg(all(
            target_arch = "aarch64",
            not(any(miri, cuckoo_model, cuckoo_tsan, cuckoo_force_swar))
        ))]
        return self.match_tag_mask_neon(tag);
        #[allow(unreachable_code)]
        self.match_tag_mask_swar(tag)
    }

    /// Portable SWAR tag probe: eight tags compared per 64-bit step.
    ///
    /// Kept alongside the vector kernels as the fallback for targets
    /// without one and as the oracle the differential proptests compare
    /// them against.
    ///
    /// Like individual tag reads, the comparison is racy-but-race-free:
    /// the blocks are loaded through `AtomicU64` (the struct is 8-aligned
    /// and its size is always a multiple of 8, so whole-block loads stay
    /// in bounds; bytes beyond the tag array are masked off).
    #[inline]
    pub fn match_tag_mask_swar(&self, tag: u8) -> u16 {
        const LO7: u64 = 0x7f7f_7f7f_7f7f_7f7f;
        let needle = 0x0101_0101_0101_0101u64.wrapping_mul(tag as u64);
        let base = self.partials.as_ptr().cast::<AtomicU64>();
        let mut mask = 0u16;
        let blocks = B.div_ceil(8);
        for blk in 0..blocks {
            // SAFETY: `repr(C, align(8))` makes `partials` the first
            // field at an 8-aligned address, and `size_of::<Self>()` is a
            // multiple of 8 covering `blocks * 8` bytes (trailing bytes
            // are the occupancy word/padding, masked off below).
            // ORDERING: bucket.meta-acquire
            let block = unsafe { &*base.add(blk) }.load(Ordering::Acquire);
            let x = block ^ needle;
            // Exact per-byte zero detector (no cross-byte borrow, unlike
            // the `(x - 0x01…) & !x & 0x80…` folk formula): the high bit
            // of each byte of `hits` is set iff that byte of `x` is zero,
            // i.e. the tag matched.
            let t = (x & LO7).wrapping_add(LO7);
            let mut hits = !(t | x | LO7);
            while hits != 0 {
                let lane = blk * 8 + (hits.trailing_zeros() as usize) / 8;
                if lane < B {
                    mask |= 1 << lane;
                }
                hits &= hits - 1;
            }
        }
        mask
    }

    /// SSE2 tag probe: every tag byte compared in one (or, for wide
    /// buckets, one 128-bit) `pcmpeqb`. AVX2 detection selects the same
    /// kernel — 256-bit lanes add nothing at ≤16 ways (see the dispatch
    /// table in DESIGN.md §5j).
    ///
    /// Raciness contract: the vector load is a *non-atomic* read of bytes
    /// that concurrent writers store through `AtomicU8`. That is the same
    /// racy-but-validated discipline as the SWAR kernel's block loads
    /// (§4.3.1) — every probe result is revalidated under a stripe lock
    /// (writers) or a seqlock stamp (optimistic readers) before it is
    /// believed, so a torn or stale byte can only cause a spurious
    /// candidate or a retry, never a wrong answer. Sanitizers that flag
    /// such reads (Miri, TSan, loom) are routed to the SWAR kernel by
    /// `match_tag_mask`'s cfg dispatch and never reach this function.
    #[cfg(all(
        target_arch = "x86_64",
        not(any(miri, cuckoo_model, cuckoo_tsan, cuckoo_force_swar))
    ))]
    #[inline]
    fn match_tag_mask_sse2(&self, tag: u8) -> u16 {
        use core::arch::x86_64::{
            __m128i, _mm_cmpeq_epi8, _mm_loadl_epi64, _mm_loadu_si128, _mm_movemask_epi8,
            _mm_set1_epi8,
        };
        let base = self.partials.as_ptr().cast::<__m128i>();
        // SAFETY: SSE2 is part of the x86_64 baseline, so every
        // intrinsic in this function is available on any CPU this code
        // can execute on (the cfg above restricts to x86_64).
        let needle = unsafe { _mm_set1_epi8(tag as i8) };
        let block = if B > 6 {
            // SAFETY: `repr(C, align(8))` puts `partials` first, and
            // `size_of::<Self>()` = 8-rounded `B + 2` ≥ 16 whenever
            // B > 6, so the unaligned 16-byte load stays in bounds
            // (bytes past the tag array are the occupancy word and
            // padding, masked off below).
            unsafe { _mm_loadu_si128(base) }
        } else {
            // SAFETY: the struct is 8-aligned and ≥ 8 bytes, so the
            // 64-bit load stays in bounds for B ≤ 6 (trailing bytes
            // masked off below).
            unsafe { _mm_loadl_epi64(base) }
        };
        // Order the racy tag bytes after the occupancy/stamp loads the
        // caller pairs them with, exactly like the SWAR kernel's
        // per-block Acquire loads.
        // ORDERING: simd_probe
        core::sync::atomic::fence(core::sync::atomic::Ordering::Acquire);
        // SAFETY: baseline SSE2 (see above); pure register ops.
        let hits = unsafe { _mm_movemask_epi8(_mm_cmpeq_epi8(block, needle)) };
        (hits as u16) & Self::FULL_MASK
    }

    /// NEON tag probe (aarch64 mandates NEON, so this is compile-time
    /// dispatched). Same raciness contract as the SSE2 kernel.
    #[cfg(all(
        target_arch = "aarch64",
        not(any(miri, cuckoo_model, cuckoo_tsan, cuckoo_force_swar))
    ))]
    #[inline]
    #[allow(unused_unsafe)]
    fn match_tag_mask_neon(&self, tag: u8) -> u16 {
        use core::arch::aarch64::{
            vceq_u8, vceqq_u8, vdup_n_u8, vdupq_n_u8, vget_lane_u64, vld1_u8, vld1q_u8,
            vreinterpret_u64_u8, vreinterpretq_u16_u8, vshrn_n_u16,
        };
        let base = self.partials.as_ptr().cast::<u8>();
        let mut mask = 0u16;
        if B > 6 {
            // SAFETY: as in the SSE2 kernel, `size_of::<Self>()` ≥ 16
            // for B > 6, so the 16-byte load stays in bounds; NEON has
            // no byte movemask, so the 16 lanes are narrowed to one
            // nibble each (the `vshrn` idiom) and the nibbles' low bits
            // collected.
            let eq = unsafe { vceqq_u8(vld1q_u8(base), vdupq_n_u8(tag)) };
            // SAFETY: pure register-to-register lane shuffling on the
            // comparison result above; no memory access.
            let nibbles =
                unsafe { vget_lane_u64(vreinterpret_u64_u8(vshrn_n_u16(vreinterpretq_u16_u8(eq), 4)), 0) };
            for lane in 0..16 {
                mask |= (((nibbles >> (4 * lane)) & 1) as u16) << lane;
            }
        } else {
            // SAFETY: struct is 8-aligned and ≥ 8 bytes, so the 8-byte
            // load stays in bounds for B ≤ 6.
            let eq = unsafe { vget_lane_u64(vreinterpret_u64_u8(vceq_u8(vld1_u8(base), vdup_n_u8(tag))), 0) };
            let mut hits = eq & 0x8080_8080_8080_8080;
            while hits != 0 {
                mask |= 1 << (hits.trailing_zeros() / 8);
                hits &= hits - 1;
            }
        }
        // Same pairing as the SWAR kernel's per-block Acquire loads.
        // ORDERING: simd_probe
        core::sync::atomic::fence(core::sync::atomic::Ordering::Acquire);
        mask & Self::FULL_MASK
    }

    /// Current occupancy bitmap.
    #[inline]
    pub fn occupied_mask(&self) -> u16 {
        self.occupied.load(Ordering::Acquire) // ORDERING: bucket.meta-acquire
    }

    /// Whether slot `slot` is occupied.
    #[inline]
    pub fn is_occupied(&self, slot: usize) -> bool {
        self.occupied_mask() & (1 << slot) != 0
    }

    /// Number of occupied slots.
    #[inline]
    pub fn occupied_count(&self) -> usize {
        self.occupied_mask().count_ones() as usize
    }

    /// Whether every slot is occupied.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.occupied_mask() == Self::FULL_MASK
    }

    /// Lowest-index empty slot, if any.
    #[inline]
    pub fn empty_slot(&self) -> Option<usize> {
        let free = !self.occupied_mask() & Self::FULL_MASK;
        if free == 0 {
            None
        } else {
            Some(free.trailing_zeros() as usize)
        }
    }

    /// Marks slot `slot` occupied. The slot's key/value must already be
    /// written (publication order: data, then occupancy bit).
    #[inline]
    pub fn set_occupied(&self, slot: usize) {
        self.occupied.fetch_or(1 << slot, Ordering::Release); // ORDERING: bucket.meta-publish
    }

    /// Marks slot `slot` empty. The key/value become logically dead; the
    /// caller owns dropping them if needed.
    #[inline]
    pub fn clear_occupied(&self, slot: usize) {
        self.occupied.fetch_and(!(1 << slot), Ordering::Release); // ORDERING: bucket.meta-publish
    }

    /// The partial key stored at `slot` (meaningful only if occupied;
    /// reading a racing value is allowed — consumers validate).
    #[inline]
    pub fn partial(&self, slot: usize) -> u8 {
        self.partials[slot].load(Ordering::Acquire) // ORDERING: bucket.meta-acquire
    }

    /// Stores the partial key for `slot`.
    #[inline]
    pub fn set_partial(&self, slot: usize, tag: u8) {
        self.partials[slot].store(tag, Ordering::Release); // ORDERING: bucket.meta-publish
    }

    /// Pointer to the atomic occupancy word (for transactional access).
    #[inline]
    pub fn occupied_ptr(&self) -> *mut u16 {
        self.occupied.as_ptr()
    }

    /// Pointer to the atomic partial byte of `slot` (for transactional
    /// access).
    #[inline]
    pub fn partial_ptr(&self, slot: usize) -> *mut u8 {
        self.partials[slot].as_ptr()
    }
}

impl<const B: usize> Default for BucketMeta<B> {
    fn default() -> Self {
        Self::new()
    }
}

/// Which engine [`BucketMeta::match_tag_mask`] dispatches to on this
/// host/build (runtime CPU detection on x86_64, compile-time elsewhere).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TagProbeKind {
    /// Portable 64-bit SWAR kernel (fallback and differential oracle).
    Swar,
    /// 128-bit `pcmpeqb` kernel (x86_64 baseline).
    Sse2,
    /// AVX2 detected; routes to the same 128-bit kernel because 256-bit
    /// lanes add nothing at ≤16 ways — reported distinctly so operators
    /// can see what the host offers.
    Avx2,
    /// 128-bit `vceqq_u8` kernel (aarch64 mandates NEON).
    Neon,
}

#[cfg(all(cuckoo_force_simd, any(miri, cuckoo_model, cuckoo_tsan, cuckoo_force_swar)))]
compile_error!(
    "`cuckoo_force_simd` contradicts sanitizer/model/force-SWAR cfgs: those builds must \
     take the atomic SWAR kernel"
);

/// The probe engine [`BucketMeta::match_tag_mask`] uses in this process.
///
/// On x86_64 the answer is detected once via `is_x86_feature_detected!`
/// and cached; everywhere else it is a compile-time constant. Exposed so
/// tests (and the `cuckoo_force_simd` CI run) can assert which kernel is
/// actually live.
pub fn tag_probe_kind() -> TagProbeKind {
    #[cfg(all(
        target_arch = "x86_64",
        not(any(miri, cuckoo_model, cuckoo_tsan, cuckoo_force_swar))
    ))]
    {
        use core::sync::atomic::{AtomicU8, Ordering};
        const UNKNOWN: u8 = 0;
        const SSE2: u8 = 1;
        const AVX2: u8 = 2;
        static KIND: AtomicU8 = AtomicU8::new(UNKNOWN);
        // Memoizes a pure CPU-feature probe: any thread that misses the
        // cache re-derives the same value, so ordering is irrelevant.
        // ORDERING: simd_probe
        let mut k = KIND.load(Ordering::Relaxed);
        if k == UNKNOWN {
            k = if std::arch::is_x86_feature_detected!("avx2") { AVX2 } else { SSE2 };
            // Same-value store by every racer (see load above).
            // ORDERING: simd_probe
            KIND.store(k, Ordering::Relaxed);
        }
        if k == AVX2 {
            TagProbeKind::Avx2
        } else {
            TagProbeKind::Sse2
        }
    }
    #[cfg(all(
        target_arch = "aarch64",
        not(any(miri, cuckoo_model, cuckoo_tsan, cuckoo_force_swar))
    ))]
    {
        TagProbeKind::Neon
    }
    #[cfg(any(
        not(any(target_arch = "x86_64", target_arch = "aarch64")),
        miri,
        cuckoo_model,
        cuckoo_tsan,
        cuckoo_force_swar
    ))]
    {
        TagProbeKind::Swar
    }
}

/// One B-way bucket's entry storage: all keys first, then all values
/// (the paper's cache-line-friendly order).
#[repr(C)]
pub struct Bucket<K, V, const B: usize> {
    keys: [UnsafeCell<MaybeUninit<K>>; B],
    vals: [UnsafeCell<MaybeUninit<V>>; B],
}

impl<K, V, const B: usize> Bucket<K, V, B> {
    /// Creates an uninitialized bucket (occupancy lives in
    /// [`BucketMeta`]).
    pub fn new() -> Self {
        assert!(B > 0 && B <= MAX_WAYS, "set-associativity must be 1..=16");
        Bucket {
            keys: [(); B].map(|_| UnsafeCell::new(MaybeUninit::uninit())),
            vals: [(); B].map(|_| UnsafeCell::new(MaybeUninit::uninit())),
        }
    }

    /// Raw pointer to slot `slot`'s key storage.
    #[inline]
    pub fn key_ptr(&self, slot: usize) -> *mut K {
        self.keys[slot].get().cast::<K>()
    }

    /// Raw pointer to slot `slot`'s value storage.
    #[inline]
    pub fn val_ptr(&self, slot: usize) -> *mut V {
        self.vals[slot].get().cast::<V>()
    }
}

impl<K, V, const B: usize> Default for Bucket<K, V, B> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_empty_state() {
        let m: BucketMeta<4> = BucketMeta::new();
        assert_eq!(m.occupied_mask(), 0);
        assert_eq!(m.occupied_count(), 0);
        assert_eq!(m.empty_slot(), Some(0));
        assert!(!m.is_full());
    }

    #[test]
    fn meta_occupancy_bit_twiddling() {
        let m: BucketMeta<8> = BucketMeta::new();
        m.set_occupied(3);
        m.set_occupied(0);
        assert!(m.is_occupied(0));
        assert!(m.is_occupied(3));
        assert!(!m.is_occupied(1));
        assert_eq!(m.occupied_count(), 2);
        assert_eq!(m.empty_slot(), Some(1));
        m.clear_occupied(0);
        assert_eq!(m.empty_slot(), Some(0));
        assert_eq!(m.occupied_count(), 1);
    }

    #[test]
    fn meta_full_masks() {
        assert_eq!(BucketMeta::<4>::FULL_MASK, 0xf);
        assert_eq!(BucketMeta::<8>::FULL_MASK, 0xff);
        assert_eq!(BucketMeta::<16>::FULL_MASK, 0xffff);
        let m: BucketMeta<4> = BucketMeta::new();
        for s in 0..4 {
            m.set_occupied(s);
        }
        assert!(m.is_full());
        assert_eq!(m.empty_slot(), None);
    }

    #[test]
    fn meta_partials() {
        let m: BucketMeta<4> = BucketMeta::new();
        m.set_partial(2, 0xab);
        assert_eq!(m.partial(2), 0xab);
        assert_eq!(m.partial(0), 0);
    }

    #[test]
    #[should_panic(expected = "set-associativity")]
    fn rejects_excessive_ways() {
        let _: BucketMeta<17> = BucketMeta::new();
    }

    #[test]
    fn paper_layout_bucket_is_exactly_two_cache_lines() {
        // The §6 claim: an 8-way bucket of 8-byte keys and values "fits
        // exactly two cache lines: one for 8 keys and another for 8
        // values".
        assert_eq!(core::mem::size_of::<Bucket<u64, u64, 8>>(), 128);
        // Metadata: B tag bytes + the occupancy word, rounded to the
        // 8-byte alignment that enables SWAR tag matching.
        assert_eq!(core::mem::size_of::<BucketMeta<8>>(), 16);
        assert_eq!(core::mem::size_of::<BucketMeta<4>>(), 8);
        assert_eq!(core::mem::size_of::<BucketMeta<16>>(), 24);
    }

    #[test]
    fn swar_tag_match_equals_naive_scan() {
        fn check<const B: usize>(tags: &[u8]) {
            let m: BucketMeta<B> = BucketMeta::new();
            for (s, &t) in tags.iter().enumerate().take(B) {
                m.set_partial(s, t);
            }
            for probe in [0u8, 1, 7, 0x7f, 0x80, 0xff, tags[0]] {
                let naive: u16 = (0..B)
                    .filter(|&s| m.partial(s) == probe)
                    .fold(0, |acc, s| acc | (1 << s));
                assert_eq!(
                    m.match_tag_mask(probe),
                    naive,
                    "B={B} probe={probe:#x} tags={tags:?}"
                );
            }
        }
        check::<4>(&[1, 2, 1, 0xff]);
        check::<8>(&[9, 9, 9, 9, 9, 9, 9, 9]);
        check::<8>(&[0x80, 0x7f, 0, 1, 0xfe, 0xff, 3, 0x80]);
        check::<16>(&[5; 16]);
        check::<16>(&[
            1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16,
        ]);
        check::<2>(&[0xaa, 0xbb]);
    }

    #[test]
    fn swar_never_reports_phantom_lanes() {
        // Bytes beyond the tag array (the occupancy word) must never leak
        // into the match mask: fill occupancy with 0x4141-like patterns
        // by occupying slots, then probe for the byte values occupancy
        // could alias to.
        let m: BucketMeta<4> = BucketMeta::new();
        for s in 0..4 {
            m.set_occupied(s); // occupied = 0x000f at offset 4
        }
        assert_eq!(m.match_tag_mask(0x0f) & !BucketMeta::<4>::FULL_MASK, 0);
        assert_eq!(m.match_tag_mask(0x0f), 0, "tags are all zero");
        assert_eq!(m.match_tag_mask(0), 0xf, "all four zero tags match");
    }

    /// Fills a meta block with `tags` (and a ragged occupancy prefix) and
    /// checks the dispatched probe against both the SWAR kernel and a
    /// naive scan for a sweep of probe bytes.
    fn probe_agrees<const B: usize>(tags: &[u8], occupied: usize) {
        let m: BucketMeta<B> = BucketMeta::new();
        for (s, &t) in tags.iter().enumerate().take(B) {
            m.set_partial(s, t);
        }
        for s in 0..occupied.min(B) {
            m.set_occupied(s);
        }
        let mut probes = vec![0u8, 1, 0x7f, 0x80, 0xfe, 0xff];
        probes.extend(tags.iter().copied());
        for probe in probes {
            let naive: u16 =
                (0..B).filter(|&s| m.partial(s) == probe).fold(0, |acc, s| acc | (1 << s));
            assert_eq!(m.match_tag_mask_swar(probe), naive, "SWAR B={B} probe={probe:#x}");
            assert_eq!(
                m.match_tag_mask(probe),
                naive,
                "dispatched ({:?}) B={B} probe={probe:#x} tags={tags:?}",
                super::tag_probe_kind()
            );
        }
    }

    proptest::proptest! {
        /// Differential test across every interesting lane width: below,
        /// at, and above the 8-byte SWAR block / both vector load widths
        /// (8-byte for B ≤ 6, 16-byte above), with duplicate tags and
        /// partial occupancy.
        #[test]
        fn simd_probe_equals_swar_oracle_on_random_tags(
            tags in proptest::collection::vec(proptest::prelude::any::<u8>(), 16),
            occupied in 0usize..=16,
        ) {
            probe_agrees::<2>(&tags, occupied);
            probe_agrees::<4>(&tags, occupied);
            probe_agrees::<6>(&tags, occupied);
            probe_agrees::<7>(&tags, occupied);
            probe_agrees::<8>(&tags, occupied);
            probe_agrees::<12>(&tags, occupied);
            probe_agrees::<16>(&tags, occupied);
        }
    }

    #[test]
    fn dispatched_probe_equals_swar_on_edge_patterns() {
        // The deterministic cases the SWAR suite pinned, now also run
        // through the dispatched (vector where available) probe.
        probe_agrees::<4>(&[1, 2, 1, 0xff], 4);
        probe_agrees::<8>(&[9; 8], 8);
        probe_agrees::<8>(&[0x80, 0x7f, 0, 1, 0xfe, 0xff, 3, 0x80], 3);
        probe_agrees::<16>(&[5; 16], 16);
        probe_agrees::<16>(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16], 9);
    }

    #[test]
    fn tag_probe_kind_matches_build() {
        let kind = super::tag_probe_kind();
        #[cfg(any(miri, cuckoo_model, cuckoo_tsan, cuckoo_force_swar))]
        assert_eq!(kind, TagProbeKind::Swar);
        // The force-SIMD CI run exists to prove the vector kernel is the
        // one under test — fail loudly if dispatch fell back.
        #[cfg(cuckoo_force_simd)]
        assert_ne!(kind, TagProbeKind::Swar);
        #[cfg(all(
            target_arch = "x86_64",
            not(any(miri, cuckoo_model, cuckoo_tsan, cuckoo_force_swar))
        ))]
        assert!(matches!(kind, TagProbeKind::Sse2 | TagProbeKind::Avx2));
        let _ = kind;
    }

    #[test]
    fn key_value_pointers_are_distinct_and_ordered() {
        let b: Bucket<u64, u64, 4> = Bucket::new();
        // Keys come first, then values (paper layout).
        assert!((b.key_ptr(3) as usize) < (b.val_ptr(0) as usize));
        assert_ne!(b.key_ptr(0), b.key_ptr(1));
        // SAFETY: single-threaded; writing then reading our own storage.
        unsafe {
            b.key_ptr(0).write(7);
            b.val_ptr(0).write(9);
            assert_eq!(b.key_ptr(0).read(), 7);
            assert_eq!(b.val_ptr(0).read(), 9);
        }
    }
}
