//! Switchable synchronization facade.
//!
//! Everything concurrency-critical in this crate (and in `cache`, which
//! re-uses this module) imports its atomics, locks, and spin/yield
//! primitives from here instead of `std`:
//!
//! - **Normal builds**: straight re-exports of `std::sync`/`std::thread`/
//!   `std::hint`. Zero cost, zero behavior change.
//! - **`--cfg cuckoo_model` builds**: the vendored `loom` shim's
//!   instrumented versions, where every operation is a scheduling point
//!   for the deterministic model checker (see `shims/loom`). Tests under
//!   `tests/model.rs` explore thread interleavings of the real table
//!   code through this seam.
//!
//! Deliberately **not** routed through the facade: `Arc` (refcounting is
//! not part of any protocol we model), and the metadata counters in
//! `stats.rs`/`hash.rs` (instrumenting them would only blow up the
//! explored state space without covering any invariant).

#[cfg(not(cuckoo_model))]
pub use std::sync::{Mutex, MutexGuard};

#[cfg(cuckoo_model)]
pub use loom::sync::{Mutex, MutexGuard};

/// Atomic types + `Ordering` + `fence`.
pub mod atomic {
    #[cfg(not(cuckoo_model))]
    pub use std::sync::atomic::{
        fence, AtomicBool, AtomicI64, AtomicIsize, AtomicPtr, AtomicU16, AtomicU32, AtomicU64,
        AtomicU8, AtomicUsize, Ordering,
    };

    #[cfg(cuckoo_model)]
    pub use loom::sync::atomic::{
        fence, AtomicBool, AtomicI64, AtomicIsize, AtomicPtr, AtomicU16, AtomicU32, AtomicU64,
        AtomicU8, AtomicUsize, Ordering,
    };
}

/// `spawn`/`yield_now`/`JoinHandle`. Spin-wait loops must yield through
/// this module: under the model only one thread runs at a time, so a
/// spinner that never hits a scheduling point would starve the very
/// thread it is waiting on.
pub mod thread {
    #[cfg(not(cuckoo_model))]
    pub use std::thread::{spawn, yield_now, JoinHandle};

    #[cfg(cuckoo_model)]
    pub use loom::thread::{spawn, yield_now, JoinHandle};
}

/// Busy-wait hint; a scheduling point under the model.
pub mod hint {
    #[cfg(not(cuckoo_model))]
    pub use std::hint::spin_loop;

    #[cfg(cuckoo_model)]
    pub use loom::hint::spin_loop;
}
