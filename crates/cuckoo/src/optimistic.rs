//! `cuckoo+` with fine-grained locking — the paper's headline table (§4).
//!
//! [`OptimisticCuckooMap`] combines every algorithmic optimization from
//! §4.3 with the striped-spinlock protocol of §4.4:
//!
//! - **Reads** are lock-free: stamp the two candidate buckets' stripe
//!   versions, scan, validate ([`crate::read`]). No cache-line writes.
//! - **Inserts** first try the two candidate buckets under a pair lock
//!   (the common case: "usually fewer than three" lock acquisitions).
//!   When both are full, a BFS cuckoo-path search runs with **no locks
//!   held**, then execution locks exactly one bucket *pair per
//!   displacement* — at most [`bfs_max_path_len`] ≈ 5 pairs, ordered by
//!   stripe id, released before the next pair. Every displacement
//!   re-validates its source tag and destination vacancy; a stale path
//!   aborts execution (no undo needed — each applied displacement is
//!   individually valid) and the insert retries with a fresh search.
//! - **Livelock escape hatch**: after `path_retries` consecutive stale
//!   paths the insert "pessimistically acquire[s] a full-table lock by
//!   acquiring each of the 2048 locks" and completes deterministically
//!   (the paper notes it never observed this being warranted; we keep it
//!   for guaranteed progress).
//!
//! Key and value types must be [`Plain`] (any bit pattern valid) because
//! optimistic readers materialize possibly-torn copies before validation
//! discards them; this matches the paper's scope of "short fixed-length
//! key-value pairs" (§7). For arbitrary types use [`crate::CuckooMap`].
//!
//! [`bfs_max_path_len`]: crate::search::bfs::bfs_max_path_len

use crate::counter::ShardedCounter;
use crate::error::{InsertError, UpsertOutcome};
use crate::hash::DefaultHashBuilder;
use crate::hashing::{key_slots, KeySlots};
use crate::raw::RawTable;
use crate::search::{self, bfs, exec, EvictionPolicy, PathEntry};
use crate::stats::{PathStats, PathStatsSnapshot, TableMetrics};
use crate::sync::{LockStripes, DEFAULT_STRIPES, MAX_BATCH_BUCKETS, WRITE_GROUP};
use crate::sync2::atomic::{AtomicU64, Ordering};
use crate::DEFAULT_MAX_SEARCH_SLOTS;
use core::hash::{BuildHasher, Hash};
use htm::Plain;

/// Builder for [`OptimisticCuckooMap`].
#[derive(Debug, Clone)]
pub struct Builder<S = DefaultHashBuilder> {
    capacity: usize,
    n_stripes: usize,
    max_search_slots: usize,
    prefetch: bool,
    path_retries: usize,
    eviction: EvictionPolicy,
    hasher: S,
}

impl Builder<DefaultHashBuilder> {
    /// Starts a builder for a table holding at least `capacity` items.
    pub fn new(capacity: usize) -> Self {
        Builder {
            capacity,
            n_stripes: DEFAULT_STRIPES,
            max_search_slots: DEFAULT_MAX_SEARCH_SLOTS,
            prefetch: true,
            path_retries: 16,
            eviction: EvictionPolicy::Bfs,
            hasher: DefaultHashBuilder::new(),
        }
    }
}

impl<S> Builder<S> {
    /// Sets the number of lock stripes (rounded up to a power of two).
    pub fn stripes(mut self, n: usize) -> Self {
        self.n_stripes = n;
        self
    }

    /// Sets the search budget `M` (max slots examined per path search).
    pub fn search_budget(mut self, m: usize) -> Self {
        self.max_search_slots = m;
        self
    }

    /// Enables or disables BFS bucket prefetching.
    pub fn prefetch(mut self, on: bool) -> Self {
        self.prefetch = on;
        self
    }

    /// Sets how many stale-path retries precede the full-table fallback.
    pub fn path_retries(mut self, n: usize) -> Self {
        self.path_retries = n;
        self
    }

    /// Selects the kick-out eviction policy for the insert slow path
    /// (default [`EvictionPolicy::Bfs`]). See [`EvictionPolicy`] for the
    /// density/latency trade-off.
    pub fn eviction(mut self, policy: EvictionPolicy) -> Self {
        self.eviction = policy;
        self
    }

    /// Replaces the hash builder.
    pub fn hasher<S2>(self, hasher: S2) -> Builder<S2> {
        Builder {
            capacity: self.capacity,
            n_stripes: self.n_stripes,
            max_search_slots: self.max_search_slots,
            prefetch: self.prefetch,
            path_retries: self.path_retries,
            eviction: self.eviction,
            hasher,
        }
    }

    /// Builds the table.
    pub fn build<K, V, const B: usize>(self) -> OptimisticCuckooMap<K, V, B, S>
    where
        K: Plain + Eq + Hash,
        V: Plain,
        S: BuildHasher,
    {
        OptimisticCuckooMap {
            raw: RawTable::with_capacity(self.capacity),
            stripes: LockStripes::new(self.n_stripes),
            hash_builder: self.hasher,
            count: ShardedCounter::new(),
            max_search_slots: self.max_search_slots,
            prefetch: self.prefetch,
            path_retries: self.path_retries,
            eviction: self.eviction,
            path_stats: PathStats::new(),
            displacements: AtomicU64::new(0),
            table_metrics: Box::new(TableMetrics::new()),
        }
    }
}

/// A multi-reader/multi-writer cuckoo hash table with optimistic reads
/// and fine-grained striped locking (the paper's `cuckoo+`).
pub struct OptimisticCuckooMap<K, V, const B: usize = 8, S = DefaultHashBuilder> {
    raw: RawTable<K, V, B>,
    stripes: LockStripes,
    hash_builder: S,
    count: ShardedCounter,
    max_search_slots: usize,
    prefetch: bool,
    path_retries: usize,
    eviction: EvictionPolicy,
    path_stats: PathStats,
    /// Total cuckoo-path displacement steps ever executed. Correctness-
    /// bearing (not a resettable metric): [`scan`](Self::scan) validates
    /// it to detect an entry hopping between stripes mid-scan, which
    /// would otherwise let a live key escape a fuzzy snapshot.
    displacements: AtomicU64,
    /// Boxed: ~400 B of atomics must not dilute the cache lines holding
    /// the read path's fields (`raw`, `stripes`, `hash_builder`).
    table_metrics: Box<TableMetrics>,
}

/// Outcome of the locked fast path.
enum FastPath {
    Inserted,
    Updated,
    Exists,
    BucketsFull,
}

impl<K, V, const B: usize> OptimisticCuckooMap<K, V, B, DefaultHashBuilder>
where
    K: Plain + Eq + Hash,
    V: Plain,
{
    /// Creates a table holding at least `capacity` items with default
    /// tuning (2048 stripes, M = 2000, prefetch on).
    pub fn with_capacity(capacity: usize) -> Self {
        Builder::new(capacity).build()
    }
}

impl<K, V, const B: usize, S> OptimisticCuckooMap<K, V, B, S>
where
    K: Plain + Eq + Hash,
    V: Plain,
    S: BuildHasher,
{
    /// Set-associativity (slots per bucket).
    pub const WAYS: usize = B;

    /// Starts a [`Builder`].
    pub fn builder(capacity: usize) -> Builder<DefaultHashBuilder> {
        Builder::new(capacity)
    }

    #[inline]
    fn slots_of(&self, key: &K) -> KeySlots {
        key_slots(&self.hash_builder, key, self.raw.mask())
    }

    /// Issues prefetch-for-store hints for both of `key`'s candidate
    /// bucket metadata lines. This is the stage-1 hook for callers that
    /// front the map with their own write pipeline (e.g. the CLOCK
    /// cache's `put_many`): hash a whole group, hint every line, then
    /// write — the group's cache misses overlap instead of serializing.
    /// Pure hint; honors the builder's prefetch switch.
    #[inline]
    pub fn prefetch_write_for(&self, key: &K) {
        if self.prefetch {
            let ks = self.slots_of(key);
            self.raw.prefetch_meta_write(ks.i1);
            self.raw.prefetch_meta_write(ks.i2);
        }
    }

    /// Looks up `key`, returning a copy of its value. Lock-free.
    #[inline]
    pub fn get(&self, key: &K) -> Option<V> {
        crate::read::get(&self.raw, &self.stripes, &self.table_metrics, self.slots_of(key), key)
    }

    /// Whether `key` is present. Lock-free.
    #[inline]
    pub fn contains_key(&self, key: &K) -> bool {
        crate::read::contains(&self.raw, &self.stripes, &self.table_metrics, self.slots_of(key), key)
    }

    /// Batched lookup: one result per key, in order (`None` = miss).
    /// Lock-free, like [`get`](Self::get), and equivalent to calling it
    /// per key — but groups of keys are software-pipelined (hash all →
    /// prefetch metadata → prefetch tag-hit buckets → probe under
    /// seqlock validation) so their cache misses overlap instead of
    /// serializing. Keys invalidated by concurrent writers individually
    /// fall back to the single-key path.
    pub fn get_many(&self, keys: &[K]) -> Vec<Option<V>> {
        let mut out = Vec::new();
        self.get_many_into(keys, &mut out);
        out
    }

    /// [`get_many`](Self::get_many) into a caller-provided buffer
    /// (cleared first), so steady-state batched readers allocate
    /// nothing.
    pub fn get_many_into(&self, keys: &[K], out: &mut Vec<Option<V>>) {
        out.clear();
        out.resize(keys.len(), None);
        let mut ks_buf = [KeySlots { i1: 0, i2: 0, tag: 1 }; crate::read::MULTIGET_GROUP];
        for (group, results) in keys
            .chunks(crate::read::MULTIGET_GROUP)
            .zip(out.chunks_mut(crate::read::MULTIGET_GROUP))
        {
            // Stage 1 (hashing) lives here: the engine below is
            // hash-agnostic and consumes precomputed slots.
            for (j, key) in group.iter().enumerate() {
                ks_buf[j] = self.slots_of(key);
            }
            crate::read::get_group(
                &self.raw,
                &self.stripes,
                &self.table_metrics,
                &ks_buf[..group.len()],
                group,
                results,
            );
        }
    }

    /// Batched [`get_many`](Self::get_many) applying `f` to each found
    /// value (values are `Plain` copies, so `f` observes a validated
    /// copy, exactly like `get`'s return value).
    pub fn get_with_many<R>(&self, keys: &[K], mut f: impl FnMut(&V) -> R) -> Vec<Option<R>> {
        let mut copies = Vec::new();
        self.get_many_into(keys, &mut copies);
        copies.into_iter().map(|o| o.map(|v| f(&v))).collect()
    }

    /// Inserts `key → val`; errors if the key exists or the table is too
    /// full (paper §2.1 semantics).
    pub fn insert(&self, key: K, val: V) -> Result<(), InsertError> {
        self.insert_inner(key, val, false).map(|_| ())
    }

    /// Batched insert: one result per entry, in order, equivalent to
    /// calling [`insert`](Self::insert) per entry (duplicates within a
    /// batch included) — but groups of entries are software-pipelined:
    ///
    /// 1. hash every key and prefetch both candidate metadata lines with
    ///    write intent, so the group's cache misses overlap;
    /// 2. acquire the group's stripe set in one ascending, deduplicated
    ///    [`lock_batch`](LockStripes::lock_batch) pass (keys sharing a
    ///    stripe coalesce under a single acquisition);
    /// 3. probe (vector tag match) and write each key in request order.
    ///
    /// The first key whose candidate buckets are full demotes itself and
    /// the rest of its group to in-order single-key path-search inserts
    /// after the batch lock drops (its displacements may change what the
    /// remaining keys observe, so partial-group results under the batch
    /// lock would not match the loop).
    pub fn insert_many(&self, entries: &[(K, V)]) -> Vec<Result<(), InsertError>> {
        self.write_many_inner(entries, false)
            .into_iter()
            .map(|r| r.map(|_| ()))
            .collect()
    }

    /// Batched [`upsert`](Self::upsert): same pipeline and equivalence
    /// contract as [`insert_many`](Self::insert_many), reporting which of
    /// insert/update happened per entry.
    pub fn upsert_many(&self, entries: &[(K, V)]) -> Vec<Result<UpsertOutcome, InsertError>> {
        self.write_many_inner(entries, true)
    }

    /// The pipelined engine behind `insert_many`/`upsert_many`.
    fn write_many_inner(
        &self,
        entries: &[(K, V)],
        upsert: bool,
    ) -> Vec<Result<UpsertOutcome, InsertError>> {
        let mut out = Vec::with_capacity(entries.len());
        let mut ks_buf = [KeySlots { i1: 0, i2: 0, tag: 1 }; WRITE_GROUP];
        let mut buckets = [0usize; MAX_BATCH_BUCKETS];
        for group in entries.chunks(WRITE_GROUP) {
            self.table_metrics.insert_batch_groups.inc();
            self.table_metrics.insert_batch_keys.add(group.len() as u64);
            // Stage 1: hash + write-intent prefetch, back to back.
            for (j, (key, _)) in group.iter().enumerate() {
                let ks = self.slots_of(key);
                ks_buf[j] = ks;
                buckets[2 * j] = ks.i1;
                buckets[2 * j + 1] = ks.i2;
                if self.prefetch {
                    self.raw.prefetch_meta_write(ks.i1);
                    self.raw.prefetch_meta_write(ks.i2);
                }
            }
            let mut demote_from = group.len();
            {
                // Stage 2: one coalesced ascending acquisition.
                let _g = self.stripes.lock_batch(&buckets[..group.len() * 2]);
                // Stage 3: in request order, so duplicate keys within the
                // group observe one another exactly like a loop of
                // single-key inserts would. The first key whose candidate
                // pair is full demotes itself AND the rest of the group
                // to the in-order single-key path below: its path search
                // displaces entries that later keys' outcomes may depend
                // on, so finishing the group under the batch lock first
                // would not be loop-equivalent.
                for (j, (key, val)) in group.iter().enumerate() {
                    match self.locked_write_one(ks_buf[j], key, *val, upsert) {
                        Some(r) => out.push(r),
                        None => {
                            demote_from = j;
                            break;
                        }
                    }
                }
            }
            if demote_from < group.len() {
                self.table_metrics.insert_batch_fallbacks.add((group.len() - demote_from) as u64);
                for (key, val) in &group[demote_from..] {
                    out.push(self.insert_inner(*key, *val, upsert));
                }
            }
        }
        out
    }

    /// One key's stage-3 step under the group's batch lock: duplicate
    /// check, then direct claim of an empty candidate slot. `None` means
    /// both candidate buckets are full — the caller re-runs the key
    /// through the single-key path-search insert once the batch lock is
    /// released.
    fn locked_write_one(
        &self,
        ks: KeySlots,
        key: &K,
        val: V,
        upsert: bool,
    ) -> Option<Result<UpsertOutcome, InsertError>> {
        if let Some((bi, slot)) = self.locked_find(ks, key) {
            if upsert {
                // SAFETY: the batch lock covers `bi` (the caller holds
                // every stripe of the group's candidate buckets);
                // atomic-chunk store keeps racing optimistic readers
                // race-free (they fail validation).
                unsafe {
                    htm::mem::store_bytes(
                        self.raw.bucket(bi).val_ptr(slot) as usize,
                        &val as *const V as *const u8,
                        core::mem::size_of::<V>(),
                    );
                }
                return Some(Ok(UpsertOutcome::Updated));
            }
            return Some(Err(InsertError::KeyExists));
        }
        for bi in [ks.i1, ks.i2] {
            if let Some(slot) = self.raw.meta(bi).empty_slot() {
                // SAFETY: batch lock held (stripe versions odd, readers
                // retry); slot is empty.
                unsafe { self.raw.write_entry_racy(bi, slot, ks.tag, *key, val) };
                self.count.add(ks.i1, 1);
                return Some(Ok(UpsertOutcome::Inserted));
            }
            if ks.i2 == ks.i1 {
                break;
            }
        }
        None
    }

    /// Inserts or replaces, reporting which happened. Fails only when the
    /// table is too full.
    pub fn upsert(&self, key: K, val: V) -> Result<UpsertOutcome, InsertError> {
        self.insert_inner(key, val, true)
    }

    /// Replaces the value of an existing key; `false` if absent.
    pub fn update(&self, key: &K, val: V) -> bool {
        let ks = self.slots_of(key);
        let _g = self.stripes.lock_pair(ks.i1, ks.i2);
        if let Some((bi, slot)) = self.locked_find(ks, key) {
            // SAFETY: the pair lock covers `bi`; atomic-chunk store keeps
            // racing optimistic readers race-free (they fail validation).
            unsafe {
                htm::mem::store_bytes(
                    self.raw.bucket(bi).val_ptr(slot) as usize,
                    &val as *const V as *const u8,
                    core::mem::size_of::<V>(),
                );
            }
            true
        } else {
            false
        }
    }

    /// Removes `key` only if its current value satisfies `pred`,
    /// returning the removed value (compare-and-delete; e.g. evicting an
    /// entry only while it still references a side-structure slot).
    pub fn remove_if(&self, key: &K, pred: impl FnOnce(&V) -> bool) -> Option<V> {
        let ks = self.slots_of(key);
        let _g = self.stripes.lock_pair(ks.i1, ks.i2);
        let (bi, slot) = self.locked_find(ks, key)?;
        // SAFETY: pair lock held → plain read of locked data.
        let v = unsafe { self.raw.bucket(bi).val_ptr(slot).read() };
        if !pred(&v) {
            return None;
        }
        // SAFETY: pair lock held; slot occupied (just found).
        let (_, v) = unsafe { self.raw.take_entry(bi, slot) };
        self.count.add(bi, -1);
        Some(v)
    }

    /// Removes `key`, returning its value.
    pub fn remove(&self, key: &K) -> Option<V> {
        let ks = self.slots_of(key);
        let _g = self.stripes.lock_pair(ks.i1, ks.i2);
        if let Some((bi, slot)) = self.locked_find(ks, key) {
            // SAFETY: pair lock held; slot is occupied (just found).
            let (_, v) = unsafe { self.raw.take_entry(bi, slot) };
            self.count.add(bi, -1);
            Some(v)
        } else {
            None
        }
    }

    /// Number of items (exact at quiescence; convergent under writes).
    pub fn len(&self) -> usize {
        self.count.sum()
    }

    /// Whether the table holds no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total slot capacity.
    pub fn capacity(&self) -> usize {
        self.raw.total_slots()
    }

    /// Fraction of slots occupied.
    pub fn load_factor(&self) -> f64 {
        self.len() as f64 / self.capacity() as f64
    }

    /// How the insert slow path plans kick-out eviction.
    pub fn eviction(&self) -> EvictionPolicy {
        self.eviction
    }

    /// Slow-path statistics: searches, path executions, stale paths
    /// (Appendix B validation), full-table-lock escalations.
    pub fn path_stats(&self) -> PathStatsSnapshot {
        self.path_stats.snapshot()
    }

    /// The hot-path metrics block (read retries, multiget fallbacks,
    /// BFS histograms; see DESIGN.md §5f).
    pub fn metrics(&self) -> &TableMetrics {
        &self.table_metrics
    }

    /// Appends this table's full metric sample set — lock stripe
    /// counters, read/multiget fallbacks, BFS histograms, path stats —
    /// under the stable `cuckoo_*` exposition names.
    pub fn metric_samples(&self, out: &mut Vec<metrics::Sample>) {
        self.table_metrics.collect(&self.stripes.lock_stats(), &self.path_stats.snapshot(), out);
    }

    /// Resets every metric family this table exports (table counters,
    /// path stats, per-stripe lock counters) in one call, so an
    /// operator `stats reset` starts all series from a common zero.
    /// Not atomic with respect to concurrent operations; see the
    /// relaxed-consistency contract in [`crate::stats`].
    pub fn reset_metrics(&self) {
        self.table_metrics.reset();
        self.path_stats.reset();
        self.stripes.reset_lock_stats();
    }

    /// Total bytes used by buckets, stripes, and counters (the paper's
    /// memory-efficiency comparisons, §6.2).
    pub fn memory_bytes(&self) -> usize {
        self.raw.memory_bytes() + self.stripes.memory_bytes() + self.count.memory_bytes()
    }

    /// Copies out every entry under the full-table lock.
    pub fn snapshot(&self) -> Vec<(K, V)> {
        let _g = self.stripes.lock_all();
        self.raw
            .occupied_coords()
            .map(|(bi, s)| {
                let b = self.raw.bucket(bi);
                // SAFETY: all stripes held; slots stable and occupied.
                unsafe { (b.key_ptr(s).read(), b.val_ptr(s).read()) }
            })
            .collect()
    }

    /// Visits every entry one stripe at a time, so concurrent readers
    /// stay lock-free and writers only contend with the single stripe
    /// currently under visit — unlike [`snapshot`](Self::snapshot),
    /// which holds the full-table lock for the whole copy. The result is
    /// *fuzzy*: each entry reflects its value at the moment its stripe
    /// was visited, not one global instant.
    ///
    /// Returns `false` if a concurrent cuckoo-path displacement may have
    /// moved an entry from an unvisited bucket into an already-visited
    /// one (the entry would be silently absent from the scan). The
    /// caller must then discard whatever `f` accumulated and retry, or
    /// fall back to [`snapshot`](Self::snapshot).
    pub fn scan(&self, mut f: impl FnMut(&K, &V)) -> bool {
        // ORDERING: exec.scan-counter
        let displacements_before = self.displacements.load(Ordering::SeqCst);
        let n_buckets = self.raw.n_buckets();
        for s in 0..self.stripes.len().min(n_buckets) {
            let _g = self.stripes.lock_pair(s, s);
            let mut bi = s;
            while bi < n_buckets {
                let b = self.raw.bucket(bi);
                let mut occ = self.raw.meta(bi).occupied_mask();
                while occ != 0 {
                    let slot = occ.trailing_zeros() as usize;
                    occ &= occ - 1;
                    // SAFETY: the stripe covering `bi` is held, so no
                    // writer mutates these slots; plain reads of locked
                    // data are race-free.
                    let (k, v) = unsafe { (b.key_ptr(slot).read(), b.val_ptr(slot).read()) };
                    f(&k, &v);
                }
                bi += self.stripes.len();
            }
        }
        // ORDERING: exec.scan-counter
        self.displacements.load(Ordering::SeqCst) == displacements_before
    }

    /// Removes every entry (exclusive access).
    pub fn clear(&mut self) {
        let coords: Vec<_> = self.raw.occupied_coords().collect();
        for (bi, s) in coords {
            // SAFETY: exclusive access; slot occupied; entries are
            // `Plain` (no drop glue), so taking the entry out of the
            // slot is all the cleanup there is.
            let _ = unsafe { self.raw.take_entry(bi, s) };
        }
        self.count.reset();
    }

    /// Atomically applies `f` to `key`'s value under the pair lock,
    /// storing the result; returns the new value, or `None` when absent.
    ///
    /// This is the read-modify-write primitive (e.g. counters) that
    /// neither lock-free `get` nor blind `update` can express safely.
    ///
    /// # Examples
    ///
    /// ```
    /// use cuckoo::OptimisticCuckooMap;
    ///
    /// let m: OptimisticCuckooMap<u64, u64> = OptimisticCuckooMap::with_capacity(64);
    /// m.insert(1, 10)?;
    /// assert_eq!(m.read_modify_write(&1, |v| v + 1), Some(11));
    /// assert_eq!(m.read_modify_write(&2, |v| v), None);
    /// # Ok::<(), cuckoo::InsertError>(())
    /// ```
    pub fn read_modify_write(&self, key: &K, f: impl FnOnce(V) -> V) -> Option<V> {
        let ks = self.slots_of(key);
        let _g = self.stripes.lock_pair(ks.i1, ks.i2);
        let (bi, slot) = self.locked_find(ks, key)?;
        let b = self.raw.bucket(bi);
        // SAFETY: pair lock held → no concurrent writer; a plain read of
        // locked data is race-free, and publication via the atomic store
        // keeps racing optimistic readers (who fail validation) safe.
        let new = f(unsafe { b.val_ptr(slot).read() });
        // SAFETY: as above.
        unsafe {
            htm::mem::store_bytes(
                b.val_ptr(slot) as usize,
                &new as *const V as *const u8,
                core::mem::size_of::<V>(),
            );
        }
        Some(new)
    }

    /// Doubles the table's capacity, rehashing every entry (the
    /// "expansion process" the paper schedules when a table becomes too
    /// full, §4.1). Requires exclusive access.
    ///
    /// A table at ≤50% average load *usually* rehashes into the doubled
    /// table without exhausting the BFS budget, but an adversarial key
    /// distribution can still defeat one attempt (all keys sharing few
    /// candidate buckets under the new, larger mask). Rather than
    /// panicking on that tail case, the rebuild keeps doubling until
    /// every entry places.
    pub fn expand(&mut self) {
        // Drain every entry first so a failed attempt can be retried at a
        // larger size without losing items.
        let coords: Vec<(usize, usize)> = self.raw.occupied_coords().collect();
        let mut entries: Vec<(K, V)> = Vec::with_capacity(coords.len());
        for (bi, s) in coords {
            // SAFETY: exclusive access; slot occupied.
            entries.push(unsafe { self.raw.take_entry(bi, s) });
        }
        let mut new_capacity = self.raw.total_slots() * 2;
        loop {
            if let Some(new_raw) = self.try_rebuild_into(new_capacity, &mut entries) {
                self.raw = new_raw;
                return;
            }
            new_capacity *= 2;
        }
    }

    /// Rehashes `entries` into a fresh private table of `capacity` slots.
    /// On BFS-budget exhaustion, drains everything placed so far back
    /// into `entries` and returns `None` so the caller can retry larger.
    fn try_rebuild_into(
        &self,
        capacity: usize,
        entries: &mut Vec<(K, V)>,
    ) -> Option<RawTable<K, V, B>> {
        let new_raw: RawTable<K, V, B> = RawTable::with_capacity(capacity);
        let ok = search::with_scratch(|scratch| {
            while let Some((k, v)) = entries.pop() {
                let ks = key_slots(&self.hash_builder, &k, new_raw.mask());
                let placed = [ks.i1, ks.i2]
                    .iter()
                    .find_map(|&nb| new_raw.meta(nb).empty_slot().map(|slot| (nb, slot)));
                if let Some((nb, slot)) = placed {
                    // SAFETY: the new table is private during the rebuild.
                    unsafe { new_raw.write_entry(nb, slot, ks.tag, k, v) };
                    continue;
                }
                // Both candidates full: displace via BFS.
                if bfs::search(&new_raw, ks.i1, ks.i2, self.max_search_slots, false, scratch)
                    .is_err()
                {
                    entries.push((k, v));
                    return false;
                }
                let path = scratch.path.clone();
                for i in (0..path.len() - 1).rev() {
                    let (src, dst) = (path[i], path[i + 1]);
                    // SAFETY: private table; single-threaded path valid.
                    unsafe {
                        let (mk, mv) = new_raw.take_entry(src.bucket, src.slot as usize);
                        new_raw.write_entry(dst.bucket, dst.slot as usize, src.tag, mk, mv);
                    }
                }
                let head = path[0];
                // SAFETY: private table; head slot vacated.
                unsafe {
                    new_raw.write_entry(head.bucket, head.slot as usize, ks.tag, k, v)
                };
            }
            true
        });
        if ok {
            Some(new_raw)
        } else {
            // Hand the partial table's entries back for the retry.
            let coords: Vec<(usize, usize)> = new_raw.occupied_coords().collect();
            for (bi, s) in coords {
                // SAFETY: private table; slots occupied.
                entries.push(unsafe { new_raw.take_entry(bi, s) });
            }
            None
        }
    }

    fn insert_inner(&self, key: K, val: V, upsert: bool) -> Result<UpsertOutcome, InsertError> {
        let ks = self.slots_of(&key);
        search::with_scratch(|scratch| {
            let mut stale_retries = 0usize;
            loop {
                match self.fast_path(ks, &key, val, upsert) {
                    FastPath::Inserted => {
                        self.count.add(ks.i1, 1);
                        return Ok(UpsertOutcome::Inserted);
                    }
                    FastPath::Updated => return Ok(UpsertOutcome::Updated),
                    FastPath::Exists => return Err(InsertError::KeyExists),
                    FastPath::BucketsFull => {}
                }
                self.path_stats.record_search();
                let searched = search::plan(
                    self.eviction,
                    &self.raw,
                    ks.i1,
                    ks.i2,
                    self.max_search_slots,
                    self.prefetch,
                    scratch,
                );
                // One histogram sample per search (success or failure):
                // the search itself examined hundreds of slots, so the
                // relative cost of recording is negligible (P1 budget).
                self.table_metrics.bfs_examined_slots.record(scratch.examined as u64);
                if self.eviction != EvictionPolicy::Bfs {
                    self.table_metrics.record_eviction(scratch, searched.is_err());
                }
                if searched.is_err() {
                    return self.full_table_insert(ks, key, val, upsert);
                }
                self.table_metrics.bfs_path_len.record(scratch.path.len() as u64);
                let executed = self.execute_path_fg(&scratch.path);
                self.path_stats.record_execution(!executed);
                if !executed {
                    stale_retries += 1;
                    if stale_retries > self.path_retries {
                        return self.full_table_insert(ks, key, val, upsert);
                    }
                }
                // Path executed (or went stale): re-enter the fast path,
                // which re-checks duplicates and claims the freed slot.
            }
        })
    }

    /// Duplicate-check + direct insertion under the candidate pair lock.
    fn fast_path(&self, ks: KeySlots, key: &K, val: V, upsert: bool) -> FastPath {
        let _g = self.stripes.lock_pair(ks.i1, ks.i2);
        if let Some((bi, slot)) = self.locked_find(ks, key) {
            if upsert {
                // SAFETY: pair lock covers `bi`; atomic store for readers.
                unsafe {
                    htm::mem::store_bytes(
                        self.raw.bucket(bi).val_ptr(slot) as usize,
                        &val as *const V as *const u8,
                        core::mem::size_of::<V>(),
                    );
                }
                return FastPath::Updated;
            }
            return FastPath::Exists;
        }
        for bi in [ks.i1, ks.i2] {
            if let Some(slot) = self.raw.meta(bi).empty_slot() {
                // SAFETY: pair lock held (version odd, readers retry);
                // slot is empty.
                unsafe { self.raw.write_entry_racy(bi, slot, ks.tag, *key, val) };
                return FastPath::Inserted;
            }
            if ks.i2 == ks.i1 {
                break;
            }
        }
        FastPath::BucketsFull
    }

    /// Finds `key` in its candidate buckets; requires the pair lock held.
    fn locked_find(&self, ks: KeySlots, key: &K) -> Option<(usize, usize)> {
        for bi in [ks.i1, ks.i2] {
            let b = self.raw.bucket(bi);
            let m = self.raw.meta(bi);
            let mut cand = m.match_tag_mask(ks.tag) & m.occupied_mask();
            while cand != 0 {
                let s = cand.trailing_zeros() as usize;
                cand &= cand - 1;
                // SAFETY: pair lock held → no concurrent writer to this
                // bucket; plain read is race-free.
                if unsafe { b.key_ptr(s).read() } == *key {
                    return Some((bi, s));
                }
            }
            if ks.i2 == ks.i1 {
                break;
            }
        }
        None
    }

    /// Executes a cuckoo path one locked bucket-pair at a time (§4.4),
    /// re-validating each displacement. `false` means the path went stale.
    ///
    /// Delegates to the shared hole-backwards executor
    /// ([`exec::execute_hole_backwards`]): destination written before the
    /// source is cleared, so optimistic readers probing both candidate
    /// buckets never miss an in-flight entry. `tests/model.rs` proves
    /// that claim mechanically against concurrent readers.
    fn execute_path_fg(&self, path: &[PathEntry]) -> bool {
        exec::execute_hole_backwards(
            &self.raw,
            Some(&self.stripes),
            path,
            &self.displacements,
            || true,
            RawTable::move_entry_racy,
        )
    }

    /// The pessimistic full-table path: every stripe held, deterministic
    /// completion (§4.4's livelock escape hatch).
    fn full_table_insert(
        &self,
        ks: KeySlots,
        key: K,
        val: V,
        upsert: bool,
    ) -> Result<UpsertOutcome, InsertError> {
        self.path_stats.record_full_table_fallback();
        let _g = self.stripes.lock_all();
        if let Some((bi, slot)) = self.locked_find(ks, &key) {
            if upsert {
                // SAFETY: all stripes held.
                unsafe {
                    htm::mem::store_bytes(
                        self.raw.bucket(bi).val_ptr(slot) as usize,
                        &val as *const V as *const u8,
                        core::mem::size_of::<V>(),
                    );
                }
                return Ok(UpsertOutcome::Updated);
            }
            return Err(InsertError::KeyExists);
        }
        let mut target = None;
        for bi in [ks.i1, ks.i2] {
            if let Some(slot) = self.raw.meta(bi).empty_slot() {
                target = Some((bi, slot));
                break;
            }
            if ks.i2 == ks.i1 {
                break;
            }
        }
        if let Some((bi, slot)) = target {
            // SAFETY: all stripes held; slot empty.
            unsafe { self.raw.write_entry_racy(bi, slot, ks.tag, key, val) };
            self.count.add(bi, 1);
            return Ok(UpsertOutcome::Inserted);
        }
        search::with_scratch(|scratch| {
            let searched = search::plan(
                self.eviction,
                &self.raw,
                ks.i1,
                ks.i2,
                self.max_search_slots,
                self.prefetch,
                scratch,
            );
            if self.eviction != EvictionPolicy::Bfs {
                self.table_metrics.record_eviction(scratch, searched.is_err());
            }
            if searched.is_err() {
                return Err(InsertError::TableFull);
            }
            // All stripes held: the freshly discovered path cannot go
            // stale.
            let ok = self.execute_path_fg_locked(&scratch.path);
            debug_assert!(ok, "path stale under the full-table lock");
            let head = scratch.path[0];
            debug_assert!(!self.raw.meta(head.bucket).is_occupied(head.slot as usize));
            // SAFETY: all stripes held; head slot just freed.
            unsafe {
                self.raw
                    .write_entry_racy(head.bucket, head.slot as usize, ks.tag, key, val)
            };
            self.count.add(head.bucket, 1);
            Ok(UpsertOutcome::Inserted)
        })
    }

    /// Path execution while the full-table lock is already held: the
    /// shared executor with per-step locking disabled (`stripes: None`).
    /// Publication stays atomic for any reader that stamped its version
    /// before we locked.
    fn execute_path_fg_locked(&self, path: &[PathEntry]) -> bool {
        exec::execute_hole_backwards(
            &self.raw,
            None,
            path,
            &self.displacements,
            || true,
            RawTable::move_entry_racy,
        )
    }
}

/// Model-checker hooks: deterministic access to key geometry and path
/// execution so `tests/model.rs` can stage multi-step displacements and
/// probe readers against them. Compiled only for tests and the
/// `cuckoo_model` suite.
#[cfg(any(test, cuckoo_model))]
impl<K, V, const B: usize, S> OptimisticCuckooMap<K, V, B, S>
where
    K: Plain + Eq + Hash,
    V: Plain,
    S: BuildHasher,
{
    /// `(i1, i2, tag)` for `key` — lets tests construct colliding keys.
    pub fn key_coords(&self, key: &K) -> (usize, usize, u8) {
        let ks = self.slots_of(key);
        (ks.i1, ks.i2, ks.tag)
    }

    /// Executes `path` through the production executor (per-step pair
    /// locks, hole-backwards). Returns `false` if the path went stale.
    pub fn execute_path(&self, path: &[PathEntry]) -> bool {
        self.execute_path_fg(path)
    }

    /// **Deliberately broken** executor for mutation testing: each step
    /// clears the source in one critical section and writes the
    /// destination in a *second* one, opening a window where the entry is
    /// in neither candidate bucket. The model suite proves readers
    /// observe the resulting false miss — i.e. the checker would catch a
    /// real regression of this shape.
    pub fn execute_path_split_displacement(&self, path: &[PathEntry]) -> bool {
        if path.len() < 2 {
            return true;
        }
        for i in (0..path.len() - 1).rev() {
            let src = path[i];
            let dst = path[i + 1];
            let (ss, ds) = (src.slot as usize, dst.slot as usize);
            let (k, v);
            {
                let _g = self.stripes.lock_pair(src.bucket, dst.bucket);
                let sm = self.raw.meta(src.bucket);
                if !sm.is_occupied(ss)
                    || sm.partial(ss) != src.tag
                    || self.raw.meta(dst.bucket).is_occupied(ds)
                {
                    return false;
                }
                let sb = self.raw.bucket(src.bucket);
                // SAFETY: pair lock held; source occupied per the triple.
                unsafe {
                    k = sb.key_ptr(ss).read();
                    v = sb.val_ptr(ss).read();
                }
                sm.clear_occupied(ss);
                // BUG (intentional): the entry now exists in *neither*
                // bucket, and the lock is dropped here.
            }
            {
                let _g = self.stripes.lock_pair(src.bucket, dst.bucket);
                // SAFETY: pair lock held; destination validated empty
                // above and writers are excluded by the pair lock.
                unsafe { self.raw.write_entry_racy(dst.bucket, ds, src.tag, k, v) };
            }
            self.displacements.fetch_add(1, Ordering::SeqCst); // ORDERING: exec.scan-counter
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type Map = OptimisticCuckooMap<u64, u64, 8>;

    #[test]
    fn basic_crud() {
        let m = Map::with_capacity(10_000);
        assert!(m.is_empty());
        m.insert(1, 10).unwrap();
        m.insert(2, 20).unwrap();
        assert_eq!(m.insert(1, 99), Err(InsertError::KeyExists));
        assert_eq!(m.get(&1), Some(10));
        assert_eq!(m.get(&2), Some(20));
        assert_eq!(m.get(&3), None);
        assert!(m.contains_key(&1));
        assert!(!m.contains_key(&3));
        assert_eq!(m.len(), 2);
        assert!(m.update(&1, 11));
        assert!(!m.update(&3, 33));
        assert_eq!(m.get(&1), Some(11));
        assert_eq!(m.remove(&1), Some(11));
        assert_eq!(m.remove(&1), None);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn upsert_semantics() {
        let m = Map::with_capacity(1000);
        assert_eq!(m.upsert(5, 1).unwrap(), UpsertOutcome::Inserted);
        assert_eq!(m.upsert(5, 2).unwrap(), UpsertOutcome::Updated);
        assert_eq!(m.get(&5), Some(2));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn fill_to_95_percent() {
        let m: OptimisticCuckooMap<u64, u64, 4> = Builder::new(1 << 12).build();
        let target = m.capacity() * 95 / 100;
        for k in 0..target as u64 {
            m.insert(k, k).unwrap_or_else(|e| panic!("key {k}: {e}"));
        }
        assert_eq!(m.len(), target);
        assert!(m.load_factor() >= 0.94);
        for k in 0..target as u64 {
            assert_eq!(m.get(&k), Some(k), "key {k} lost");
        }
    }

    #[test]
    fn insert_many_matches_loop_semantics() {
        let m = Map::with_capacity(1024);
        m.insert(3, 30).unwrap();
        let results = m.insert_many(&[(1, 10), (2, 20), (3, 99), (1, 11)]);
        assert!(results[0].is_ok());
        assert!(results[1].is_ok());
        assert_eq!(results[2], Err(InsertError::KeyExists));
        assert_eq!(results[3], Err(InsertError::KeyExists), "in-batch duplicate");
        assert_eq!(m.get(&1), Some(10));
        assert_eq!(m.get(&3), Some(30));
        let ups = m.upsert_many(&[(3, 300), (4, 40), (4, 44)]);
        assert_eq!(ups[0], Ok(UpsertOutcome::Updated));
        assert_eq!(ups[1], Ok(UpsertOutcome::Inserted));
        assert_eq!(ups[2], Ok(UpsertOutcome::Updated), "in-batch duplicate updates");
        assert_eq!(m.get(&3), Some(300));
        assert_eq!(m.get(&4), Some(44));
        assert_eq!(m.len(), 4);
        assert!(m.metrics().insert_batch_groups.get() >= 2);
        assert_eq!(m.metrics().insert_batch_keys.get(), 7);
    }

    #[test]
    fn insert_many_falls_back_to_path_search_when_buckets_fill() {
        // 90% fill of a 4-way table cannot complete on candidate-pair
        // fast paths alone: some keys must take the single-key
        // path-search fallback, and none may be lost or duplicated.
        let m: OptimisticCuckooMap<u64, u64, 4> = Builder::new(256).build();
        let n = (m.capacity() * 9 / 10) as u64;
        let entries: Vec<(u64, u64)> = (0..n).map(|k| (k, k * 2 + 1)).collect();
        for r in m.insert_many(&entries) {
            r.unwrap();
        }
        assert_eq!(m.len(), n as usize);
        for k in 0..n {
            assert_eq!(m.get(&k), Some(k * 2 + 1), "key {k}");
        }
        let fb = m.metrics().insert_batch_fallbacks.get();
        assert!(fb > 0, "dense fill must overflow some candidate pairs");
        assert_eq!(m.metrics().insert_batch_keys.get(), n);
    }

    #[test]
    fn table_full_errors_cleanly() {
        let m: OptimisticCuckooMap<u64, u64, 4> = Builder::new(256).search_budget(200).build();
        let mut inserted = 0u64;
        let mut k = 0u64;
        loop {
            match m.insert(k, k) {
                Ok(()) => inserted += 1,
                Err(InsertError::TableFull) => break,
                Err(e) => panic!("{e}"),
            }
            k += 1;
        }
        assert!(
            inserted as f64 / m.capacity() as f64 > 0.9,
            "cuckoo should pack >90%: {inserted}/{}",
            m.capacity()
        );
        // Everything inserted before the failure must still be present.
        for i in 0..inserted {
            assert_eq!(m.get(&i), Some(i));
        }
    }

    #[test]
    fn snapshot_matches_contents() {
        let m = Map::with_capacity(1000);
        for k in 0..100u64 {
            m.insert(k, k + 1000).unwrap();
        }
        let mut snap = m.snapshot();
        snap.sort_unstable();
        assert_eq!(snap.len(), 100);
        for (i, (k, v)) in snap.iter().enumerate() {
            assert_eq!(*k, i as u64);
            assert_eq!(*v, i as u64 + 1000);
        }
    }

    #[test]
    fn clear_empties_table() {
        let mut m = Map::with_capacity(1000);
        for k in 0..50u64 {
            m.insert(k, k).unwrap();
        }
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.get(&1), None);
        m.insert(1, 2).unwrap();
        assert_eq!(m.get(&1), Some(2));
    }

    #[test]
    fn concurrent_inserts_all_land() {
        let m = std::sync::Arc::new(Map::with_capacity(100_000));
        const THREADS: u64 = 8;
        const PER: u64 = 5_000;
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let m = std::sync::Arc::clone(&m);
                s.spawn(move || {
                    for i in 0..PER {
                        let key = t * 1_000_000 + i;
                        m.insert(key, key * 2).unwrap();
                    }
                });
            }
        });
        assert_eq!(m.len(), (THREADS * PER) as usize);
        for t in 0..THREADS {
            for i in 0..PER {
                let key = t * 1_000_000 + i;
                assert_eq!(m.get(&key), Some(key * 2));
            }
        }
    }

    /// Canonical value for `key` in the oracle stress tests. Values a
    /// concurrent reader observes can be validated against this pure
    /// function alone — consulting the shared oracle mid-run is racy
    /// (see `oracle_consultation_races_map_insertion`).
    fn val_of(key: u64) -> u64 {
        key.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1
    }

    #[test]
    fn concurrent_mixed_workload_against_oracle() {
        use std::collections::HashMap;
        use std::sync::Mutex;
        let m = Map::with_capacity(50_000);
        let oracle = Mutex::new(HashMap::new());
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let m = &m;
                let oracle = &oracle;
                s.spawn(move || {
                    let mut x = t + 1;
                    for i in 0..4_000u64 {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                        let key = t * 10_000_000 + i;
                        match x % 3 {
                            0 | 1 => {
                                if m.insert(key, val_of(key)).is_ok() {
                                    oracle.lock().unwrap().insert(key, val_of(key));
                                }
                            }
                            _ => {
                                // Probe our own recent prefix and a key a
                                // *peer* thread may be inserting at this
                                // very moment. Whether either is present
                                // depends on the interleaving, but any
                                // observed value must be the key's
                                // canonical one — anything else is a torn
                                // or phantom read. (The oracle is only
                                // consulted after the join below: a
                                // mid-run lookup races the peer's
                                // map-then-oracle publication order.)
                                let peer = (t + 1) % 4;
                                for probe in [key.saturating_sub(2), peer * 10_000_000 + i] {
                                    if let Some(v) = m.get(&probe) {
                                        assert_eq!(
                                            v,
                                            val_of(probe),
                                            "torn/phantom value for key {probe}"
                                        );
                                    }
                                }
                            }
                        }
                    }
                });
            }
        });
        let oracle = oracle.into_inner().unwrap();
        assert_eq!(m.len(), oracle.len());
        for (k, v) in &oracle {
            assert_eq!(m.get(k), Some(*v), "key {k}");
        }
    }

    #[test]
    fn metrics_monotone_and_consistent_under_mixed_workload() {
        use std::collections::HashMap;
        use std::sync::atomic::{AtomicBool, Ordering};
        let m = Map::with_capacity(1 << 14);
        let done = AtomicBool::new(false);
        std::thread::scope(|s| {
            let mut writers = Vec::new();
            for t in 0..3u64 {
                let m = &m;
                writers.push(s.spawn(move || {
                    for i in 0..60_000u64 {
                        let key = t * 1_000_000 + i % 4_000;
                        if i % 3 == 0 {
                            let _ = m.insert(key, key);
                        } else {
                            std::hint::black_box(m.get(&key));
                        }
                    }
                }));
            }
            // Observer: every counter/histogram-count series must be
            // non-decreasing across successive snapshots (per-cell
            // relaxed loads respect coherence order), and each snapshot
            // must satisfy contended <= acquisitions (clamped in
            // lock_stats).
            {
                let m = &m;
                let done = &done;
                s.spawn(move || {
                    let mut prev: HashMap<&'static str, u64> = HashMap::new();
                    while !done.load(Ordering::Acquire) {
                        let mut samples = Vec::new();
                        m.metric_samples(&mut samples);
                        let mut cur: HashMap<&'static str, u64> = HashMap::new();
                        for sample in &samples {
                            match sample.value {
                                metrics::Value::Counter(v) => {
                                    cur.insert(sample.name, v);
                                }
                                metrics::Value::Histogram(h) => {
                                    cur.insert(sample.name, h.count());
                                }
                                metrics::Value::Gauge(_) => {}
                            }
                        }
                        assert!(
                            cur["cuckoo_lock_contended_total"]
                                <= cur["cuckoo_lock_acquisitions_total"],
                            "contended exceeds acquisitions: {cur:?}"
                        );
                        for (name, v) in &cur {
                            if let Some(p) = prev.get(name) {
                                assert!(v >= p, "{name} went backwards: {p} -> {v}");
                            }
                        }
                        prev = cur;
                    }
                });
            }
            for w in writers {
                w.join().unwrap();
            }
            done.store(true, Ordering::Release);
        });
        // Quiescent: the final snapshot reflects real traffic.
        let mut samples = Vec::new();
        m.metric_samples(&mut samples);
        let acq = samples
            .iter()
            .find(|s| s.name == "cuckoo_lock_acquisitions_total")
            .and_then(|s| match s.value {
                metrics::Value::Counter(v) => Some(v),
                _ => None,
            })
            .unwrap();
        assert!(acq > 0, "writers must have acquired stripe locks");
    }

    #[test]
    fn oracle_consultation_races_map_insertion() {
        // Deterministic replay of the interleaving behind the historical
        // concurrent_mixed_workload_against_oracle flake (~1/40 runs):
        // writers publish to the map *before* the oracle, so a reader
        // probing a concurrently-written key can observe a map value
        // that has no oracle record yet. The barriers pin exactly that
        // window and show the old "observed value must be the oracle's"
        // assertion condemns a correct execution; the sound mid-run
        // check validates against the key's canonical value instead.
        use std::collections::HashMap;
        use std::sync::{Barrier, Mutex};
        let m = Map::with_capacity(1024);
        let oracle = Mutex::new(HashMap::new());
        let in_map = Barrier::new(2);
        let checked = Barrier::new(2);
        const KEY: u64 = 42;
        std::thread::scope(|s| {
            s.spawn(|| {
                // Writer, exactly as the stress test's writers: map
                // first...
                m.insert(KEY, val_of(KEY)).unwrap();
                in_map.wait();
                // ...oracle only after the reader has probed.
                checked.wait();
                oracle.lock().unwrap().insert(KEY, val_of(KEY));
            });
            in_map.wait();
            let got = m.get(&KEY);
            // The map already serves the key, while the oracle provably
            // holds no record — the old assertion would call this value
            // a phantom.
            assert!(oracle.lock().unwrap().get(&KEY).is_none());
            assert_eq!(got, Some(val_of(KEY)), "canonical-value check is interleaving-proof");
            checked.wait();
        });
        assert_eq!(oracle.into_inner().unwrap().get(&KEY), Some(&val_of(KEY)));
    }

    #[test]
    fn concurrent_displacement_never_loses_keys() {
        // High occupancy + concurrent writers forces real cuckoo paths
        // with per-pair locking; every inserted key must stay findable by
        // concurrent readers throughout.
        let m: OptimisticCuckooMap<u64, u64, 4> =
            Builder::new(1 << 12).stripes(64).build();
        let n = (m.capacity() * 90 / 100) as u64;
        let pre = n / 2;
        for k in 0..pre {
            m.insert(k, k).unwrap();
        }
        let stop = std::sync::atomic::AtomicBool::new(false);
        let stop = &stop;
        let m = &m;
        std::thread::scope(|s| {
            // Readers continuously verify the pre-inserted half.
            for _ in 0..2 {
                s.spawn(move || {
                    let mut i = 0u64;
                    while !stop.load(std::sync::atomic::Ordering::Acquire) {
                        let k = i % pre;
                        assert_eq!(m.get(&k), Some(k), "key {k} went missing");
                        i += 1;
                    }
                });
            }
            // Writers fill the second half concurrently.
            s.spawn(move || {
                for k in pre..n {
                    m.insert(k, k).unwrap();
                }
                stop.store(true, std::sync::atomic::Ordering::Release);
            });
        });
        for k in 0..n {
            assert_eq!(m.get(&k), Some(k));
        }
    }

    #[test]
    fn read_modify_write_counters() {
        let m = Map::with_capacity(1000);
        m.insert(1, 10).unwrap();
        assert_eq!(m.read_modify_write(&1, |v| v + 5), Some(15));
        assert_eq!(m.get(&1), Some(15));
        assert_eq!(m.read_modify_write(&2, |v| v), None);
        // Concurrent increments are exact.
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = &m;
                s.spawn(move || {
                    for _ in 0..1000 {
                        m.read_modify_write(&1, |v| v + 1).unwrap();
                    }
                });
            }
        });
        assert_eq!(m.get(&1), Some(15 + 4000));
    }

    #[test]
    fn expand_doubles_capacity_and_keeps_entries() {
        let mut m: OptimisticCuckooMap<u64, u64, 4> = Builder::new(1 << 10).build();
        let n = (m.capacity() * 90 / 100) as u64;
        for k in 0..n {
            m.insert(k, k * 3).unwrap();
        }
        let before = m.capacity();
        m.expand();
        assert_eq!(m.capacity(), before * 2);
        assert_eq!(m.len(), n as usize);
        for k in 0..n {
            assert_eq!(m.get(&k), Some(k * 3), "key {k} lost in expansion");
        }
        // Room for more now.
        for k in n..(before as u64) {
            m.insert(k, k).unwrap();
        }
    }

    #[test]
    fn expand_with_starved_search_budget_does_not_panic() {
        // A search budget of one bucket makes BFS fail whenever a key's
        // first candidate bucket is full, so rehashing into the doubled
        // table routinely exhausts the budget. The old code `expect`ed
        // this could never happen at half load and panicked; now the
        // rebuild keeps doubling until every entry places.
        let mut m: OptimisticCuckooMap<u64, u64, 4> =
            Builder::new(1 << 8).search_budget(4).build();
        let mut inserted = Vec::new();
        for k in 0..(m.capacity() as u64) {
            if m.insert(k, !k).is_err() {
                break;
            }
            inserted.push(k);
        }
        assert!(inserted.len() > m.capacity() / 8, "table filled too little");
        let before = m.capacity();
        m.expand();
        assert!(m.capacity() >= before * 2);
        assert_eq!(m.len(), inserted.len());
        for &k in &inserted {
            assert_eq!(m.get(&k), Some(!k), "key {k} lost in expansion");
        }
    }

    #[test]
    fn stale_path_is_detected_and_recorded() {
        // Deterministic Appendix-B event: discover a path, mutate one of
        // its source slots, then execute — validation must reject it and
        // the stats must record the invalidation.
        let m: OptimisticCuckooMap<u64, u64, 4> = Builder::new(1 << 11).build();
        // Find a key whose candidate buckets are both full, so a path
        // search is required.
        let mut probe = 0u64;
        let (ks, path) = loop {
            let ks = m.slots_of(&probe);
            let full = |bi: usize| {
                let meta = m.raw.meta(bi);
                while let Some(s) = meta.empty_slot() {
                    // SAFETY: single-threaded test.
                    unsafe { m.raw.write_entry(bi, s, 0x55, probe + 1_000_000, 0) };
                    m.count.add(bi, 1);
                }
            };
            full(ks.i1);
            full(ks.i2);
            let mut scratch = crate::search::SearchScratch::default();
            if bfs::search(&m.raw, ks.i1, ks.i2, 2000, false, &mut scratch).is_ok()
                && scratch.path.len() >= 2
            {
                break (ks, scratch.path.clone());
            }
            probe += 1;
        };
        let _ = ks;
        // Invalidate the path: vacate its first source slot.
        let head = path[0];
        // SAFETY: single-threaded test; slot occupied (bucket was full).
        unsafe { m.raw.take_entry(head.bucket, head.slot as usize) };
        m.count.add(head.bucket, -1);
        assert!(
            !m.execute_path_fg(&path),
            "execution must reject the stale path"
        );
        // And the public insert path records such rejections.
        m.path_stats.record_execution(true);
        assert!(m.path_stats().stale >= 1);
    }

    #[test]
    fn memory_accounting_is_plausible() {
        let m = Map::with_capacity(1 << 16);
        let bytes = m.memory_bytes();
        // 2^16 slots of 16-byte entries + ~1.25B/slot metadata + stripe
        // table: a bit over 1 MiB, well under 2 MiB (the pre-refactor
        // inline-metadata layout padded buckets to 192B ≈ 1.5x worse).
        assert!(bytes > 1 << 20, "{bytes}");
        assert!(bytes < 2 << 20, "{bytes}");
    }
}
