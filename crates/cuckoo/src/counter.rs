//! Sharded element counters (paper principle P1).
//!
//! "Avoid unnecessary or unintentional access to common data ... disable
//! instant global statistics counters in favor of lazily aggregated
//! per-thread counters." A single `AtomicUsize` element count would put
//! one hot cache line under every writer; instead writers bump one of 64
//! cache-line-padded shards chosen by bucket index, and `len()` sums them
//! on demand.

// ORDERING-FILE: stats.counter — sharded approximate counter: staleness is the design point.

use std::sync::atomic::{AtomicIsize, Ordering};

const SHARDS: usize = 64;

#[repr(align(64))]
#[derive(Default)]
struct Shard(AtomicIsize);

/// A sharded signed counter; sums are exact at quiescence and
/// monotonically convergent under concurrency.
pub struct ShardedCounter {
    shards: Box<[Shard]>,
}

impl ShardedCounter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        ShardedCounter {
            shards: (0..SHARDS).map(|_| Shard::default()).collect(),
        }
    }

    /// Adds `delta` to the shard associated with `hint` (callers pass a
    /// bucket index so contending writers usually touch different lines).
    #[inline]
    pub fn add(&self, hint: usize, delta: isize) {
        self.shards[hint & (SHARDS - 1)].0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Sums all shards (non-negative by construction of table ops).
    pub fn sum(&self) -> usize {
        let total: isize = self.shards.iter().map(|s| s.0.load(Ordering::Relaxed)).sum();
        debug_assert!(total >= 0, "counter went negative: {total}");
        total.max(0) as usize
    }

    /// Resets every shard to zero (requires external quiescence to be
    /// meaningful).
    pub fn reset(&self) {
        for s in self.shards.iter() {
            s.0.store(0, Ordering::Relaxed);
        }
    }

    /// Bytes occupied (for memory accounting).
    pub fn memory_bytes(&self) -> usize {
        self.shards.len() * core::mem::size_of::<Shard>()
    }
}

impl Default for ShardedCounter {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_across_shards() {
        let c = ShardedCounter::new();
        for i in 0..1000 {
            c.add(i, 1);
        }
        assert_eq!(c.sum(), 1000);
        for i in 0..300 {
            c.add(i * 7, -1);
        }
        assert_eq!(c.sum(), 700);
        c.reset();
        assert_eq!(c.sum(), 0);
    }

    #[test]
    fn concurrent_adds_are_exact() {
        let c = ShardedCounter::new();
        std::thread::scope(|s| {
            for t in 0..4 {
                let c = &c;
                s.spawn(move || {
                    for i in 0..10_000 {
                        c.add(t * 1000 + i, 1);
                    }
                });
            }
        });
        assert_eq!(c.sum(), 40_000);
    }
}
