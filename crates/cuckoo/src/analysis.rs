//! Closed-form analyses from the paper's appendices.
//!
//! - Appendix B (Eq. 1): an upper bound on the probability that a cuckoo
//!   path discovered outside the critical section is invalidated by a
//!   concurrent writer before it executes.
//! - Appendix C (Eq. 2): the maximum cuckoo-path length under BFS (also
//!   exposed as [`crate::search::bfs::bfs_max_path_len`]).
//!
//! The `eqn1_path_invalidation` benchmark compares Eq. 1 against a
//! Monte-Carlo measurement on the real table.

/// Exact overlap probability for one pair of maximum-length paths
/// (Eq. 3): `P = prod_{i=0}^{L-1} (N - L - i) / (N - i)` is the chance of
/// *no* overlap; this returns it.
pub fn p_no_overlap_exact(n_slots: u64, path_len: u64) -> f64 {
    assert!(path_len * 2 <= n_slots, "paths longer than the table");
    let mut p = 1.0f64;
    for i in 0..path_len {
        p *= (n_slots - path_len - i) as f64 / (n_slots - i) as f64;
    }
    p
}

/// Eq. 1 / Eq. 5: upper bound on the probability that a writer's cuckoo
/// path of maximum length `path_len` overlaps at least one of the other
/// `threads - 1` writers' paths, in a table of `n_slots` entries:
/// `P_invalid_max ≈ 1 - ((N - L) / N)^(L (T - 1))`.
pub fn p_invalid_max(n_slots: u64, path_len: u64, threads: u64) -> f64 {
    assert!(n_slots > path_len);
    let base = (n_slots - path_len) as f64 / n_slots as f64;
    1.0 - base.powf((path_len * threads.saturating_sub(1)) as f64)
}

/// Eq. 4: the same bound computed from the exact per-pair probability
/// (`1 - P^(T-1)`), without the `(N-L-i)/(N-i) ≈ (N-L)/N` approximation.
pub fn p_invalid_exact(n_slots: u64, path_len: u64, threads: u64) -> f64 {
    let p = p_no_overlap_exact(n_slots, path_len);
    1.0 - p.powf(threads.saturating_sub(1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::bfs::bfs_max_path_len;

    #[test]
    fn paper_example_memc3_dfs() {
        // §4.3.1: "the maximum length of a cuckoo path in MemC3 is
        // L = 250. Suppose N = 10 million, T = 8, then P_invalid < 4.28%."
        let p = p_invalid_max(10_000_000, 250, 8);
        assert!(p < 0.0429, "got {p}"); // the paper rounds to "< 4.28%"
        assert!(p > 0.04, "should be close to the bound, got {p}");
    }

    #[test]
    fn paper_example_bfs() {
        // §4.3.2: "with L_BFS = 5, and the same settings ... the new
        // worst-case P_invalid < 1.75e-5".
        let l = bfs_max_path_len(4, 2000) as u64;
        assert_eq!(l, 5);
        let p = p_invalid_max(10_000_000, l, 8);
        assert!(p < 1.75e-5, "got {p}");
        assert!(p > 1.0e-6, "should be near the bound, got {p}");
    }

    #[test]
    fn approximation_tracks_exact_form() {
        for &(n, l, t) in &[(1_000_000u64, 250u64, 8u64), (100_000, 50, 4), (10_000, 10, 16)] {
            let approx = p_invalid_max(n, l, t);
            let exact = p_invalid_exact(n, l, t);
            let rel = (approx - exact).abs() / exact.max(1e-12);
            assert!(rel < 0.05, "n={n} l={l} t={t}: approx {approx} exact {exact}");
        }
    }

    #[test]
    fn monotonic_in_threads_and_length() {
        let n = 1_000_000;
        assert!(p_invalid_max(n, 250, 8) > p_invalid_max(n, 250, 2));
        assert!(p_invalid_max(n, 250, 8) > p_invalid_max(n, 5, 8));
        assert_eq!(p_invalid_max(n, 250, 1), 0.0, "single writer never races");
    }

    #[test]
    fn no_overlap_probability_bounds() {
        let p = p_no_overlap_exact(1000, 10);
        assert!(p > 0.0 && p < 1.0);
        assert_eq!(p_no_overlap_exact(1000, 0), 1.0);
    }
}
