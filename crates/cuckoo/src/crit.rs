//! Critical-section bodies, written once against [`MemCtx`].
//!
//! The paper runs the same insert/delete logic under three regimes: a
//! global spinlock (baseline), TSX lock elision (§5), and — for cuckoo+ —
//! fine-grained striped locks (§4.4). The first two share these
//! `MemCtx`-generic bodies: under a real lock they execute with
//! [`htm::DirectCtx`] (plain atomic-chunk memory access), and under
//! elision with a transactional context that gives genuine conflict
//! detection. Writers publish through the stripe version counters
//! ([`MemCtx::seq_write_begin`]) so the lock-free optimistic readers of
//! [`crate::read`] always detect a concurrent writer.
//!
//! Displacements here follow MemC3's no-undo discipline: each one alone
//! moves an item to its *alternate* bucket (dest written before source
//! cleared), so a path execution that stops halfway — stale validation,
//! aborted transaction — leaves the table fully consistent ("each
//! displacement relocates only one item to its alternate bucket, so there
//! is no undo needed if execution aborts", §4.3.1).

use crate::bucket::BucketMeta;
use crate::hashing::KeySlots;
use crate::raw::RawTable;
use crate::search::{PathEntry, SearchScratch};
use crate::sync::LockStripes;
use htm::{Abort, MemCtx, Plain};

/// What a critical section accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CritOutcome {
    /// The key was inserted.
    Inserted,
    /// The key already exists; nothing was changed.
    Exists,
    /// Both candidate buckets are full and no path was supplied; the
    /// caller should search for one and re-enter.
    NeedPath,
    /// The supplied path was stale (another writer moved things); any
    /// displacements already applied are individually valid. Retry with a
    /// fresh search.
    PathStale,
    /// In-critical-section search exhausted its budget: table too full.
    SearchFull,
}

/// Scans `bucket_idx` for `key`, returning its slot.
pub(crate) fn find_key<C, K, V, const B: usize>(
    ctx: &mut C,
    raw: &RawTable<K, V, B>,
    bucket_idx: usize,
    tag: u8,
    key: &K,
) -> Result<Option<usize>, Abort>
where
    C: MemCtx,
    K: Plain + Eq,
{
    let b = raw.bucket(bucket_idx);
    let m = raw.meta(bucket_idx);
    // SAFETY: all pointers below derive from bucket/metadata storage
    // owned by `raw`, which outlives the critical section.
    let mask = unsafe { ctx.load(m.occupied_ptr() as *const u16)? };
    for s in 0..B {
        if mask & (1 << s) == 0 {
            continue;
        }
        // SAFETY: as above.
        let p = unsafe { ctx.load(m.partial_ptr(s) as *const u8)? };
        if p != tag {
            continue;
        }
        // SAFETY: as above; `K: Plain` so a (transactionally validated)
        // copy is always a valid value.
        let k = unsafe { ctx.load(b.key_ptr(s) as *const K)? };
        if k == *key {
            return Ok(Some(s));
        }
    }
    Ok(None)
}

/// Inserts into the first empty slot of `bucket_idx`, if any.
pub(crate) fn try_add<C, K, V, const B: usize>(
    ctx: &mut C,
    raw: &RawTable<K, V, B>,
    stripes: &LockStripes,
    bucket_idx: usize,
    tag: u8,
    key: K,
    val: V,
) -> Result<bool, Abort>
where
    C: MemCtx,
    K: Plain,
    V: Plain,
{
    // SAFETY: metadata storage outlives the critical section.
    let mask = unsafe { ctx.load(raw.meta(bucket_idx).occupied_ptr() as *const u16)? };
    let free = !mask & BucketMeta::<B>::FULL_MASK;
    if free == 0 {
        return Ok(false);
    }
    let slot = free.trailing_zeros() as usize;
    write_slot(ctx, raw, stripes, bucket_idx, slot, mask, tag, key, val)?;
    Ok(true)
}

/// Inserts at a *specific* slot (the head of an executed cuckoo path),
/// failing if the slot has been taken since.
#[allow(clippy::too_many_arguments)] // mirrors the paper's operation signature
pub(crate) fn add_at_slot<C, K, V, const B: usize>(
    ctx: &mut C,
    raw: &RawTable<K, V, B>,
    stripes: &LockStripes,
    bucket_idx: usize,
    slot: usize,
    tag: u8,
    key: K,
    val: V,
) -> Result<bool, Abort>
where
    C: MemCtx,
    K: Plain,
    V: Plain,
{
    // SAFETY: metadata storage outlives the critical section.
    let mask = unsafe { ctx.load(raw.meta(bucket_idx).occupied_ptr() as *const u16)? };
    if mask & (1 << slot) != 0 {
        return Ok(false);
    }
    write_slot(ctx, raw, stripes, bucket_idx, slot, mask, tag, key, val)?;
    Ok(true)
}

/// Writes one slot (tag, key, value, occupancy bit) with publication via
/// the covering stripe.
#[allow(clippy::too_many_arguments)]
fn write_slot<C, K, V, const B: usize>(
    ctx: &mut C,
    raw: &RawTable<K, V, B>,
    stripes: &LockStripes,
    bucket_idx: usize,
    slot: usize,
    occupied_mask: u16,
    tag: u8,
    key: K,
    val: V,
) -> Result<(), Abort>
where
    C: MemCtx,
    K: Plain,
    V: Plain,
{
    let b = raw.bucket(bucket_idx);
    let m = raw.meta(bucket_idx);
    // SAFETY: stripe words live as long as the table; the caller holds
    // writer-side mutual exclusion (global lock or elided execution).
    unsafe { ctx.seq_write_begin(stripes.stripe(bucket_idx).word())? };
    // SAFETY: bucket/metadata storage outlives the critical section;
    // mutual exclusion per the enclosing regime.
    unsafe {
        ctx.store(m.partial_ptr(slot), tag)?;
        ctx.store(b.key_ptr(slot), key)?;
        ctx.store(b.val_ptr(slot), val)?;
        ctx.store(m.occupied_ptr(), occupied_mask | (1 << slot))?;
    }
    Ok(())
}

/// Removes `key` from either candidate bucket, returning its value.
pub(crate) fn remove_key<C, K, V, const B: usize>(
    ctx: &mut C,
    raw: &RawTable<K, V, B>,
    stripes: &LockStripes,
    ks: KeySlots,
    key: &K,
) -> Result<Option<V>, Abort>
where
    C: MemCtx,
    K: Plain + Eq,
    V: Plain,
{
    for bucket_idx in [ks.i1, ks.i2] {
        if let Some(slot) = find_key(ctx, raw, bucket_idx, ks.tag, key)? {
            let b = raw.bucket(bucket_idx);
            let m = raw.meta(bucket_idx);
            // SAFETY: bucket storage outlives the critical section.
            let val = unsafe { ctx.load(b.val_ptr(slot) as *const V)? };
            // SAFETY: stripe word lives as long as the table.
            unsafe { ctx.seq_write_begin(stripes.stripe(bucket_idx).word())? };
            // SAFETY: as above.
            let mask = unsafe { ctx.load(m.occupied_ptr() as *const u16)? };
            // SAFETY: as above.
            unsafe { ctx.store(m.occupied_ptr(), mask & !(1 << slot))? };
            return Ok(Some(val));
        }
        if ks.i2 == ks.i1 {
            break;
        }
    }
    Ok(None)
}

/// Reads the value of `key` under the critical section (for tables whose
/// readers take the writer lock, or for read-modify-write ops).
// Exercised by unit tests and kept for read-modify-write extensions.
#[allow(dead_code)]
pub(crate) fn get_key<C, K, V, const B: usize>(
    ctx: &mut C,
    raw: &RawTable<K, V, B>,
    ks: KeySlots,
    key: &K,
) -> Result<Option<V>, Abort>
where
    C: MemCtx,
    K: Plain + Eq,
    V: Plain,
{
    for bucket_idx in [ks.i1, ks.i2] {
        if let Some(slot) = find_key(ctx, raw, bucket_idx, ks.tag, key)? {
            let b = raw.bucket(bucket_idx);
            // SAFETY: bucket storage outlives the critical section.
            return Ok(Some(unsafe { ctx.load(b.val_ptr(slot) as *const V)? }));
        }
        if ks.i2 == ks.i1 {
            break;
        }
    }
    Ok(None)
}

/// Updates the value of an existing `key`, returning whether it was found.
pub(crate) fn update_key<C, K, V, const B: usize>(
    ctx: &mut C,
    raw: &RawTable<K, V, B>,
    stripes: &LockStripes,
    ks: KeySlots,
    key: &K,
    val: V,
) -> Result<bool, Abort>
where
    C: MemCtx,
    K: Plain + Eq,
    V: Plain,
{
    for bucket_idx in [ks.i1, ks.i2] {
        if let Some(slot) = find_key(ctx, raw, bucket_idx, ks.tag, key)? {
            let b = raw.bucket(bucket_idx);
            // SAFETY: stripe word and bucket storage outlive the section.
            unsafe {
                ctx.seq_write_begin(stripes.stripe(bucket_idx).word())?;
                ctx.store(b.val_ptr(slot), val)?;
            }
            return Ok(true);
        }
        if ks.i2 == ks.i1 {
            break;
        }
    }
    Ok(false)
}

/// Validates and applies a cuckoo path's displacements, hole moving
/// backwards (dest written before source cleared, so readers never miss
/// the item — it may transiently exist twice, never zero times).
///
/// Returns `Ok(false)` when validation finds the path stale; displacements
/// already applied remain (they are individually valid).
pub(crate) fn execute_path<C, K, V, const B: usize>(
    ctx: &mut C,
    raw: &RawTable<K, V, B>,
    stripes: &LockStripes,
    path: &[PathEntry],
) -> Result<bool, Abort>
where
    C: MemCtx,
    K: Plain,
    V: Plain,
{
    if path.len() < 2 {
        return Ok(true);
    }
    for i in (0..path.len() - 1).rev() {
        let src = path[i];
        let dst = path[i + 1];
        let sb = raw.bucket(src.bucket);
        let db = raw.bucket(dst.bucket);
        let sm = raw.meta(src.bucket);
        let dm = raw.meta(dst.bucket);
        debug_assert_ne!(src.bucket, dst.bucket, "alt bucket equals primary");

        // Validate: source still holds an item with the observed tag and
        // the destination slot is still free.
        // SAFETY: metadata storage outlives the critical section.
        let s_mask = unsafe { ctx.load(sm.occupied_ptr() as *const u16)? };
        if s_mask & (1 << src.slot) == 0 {
            return Ok(false);
        }
        // SAFETY: as above.
        let s_tag = unsafe { ctx.load(sm.partial_ptr(src.slot as usize) as *const u8)? };
        if s_tag != src.tag {
            return Ok(false);
        }
        // SAFETY: as above.
        let d_mask = unsafe { ctx.load(dm.occupied_ptr() as *const u16)? };
        if d_mask & (1 << dst.slot) != 0 {
            return Ok(false);
        }

        // SAFETY: stripe words live as long as the table.
        unsafe {
            ctx.seq_write_begin(stripes.stripe(src.bucket).word())?;
            ctx.seq_write_begin(stripes.stripe(dst.bucket).word())?;
        }
        // SAFETY: bucket/metadata storage outlives the critical section;
        // `K`/`V` are `Plain`, and under transactional execution the
        // loads are validated.
        unsafe {
            let k = ctx.load(sb.key_ptr(src.slot as usize) as *const K)?;
            let v = ctx.load(sb.val_ptr(src.slot as usize) as *const V)?;
            ctx.store(dm.partial_ptr(dst.slot as usize), src.tag)?;
            ctx.store(db.key_ptr(dst.slot as usize), k)?;
            ctx.store(db.val_ptr(dst.slot as usize), v)?;
            ctx.store(dm.occupied_ptr(), d_mask | (1 << dst.slot))?;
            ctx.store(sm.occupied_ptr(), s_mask & !(1 << src.slot))?;
        }
    }
    Ok(true)
}

/// Algorithm 2's critical section (paper §4.3.1): duplicate check, direct
/// add, then validated execution of a pre-discovered path.
#[allow(clippy::too_many_arguments)]
pub(crate) fn insert_critical<C, K, V, const B: usize>(
    ctx: &mut C,
    raw: &RawTable<K, V, B>,
    stripes: &LockStripes,
    ks: KeySlots,
    key: K,
    val: V,
    path: Option<&[PathEntry]>,
) -> Result<CritOutcome, Abort>
where
    C: MemCtx,
    K: Plain + Eq,
    V: Plain,
{
    if find_key(ctx, raw, ks.i1, ks.tag, &key)?.is_some()
        || (ks.i2 != ks.i1 && find_key(ctx, raw, ks.i2, ks.tag, &key)?.is_some())
    {
        return Ok(CritOutcome::Exists);
    }
    if try_add(ctx, raw, stripes, ks.i1, ks.tag, key, val)?
        || (ks.i2 != ks.i1 && try_add(ctx, raw, stripes, ks.i2, ks.tag, key, val)?)
    {
        return Ok(CritOutcome::Inserted);
    }
    let Some(path) = path else {
        return Ok(CritOutcome::NeedPath);
    };
    if !execute_path(ctx, raw, stripes, path)? {
        return Ok(CritOutcome::PathStale);
    }
    let head = path[0];
    debug_assert!(head.bucket == ks.i1 || head.bucket == ks.i2);
    if add_at_slot(
        ctx,
        raw,
        stripes,
        head.bucket,
        head.slot as usize,
        ks.tag,
        key,
        val,
    )? {
        Ok(CritOutcome::Inserted)
    } else {
        Ok(CritOutcome::PathStale)
    }
}

/// Algorithm 1's critical section (paper §4.3.1): the *entire* insert —
/// duplicate check, DFS path search, and execution — inside one critical
/// section. This is the MemC3 baseline configuration whose enormous
/// transactional footprint the paper's Figure 5b quantifies.
#[allow(clippy::too_many_arguments)] // mirrors the paper's operation signature
pub(crate) fn insert_critical_full<C, K, V, const B: usize>(
    ctx: &mut C,
    raw: &RawTable<K, V, B>,
    stripes: &LockStripes,
    ks: KeySlots,
    key: K,
    val: V,
    max_slots: usize,
    scratch: &mut SearchScratch,
) -> Result<CritOutcome, Abort>
where
    C: MemCtx,
    K: Plain + Eq,
    V: Plain,
{
    match insert_critical(ctx, raw, stripes, ks, key, val, None)? {
        CritOutcome::NeedPath => {}
        done => return Ok(done),
    }
    if !dfs_search_in(ctx, raw, ks.i1, ks.i2, max_slots, scratch)? {
        return Ok(CritOutcome::SearchFull);
    }
    // The path came from this critical section's own (consistent) reads,
    // so execution cannot find it stale; re-validation is still run for
    // uniformity and costs only re-reads of buckets already in cache (or
    // the read set).
    let path = std::mem::take(&mut scratch.path);
    let r = insert_critical(ctx, raw, stripes, ks, key, val, Some(&path));
    scratch.path = path;
    r
}

/// Two-way random-walk DFS with every read routed through the context, so
/// transactional execution accrues the walk's full read footprint.
fn dfs_search_in<C, K, V, const B: usize>(
    ctx: &mut C,
    raw: &RawTable<K, V, B>,
    i1: usize,
    i2: usize,
    max_slots: usize,
    scratch: &mut SearchScratch,
) -> Result<bool, Abort>
where
    C: MemCtx,
{
    scratch.path.clear();
    let mut entries: [Vec<PathEntry>; 2] = [Vec::with_capacity(64), Vec::with_capacity(64)];
    let mut at = [i1, i2];
    let n_walks = if i1 == i2 { 1 } else { 2 };

    let mut examined = 0usize;
    loop {
        for w in 0..n_walks {
            if examined >= max_slots {
                return Ok(false);
            }
            examined += B;
            let m = raw.meta(at[w]);
            // SAFETY: metadata storage outlives the critical section.
            let mask = unsafe { ctx.load(m.occupied_ptr() as *const u16)? };
            let free = !mask & BucketMeta::<B>::FULL_MASK;
            if free != 0 {
                scratch.path.append(&mut entries[w]);
                scratch.path.push(PathEntry {
                    bucket: at[w],
                    slot: free.trailing_zeros() as u8,
                    tag: 0,
                });
                return Ok(true);
            }
            let slot = (scratch.next_random() % B as u64) as usize;
            // SAFETY: as above.
            let tag = unsafe { ctx.load(m.partial_ptr(slot) as *const u8)? };
            if tag == 0 {
                continue;
            }
            entries[w].push(PathEntry {
                bucket: at[w],
                slot: slot as u8,
                tag,
            });
            at[w] = raw.alt_index(at[w], tag);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hashing::key_slots;
    use crate::hash::RandomState;
    use htm::DirectCtx;

    type Raw = RawTable<u64, u64, 4>;

    fn setup() -> (Raw, LockStripes, RandomState) {
        (
            Raw::with_capacity(4096),
            LockStripes::new(64),
            RandomState::with_seed(11),
        )
    }

    fn ks_for(raw: &Raw, hb: &RandomState, key: u64) -> KeySlots {
        key_slots(hb, &key, raw.mask())
    }

    #[test]
    fn insert_find_remove_roundtrip() {
        let (raw, stripes, hb) = setup();
        let mut ctx = DirectCtx::new();
        for key in 0..100u64 {
            let ks = ks_for(&raw, &hb, key);
            let out =
                insert_critical(&mut ctx, &raw, &stripes, ks, key, key * 2, None).unwrap();
            assert_eq!(out, CritOutcome::Inserted);
            ctx.finish();
        }
        for key in 0..100u64 {
            let ks = ks_for(&raw, &hb, key);
            assert_eq!(get_key(&mut ctx, &raw, ks, &key).unwrap(), Some(key * 2));
        }
        for key in (0..100u64).step_by(2) {
            let ks = ks_for(&raw, &hb, key);
            assert_eq!(
                remove_key(&mut ctx, &raw, &stripes, ks, &key).unwrap(),
                Some(key * 2)
            );
            ctx.finish();
        }
        for key in 0..100u64 {
            let ks = ks_for(&raw, &hb, key);
            let expect = if key % 2 == 0 { None } else { Some(key * 2) };
            assert_eq!(get_key(&mut ctx, &raw, ks, &key).unwrap(), expect);
        }
    }

    #[test]
    fn duplicate_insert_reports_exists() {
        let (raw, stripes, hb) = setup();
        let mut ctx = DirectCtx::new();
        let ks = ks_for(&raw, &hb, 7);
        assert_eq!(
            insert_critical(&mut ctx, &raw, &stripes, ks, 7u64, 1u64, None).unwrap(),
            CritOutcome::Inserted
        );
        ctx.finish();
        assert_eq!(
            insert_critical(&mut ctx, &raw, &stripes, ks, 7u64, 2u64, None).unwrap(),
            CritOutcome::Exists
        );
        ctx.finish();
        assert_eq!(get_key(&mut ctx, &raw, ks, &7u64).unwrap(), Some(1));
    }

    #[test]
    fn update_existing_key() {
        let (raw, stripes, hb) = setup();
        let mut ctx = DirectCtx::new();
        let ks = ks_for(&raw, &hb, 5);
        insert_critical(&mut ctx, &raw, &stripes, ks, 5u64, 50u64, None).unwrap();
        ctx.finish();
        assert!(update_key(&mut ctx, &raw, &stripes, ks, &5u64, 55u64).unwrap());
        ctx.finish();
        assert_eq!(get_key(&mut ctx, &raw, ks, &5u64).unwrap(), Some(55));
        let ks9 = ks_for(&raw, &hb, 9);
        assert!(!update_key(&mut ctx, &raw, &stripes, ks9, &9u64, 1u64).unwrap());
        ctx.finish();
    }

    #[test]
    fn full_buckets_need_path_and_full_insert_resolves_it() {
        let (raw, stripes, hb) = setup();
        let mut ctx = DirectCtx::new();
        let ks = ks_for(&raw, &hb, 1000);
        // Fill both candidate buckets directly.
        for bi in [ks.i1, ks.i2] {
            let mut fake = 0u64;
            while let Some(s) = raw.meta(bi).empty_slot() {
                // SAFETY: single-threaded test.
                unsafe { raw.write_entry(bi, s, 9, fake, 0) };
                fake += 1;
            }
        }
        assert_eq!(
            insert_critical(&mut ctx, &raw, &stripes, ks, 1000u64, 1u64, None).unwrap(),
            CritOutcome::NeedPath
        );
        ctx.finish();
        let mut scratch = SearchScratch::default();
        let out = insert_critical_full(
            &mut ctx, &raw, &stripes, ks, 1000u64, 1u64, 2000, &mut scratch,
        )
        .unwrap();
        assert_eq!(out, CritOutcome::Inserted);
        ctx.finish();
        assert_eq!(get_key(&mut ctx, &raw, ks, &1000u64).unwrap(), Some(1));
        // Every displaced fake key must still be findable via its tag's
        // alternate-bucket relation: total occupancy is conserved + 1.
        assert_eq!(raw.count_occupied(), 9);
    }

    #[test]
    fn stale_path_is_detected() {
        let (raw, stripes, hb) = setup();
        let mut ctx = DirectCtx::new();
        let ks = ks_for(&raw, &hb, 42);
        // Build a fake 2-entry path whose source slot does not hold the
        // expected tag.
        let path = [
            PathEntry {
                bucket: ks.i1,
                slot: 0,
                tag: 77,
            },
            PathEntry {
                bucket: raw.alt_index(ks.i1, 77),
                slot: 0,
                tag: 0,
            },
        ];
        assert!(!execute_path(&mut ctx, &raw, &stripes, &path).unwrap());
        ctx.finish();
    }

    #[test]
    fn transactional_and_direct_agree() {
        use htm::{HtmDomain, TxCtx};
        let (raw, stripes, hb) = setup();
        let domain = HtmDomain::new();
        for key in 0..200u64 {
            let ks = ks_for(&raw, &hb, key);
            let out = domain
                .execute(|tx| {
                    let mut ctx = TxCtx::new(tx);
                    let r = insert_critical(&mut ctx, &raw, &stripes, ks, key, key + 1, None)?;
                    ctx.finish();
                    Ok(r)
                })
                .unwrap();
            assert_eq!(out, CritOutcome::Inserted, "key {key}");
        }
        let mut ctx = DirectCtx::new();
        for key in 0..200u64 {
            let ks = ks_for(&raw, &hb, key);
            assert_eq!(get_key(&mut ctx, &raw, ks, &key).unwrap(), Some(key + 1));
        }
        // Stripe versions must be even (all publications completed).
        for i in 0..64 {
            assert_eq!(stripes.stripe(i).version() % 2, 0);
        }
    }
}
