//! Hash functions, implemented from scratch.
//!
//! The tables are generic over [`core::hash::BuildHasher`]; two hashers
//! are provided:
//!
//! - [`FxHasher64`] — a multiply-xor folding hasher in the style of the
//!   rustc compiler's FxHash. Extremely fast for the small fixed-size keys
//!   the paper benchmarks (8-byte keys), with adequate diffusion once
//!   finalized. This is the default.
//! - [`SipHasher13`] — a full SipHash-1-3 implementation for
//!   hash-flooding resistance with untrusted keys, matching what
//!   `std::collections::HashMap` uses by default.
//!
//! [`RandomState`] seeds either hasher per table instance without calling
//! into the OS (a counter mixed with address entropy), keeping table
//! construction deterministic enough for tests while still varying seeds
//! between tables.

use core::hash::{BuildHasher, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

/// 64-bit finalization mix (Murmur3/SplitMix style): full-avalanche, so
/// low-entropy inputs (sequential integers) still spread across buckets.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// A fast multiply-xor hasher for short keys (FxHash style, finalized).
#[derive(Debug, Clone, Copy)]
pub struct FxHasher64 {
    state: u64,
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher64 {
    /// Creates a hasher with the given initial state.
    #[inline]
    pub fn with_seed(seed: u64) -> Self {
        FxHasher64 { state: seed }
    }

    #[inline]
    fn add(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Default for FxHasher64 {
    #[inline]
    fn default() -> Self {
        FxHasher64 { state: 0 }
    }
}

impl Hasher for FxHasher64 {
    #[inline]
    fn finish(&self) -> u64 {
        // The raw Fx state has weak low bits for short inputs; the tables
        // take both the bucket index and the partial key from one hash, so
        // full avalanche matters.
        mix64(self.state)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("chunks_exact(8) yields 8-byte chunks")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            tail[7] = rem.len() as u8;
            self.add(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// SipHash-1-3: one compression round per message block, three
/// finalization rounds. Keyed, flooding-resistant.
#[derive(Debug, Clone)]
pub struct SipHasher13 {
    v0: u64,
    v1: u64,
    v2: u64,
    v3: u64,
    /// Pending input bytes (< 8) and total length so far.
    tail: u64,
    ntail: usize,
    length: usize,
}

macro_rules! sip_round {
    ($v0:expr, $v1:expr, $v2:expr, $v3:expr) => {{
        $v0 = $v0.wrapping_add($v1);
        $v1 = $v1.rotate_left(13);
        $v1 ^= $v0;
        $v0 = $v0.rotate_left(32);
        $v2 = $v2.wrapping_add($v3);
        $v3 = $v3.rotate_left(16);
        $v3 ^= $v2;
        $v0 = $v0.wrapping_add($v3);
        $v3 = $v3.rotate_left(21);
        $v3 ^= $v0;
        $v2 = $v2.wrapping_add($v1);
        $v1 = $v1.rotate_left(17);
        $v1 ^= $v2;
        $v2 = $v2.rotate_left(32);
    }};
}

impl SipHasher13 {
    /// Creates a keyed SipHash-1-3 hasher.
    pub fn new_with_keys(k0: u64, k1: u64) -> Self {
        SipHasher13 {
            v0: k0 ^ 0x736f_6d65_7073_6575,
            v1: k1 ^ 0x646f_7261_6e64_6f6d,
            v2: k0 ^ 0x6c79_6765_6e65_7261,
            v3: k1 ^ 0x7465_6462_7974_6573,
            tail: 0,
            ntail: 0,
            length: 0,
        }
    }

    #[inline]
    fn compress(&mut self, m: u64) {
        self.v3 ^= m;
        sip_round!(self.v0, self.v1, self.v2, self.v3);
        self.v0 ^= m;
    }
}

impl Default for SipHasher13 {
    fn default() -> Self {
        Self::new_with_keys(0, 0)
    }
}

impl Hasher for SipHasher13 {
    fn write(&mut self, bytes: &[u8]) {
        self.length += bytes.len();
        let mut input = bytes;

        if self.ntail != 0 {
            let need = 8 - self.ntail;
            let take = need.min(input.len());
            for (i, &b) in input[..take].iter().enumerate() {
                self.tail |= (b as u64) << (8 * (self.ntail + i));
            }
            self.ntail += take;
            input = &input[take..];
            if self.ntail < 8 {
                return;
            }
            let m = self.tail;
            self.compress(m);
            self.tail = 0;
            self.ntail = 0;
        }

        let mut chunks = input.chunks_exact(8);
        for c in &mut chunks {
            self.compress(u64::from_le_bytes(c.try_into().expect("chunks_exact(8) yields 8-byte chunks")));
        }
        for (i, &b) in chunks.remainder().iter().enumerate() {
            self.tail |= (b as u64) << (8 * i);
        }
        self.ntail = chunks.remainder().len();
    }

    fn finish(&self) -> u64 {
        let mut v0 = self.v0;
        let mut v1 = self.v1;
        let mut v2 = self.v2;
        let mut v3 = self.v3;

        let b: u64 = ((self.length as u64 & 0xff) << 56) | self.tail;
        v3 ^= b;
        sip_round!(v0, v1, v2, v3);
        v0 ^= b;

        v2 ^= 0xff;
        sip_round!(v0, v1, v2, v3);
        sip_round!(v0, v1, v2, v3);
        sip_round!(v0, v1, v2, v3);
        v0 ^ v1 ^ v2 ^ v3
    }
}

/// Per-table seeding state; builds [`FxHasher64`] instances.
///
/// Seeds derive from a process-global counter mixed through [`mix64`], so
/// distinct tables get distinct hash functions without OS entropy calls.
#[derive(Debug, Clone)]
pub struct RandomState {
    seed: u64,
}

static SEED_COUNTER: AtomicU64 = AtomicU64::new(0x9e37_79b9);

impl RandomState {
    /// Creates a state with a fresh per-table seed.
    pub fn new() -> Self {
        let n = SEED_COUNTER.fetch_add(0x9e37_79b9_7f4a_7c15, Ordering::Relaxed); // ORDERING: alloc.unique-id
        RandomState { seed: mix64(n) }
    }

    /// Creates a state with a fixed seed (for reproducible tests and
    /// benchmarks).
    pub fn with_seed(seed: u64) -> Self {
        RandomState { seed }
    }
}

impl Default for RandomState {
    fn default() -> Self {
        Self::new()
    }
}

impl BuildHasher for RandomState {
    type Hasher = FxHasher64;

    #[inline]
    fn build_hasher(&self) -> FxHasher64 {
        FxHasher64::with_seed(self.seed)
    }
}

/// The default hash builder used by all tables in this crate.
pub type DefaultHashBuilder = RandomState;

/// Builder for [`SipHasher13`]; use when keys come from untrusted input.
#[derive(Debug, Clone)]
pub struct SipHashBuilder {
    k0: u64,
    k1: u64,
}

impl SipHashBuilder {
    /// Creates a builder with fresh per-table keys.
    pub fn new() -> Self {
        let n = SEED_COUNTER.fetch_add(0x9e37_79b9_7f4a_7c15, Ordering::Relaxed); // ORDERING: alloc.unique-id
        SipHashBuilder {
            k0: mix64(n),
            k1: mix64(n ^ 0xdead_beef_cafe_f00d),
        }
    }

    /// Creates a builder with fixed keys.
    pub fn with_keys(k0: u64, k1: u64) -> Self {
        SipHashBuilder { k0, k1 }
    }
}

impl Default for SipHashBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl BuildHasher for SipHashBuilder {
    type Hasher = SipHasher13;

    #[inline]
    fn build_hasher(&self) -> SipHasher13 {
        SipHasher13::new_with_keys(self.k0, self.k1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::hash::Hash;

    fn fx_hash_of<T: Hash>(v: &T) -> u64 {
        let mut h = FxHasher64::default();
        v.hash(&mut h);
        h.finish()
    }

    fn sip_hash_of<T: Hash>(v: &T, k0: u64, k1: u64) -> u64 {
        let mut h = SipHasher13::new_with_keys(k0, k1);
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn fx_is_deterministic_and_input_sensitive() {
        assert_eq!(fx_hash_of(&42u64), fx_hash_of(&42u64));
        assert_ne!(fx_hash_of(&42u64), fx_hash_of(&43u64));
        assert_ne!(fx_hash_of(&"abc"), fx_hash_of(&"abd"));
    }

    #[test]
    fn fx_sequential_keys_avalanche() {
        // Sequential integers must differ in high bits too (the partial
        // key is taken from the top byte).
        let a = fx_hash_of(&1u64);
        let b = fx_hash_of(&2u64);
        assert_ne!(a >> 56, b >> 56, "top bytes should differ: {a:x} {b:x}");
        // Distribution sanity: bucket-index bits of 10k sequential keys
        // should hit most of 1024 buckets.
        let mut seen = vec![false; 1024];
        for i in 0..10_000u64 {
            seen[(fx_hash_of(&i) & 1023) as usize] = true;
        }
        let hit = seen.iter().filter(|&&s| s).count();
        assert!(hit > 1000, "only {hit}/1024 buckets hit");
    }

    #[test]
    fn sip13_known_vector() {
        // SipHash-1-3 of the empty message under key (0,0), cross-checked
        // against the reference implementation.
        let h = SipHasher13::new_with_keys(0, 0);
        assert_eq!(h.finish(), 0xd1fba762150c532c);
        let mut h = SipHasher13::new_with_keys(7, 9);
        h.write(b"hello");
        assert_eq!(h.finish(), 0x6d9e635eb581966a);
    }

    #[test]
    fn sip13_incremental_matches_oneshot() {
        let data = b"hello world, this is a test of incremental hashing";
        let mut one = SipHasher13::new_with_keys(7, 9);
        one.write(data);
        let mut inc = SipHasher13::new_with_keys(7, 9);
        for chunk in data.chunks(3) {
            inc.write(chunk);
        }
        assert_eq!(one.finish(), inc.finish());
    }

    #[test]
    fn sip13_is_keyed() {
        assert_ne!(sip_hash_of(&1u64, 0, 0), sip_hash_of(&1u64, 0, 1));
    }

    #[test]
    fn random_state_varies_between_tables_but_is_seedable() {
        let a = RandomState::new();
        let b = RandomState::new();
        let ha = a.build_hasher().finish();
        let hb = b.build_hasher().finish();
        assert_ne!(ha, hb);

        let c = RandomState::with_seed(123);
        let d = RandomState::with_seed(123);
        let mut hc = c.build_hasher();
        let mut hd = d.build_hasher();
        hc.write_u64(5);
        hd.write_u64(5);
        assert_eq!(hc.finish(), hd.finish());
    }

    #[test]
    fn mix64_avalanches_single_bits() {
        for bit in 0..64 {
            let a = mix64(0);
            let b = mix64(1u64 << bit);
            let diff = (a ^ b).count_ones();
            assert!(diff >= 16, "bit {bit} only flipped {diff} output bits");
        }
    }
}
