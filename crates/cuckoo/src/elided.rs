//! `cuckoo+` with (simulated) TSX lock elision (paper §5).
//!
//! The paper's second concurrency regime for the optimized table: keep
//! every algorithmic improvement — BFS path search outside the critical
//! section, 8-way buckets, optimistic reads — but protect writes with a
//! *single coarse lock that is elided*. Because the optimizations shrink
//! the critical section "from hundreds of bucket reads and writes to only
//! a few bucket writes", the transactional abort rate collapses and the
//! coarse lock scales.
//!
//! [`ElidedCuckooMap`] composes [`crate::MemC3Cuckoo`] with the
//! lock-later + BFS + prefetch configuration and an elided writer lock;
//! only the default set-associativity differs (8-way, §4.3.3).

use crate::error::InsertError;
use crate::hash::DefaultHashBuilder;
use crate::memc3::{MemC3Config, MemC3Cuckoo, WriterLockKind};
use core::hash::{BuildHasher, Hash};
use htm::{HtmDomain, Plain, StatsSnapshot};
use std::sync::Arc;

/// cuckoo+ under an elided global lock: all of §4.3's algorithmic
/// optimizations, transactional writes.
///
/// # Examples
///
/// ```
/// use cuckoo::ElidedCuckooMap;
///
/// let m: ElidedCuckooMap<u64, u64> = ElidedCuckooMap::with_capacity(1024);
/// m.insert(7, 42)?;
/// assert_eq!(m.get(&7), Some(42));
/// let stats = m.htm_stats().unwrap();
/// assert!(stats.commits >= 1); // the insert ran as a transaction
/// # Ok::<(), cuckoo::InsertError>(())
/// ```
pub struct ElidedCuckooMap<K, V, const B: usize = 8, S = DefaultHashBuilder> {
    inner: MemC3Cuckoo<K, V, B, S>,
}

impl<K, V, const B: usize> ElidedCuckooMap<K, V, B, DefaultHashBuilder>
where
    K: Plain + Eq + Hash,
    V: Plain,
{
    /// Creates a table with the paper's `TSX*` elision policy.
    pub fn with_capacity(capacity: usize) -> Self {
        Self::with_capacity_and_policy(capacity, WriterLockKind::ElidedOptimized)
    }

    /// Creates a table with an explicit elision policy (or a plain global
    /// lock, for "cuckoo+ minus HTM" comparisons).
    pub fn with_capacity_and_policy(capacity: usize, lock: WriterLockKind) -> Self {
        Self::with_capacity_policy_and_domain(capacity, lock, Arc::new(HtmDomain::new()))
    }

    /// Creates a table whose elided critical sections run in the supplied
    /// transactional domain — for modeling specific hardware capacity
    /// budgets (Figure 10b's footprint experiments).
    pub fn with_capacity_policy_and_domain(
        capacity: usize,
        lock: WriterLockKind,
        domain: Arc<HtmDomain>,
    ) -> Self {
        let config = MemC3Config::baseline()
            .plus_lock_later()
            .plus_bfs()
            .plus_prefetch()
            .with_lock(lock);
        ElidedCuckooMap {
            inner: MemC3Cuckoo::with_capacity_hasher_and_domain(
                capacity,
                config,
                DefaultHashBuilder::new(),
                domain,
            ),
        }
    }
}

impl<K, V, const B: usize, S> ElidedCuckooMap<K, V, B, S>
where
    K: Plain + Eq + Hash,
    V: Plain,
    S: BuildHasher,
{
    /// Lock-free optimistic lookup.
    #[inline]
    pub fn get(&self, key: &K) -> Option<V> {
        self.inner.get(key)
    }

    /// Lock-free presence check.
    #[inline]
    pub fn contains_key(&self, key: &K) -> bool {
        self.inner.contains_key(key)
    }

    /// Inserts `key → val` through an elided critical section.
    pub fn insert(&self, key: K, val: V) -> Result<(), InsertError> {
        self.inner.insert(key, val)
    }

    /// Removes `key`, returning its value.
    pub fn remove(&self, key: &K) -> Option<V> {
        self.inner.remove(key)
    }

    /// Replaces the value of an existing key.
    pub fn update(&self, key: &K, val: V) -> bool {
        self.inner.update(key, val)
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Total slot capacity.
    pub fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    /// Fraction of slots occupied.
    pub fn load_factor(&self) -> f64 {
        self.inner.load_factor()
    }

    /// Bytes used by buckets, stripes, and counters.
    pub fn memory_bytes(&self) -> usize {
        self.inner.memory_bytes()
    }

    /// Transactional commit/abort statistics.
    pub fn htm_stats(&self) -> Option<StatsSnapshot> {
        self.inner.htm_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crud_through_elision() {
        let m: ElidedCuckooMap<u64, u64> = ElidedCuckooMap::with_capacity(10_000);
        for k in 0..1000u64 {
            m.insert(k, k + 5).unwrap();
        }
        assert_eq!(m.len(), 1000);
        for k in 0..1000u64 {
            assert_eq!(m.get(&k), Some(k + 5));
        }
        assert_eq!(m.remove(&3), Some(8));
        assert!(m.update(&4, 0));
        assert_eq!(m.get(&4), Some(0));
        assert_eq!(m.insert(5, 1), Err(InsertError::KeyExists));
        let stats = m.htm_stats().unwrap();
        assert!(stats.commits > 0, "speculation should mostly succeed");
    }

    #[test]
    fn concurrent_elided_writers() {
        let m: ElidedCuckooMap<u64, u64> = ElidedCuckooMap::with_capacity(1 << 15);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let m = &m;
                s.spawn(move || {
                    for i in 0..3000u64 {
                        let key = t * 1_000_000 + i;
                        m.insert(key, key).unwrap();
                    }
                });
            }
        });
        assert_eq!(m.len(), 12_000);
        for t in 0..4u64 {
            for i in 0..3000u64 {
                let key = t * 1_000_000 + i;
                assert_eq!(m.get(&key), Some(key));
            }
        }
        let stats = m.htm_stats().unwrap();
        assert!(stats.starts >= 12_000);
    }

    #[test]
    fn high_occupancy_with_short_transactions() {
        let m: ElidedCuckooMap<u64, u64, 4> = ElidedCuckooMap::with_capacity(1 << 11);
        let target = m.capacity() * 95 / 100;
        for k in 0..target as u64 {
            m.insert(k, k).unwrap();
        }
        assert!(m.load_factor() > 0.94);
        let stats = m.htm_stats().unwrap();
        // The headline §5 claim: with BFS + lock-later the transactional
        // footprint is small enough that most sections commit
        // speculatively even while displacing at high load.
        assert!(
            stats.fallback_rate() < 0.5,
            "fallback rate {:.3} too high for short transactions",
            stats.fallback_rate()
        );
    }
}
