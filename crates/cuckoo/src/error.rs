//! Error and outcome types for table operations.

/// Why an `Insert` could not complete (paper §2.1: "On Insert, the hash
/// table returns success, or an error code to indicate whether the hash
/// table is too full or the key already exists").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertError {
    /// No cuckoo path to an empty slot was found within the search budget:
    /// the table is too full and an expansion is required.
    TableFull,
    /// The key is already present; its value was left untouched.
    KeyExists,
}

impl core::fmt::Display for InsertError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            InsertError::TableFull => write!(f, "hash table too full to insert"),
            InsertError::KeyExists => write!(f, "key already exists"),
        }
    }
}

impl std::error::Error for InsertError {}

/// What an upsert did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpsertOutcome {
    /// The key was absent and has been inserted.
    Inserted,
    /// The key was present and its value has been replaced.
    Updated,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(InsertError::TableFull.to_string().contains("full"));
        assert!(InsertError::KeyExists.to_string().contains("exists"));
    }
}
