//! Lock-free optimistic reads (paper §4.2).
//!
//! Readers take no locks and dirty no cache lines: they stamp the version
//! counters of both candidate buckets' stripes, scan the buckets with
//! racy-but-race-free copies, and re-validate the stamps. Any concurrent
//! writer — fine-grained locker (odd version while held), global-lock
//! holder, or committing transaction (seqlock bumps around publication) —
//! moves a stamp and sends the reader around again. Because writers move
//! *holes* backwards rather than items forwards (§4.2), a present key is
//! never missing mid-displacement; at worst it is momentarily duplicated,
//! which a reader resolves to either copy (both carry the same value).

use crate::hashing::KeySlots;
use crate::raw::RawTable;
use crate::sync::LockStripes;
use htm::Plain;

/// Optimistically reads `key`'s value.
pub(crate) fn get<K, V, const B: usize>(
    raw: &RawTable<K, V, B>,
    stripes: &LockStripes,
    ks: KeySlots,
    key: &K,
) -> Option<V>
where
    K: Plain + Eq,
    V: Plain,
{
    let mut watchdog = 0u64;
    let mut spins = 0u32;
    loop {
        if let Some(result) = try_get(raw, stripes, ks, key) {
            return result;
        }
        // A failed validation means a writer holds (or bumped) a stripe;
        // hammering the version counters only slows that writer down.
        crate::sync::backoff(&mut spins);
        watchdog += 1;
        debug_assert!(watchdog < 100_000_000, "optimistic get starved: ks={ks:?}");
    }
}

/// One validated attempt; `None` means a writer interfered — retry.
fn try_get<K, V, const B: usize>(
    raw: &RawTable<K, V, B>,
    stripes: &LockStripes,
    ks: KeySlots,
    key: &K,
) -> Option<Option<V>>
where
    K: Plain + Eq,
    V: Plain,
{
    let s1 = stripes.stripe(ks.i1);
    let s2 = stripes.stripe(ks.i2);
    let same_stripe = stripes.stripe_of(ks.i1) == stripes.stripe_of(ks.i2);

    let st1 = s1.read_begin();
    let st2 = if same_stripe { st1 } else { s2.read_begin() };

    let mut found: Option<V> = None;
    'scan: for bucket_idx in [ks.i1, ks.i2] {
        let m = raw.meta(bucket_idx);
        // SWAR: all candidate slots (tag match AND occupied) in two loads.
        let mut cand = m.match_tag_mask(ks.tag) & m.occupied_mask();
        while cand != 0 {
            let slot = cand.trailing_zeros() as usize;
            cand &= cand - 1;
            // SAFETY: `slot < B`; racy copies are discarded unless the
            // stamps validate below.
            let k = unsafe { raw.read_key_racy(bucket_idx, slot) };
            if k == *key {
                // SAFETY: as above.
                found = Some(unsafe { raw.read_val_racy(bucket_idx, slot) });
                break 'scan;
            }
        }
        if ks.i2 == ks.i1 {
            break;
        }
    }

    let valid = s1.read_validate(st1) && (same_stripe || s2.read_validate(st2));
    if valid {
        Some(found)
    } else {
        None
    }
}

/// Optimistically checks for `key`'s presence (a value-copy-free `get`).
pub(crate) fn contains<K, V, const B: usize>(
    raw: &RawTable<K, V, B>,
    stripes: &LockStripes,
    ks: KeySlots,
    key: &K,
) -> bool
where
    K: Plain + Eq,
{
    let mut watchdog = 0u64;
    let mut spins = 0u32;
    loop {
        let s1 = stripes.stripe(ks.i1);
        let s2 = stripes.stripe(ks.i2);
        let same_stripe = stripes.stripe_of(ks.i1) == stripes.stripe_of(ks.i2);
        let st1 = s1.read_begin();
        let st2 = if same_stripe { st1 } else { s2.read_begin() };

        let mut found = false;
        'scan: for bucket_idx in [ks.i1, ks.i2] {
            let m = raw.meta(bucket_idx);
            let mut cand = m.match_tag_mask(ks.tag) & m.occupied_mask();
            while cand != 0 {
                let slot = cand.trailing_zeros() as usize;
                cand &= cand - 1;
                // SAFETY: `slot < B`; validated below.
                if unsafe { raw.read_key_racy(bucket_idx, slot) } == *key {
                    found = true;
                    break 'scan;
                }
            }
            if ks.i2 == ks.i1 {
                break;
            }
        }

        if s1.read_validate(st1) && (same_stripe || s2.read_validate(st2)) {
            return found;
        }
        crate::sync::backoff(&mut spins);
        watchdog += 1;
        debug_assert!(
            watchdog < 100_000_000,
            "optimistic contains starved: ks={ks:?}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::RandomState;
    use crate::hashing::key_slots;

    #[test]
    fn get_and_contains_roundtrip() {
        let raw: RawTable<u64, u64, 8> = RawTable::with_capacity(1 << 12);
        let stripes = LockStripes::new(64);
        let hb = RandomState::with_seed(3);
        for key in 0..500u64 {
            let ks = key_slots(&hb, &key, raw.mask());
            // Place directly via a locked-writer protocol.
            let g = stripes.lock_pair(ks.i1, ks.i2);
            let slot = raw.meta(ks.i1).empty_slot().expect("low occupancy");
            // SAFETY: pair lock held.
            unsafe { raw.write_entry_racy(ks.i1, slot, ks.tag, key, key * 3) };
            drop(g);
        }
        for key in 0..500u64 {
            let ks = key_slots(&hb, &key, raw.mask());
            assert_eq!(get(&raw, &stripes, ks, &key), Some(key * 3));
            assert!(contains(&raw, &stripes, ks, &key));
        }
        for key in 500..600u64 {
            let ks = key_slots(&hb, &key, raw.mask());
            assert_eq!(get(&raw, &stripes, ks, &key), None);
            assert!(!contains(&raw, &stripes, ks, &key));
        }
    }

    #[test]
    fn tag_collision_with_different_key_is_not_a_hit() {
        let raw: RawTable<u64, u64, 4> = RawTable::with_capacity(4096);
        let stripes = LockStripes::new(16);
        let hb = RandomState::with_seed(5);
        let ks = key_slots(&hb, &123u64, raw.mask());
        // A *different* key with the same tag in the same bucket.
        // SAFETY: single-threaded.
        unsafe { raw.write_entry_racy(ks.i1, 0, ks.tag, 999u64, 7u64) };
        assert_eq!(get(&raw, &stripes, ks, &123u64), None);
        assert!(!contains(&raw, &stripes, ks, &123u64));
        let ks999 = KeySlots { ..ks };
        assert_eq!(get(&raw, &stripes, ks999, &999u64), Some(7));
    }

    #[test]
    fn readers_make_progress_alongside_writers() {
        // A writer hammers one key's value while readers verify they only
        // ever observe complete values (never torn halves).
        let raw: RawTable<u64, [u64; 4], 4> = RawTable::with_capacity(4096);
        let stripes = LockStripes::new(16);
        let hb = RandomState::with_seed(9);
        let ks = key_slots(&hb, &1u64, raw.mask());
        {
            let _g = stripes.lock_pair(ks.i1, ks.i2);
            // SAFETY: pair lock held.
            unsafe { raw.write_entry_racy(ks.i1, 0, ks.tag, 1u64, [0u64; 4]) };
        }
        let stop = std::sync::atomic::AtomicBool::new(false);
        let stop = &stop;
        std::thread::scope(|s| {
            s.spawn(|| {
                for i in 0..20_000u64 {
                    let _g = stripes.lock_pair(ks.i1, ks.i2);
                    let b = raw.bucket(ks.i1);
                    // SAFETY: pair lock held; slot 0 occupied.
                    unsafe {
                        htm::mem::store_bytes(
                            b.val_ptr(0) as usize,
                            [i; 4].as_ptr().cast(),
                            32,
                        );
                    }
                }
                stop.store(true, std::sync::atomic::Ordering::Release);
            });
            for _ in 0..2 {
                s.spawn(|| {
                    while !stop.load(std::sync::atomic::Ordering::Acquire) {
                        if let Some(v) = get(&raw, &stripes, ks, &1u64) {
                            assert!(
                                v.iter().all(|&x| x == v[0]),
                                "torn read escaped validation: {v:?}"
                            );
                        }
                    }
                });
            }
        });
    }
}
