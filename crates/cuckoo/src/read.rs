//! Lock-free optimistic reads (paper §4.2).
//!
//! Readers take no locks and dirty no cache lines: they stamp the version
//! counters of both candidate buckets' stripes, scan the buckets with
//! racy-but-race-free copies, and re-validate the stamps. Any concurrent
//! writer — fine-grained locker (odd version while held), global-lock
//! holder, or committing transaction (seqlock bumps around publication) —
//! moves a stamp and sends the reader around again. Because writers move
//! *holes* backwards rather than items forwards (§4.2), a present key is
//! never missing mid-displacement; at worst it is momentarily duplicated,
//! which a reader resolves to either copy (both carry the same value).
//!
//! Retries are **bounded**: under a writer storm (a stripe whose version
//! never stops moving) the optimistic loop abandons after
//! [`MAX_OPTIMISTIC_RETRIES`] attempts and takes the stripe pair locks,
//! which guarantees one consistent scan in bounded time instead of
//! retrying forever. The model checker surfaced the unbounded loop: a
//! schedule that always interleaves a version bump between `read_begin`
//! and `read_validate` starves the reader permanently.

use crate::hashing::KeySlots;
use crate::raw::RawTable;
use crate::stats::TableMetrics;
use crate::sync::{LockStripes, ReadStamp};
use htm::Plain;

/// Optimistic validation attempts before falling back to the locked
/// path. Failed validations are rare (a writer touched one of the two
/// stripes mid-scan), and consecutive failures rarer still; 64 failures
/// means sustained writer pressure on this stripe pair, at which point
/// queueing on the lock is both faster and fair.
const MAX_OPTIMISTIC_RETRIES: u32 = 64;

/// Keys per software-pipelined lookup group (the batched `get_many`
/// engine). Sized like the paper's prefetch argument (§4.3.2) sizes the
/// BFS frontier: large enough that by the time the first key's bucket
/// lines are demanded the later keys' prefetches are in flight (covering
/// a DRAM-latency's worth of independent misses — ~8 lines at ≈80 ns
/// latency and ≈10 ns/line of pipeline work), small enough that G keys'
/// staged state (stamps + candidate masks) stays register/L1-resident
/// and the earliest prefetched lines are not evicted before use.
pub(crate) const MULTIGET_GROUP: usize = 8;

/// Probes one bucket's candidate slots (a SWAR tag-match mask) for
/// `key`, returning the racy value copy on a full-key match.
///
/// # Safety contract (internal)
///
/// The mask must come from `meta(bucket_idx)` (so every set bit is
/// `< B`); the copies may be torn and the caller discards them unless
/// its stripe stamps validate or it holds the pair lock.
#[inline]
fn probe_mask<K, V, const B: usize>(
    raw: &RawTable<K, V, B>,
    bucket_idx: usize,
    mut cand: u16,
    key: &K,
) -> Option<V>
where
    K: Plain + Eq,
    V: Plain,
{
    while cand != 0 {
        let slot = cand.trailing_zeros() as usize;
        cand &= cand - 1;
        // SAFETY: `slot < B` (from the B-bit candidate mask); the
        // copy may be torn, and the caller discards it unless the
        // stamps validate / the pair lock was held (seqlock ordering
        // argument: DESIGN.md §5d).
        let k = unsafe { raw.read_key_racy(bucket_idx, slot) };
        if k == *key {
            // SAFETY: as above.
            return Some(unsafe { raw.read_val_racy(bucket_idx, slot) });
        }
    }
    None
}

/// Scans both candidate buckets for `key`, returning the value copy.
///
/// The copies are racy; the caller makes them trustworthy either by
/// validating stripe stamps around the call (optimistic path) or by
/// holding the stripe pair locks across it (fallback path).
fn scan_value<K, V, const B: usize>(
    raw: &RawTable<K, V, B>,
    ks: KeySlots,
    key: &K,
) -> Option<V>
where
    K: Plain + Eq,
    V: Plain,
{
    let m1 = raw.meta(ks.i1);
    // SWAR: all candidate slots (tag match AND occupied) in two loads.
    let cand1 = m1.match_tag_mask(ks.tag) & m1.occupied_mask();
    if ks.i2 == ks.i1 {
        return probe_mask(raw, ks.i1, cand1, key);
    }
    if cand1 == 0 {
        // Tag miss in the primary: the lookup is headed for the
        // alternate bucket, so start pulling its entry storage now —
        // the data-line fetch overlaps the alternate metadata check
        // that decides whether to probe it.
        raw.prefetch_data(ks.i2);
    }
    if let Some(v) = probe_mask(raw, ks.i1, cand1, key) {
        return Some(v);
    }
    let m2 = raw.meta(ks.i2);
    let cand2 = m2.match_tag_mask(ks.tag) & m2.occupied_mask();
    probe_mask(raw, ks.i2, cand2, key)
}

/// Presence-only variant of [`scan_value`] (no value copy).
fn scan_present<K, V, const B: usize>(
    raw: &RawTable<K, V, B>,
    ks: KeySlots,
    key: &K,
) -> bool
where
    K: Plain + Eq,
{
    for bucket_idx in [ks.i1, ks.i2] {
        let m = raw.meta(bucket_idx);
        let mut cand = m.match_tag_mask(ks.tag) & m.occupied_mask();
        while cand != 0 {
            let slot = cand.trailing_zeros() as usize;
            cand &= cand - 1;
            // SAFETY: `slot < B`; racy copy, validated or locked by the
            // caller as in [`scan_value`].
            if unsafe { raw.read_key_racy(bucket_idx, slot) } == *key {
                return true;
            }
        }
        if ks.i2 == ks.i1 {
            break;
        }
    }
    false
}

/// Optimistically reads `key`'s value, falling back to the stripe locks
/// after [`MAX_OPTIMISTIC_RETRIES`] failed validations.
pub(crate) fn get<K, V, const B: usize>(
    raw: &RawTable<K, V, B>,
    stripes: &LockStripes,
    m: &TableMetrics,
    ks: KeySlots,
    key: &K,
) -> Option<V>
where
    K: Plain + Eq,
    V: Plain,
{
    let mut spins = 0u32;
    for _ in 0..MAX_OPTIMISTIC_RETRIES {
        if let Some(result) = try_get(raw, stripes, ks, key) {
            return result;
        }
        // A failed validation means a writer holds (or bumped) a stripe;
        // hammering the version counters only slows that writer down.
        // (Metrics are bumped only here on the failure path — a
        // first-attempt success never touches a shared counter line.)
        m.read_retries.inc();
        crate::sync::backoff(&mut spins);
    }
    // Writer storm on this stripe pair: take the locks. Writers mutating
    // these buckets hold the same pair, so the scan below is consistent
    // and the racy copies cannot tear.
    m.read_lock_fallbacks.inc();
    let _g = stripes.lock_pair(ks.i1, ks.i2);
    scan_value(raw, ks, key)
}

/// Per-key state the batched pipeline carries from the stamping stage to
/// the probing stage.
#[derive(Clone, Copy)]
struct Staged {
    st1: ReadStamp,
    st2: ReadStamp,
    same_stripe: bool,
    cand1: u16,
    cand2: u16,
}

/// Software-pipelined batched lookup over one group of at most
/// [`MULTIGET_GROUP`] keys (`ks`, `keys`, and `out` are parallel).
///
/// The stages interleave *across* keys so each key's cache misses
/// overlap the others':
///
/// 1. **prefetch metadata** — both candidate `BucketMeta` words for
///    every key are requested before any is read;
/// 2. **stamp + tag-match + prefetch data** — per key: stamp the stripe
///    versions, SWAR-probe the (now warm) metadata, and prefetch the
///    entry storage of buckets reporting a candidate;
/// 3. **probe + validate** — per key: full-key compare the candidates
///    (data lines now warm) and validate the stamps. Stamp movement
///    means a writer touched the pair mid-pipeline; that key alone
///    falls back to the single-key path (bounded retries, then locks).
///
/// Correctness is the single-key argument unchanged: the candidate
/// masks read in stage 2 and the entries probed in stage 3 are all
/// loads between `read_begin` and `read_validate` on the same stamps,
/// so a passing validation proves none of it was concurrently written.
/// Prefetches are hints and carry no ordering obligations.
pub(crate) fn get_group<K, V, const B: usize>(
    raw: &RawTable<K, V, B>,
    stripes: &LockStripes,
    m: &TableMetrics,
    ks: &[KeySlots],
    keys: &[K],
    out: &mut [Option<V>],
) where
    K: Plain + Eq,
    V: Plain,
{
    debug_assert!(keys.len() <= MULTIGET_GROUP);
    debug_assert!(ks.len() == keys.len() && out.len() == keys.len());
    // Stage 1: issue every key's metadata prefetches back-to-back.
    for k in ks {
        raw.prefetch_meta(k.i1);
        raw.prefetch_meta(k.i2);
    }
    // Stage 2: stamp stripes, SWAR-match tags, prefetch hit buckets.
    let mut staged = [Staged {
        st1: ReadStamp::default(),
        st2: ReadStamp::default(),
        same_stripe: true,
        cand1: 0,
        cand2: 0,
    }; MULTIGET_GROUP];
    for (j, k) in ks.iter().enumerate() {
        let s1 = stripes.stripe(k.i1);
        let s2 = stripes.stripe(k.i2);
        let same_stripe = stripes.stripe_of(k.i1) == stripes.stripe_of(k.i2);
        let st1 = s1.read_begin();
        let st2 = if same_stripe { st1 } else { s2.read_begin() };
        let m1 = raw.meta(k.i1);
        let cand1 = m1.match_tag_mask(k.tag) & m1.occupied_mask();
        let cand2 = if k.i2 == k.i1 {
            0
        } else {
            let m2 = raw.meta(k.i2);
            m2.match_tag_mask(k.tag) & m2.occupied_mask()
        };
        if cand1 != 0 {
            raw.prefetch_data(k.i1);
        }
        if cand2 != 0 {
            raw.prefetch_data(k.i2);
        }
        staged[j] = Staged { st1, st2, same_stripe, cand1, cand2 };
    }
    // Stage 3: full-key probes under the captured stamps.
    for (j, k) in ks.iter().enumerate() {
        let st = staged[j];
        let key = &keys[j];
        let found = match probe_mask(raw, k.i1, st.cand1, key) {
            Some(v) => Some(v),
            None => probe_mask(raw, k.i2, st.cand2, key),
        };
        let valid = stripes.stripe(k.i1).read_validate(st.st1)
            && (st.same_stripe || stripes.stripe(k.i2).read_validate(st.st2));
        out[j] = if valid {
            found
        } else {
            // A writer moved one of this key's stripes mid-pipeline;
            // only this key pays for the slow path.
            m.multiget_fallbacks.inc();
            get(raw, stripes, m, *k, key)
        };
    }
}

/// One validated attempt; `None` means a writer interfered — retry.
fn try_get<K, V, const B: usize>(
    raw: &RawTable<K, V, B>,
    stripes: &LockStripes,
    ks: KeySlots,
    key: &K,
) -> Option<Option<V>>
where
    K: Plain + Eq,
    V: Plain,
{
    let s1 = stripes.stripe(ks.i1);
    let s2 = stripes.stripe(ks.i2);
    let same_stripe = stripes.stripe_of(ks.i1) == stripes.stripe_of(ks.i2);

    let st1 = s1.read_begin();
    let st2 = if same_stripe { st1 } else { s2.read_begin() };

    let found = scan_value(raw, ks, key);

    let valid = s1.read_validate(st1) && (same_stripe || s2.read_validate(st2));
    if valid {
        Some(found)
    } else {
        None
    }
}

/// Optimistically checks for `key`'s presence (a value-copy-free `get`),
/// with the same bounded-retry locked fallback as [`get`].
pub(crate) fn contains<K, V, const B: usize>(
    raw: &RawTable<K, V, B>,
    stripes: &LockStripes,
    m: &TableMetrics,
    ks: KeySlots,
    key: &K,
) -> bool
where
    K: Plain + Eq,
{
    let mut spins = 0u32;
    for _ in 0..MAX_OPTIMISTIC_RETRIES {
        let s1 = stripes.stripe(ks.i1);
        let s2 = stripes.stripe(ks.i2);
        let same_stripe = stripes.stripe_of(ks.i1) == stripes.stripe_of(ks.i2);
        let st1 = s1.read_begin();
        let st2 = if same_stripe { st1 } else { s2.read_begin() };

        let found = scan_present(raw, ks, key);

        if s1.read_validate(st1) && (same_stripe || s2.read_validate(st2)) {
            return found;
        }
        m.read_retries.inc();
        crate::sync::backoff(&mut spins);
    }
    m.read_lock_fallbacks.inc();
    let _g = stripes.lock_pair(ks.i1, ks.i2);
    scan_present(raw, ks, key)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::RandomState;
    use crate::hashing::key_slots;

    #[test]
    fn get_and_contains_roundtrip() {
        let raw: RawTable<u64, u64, 8> = RawTable::with_capacity(1 << 12);
        let stripes = LockStripes::new(64);
        let hb = RandomState::with_seed(3);
        let tm = TableMetrics::new();
        for key in 0..500u64 {
            let ks = key_slots(&hb, &key, raw.mask());
            // Place directly via a locked-writer protocol.
            let g = stripes.lock_pair(ks.i1, ks.i2);
            let slot = raw.meta(ks.i1).empty_slot().expect("low occupancy");
            // SAFETY: pair lock held.
            unsafe { raw.write_entry_racy(ks.i1, slot, ks.tag, key, key * 3) };
            drop(g);
        }
        for key in 0..500u64 {
            let ks = key_slots(&hb, &key, raw.mask());
            assert_eq!(get(&raw, &stripes, &tm, ks, &key), Some(key * 3));
            assert!(contains(&raw, &stripes, &tm, ks, &key));
        }
        for key in 500..600u64 {
            let ks = key_slots(&hb, &key, raw.mask());
            assert_eq!(get(&raw, &stripes, &tm, ks, &key), None);
            assert!(!contains(&raw, &stripes, &tm, ks, &key));
        }
    }

    #[test]
    fn get_group_matches_single_gets() {
        let raw: RawTable<u64, u64, 8> = RawTable::with_capacity(1 << 12);
        let stripes = LockStripes::new(64);
        let hb = RandomState::with_seed(21);
        let tm = TableMetrics::new();
        for key in 0..400u64 {
            let ks = key_slots(&hb, &key, raw.mask());
            let g = stripes.lock_pair(ks.i1, ks.i2);
            let slot = raw.meta(ks.i1).empty_slot().expect("low occupancy");
            // SAFETY: pair lock held.
            unsafe { raw.write_entry_racy(ks.i1, slot, ks.tag, key, key ^ 0xdead) };
            drop(g);
        }
        // Hits, misses, and duplicates within one group.
        let keys: Vec<u64> = vec![0, 1, 999_999, 2, 2, 888_888, 3, 0];
        let ks: Vec<KeySlots> = keys.iter().map(|k| key_slots(&hb, k, raw.mask())).collect();
        let mut out = vec![None; keys.len()];
        get_group(&raw, &stripes, &tm, &ks, &keys, &mut out);
        for (j, key) in keys.iter().enumerate() {
            assert_eq!(out[j], get(&raw, &stripes, &tm, ks[j], key), "key {key}");
        }
        // Short (partial) group.
        let mut short = vec![None; 3];
        get_group(&raw, &stripes, &tm, &ks[..3], &keys[..3], &mut short);
        assert_eq!(short, out[..3].to_vec());
    }

    #[test]
    fn get_group_falls_back_under_writer_pressure() {
        // Hold a stripe's version odd-adjacent behavior via a lock/unlock
        // storm while the group pipeline runs: invalidated keys must take
        // the single-key fallback and still return correct results.
        let raw: RawTable<u64, u64, 8> = RawTable::with_capacity(4096);
        let stripes = LockStripes::new(16);
        let hb = RandomState::with_seed(31);
        let tm = TableMetrics::new();
        let keys: Vec<u64> = (0..64).collect();
        for key in &keys {
            let ks = key_slots(&hb, key, raw.mask());
            let g = stripes.lock_pair(ks.i1, ks.i2);
            let slot = raw.meta(ks.i1).empty_slot().expect("low occupancy");
            // SAFETY: pair lock held.
            unsafe { raw.write_entry_racy(ks.i1, slot, ks.tag, *key, key * 7) };
            drop(g);
        }
        let ks: Vec<KeySlots> = keys.iter().map(|k| key_slots(&hb, k, raw.mask())).collect();
        let stop = std::sync::atomic::AtomicBool::new(false);
        let stop = &stop;
        let stripes = &stripes;
        let raw = &raw;
        std::thread::scope(|s| {
            s.spawn(move || {
                while !stop.load(std::sync::atomic::Ordering::Acquire) {
                    for b in 0..16 {
                        let _g = stripes.lock_pair(b, b);
                    }
                }
            });
            for _ in 0..300 {
                for (kc, oc) in ks.chunks(MULTIGET_GROUP).zip(keys.chunks(MULTIGET_GROUP)) {
                    let mut out = vec![None; kc.len()];
                    get_group(raw, stripes, &tm, kc, oc, &mut out);
                    for (j, key) in oc.iter().enumerate() {
                        assert_eq!(out[j], Some(key * 7), "key {key}");
                    }
                }
            }
            stop.store(true, std::sync::atomic::Ordering::Release);
        });
        // With a lock storm running, some keys must have paid a retry or
        // fallback; whatever happened, the counters stay consistent.
        assert!(tm.multiget_fallbacks.get() <= 300 * 64);
    }

    #[test]
    fn tag_collision_with_different_key_is_not_a_hit() {
        let raw: RawTable<u64, u64, 4> = RawTable::with_capacity(4096);
        let stripes = LockStripes::new(16);
        let hb = RandomState::with_seed(5);
        let tm = TableMetrics::new();
        let ks = key_slots(&hb, &123u64, raw.mask());
        // A *different* key with the same tag in the same bucket.
        // SAFETY: single-threaded.
        unsafe { raw.write_entry_racy(ks.i1, 0, ks.tag, 999u64, 7u64) };
        assert_eq!(get(&raw, &stripes, &tm, ks, &123u64), None);
        assert!(!contains(&raw, &stripes, &tm, ks, &123u64));
        let ks999 = KeySlots { ..ks };
        assert_eq!(get(&raw, &stripes, &tm, ks999, &999u64), Some(7));
    }

    /// The bounded-retry fallback must return correct results when every
    /// optimistic attempt fails: pre-bump a stripe to look permanently
    /// unstable (odd version = writer active) and verify the reader
    /// still terminates with the right answer via the locked path.
    #[test]
    fn locked_fallback_terminates_under_permanent_instability() {
        let raw: RawTable<u64, u64, 8> = RawTable::with_capacity(4096);
        let stripes = LockStripes::new(16);
        let hb = RandomState::with_seed(11);
        let tm = TableMetrics::new();
        let key = 42u64;
        let ks = key_slots(&hb, &key, raw.mask());
        {
            let _g = stripes.lock_pair(ks.i1, ks.i2);
            // SAFETY: pair lock held.
            unsafe { raw.write_entry_racy(ks.i1, 0, ks.tag, key, 777u64) };
        }
        // A writer that locks/unlocks the stripe in a tight loop while
        // the reader runs: optimistic validation keeps failing, so the
        // reader must reach the fallback rather than spin forever.
        let stop = std::sync::atomic::AtomicBool::new(false);
        let stop = &stop;
        let stripes = &stripes;
        std::thread::scope(|s| {
            s.spawn(move || {
                while !stop.load(std::sync::atomic::Ordering::Acquire) {
                    let _g = stripes.lock_pair(ks.i1, ks.i1);
                }
            });
            for _ in 0..200 {
                assert_eq!(get(&raw, stripes, &tm, ks, &key), Some(777));
                assert!(contains(&raw, stripes, &tm, ks, &key));
                assert_eq!(get(&raw, stripes, &tm, ks, &(key + 1)), None);
            }
            stop.store(true, std::sync::atomic::Ordering::Release);
        });
    }

    #[test]
    fn readers_make_progress_alongside_writers() {
        // A writer hammers one key's value while readers verify they only
        // ever observe complete values (never torn halves).
        let raw: RawTable<u64, [u64; 4], 4> = RawTable::with_capacity(4096);
        let stripes = LockStripes::new(16);
        let hb = RandomState::with_seed(9);
        let tm = TableMetrics::new();
        let ks = key_slots(&hb, &1u64, raw.mask());
        {
            let _g = stripes.lock_pair(ks.i1, ks.i2);
            // SAFETY: pair lock held.
            unsafe { raw.write_entry_racy(ks.i1, 0, ks.tag, 1u64, [0u64; 4]) };
        }
        let stop = std::sync::atomic::AtomicBool::new(false);
        let stop = &stop;
        std::thread::scope(|s| {
            s.spawn(|| {
                for i in 0..20_000u64 {
                    let _g = stripes.lock_pair(ks.i1, ks.i2);
                    let b = raw.bucket(ks.i1);
                    // SAFETY: pair lock held; slot 0 occupied.
                    unsafe {
                        htm::mem::store_bytes(
                            b.val_ptr(0) as usize,
                            [i; 4].as_ptr().cast(),
                            32,
                        );
                    }
                }
                stop.store(true, std::sync::atomic::Ordering::Release);
            });
            for _ in 0..2 {
                s.spawn(|| {
                    while !stop.load(std::sync::atomic::Ordering::Acquire) {
                        if let Some(v) = get(&raw, &stripes, &tm, ks, &1u64) {
                            assert!(
                                v.iter().all(|&x| x == v[0]),
                                "torn read escaped validation: {v:?}"
                            );
                        }
                    }
                });
            }
        });
    }
}
