//! Baseline hash tables from the paper's evaluation (§2, §6).
//!
//! The paper compares its cuckoo tables against three other designs; this
//! crate implements all of them from scratch:
//!
//! - [`DenseMap`] / [`ConcurrentDense`] — Google `dense_hash_map` analog:
//!   open addressing with quadratic probing, a 0.5 maximum load factor,
//!   and a single flat entry array ("sacrifices space efficiency for
//!   extremely high speed"). Single-writer; the concurrent wrapper
//!   serializes through a global lock, optionally elided (Figure 2).
//! - [`NodeChainMap`] / [`ConcurrentNodeChain`] — C++11
//!   `std::unordered_map` analog: separate chaining with one allocation
//!   per entry, which is exactly the pointer overhead the paper charges
//!   against chaining tables for small key-value pairs. Node storage
//!   comes from a pre-allocated arena so elided inserts do not allocate
//!   inside the transactional region (the paper's §5 advice).
//! - [`ChainingMap`] — Intel TBB `concurrent_hash_map` analog: separate
//!   chaining with striped reader-writer bucket locks, concurrent readers
//!   *and* writers, and lock-all-and-double expansion.
//!
//! `DenseMap` and `NodeChainMap` route all memory access through
//! [`htm::MemCtx`], so their global-lock wrappers can elide the lock with
//! genuine conflict detection — reproducing the paper's §2.3 experiment
//! where naive lock elision fails to scale single-writer tables.

pub mod chaining;
pub mod dense;
pub mod locked;
pub mod node_chain;

pub use chaining::ChainingMap;
pub use dense::{ConcurrentDense, DenseMap};
pub use locked::LockKind;
pub use node_chain::{ConcurrentNodeChain, NodeChainMap};

/// Insert error shared by the baseline tables (mirrors
/// `cuckoo::InsertError` without a dependency cycle).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertError {
    /// The table cannot accept more items (fixed-capacity variants).
    TableFull,
    /// The key is already present.
    KeyExists,
}

impl core::fmt::Display for InsertError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            InsertError::TableFull => write!(f, "hash table too full to insert"),
            InsertError::KeyExists => write!(f, "key already exists"),
        }
    }
}

impl std::error::Error for InsertError {}
