//! Google `dense_hash_map` analog (paper §2.1).
//!
//! "Dense hash sacrifices space efficiency for extremely high speed: It
//! uses open addressing with quadratic internal probing. It maintains a
//! maximum 0.5 load factor by default, and stores entries in a single
//! large array."
//!
//! [`DenseTable`] is the storage plus [`htm::MemCtx`]-generic operations;
//! [`DenseMap`] is the safe single-threaded owner (`&mut self`), and
//! [`ConcurrentDense`] (see [`crate::locked`]) wraps it in a global —
//! optionally elided — lock for the paper's §2.3 experiment. Quadratic
//! probing uses triangular increments (`h + i(i+1)/2`), which visit every
//! slot of a power-of-two table exactly once.
//!
//! Element counters live *outside* the critical sections, mirroring the
//! paper's setup: "Global counters were removed in cuckoo hash table and
//! dense_hash_map to avoid obvious common data conflicts."

use crate::InsertError;
use core::cell::UnsafeCell;
use core::hash::{BuildHasher, Hash};
use core::mem::MaybeUninit;
use htm::{Abort, DirectCtx, MemCtx, Plain};
use std::collections::hash_map::RandomState;

/// Slot states.
const EMPTY: u8 = 0;
const FULL: u8 = 1;
const DELETED: u8 = 2;

/// Open-addressed storage with `MemCtx`-generic operations.
///
/// All slot access goes through a [`MemCtx`], so the same code runs under
/// a real lock (via [`DirectCtx`]) or inside a simulated hardware
/// transaction — in the latter case the probe sequence lands in the
/// transaction's read set, faithfully reproducing why long probe chains
/// made naive lock elision abort so often (§2.3).
pub struct DenseTable<K, V, S = RandomState> {
    states: Box<[UnsafeCell<u8>]>,
    keys: Box<[UnsafeCell<MaybeUninit<K>>]>,
    vals: Box<[UnsafeCell<MaybeUninit<V>>]>,
    mask: usize,
    hash_builder: S,
}

// SAFETY: the table is inert data; all concurrent access is mediated by
// the caller's lock/transaction discipline (documented on each unsafe
// method). `Plain` entry types are `Copy`, so no drop obligations cross
// threads.
unsafe impl<K: Plain + Send + Sync, V: Plain + Send + Sync, S: Send + Sync> Sync
    for DenseTable<K, V, S>
{
}
// SAFETY: as above.
unsafe impl<K: Plain + Send, V: Plain + Send, S: Send> Send for DenseTable<K, V, S> {}

impl<K, V, S> DenseTable<K, V, S>
where
    K: Plain + Eq + Hash,
    V: Plain,
    S: BuildHasher,
{
    /// Creates a table able to hold `capacity` items at ≤ 0.5 load
    /// (allocates `2 * capacity` slots, rounded up to a power of two).
    pub fn with_capacity_and_hasher(capacity: usize, hash_builder: S) -> Self {
        let slots = (capacity.max(8) * 2).next_power_of_two();
        DenseTable {
            states: (0..slots).map(|_| UnsafeCell::new(EMPTY)).collect(),
            keys: (0..slots)
                .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                .collect(),
            vals: (0..slots)
                .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                .collect(),
            mask: slots - 1,
            hash_builder,
        }
    }

    /// Total slots (items supported = half of this).
    #[inline]
    pub fn slots(&self) -> usize {
        self.mask + 1
    }

    /// Maximum items before the 0.5 load-factor cap.
    #[inline]
    pub fn item_capacity(&self) -> usize {
        self.slots() / 2
    }

    /// Bytes occupied by the flat arrays.
    pub fn memory_bytes(&self) -> usize {
        self.slots()
            * (core::mem::size_of::<u8>()
                + core::mem::size_of::<K>()
                + core::mem::size_of::<V>())
    }

    #[inline]
    fn bucket_of(&self, key: &K) -> usize {
        (self.hash_builder.hash_one(key) as usize) & self.mask
    }

    /// Inserts through `ctx`.
    ///
    /// # Safety
    ///
    /// The caller must hold the table's writer-side mutual exclusion
    /// (global lock) or run inside a transaction of the covering domain.
    pub unsafe fn insert_ctx<C: MemCtx>(
        &self,
        ctx: &mut C,
        key: K,
        val: V,
    ) -> Result<Result<(), InsertError>, Abort> {
        let mut idx = self.bucket_of(&key);
        let mut first_tombstone: Option<usize> = None;
        for i in 0..=self.mask {
            // SAFETY: `idx <= mask`; storage outlives the section.
            let state = unsafe { ctx.load(self.states[idx].get())? };
            match state {
                EMPTY => {
                    let target = first_tombstone.unwrap_or(idx);
                    // SAFETY: as above; the slot is empty or tombstoned.
                    unsafe {
                        ctx.store(self.keys[target].get().cast::<K>(), key)?;
                        ctx.store(self.vals[target].get().cast::<V>(), val)?;
                        ctx.store(self.states[target].get(), FULL)?;
                    }
                    return Ok(Ok(()));
                }
                DELETED => {
                    if first_tombstone.is_none() {
                        first_tombstone = Some(idx);
                    }
                }
                _ => {
                    // SAFETY: FULL slot holds an initialized key.
                    let k = unsafe { ctx.load(self.keys[idx].get().cast::<K>())? };
                    if k == key {
                        return Ok(Err(InsertError::KeyExists));
                    }
                }
            }
            idx = (idx + i + 1) & self.mask;
        }
        if let Some(target) = first_tombstone {
            // SAFETY: as above.
            unsafe {
                ctx.store(self.keys[target].get().cast::<K>(), key)?;
                ctx.store(self.vals[target].get().cast::<V>(), val)?;
                ctx.store(self.states[target].get(), FULL)?;
            }
            return Ok(Ok(()));
        }
        Ok(Err(InsertError::TableFull))
    }

    /// Looks up through `ctx`.
    ///
    /// # Safety
    ///
    /// Caller must hold the lock or run transactionally, as for
    /// [`DenseTable::insert_ctx`].
    pub unsafe fn get_ctx<C: MemCtx>(&self, ctx: &mut C, key: &K) -> Result<Option<V>, Abort> {
        let mut idx = self.bucket_of(key);
        for i in 0..=self.mask {
            // SAFETY: in-bounds; storage outlives the section.
            let state = unsafe { ctx.load(self.states[idx].get())? };
            match state {
                EMPTY => return Ok(None),
                FULL => {
                    // SAFETY: FULL slot holds an initialized key.
                    let k = unsafe { ctx.load(self.keys[idx].get().cast::<K>())? };
                    if k == *key {
                        // SAFETY: and an initialized value.
                        return Ok(Some(unsafe {
                            ctx.load(self.vals[idx].get().cast::<V>())?
                        }));
                    }
                }
                _ => {}
            }
            idx = (idx + i + 1) & self.mask;
        }
        Ok(None)
    }

    /// Removes through `ctx` (tombstone deletion).
    ///
    /// # Safety
    ///
    /// As for [`DenseTable::insert_ctx`].
    pub unsafe fn remove_ctx<C: MemCtx>(
        &self,
        ctx: &mut C,
        key: &K,
    ) -> Result<Option<V>, Abort> {
        let mut idx = self.bucket_of(key);
        for i in 0..=self.mask {
            // SAFETY: in-bounds; storage outlives the section.
            let state = unsafe { ctx.load(self.states[idx].get())? };
            match state {
                EMPTY => return Ok(None),
                FULL => {
                    // SAFETY: FULL slot holds initialized key/value.
                    let k = unsafe { ctx.load(self.keys[idx].get().cast::<K>())? };
                    if k == *key {
                        // SAFETY: as above.
                        let v = unsafe { ctx.load(self.vals[idx].get().cast::<V>())? };
                        // SAFETY: as above.
                        unsafe { ctx.store(self.states[idx].get(), DELETED)? };
                        return Ok(Some(v));
                    }
                }
                _ => {}
            }
            idx = (idx + i + 1) & self.mask;
        }
        Ok(None)
    }
}

impl<K, V, S> crate::locked::CtxTable for DenseTable<K, V, S>
where
    K: Plain + Eq + Hash,
    V: Plain,
    S: BuildHasher,
{
    type Key = K;
    type Val = V;

    unsafe fn insert_ctx<C: MemCtx>(
        &self,
        ctx: &mut C,
        key: K,
        val: V,
    ) -> Result<Result<(), InsertError>, Abort> {
        // SAFETY: forwarded contract.
        unsafe { DenseTable::insert_ctx(self, ctx, key, val) }
    }

    unsafe fn get_ctx<C: MemCtx>(&self, ctx: &mut C, key: &K) -> Result<Option<V>, Abort> {
        // SAFETY: forwarded contract.
        unsafe { DenseTable::get_ctx(self, ctx, key) }
    }

    unsafe fn remove_ctx<C: MemCtx>(&self, ctx: &mut C, key: &K) -> Result<Option<V>, Abort> {
        // SAFETY: forwarded contract.
        unsafe { DenseTable::remove_ctx(self, ctx, key) }
    }

    fn item_capacity(&self) -> usize {
        DenseTable::item_capacity(self)
    }

    fn memory_bytes(&self) -> usize {
        DenseTable::memory_bytes(self)
    }
}

/// Safe single-threaded owner of a [`DenseTable`].
pub struct DenseMap<K, V, S = RandomState> {
    table: DenseTable<K, V, S>,
    len: usize,
}

impl<K, V> DenseMap<K, V, RandomState>
where
    K: Plain + Eq + Hash,
    V: Plain,
{
    /// Creates a map able to hold `capacity` items.
    pub fn with_capacity(capacity: usize) -> Self {
        DenseMap {
            table: DenseTable::with_capacity_and_hasher(capacity, RandomState::new()),
            len: 0,
        }
    }
}

impl<K, V, S> DenseMap<K, V, S>
where
    K: Plain + Eq + Hash,
    V: Plain,
    S: BuildHasher,
{
    /// Inserts `key → val`, enforcing the 0.5 load-factor cap.
    pub fn insert(&mut self, key: K, val: V) -> Result<(), InsertError> {
        if self.len >= self.table.item_capacity() {
            return Err(InsertError::TableFull);
        }
        let mut ctx = DirectCtx::new();
        // SAFETY: `&mut self` is the required mutual exclusion.
        let r = unsafe { self.table.insert_ctx(&mut ctx, key, val) }
            .expect("direct ctx cannot abort");
        if r.is_ok() {
            self.len += 1;
        }
        r
    }

    /// Looks up `key`.
    pub fn get(&self, key: &K) -> Option<V> {
        let mut ctx = DirectCtx::new();
        // SAFETY: shared reads on a single-threaded map are exclusive
        // enough (no writer can exist while `&self` is live... writers
        // need `&mut self`).
        unsafe { self.table.get_ctx(&mut ctx, key) }.expect("direct ctx cannot abort")
    }

    /// Removes `key`.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let mut ctx = DirectCtx::new();
        // SAFETY: `&mut self` is the required mutual exclusion.
        let r = unsafe { self.table.remove_ctx(&mut ctx, key) }.expect("direct ctx cannot abort");
        if r.is_some() {
            self.len -= 1;
        }
        r
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Maximum items (0.5 load factor).
    pub fn capacity(&self) -> usize {
        self.table.item_capacity()
    }

    /// Bytes occupied.
    pub fn memory_bytes(&self) -> usize {
        self.table.memory_bytes()
    }
}

/// Global-lock (optionally elided) concurrent wrapper.
pub type ConcurrentDense<K, V, S = RandomState> = crate::locked::Locked<DenseTable<K, V, S>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let mut m: DenseMap<u64, u64> = DenseMap::with_capacity(1000);
        for k in 0..500u64 {
            m.insert(k, k * 2).unwrap();
        }
        assert_eq!(m.len(), 500);
        assert_eq!(m.insert(3, 9), Err(InsertError::KeyExists));
        for k in 0..500u64 {
            assert_eq!(m.get(&k), Some(k * 2));
        }
        assert_eq!(m.get(&9999), None);
        assert_eq!(m.remove(&100), Some(200));
        assert_eq!(m.remove(&100), None);
        assert_eq!(m.len(), 499);
        // Tombstone reuse: reinsert over the deleted slot.
        m.insert(100, 7).unwrap();
        assert_eq!(m.get(&100), Some(7));
    }

    #[test]
    fn load_factor_capped_at_half() {
        let mut m: DenseMap<u64, u64> = DenseMap::with_capacity(100);
        let cap = m.capacity();
        assert_eq!(cap * 2, m.table.slots());
        for k in 0..cap as u64 {
            m.insert(k, k).unwrap();
        }
        assert_eq!(m.insert(u64::MAX, 0), Err(InsertError::TableFull));
    }

    #[test]
    fn quadratic_probe_survives_dense_cluster() {
        // Keys engineered to collide would be hard with SipHash; instead
        // fill to the cap and verify everything is findable (probe chains
        // must terminate and cover).
        let mut m: DenseMap<u64, u64> = DenseMap::with_capacity(4096);
        let cap = m.capacity() as u64;
        for k in 0..cap {
            m.insert(k.wrapping_mul(0x9e3779b9), k).unwrap();
        }
        for k in 0..cap {
            assert_eq!(m.get(&k.wrapping_mul(0x9e3779b9)), Some(k));
        }
    }

    #[test]
    fn delete_heavy_churn_with_tombstones() {
        let mut m: DenseMap<u64, u64> = DenseMap::with_capacity(256);
        for round in 0..20u64 {
            for k in 0..200u64 {
                m.insert(round * 1000 + k, k).unwrap();
            }
            for k in 0..200u64 {
                assert_eq!(m.remove(&(round * 1000 + k)), Some(k));
            }
        }
        assert!(m.is_empty());
    }

    #[test]
    fn memory_accounting() {
        let m: DenseMap<u64, u64> = DenseMap::with_capacity(1 << 10);
        // 2^11 slots * (1 + 8 + 8) bytes.
        assert_eq!(m.memory_bytes(), (1 << 11) * 17);
    }
}
