//! Global-lock (and elided-global-lock) wrappers (paper §2.3).
//!
//! The paper's first experiment wraps single-writer tables in a global
//! pthread lock, then enables TSX lock elision on it, and shows neither
//! scales: "with global pthread locks, each hash table's multi-thread
//! aggregate write throughput is much lower than that of a single thread
//! ... By enabling TSX lock elision, the aggregate write throughput is
//! higher than that with pthread global locks, but still much lower than
//! the single thread throughput."
//!
//! [`Locked`] reproduces both configurations over any [`CtxTable`]: a
//! `parking_lot::Mutex` (the pthread-mutex stand-in) or an
//! [`htm::ElidedLock`] whose transactions execute the table's
//! `MemCtx`-generic operations with genuine conflict detection.
//!
//! The element count is maintained *outside* the critical section (the
//! paper removed global counters from the benchmarked tables because they
//! are "obvious common data conflicts" — principle P1).

use crate::InsertError;
use htm::{Abort, DirectCtx, ElidedLock, ElisionConfig, ExecCtx, HtmDomain, MemCtx, StatsSnapshot};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A table whose operations are written against [`MemCtx`].
pub trait CtxTable {
    /// Key type.
    type Key;
    /// Value type.
    type Val;

    /// Inserts through `ctx`.
    ///
    /// # Safety
    ///
    /// Caller must provide writer-side mutual exclusion (a held lock or a
    /// transactional context over a domain shared by all writers).
    unsafe fn insert_ctx<C: MemCtx>(
        &self,
        ctx: &mut C,
        key: Self::Key,
        val: Self::Val,
    ) -> Result<Result<(), InsertError>, Abort>;

    /// Looks up through `ctx`.
    ///
    /// # Safety
    ///
    /// As for [`CtxTable::insert_ctx`]; readers also hold the lock in
    /// this design ("only one writer or one reader is allowed at the same
    /// time", §2.1).
    unsafe fn get_ctx<C: MemCtx>(
        &self,
        ctx: &mut C,
        key: &Self::Key,
    ) -> Result<Option<Self::Val>, Abort>;

    /// Removes through `ctx`.
    ///
    /// # Safety
    ///
    /// As for [`CtxTable::insert_ctx`].
    unsafe fn remove_ctx<C: MemCtx>(
        &self,
        ctx: &mut C,
        key: &Self::Key,
    ) -> Result<Option<Self::Val>, Abort>;

    /// Maximum items the table accepts.
    fn item_capacity(&self) -> usize;

    /// Bytes occupied by the table's storage.
    fn memory_bytes(&self) -> usize;
}

/// Which lock protects the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockKind {
    /// A plain global mutex (the paper's pthread global lock).
    Global,
    /// Elided global lock, glibc retry policy (`w/ TSX` in Figure 2).
    ElidedGlibc,
    /// Elided global lock, the paper's optimized policy.
    ElidedOptimized,
}

enum LockImpl {
    Mutex(parking_lot::Mutex<()>),
    Elided(ElidedLock),
}

/// A single-writer table made shareable through one (possibly elided)
/// global lock.
pub struct Locked<T> {
    table: T,
    lock: LockImpl,
    count: AtomicUsize,
}

impl<T: CtxTable> Locked<T> {
    /// Wraps `table` behind the chosen lock.
    pub fn new(table: T, kind: LockKind) -> Self {
        let lock = match kind {
            LockKind::Global => LockImpl::Mutex(parking_lot::Mutex::new(())),
            LockKind::ElidedGlibc => LockImpl::Elided(ElidedLock::new(
                Arc::new(HtmDomain::new()),
                ElisionConfig::glibc(),
            )),
            LockKind::ElidedOptimized => LockImpl::Elided(ElidedLock::new(
                Arc::new(HtmDomain::new()),
                ElisionConfig::optimized(),
            )),
        };
        Locked {
            table,
            lock,
            count: AtomicUsize::new(0),
        }
    }

    /// The wrapped table.
    pub fn table(&self) -> &T {
        &self.table
    }

    fn run<R>(&self, mut f: impl FnMut(&mut ExecCtx<'_, '_>) -> Result<R, Abort>) -> R {
        match &self.lock {
            LockImpl::Mutex(m) => {
                let _g = m.lock();
                let mut ctx = ExecCtx::Direct(DirectCtx::new());
                let r = f(&mut ctx).expect("direct ctx cannot abort");
                ctx.finish();
                r
            }
            LockImpl::Elided(l) => l.execute(f),
        }
    }

    /// Inserts `key → val` under the lock.
    pub fn insert(&self, key: T::Key, val: T::Val) -> Result<(), InsertError>
    where
        T::Key: Copy,
        T::Val: Copy,
    {
        // ORDERING: advisory.relaxed — approximate full-check; the table's own
        // lock serializes the mutation that actually matters.
        if self.count.load(Ordering::Relaxed) >= self.table.item_capacity() {
            return Err(InsertError::TableFull);
        }
        // SAFETY: `run` provides the mutual exclusion `insert_ctx` needs.
        let r = self.run(|ctx| unsafe { self.table.insert_ctx(ctx, key, val) });
        if r.is_ok() {
            self.count.fetch_add(1, Ordering::Relaxed); // ORDERING: advisory.relaxed
        }
        r
    }

    /// Looks up `key` under the lock.
    pub fn get(&self, key: &T::Key) -> Option<T::Val> {
        // SAFETY: as for `insert`.
        self.run(|ctx| unsafe { self.table.get_ctx(ctx, key) })
    }

    /// Removes `key` under the lock.
    pub fn remove(&self, key: &T::Key) -> Option<T::Val> {
        // SAFETY: as for `insert`.
        let r = self.run(|ctx| unsafe { self.table.remove_ctx(ctx, key) });
        if r.is_some() {
            self.count.fetch_sub(1, Ordering::Relaxed); // ORDERING: advisory.relaxed
        }
        r
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.count.load(Ordering::Relaxed) // ORDERING: advisory.relaxed
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum items.
    pub fn capacity(&self) -> usize {
        self.table.item_capacity()
    }

    /// Bytes occupied by the table storage.
    pub fn memory_bytes(&self) -> usize {
        self.table.memory_bytes()
    }

    /// Transactional statistics when elided.
    pub fn htm_stats(&self) -> Option<StatsSnapshot> {
        match &self.lock {
            LockImpl::Mutex(_) => None,
            LockImpl::Elided(l) => Some(l.stats().snapshot()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseTable;
    use std::collections::hash_map::RandomState;

    fn dense(kind: LockKind) -> Locked<DenseTable<u64, u64>> {
        Locked::new(
            DenseTable::with_capacity_and_hasher(10_000, RandomState::new()),
            kind,
        )
    }

    #[test]
    fn crud_under_each_lock_kind() {
        for kind in [
            LockKind::Global,
            LockKind::ElidedGlibc,
            LockKind::ElidedOptimized,
        ] {
            let m = dense(kind);
            for k in 0..1000u64 {
                m.insert(k, k + 1).unwrap();
            }
            assert_eq!(m.insert(0, 0), Err(InsertError::KeyExists), "{kind:?}");
            for k in 0..1000u64 {
                assert_eq!(m.get(&k), Some(k + 1), "{kind:?}");
            }
            assert_eq!(m.remove(&500), Some(501), "{kind:?}");
            assert_eq!(m.len(), 999, "{kind:?}");
        }
    }

    #[test]
    fn concurrent_writers_serialize_correctly() {
        for kind in [LockKind::Global, LockKind::ElidedOptimized] {
            let m = dense(kind);
            std::thread::scope(|s| {
                for t in 0..4u64 {
                    let m = &m;
                    s.spawn(move || {
                        for i in 0..1000u64 {
                            m.insert(t * 100_000 + i, i).unwrap();
                        }
                    });
                }
            });
            assert_eq!(m.len(), 4000, "{kind:?}");
            for t in 0..4u64 {
                for i in 0..1000u64 {
                    assert_eq!(m.get(&(t * 100_000 + i)), Some(i), "{kind:?}");
                }
            }
        }
    }

    #[test]
    fn elided_reports_abort_statistics() {
        let m = dense(LockKind::ElidedGlibc);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let m = &m;
                s.spawn(move || {
                    for i in 0..500u64 {
                        m.insert(t * 100_000 + i, i).unwrap();
                    }
                });
            }
        });
        let stats = m.htm_stats().unwrap();
        assert_eq!(stats.commits + stats.fallbacks, 2000);
        assert!(m.htm_stats().unwrap().starts >= 2000);
        assert!(dense(LockKind::Global).htm_stats().is_none());
    }
}
