//! C++11 `std::unordered_map` analog (paper §2.1).
//!
//! "C++11 introduces an unordered_map implemented as a separate chaining
//! hash table. It has very fast lookup performance, but also at the cost
//! of more memory usage." The cost the paper cares about for small
//! key-value pairs is the **per-entry node**: every item carries a chain
//! pointer, and the bucket array on top of that. This implementation
//! keeps that cost structure — one node per entry, one link per node,
//! a head per bucket — while drawing nodes from a pre-allocated arena
//! with an intrusive freelist, for two reasons:
//!
//! 1. The paper's §5 finding: dynamic allocation inside a transactional
//!    region aborts (system calls); pre-allocation is the fix it
//!    recommends ("it is therefore useful to pre-allocate structures that
//!    may be needed inside the transactional region").
//! 2. Index links (`u32`) let the whole structure run through
//!    [`htm::MemCtx`] for genuine elided execution.

use crate::locked::CtxTable;
use crate::InsertError;
use core::cell::UnsafeCell;
use core::hash::{BuildHasher, Hash};
use core::mem::MaybeUninit;
use htm::{Abort, DirectCtx, MemCtx, Plain};
use std::collections::hash_map::RandomState;

/// Chain terminator / empty freelist marker.
const NIL: u32 = u32::MAX;

/// Arena-backed separate-chaining storage with `MemCtx`-generic ops.
pub struct NodeChainTable<K, V, S = RandomState> {
    heads: Box<[UnsafeCell<u32>]>,
    next: Box<[UnsafeCell<u32>]>,
    keys: Box<[UnsafeCell<MaybeUninit<K>>]>,
    vals: Box<[UnsafeCell<MaybeUninit<V>>]>,
    free_head: UnsafeCell<u32>,
    mask: usize,
    hash_builder: S,
}

// SAFETY: inert storage; concurrent access is mediated by the caller's
// lock/transaction discipline, and `Plain` entries carry no drop
// obligations.
unsafe impl<K: Plain + Send + Sync, V: Plain + Send + Sync, S: Send + Sync> Sync
    for NodeChainTable<K, V, S>
{
}
// SAFETY: as above.
unsafe impl<K: Plain + Send, V: Plain + Send, S: Send> Send for NodeChainTable<K, V, S> {}

impl<K, V, S> NodeChainTable<K, V, S>
where
    K: Plain + Eq + Hash,
    V: Plain,
    S: BuildHasher,
{
    /// Creates a table with `capacity` pre-allocated nodes and one bucket
    /// per expected item (load factor ≈ 1, the `unordered_map` default).
    pub fn with_capacity_and_hasher(capacity: usize, hash_builder: S) -> Self {
        let capacity = capacity.max(8);
        let buckets = capacity.next_power_of_two();
        let next: Box<[UnsafeCell<u32>]> = (0..capacity)
            .map(|i| {
                UnsafeCell::new(if i + 1 < capacity {
                    (i + 1) as u32
                } else {
                    NIL
                })
            })
            .collect();
        NodeChainTable {
            heads: (0..buckets).map(|_| UnsafeCell::new(NIL)).collect(),
            next,
            keys: (0..capacity)
                .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                .collect(),
            vals: (0..capacity)
                .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                .collect(),
            free_head: UnsafeCell::new(0),
            mask: buckets - 1,
            hash_builder,
        }
    }

    /// Number of buckets.
    #[inline]
    pub fn buckets(&self) -> usize {
        self.mask + 1
    }

    /// Bytes occupied: bucket heads + per-node link/key/value arrays.
    /// This is the "more memory usage" the paper attributes to chaining:
    /// compare against a cuckoo table of the same item capacity.
    pub fn table_memory_bytes(&self) -> usize {
        self.heads.len() * 4
            + self.next.len()
                * (4 + core::mem::size_of::<K>() + core::mem::size_of::<V>())
            + 8
    }

    #[inline]
    fn bucket_of(&self, key: &K) -> usize {
        (self.hash_builder.hash_one(key) as usize) & self.mask
    }
}

impl<K, V, S> CtxTable for NodeChainTable<K, V, S>
where
    K: Plain + Eq + Hash,
    V: Plain,
    S: BuildHasher,
{
    type Key = K;
    type Val = V;

    unsafe fn insert_ctx<C: MemCtx>(
        &self,
        ctx: &mut C,
        key: K,
        val: V,
    ) -> Result<Result<(), InsertError>, Abort> {
        let bucket = self.bucket_of(&key);
        // Duplicate scan.
        // SAFETY: all pointers derive from arena storage that outlives
        // the critical section; indices are validated against the arena
        // length by construction (they only ever come from our own
        // stores).
        let head = unsafe { ctx.load(self.heads[bucket].get())? };
        let mut cursor = head;
        while cursor != NIL {
            let i = cursor as usize;
            // SAFETY: as above.
            let k = unsafe { ctx.load(self.keys[i].get().cast::<K>())? };
            if k == key {
                return Ok(Err(InsertError::KeyExists));
            }
            // SAFETY: as above.
            cursor = unsafe { ctx.load(self.next[i].get())? };
        }
        // Pop a node from the freelist.
        // SAFETY: as above.
        let node = unsafe { ctx.load(self.free_head.get())? };
        if node == NIL {
            return Ok(Err(InsertError::TableFull));
        }
        let ni = node as usize;
        // SAFETY: as above; the freelist node's storage is dead and ours.
        unsafe {
            let free_next = ctx.load(self.next[ni].get())?;
            ctx.store(self.free_head.get(), free_next)?;
            ctx.store(self.keys[ni].get().cast::<K>(), key)?;
            ctx.store(self.vals[ni].get().cast::<V>(), val)?;
            ctx.store(self.next[ni].get(), head)?;
            ctx.store(self.heads[bucket].get(), node)?;
        }
        Ok(Ok(()))
    }

    unsafe fn get_ctx<C: MemCtx>(&self, ctx: &mut C, key: &K) -> Result<Option<V>, Abort> {
        let bucket = self.bucket_of(key);
        // SAFETY: as in `insert_ctx`.
        let mut cursor = unsafe { ctx.load(self.heads[bucket].get())? };
        while cursor != NIL {
            let i = cursor as usize;
            // SAFETY: as above.
            let k = unsafe { ctx.load(self.keys[i].get().cast::<K>())? };
            if k == *key {
                // SAFETY: as above.
                return Ok(Some(unsafe { ctx.load(self.vals[i].get().cast::<V>())? }));
            }
            // SAFETY: as above.
            cursor = unsafe { ctx.load(self.next[i].get())? };
        }
        Ok(None)
    }

    unsafe fn remove_ctx<C: MemCtx>(&self, ctx: &mut C, key: &K) -> Result<Option<V>, Abort> {
        let bucket = self.bucket_of(key);
        // SAFETY: as in `insert_ctx`.
        let mut cursor = unsafe { ctx.load(self.heads[bucket].get())? };
        let mut prev: u32 = NIL;
        while cursor != NIL {
            let i = cursor as usize;
            // SAFETY: as above.
            let k = unsafe { ctx.load(self.keys[i].get().cast::<K>())? };
            if k == *key {
                // SAFETY: as above.
                unsafe {
                    let v = ctx.load(self.vals[i].get().cast::<V>())?;
                    let after = ctx.load(self.next[i].get())?;
                    if prev == NIL {
                        ctx.store(self.heads[bucket].get(), after)?;
                    } else {
                        ctx.store(self.next[prev as usize].get(), after)?;
                    }
                    // Push the node back on the freelist.
                    let free = ctx.load(self.free_head.get())?;
                    ctx.store(self.next[i].get(), free)?;
                    ctx.store(self.free_head.get(), cursor)?;
                    return Ok(Some(v));
                }
            }
            prev = cursor;
            // SAFETY: as above.
            cursor = unsafe { ctx.load(self.next[i].get())? };
        }
        Ok(None)
    }

    fn item_capacity(&self) -> usize {
        self.next.len()
    }

    fn memory_bytes(&self) -> usize {
        self.table_memory_bytes()
    }
}

/// Safe single-threaded owner of a [`NodeChainTable`].
pub struct NodeChainMap<K, V, S = RandomState> {
    table: NodeChainTable<K, V, S>,
    len: usize,
}

impl<K, V> NodeChainMap<K, V, RandomState>
where
    K: Plain + Eq + Hash,
    V: Plain,
{
    /// Creates a map with `capacity` pre-allocated nodes.
    pub fn with_capacity(capacity: usize) -> Self {
        NodeChainMap {
            table: NodeChainTable::with_capacity_and_hasher(capacity, RandomState::new()),
            len: 0,
        }
    }
}

impl<K, V, S> NodeChainMap<K, V, S>
where
    K: Plain + Eq + Hash,
    V: Plain,
    S: BuildHasher,
{
    /// Inserts `key → val`.
    pub fn insert(&mut self, key: K, val: V) -> Result<(), InsertError> {
        let mut ctx = DirectCtx::new();
        // SAFETY: `&mut self` provides mutual exclusion.
        let r = unsafe { self.table.insert_ctx(&mut ctx, key, val) }
            .expect("direct ctx cannot abort");
        if r.is_ok() {
            self.len += 1;
        }
        r
    }

    /// Looks up `key`.
    pub fn get(&self, key: &K) -> Option<V> {
        let mut ctx = DirectCtx::new();
        // SAFETY: `&self` excludes writers (they need `&mut self`).
        unsafe { self.table.get_ctx(&mut ctx, key) }.expect("direct ctx cannot abort")
    }

    /// Removes `key`.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let mut ctx = DirectCtx::new();
        // SAFETY: `&mut self` provides mutual exclusion.
        let r = unsafe { self.table.remove_ctx(&mut ctx, key) }.expect("direct ctx cannot abort");
        if r.is_some() {
            self.len -= 1;
        }
        r
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Node capacity.
    pub fn capacity(&self) -> usize {
        self.table.item_capacity()
    }

    /// Bytes occupied.
    pub fn memory_bytes(&self) -> usize {
        self.table.table_memory_bytes()
    }
}

/// Global-lock (optionally elided) concurrent wrapper.
pub type ConcurrentNodeChain<K, V, S = RandomState> =
    crate::locked::Locked<NodeChainTable<K, V, S>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_chains() {
        let mut m: NodeChainMap<u64, u64> = NodeChainMap::with_capacity(1000);
        for k in 0..800u64 {
            m.insert(k, k * 3).unwrap();
        }
        assert_eq!(m.len(), 800);
        assert_eq!(m.insert(1, 0), Err(InsertError::KeyExists));
        for k in 0..800u64 {
            assert_eq!(m.get(&k), Some(k * 3));
        }
        assert_eq!(m.get(&9999), None);
        // Remove from head, middle, tail of chains.
        for k in (0..800u64).step_by(3) {
            assert_eq!(m.remove(&k), Some(k * 3));
        }
        for k in 0..800u64 {
            let expect = if k % 3 == 0 { None } else { Some(k * 3) };
            assert_eq!(m.get(&k), expect);
        }
    }

    #[test]
    fn arena_exhaustion_reports_full() {
        let mut m: NodeChainMap<u64, u64> = NodeChainMap::with_capacity(64);
        let cap = m.capacity() as u64;
        for k in 0..cap {
            m.insert(k, k).unwrap();
        }
        assert_eq!(m.insert(u64::MAX, 0), Err(InsertError::TableFull));
        // Freeing one node makes room for exactly one more.
        m.remove(&0).unwrap();
        m.insert(u64::MAX, 7).unwrap();
        assert_eq!(m.get(&u64::MAX), Some(7));
    }

    #[test]
    fn freelist_recycles_under_churn() {
        let mut m: NodeChainMap<u64, u64> = NodeChainMap::with_capacity(128);
        for round in 0..50u64 {
            for k in 0..100u64 {
                m.insert(round * 1000 + k, k).unwrap();
            }
            for k in 0..100u64 {
                assert_eq!(m.remove(&(round * 1000 + k)), Some(k));
            }
        }
        assert!(m.is_empty());
    }

    #[test]
    fn memory_overhead_exceeds_flat_storage() {
        // The paper's point: node chaining costs extra memory per small
        // item versus pointer-free cuckoo buckets.
        let m: NodeChainMap<u64, u64> = NodeChainMap::with_capacity(1 << 10);
        let per_item = m.memory_bytes() as f64 / (1 << 10) as f64;
        assert!(
            per_item > 20.0,
            "per-item bytes {per_item} should exceed the raw 16B payload"
        );
    }

    #[test]
    fn elided_node_chain_concurrent() {
        let m: ConcurrentNodeChain<u64, u64> = crate::locked::Locked::new(
            NodeChainTable::with_capacity_and_hasher(10_000, RandomState::new()),
            crate::locked::LockKind::ElidedOptimized,
        );
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let m = &m;
                s.spawn(move || {
                    for i in 0..1000u64 {
                        m.insert(t * 100_000 + i, i).unwrap();
                    }
                });
            }
        });
        assert_eq!(m.len(), 4000);
        for t in 0..4u64 {
            for i in 0..1000u64 {
                assert_eq!(m.get(&(t * 100_000 + i)), Some(i));
            }
        }
    }
}
