//! Intel TBB `concurrent_hash_map` analog (paper §2.1).
//!
//! "This hash table is also based upon the classic separate chaining
//! design, where keys are hashed to a bucket that contains a linked list
//! of entries ... Because a key hashes to one unique bucket, holding a
//! per-bucket lock permits guaranteed exclusive modification while still
//! allowing fine-grained access. Further care must be taken if the hash
//! table permits expansion."
//!
//! [`ChainingMap`] follows that recipe: heap-allocated nodes chained per
//! bucket, striped reader-writer locks (readers share, writers exclude —
//! TBB's `accessor`/`const_accessor` split), and expansion by taking
//! every stripe in write mode and relinking nodes into a doubled bucket
//! array (nodes themselves never move or reallocate). Like
//! [`crate::node_chain`], the per-entry node allocation is the memory
//! overhead the paper charges against this design for small items.

// ORDERING-FILE: stats.counter — len/allocation counters; reporting only.
use crate::InsertError;
use core::hash::{BuildHasher, Hash};
use parking_lot::RwLock;
use std::collections::hash_map::RandomState;
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::sync::Mutex;

struct Node<K, V> {
    key: K,
    val: V,
    next: *mut Node<K, V>,
}

struct Heads<K, V> {
    slots: Box<[AtomicPtr<Node<K, V>>]>,
    mask: usize,
}

impl<K, V> Heads<K, V> {
    fn new(buckets: usize) -> Self {
        let buckets = buckets.next_power_of_two();
        Heads {
            slots: (0..buckets)
                .map(|_| AtomicPtr::new(std::ptr::null_mut()))
                .collect(),
            mask: buckets - 1,
        }
    }
}

/// Number of reader-writer lock stripes.
const STRIPES: usize = 256;

/// A concurrent separate-chaining hash map with striped RW locks and
/// automatic expansion (the TBB comparison table).
pub struct ChainingMap<K, V, S = RandomState> {
    heads: AtomicPtr<Heads<K, V>>,
    locks: Box<[RwLock<()>]>,
    hash_builder: S,
    len: AtomicUsize,
    nodes_allocated: AtomicUsize,
    /// Retired head arrays (node pointers were relinked out of them, but
    /// in-flight readers may still hold the array itself).
    graveyard: Mutex<Vec<*mut Heads<K, V>>>,
}

// SAFETY: nodes and head arrays are owned by the map and freed only on
// drop (or relinked under all write locks); all access is mediated by the
// stripe RW locks. Entries cross threads by reference and by move.
unsafe impl<K: Send + Sync, V: Send + Sync, S: Send + Sync> Send for ChainingMap<K, V, S> {}
// SAFETY: as above.
unsafe impl<K: Send + Sync, V: Send + Sync, S: Send + Sync> Sync for ChainingMap<K, V, S> {}

impl<K, V> ChainingMap<K, V, RandomState>
where
    K: Hash + Eq,
{
    /// Creates a map pre-sized for `capacity` items at load factor ≤ 1.
    pub fn with_capacity(capacity: usize) -> Self {
        Self::with_capacity_and_hasher(capacity, RandomState::new())
    }
}

impl<K, V, S> ChainingMap<K, V, S>
where
    K: Hash + Eq,
    S: BuildHasher,
{
    /// Creates a map with an explicit hasher.
    pub fn with_capacity_and_hasher(capacity: usize, hash_builder: S) -> Self {
        let heads = Box::new(Heads::new(capacity.max(16)));
        ChainingMap {
            heads: AtomicPtr::new(Box::into_raw(heads)),
            locks: (0..STRIPES).map(|_| RwLock::new(())).collect(),
            hash_builder,
            len: AtomicUsize::new(0),
            nodes_allocated: AtomicUsize::new(0),
            graveyard: Mutex::new(Vec::new()),
        }
    }

    #[inline]
    fn current(&self) -> &Heads<K, V> {
        // SAFETY: head arrays are retired to the graveyard, never freed
        // before the map drops.
        // ORDERING: publish.acquire-load
        unsafe { &*self.heads.load(Ordering::Acquire) }
    }

    #[inline]
    fn stripe_of(bucket: usize) -> usize {
        bucket & (STRIPES - 1)
    }

    /// Looks up `key`, applying `f` under the bucket's read lock.
    pub fn get_with<R>(&self, key: &K, f: impl FnOnce(&V) -> R) -> Option<R> {
        let hash = self.hash_builder.hash_one(key) as usize;
        loop {
            let heads = self.current();
            let bucket = hash & heads.mask;
            let _g = self.locks[Self::stripe_of(bucket)].read();
            // ORDERING: publish.acquire-load
            if !std::ptr::eq(self.heads.load(Ordering::Acquire), heads) {
                continue; // expanded while locking
            }
            // ORDERING: publish.acquire-load
            let mut cur = heads.slots[bucket].load(Ordering::Acquire);
            while !cur.is_null() {
                // SAFETY: nodes are freed only on drop; the read lock
                // excludes writers relinking this chain.
                let node = unsafe { &*cur };
                if node.key == *key {
                    return Some(f(&node.val));
                }
                cur = node.next;
            }
            return None;
        }
    }

    /// Looks up `key`, cloning the value.
    pub fn get(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        self.get_with(key, V::clone)
    }

    /// Inserts `key → val`.
    pub fn insert(&self, key: K, val: V) -> Result<(), InsertError> {
        let hash = self.hash_builder.hash_one(&key) as usize;
        // Pre-allocate the node outside the lock (and count it).
        let node = Box::into_raw(Box::new(Node {
            key,
            val,
            next: std::ptr::null_mut(),
        }));
        loop {
            let heads = self.current();
            let bucket = hash & heads.mask;
            {
                let _g = self.locks[Self::stripe_of(bucket)].write();
                // ORDERING: publish.acquire-load
                if !std::ptr::eq(self.heads.load(Ordering::Acquire), heads) {
                    continue;
                }
                // ORDERING: publish.acquire-load
                let head = heads.slots[bucket].load(Ordering::Acquire);
                let mut cur = head;
                while !cur.is_null() {
                    // SAFETY: write lock held on this bucket's stripe.
                    let n = unsafe { &*cur };
                    // SAFETY: our node is not yet published; we own it.
                    if n.key == unsafe { &*node }.key {
                        // SAFETY: unpublished node; reclaim it.
                        drop(unsafe { Box::from_raw(node) });
                        return Err(InsertError::KeyExists);
                    }
                    cur = n.next;
                }
                // SAFETY: we own the unpublished node.
                unsafe { (*node).next = head };
                // ORDERING: publish.release-store
                heads.slots[bucket].store(node, Ordering::Release);
                self.len.fetch_add(1, Ordering::Relaxed); // ORDERING: stats.counter
                self.nodes_allocated.fetch_add(1, Ordering::Relaxed); // ORDERING: stats.counter
            }
            // Expand outside the bucket lock when load factor exceeds 1.
            if self.len.load(Ordering::Relaxed) > heads.mask + 1 { // ORDERING: stats.counter
                self.expand(heads);
            }
            return Ok(());
        }
    }

    /// Removes `key`, returning its value.
    pub fn remove(&self, key: &K) -> Option<V> {
        let hash = self.hash_builder.hash_one(key) as usize;
        loop {
            let heads = self.current();
            let bucket = hash & heads.mask;
            let _g = self.locks[Self::stripe_of(bucket)].write();
            // ORDERING: publish.acquire-load
            if !std::ptr::eq(self.heads.load(Ordering::Acquire), heads) {
                continue;
            }
            let mut prev: *mut Node<K, V> = std::ptr::null_mut();
            // ORDERING: publish.acquire-load
            let mut cur = heads.slots[bucket].load(Ordering::Acquire);
            while !cur.is_null() {
                // SAFETY: write lock held; node alive until unlinked.
                let (matches, next) = unsafe { ((*cur).key == *key, (*cur).next) };
                if matches {
                    if prev.is_null() {
                        // ORDERING: publish.release-store
                        heads.slots[bucket].store(next, Ordering::Release);
                    } else {
                        // SAFETY: write lock held; `prev` is the live
                        // chain predecessor.
                        unsafe { (*prev).next = next };
                    }
                    self.len.fetch_sub(1, Ordering::Relaxed);
                    self.nodes_allocated.fetch_sub(1, Ordering::Relaxed);
                    // SAFETY: unlinked; we own the node now.
                    let boxed = unsafe { Box::from_raw(cur) };
                    return Some(boxed.val);
                }
                prev = cur;
                cur = next;
            }
            return None;
        }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current bucket count.
    pub fn buckets(&self) -> usize {
        self.current().mask + 1
    }

    /// Bytes occupied: bucket array, stripe locks, and one heap node per
    /// entry (including allocator header estimate of 16 bytes, matching
    /// glibc malloc's chunk overhead).
    pub fn memory_bytes(&self) -> usize {
        let node_bytes = core::mem::size_of::<Node<K, V>>() + 16;
        self.buckets() * core::mem::size_of::<AtomicPtr<Node<K, V>>>()
            + self.nodes_allocated.load(Ordering::Relaxed) * node_bytes
            + STRIPES * core::mem::size_of::<RwLock<()>>()
    }

    /// Doubles the bucket array, relinking nodes in place.
    fn expand(&self, seen: &Heads<K, V>) {
        // Take every stripe in write mode, in order.
        let guards: Vec<_> = self.locks.iter().map(|l| l.write()).collect();
        // ORDERING: publish.acquire-load
        if !std::ptr::eq(self.heads.load(Ordering::Acquire), seen) {
            return; // someone else expanded
        }
        // ORDERING: publish.acquire-load
        let old_ptr = self.heads.load(Ordering::Acquire);
        // SAFETY: all stripes held exclusively.
        let old = unsafe { &*old_ptr };
        let new = Box::new(Heads::<K, V>::new((old.mask + 1) * 2));
        for slot in old.slots.iter() {
            // ORDERING: publish.acquire-load
            let mut cur = slot.load(Ordering::Acquire);
            while !cur.is_null() {
                // SAFETY: all stripes held; we may relink freely.
                let node = unsafe { &mut *cur };
                let next = node.next;
                let bucket = (self.hash_builder.hash_one(&node.key) as usize) & new.mask;
                // ORDERING: advisory.relaxed
                node.next = new.slots[bucket].load(Ordering::Relaxed);
                new.slots[bucket].store(cur, Ordering::Relaxed);
                cur = next;
            }
        }
        // ORDERING: publish.release-store
        self.heads.store(Box::into_raw(new), Ordering::Release);
        self.graveyard.lock().unwrap().push(old_ptr);
        drop(guards);
    }
}

impl<K, V, S> Drop for ChainingMap<K, V, S> {
    fn drop(&mut self) {
        let heads_ptr = *self.heads.get_mut();
        // SAFETY: exclusive access on drop; frees every node exactly once
        // (nodes live in exactly one chain of the current head array).
        unsafe {
            let heads = Box::from_raw(heads_ptr);
            for slot in heads.slots.iter() {
                // ORDERING: advisory.relaxed
                let mut cur = slot.load(Ordering::Relaxed);
                while !cur.is_null() {
                    let node = Box::from_raw(cur);
                    cur = node.next;
                }
            }
        }
        for &retired in self.graveyard.get_mut().unwrap().iter() {
            // SAFETY: retired arrays hold no owned nodes (all relinked).
            drop(unsafe { Box::from_raw(retired) });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_crud() {
        let m: ChainingMap<u64, u64> = ChainingMap::with_capacity(100);
        m.insert(1, 10).unwrap();
        m.insert(2, 20).unwrap();
        assert_eq!(m.insert(1, 99), Err(InsertError::KeyExists));
        assert_eq!(m.get(&1), Some(10));
        assert_eq!(m.get(&3), None);
        assert_eq!(m.remove(&1), Some(10));
        assert_eq!(m.remove(&1), None);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn expansion_preserves_entries() {
        let m: ChainingMap<u64, u64> = ChainingMap::with_capacity(16);
        let initial = m.buckets();
        for k in 0..1000u64 {
            m.insert(k, k + 1).unwrap();
        }
        assert!(m.buckets() > initial);
        for k in 0..1000u64 {
            assert_eq!(m.get(&k), Some(k + 1), "key {k}");
        }
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn string_entries_drop_cleanly() {
        use std::sync::Arc;
        let sentinel = Arc::new(());
        {
            let m: ChainingMap<u64, Arc<()>> = ChainingMap::with_capacity(64);
            for k in 0..200 {
                m.insert(k, Arc::clone(&sentinel)).unwrap();
            }
            assert_eq!(Arc::strong_count(&sentinel), 201);
            m.remove(&5);
            assert_eq!(Arc::strong_count(&sentinel), 200);
        }
        assert_eq!(Arc::strong_count(&sentinel), 1);
    }

    #[test]
    fn concurrent_mixed_ops() {
        let m: ChainingMap<u64, u64> = ChainingMap::with_capacity(64);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let m = &m;
                s.spawn(move || {
                    for i in 0..2500u64 {
                        let key = t * 1_000_000 + i;
                        m.insert(key, key).unwrap();
                        if i % 3 == 0 {
                            assert_eq!(m.remove(&key), Some(key));
                        }
                    }
                });
            }
        });
        for t in 0..4u64 {
            for i in 0..2500u64 {
                let key = t * 1_000_000 + i;
                let expect = if i % 3 == 0 { None } else { Some(key) };
                assert_eq!(m.get(&key), expect);
            }
        }
    }

    #[test]
    fn concurrent_readers_during_expansion() {
        let m: ChainingMap<u64, u64> = ChainingMap::with_capacity(16);
        for k in 0..100u64 {
            m.insert(k, k).unwrap();
        }
        let stop = std::sync::atomic::AtomicBool::new(false);
        let stop = &stop;
        let m = &m;
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(move || {
                    let mut i = 0u64;
                    while !stop.load(Ordering::Acquire) {
                        assert_eq!(m.get(&(i % 100)), Some(i % 100));
                        i += 1;
                    }
                });
            }
            s.spawn(move || {
                for k in 100..5000u64 {
                    m.insert(k, k).unwrap();
                }
                stop.store(true, Ordering::Release);
            });
        });
        assert_eq!(m.len(), 5000);
    }

    #[test]
    fn memory_grows_with_entries() {
        let m: ChainingMap<u64, u64> = ChainingMap::with_capacity(1024);
        let empty = m.memory_bytes();
        for k in 0..1000u64 {
            m.insert(k, k).unwrap();
        }
        let full = m.memory_bytes();
        assert!(full > empty + 1000 * 16, "empty={empty} full={full}");
    }
}
