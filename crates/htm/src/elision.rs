//! TSX-style lock elision (paper §5 and Appendix A, Figure 11).
//!
//! An [`ElidedLock`] first runs its critical section speculatively as a
//! transaction that merely *reads* the fallback lock word (putting it in
//! the transaction's read set); only after repeated aborts does it really
//! acquire the lock. While anyone holds the fallback lock, every in-flight
//! transaction aborts — acquiring it writes the lock word, which is in all
//! of their read sets — and new attempts see the lock busy and wait. That
//! is exactly why the paper observes that "whenever a fallback lock is
//! taken by one core, all the other cores have to abort their concurrent
//! transactions", and why its optimized wrapper takes the fallback as
//! rarely as possible.
//!
//! Two retry policies are provided:
//!
//! - [`ElisionPolicy::Glibc`] models the released glibc elision patch the
//!   paper benchmarks as `TSX-glibc`: when the hardware does not set the
//!   `_XABORT_RETRY` hint, it gives up and takes the fallback lock
//!   immediately.
//! - [`ElisionPolicy::Optimized`] is the paper's `TSX*` (Figure 11): the
//!   authors "found that even if `_ABORT_RETRY` is not set in the EAX
//!   register, the transaction may succeed still on a retry", so it always
//!   retries several times before falling back.

use crate::abort::Abort;
use crate::ctx::{DirectCtx, MemCtx, TxCtx};
use crate::orec::HtmDomain;
use crate::plain::Plain;
use crate::stats::HtmStats;
use crate::txn::TxScratch;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Retry policy on transactional aborts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElisionPolicy {
    /// Take the fallback lock as soon as an abort arrives without the
    /// retry hint (the released glibc behavior the paper criticizes).
    Glibc,
    /// Always retry a bounded number of times before falling back, with a
    /// larger budget when the retry hint is set (the paper's `TSX*`).
    Optimized,
}

/// Configuration for an [`ElidedLock`].
#[derive(Debug, Clone, Copy)]
pub struct ElisionConfig {
    /// `_MAX_XBEGIN_RETRY` from Figure 11: transactional attempts before
    /// taking the fallback lock.
    pub max_xbegin_retry: u32,
    /// `_MAX_ABORT_RETRY` from Figure 11: attempts allowed to continue
    /// after aborts *without* the retry hint (optimized policy only).
    pub max_abort_retry: u32,
    /// The retry policy.
    pub policy: ElisionPolicy,
}

impl ElisionConfig {
    /// The paper's optimized `TSX*` configuration.
    pub fn optimized() -> Self {
        ElisionConfig {
            max_xbegin_retry: 8,
            max_abort_retry: 4,
            policy: ElisionPolicy::Optimized,
        }
    }

    /// The released glibc elision behavior (`TSX-glibc` in the paper).
    pub fn glibc() -> Self {
        ElisionConfig {
            max_xbegin_retry: 3,
            max_abort_retry: 0,
            policy: ElisionPolicy::Glibc,
        }
    }

    /// Hardware Lock Elision semantics (Appendix A): the legacy-compatible
    /// TSX interface where an `XACQUIRE`-prefixed lock acquisition is
    /// elided exactly once; any abort re-executes the critical section
    /// with the lock really held. "RTM... allows much finer control of
    /// the transactions than HLE" — this config is the coarse end of that
    /// comparison.
    pub fn hle() -> Self {
        ElisionConfig {
            max_xbegin_retry: 1,
            max_abort_retry: 0,
            policy: ElisionPolicy::Glibc,
        }
    }
}

impl Default for ElisionConfig {
    fn default() -> Self {
        Self::optimized()
    }
}

/// The execution context handed to an elided critical section: either a
/// live transaction or direct access under the fallback lock.
///
/// It implements [`MemCtx`], so critical-section code written against the
/// trait runs unchanged in both modes.
pub enum ExecCtx<'a, 't> {
    /// Speculative execution inside a transaction.
    Tx(TxCtx<'a, 't>),
    /// Direct execution under the fallback lock.
    Direct(DirectCtx),
}

impl MemCtx for ExecCtx<'_, '_> {
    // SAFETY: caller contract is `MemCtx::load`'s, forwarded verbatim
    // to whichever mode is live.
    unsafe fn load<T: Plain>(&mut self, ptr: *const T) -> Result<T, Abort> {
        match self {
            // SAFETY: forwarded contract.
            ExecCtx::Tx(c) => unsafe { c.load(ptr) },
            // SAFETY: forwarded contract.
            ExecCtx::Direct(c) => unsafe { c.load(ptr) },
        }
    }

    unsafe fn store<T: Plain>(&mut self, ptr: *mut T, value: T) -> Result<(), Abort> {
        match self {
            // SAFETY: forwarded contract.
            ExecCtx::Tx(c) => unsafe { c.store(ptr, value) },
            // SAFETY: forwarded contract.
            ExecCtx::Direct(c) => unsafe { c.store(ptr, value) },
        }
    }

    unsafe fn seq_write_begin(&mut self, word: &AtomicU64) -> Result<(), Abort> {
        match self {
            // SAFETY: forwarded contract.
            ExecCtx::Tx(c) => unsafe { c.seq_write_begin(word) },
            // SAFETY: forwarded contract.
            ExecCtx::Direct(c) => unsafe { c.seq_write_begin(word) },
        }
    }

    fn finish(&mut self) {
        match self {
            ExecCtx::Tx(c) => c.finish(),
            ExecCtx::Direct(c) => c.finish(),
        }
    }

    fn is_transactional(&self) -> bool {
        matches!(self, ExecCtx::Tx(_))
    }
}

thread_local! {
    /// Per-thread pool of transaction scratch buffers, so elided sections
    /// never allocate on the hot path (paper §5: pre-allocate what a
    /// transactional region needs) and nested elided locks still work.
    static SCRATCH_POOL: RefCell<Vec<TxScratch>> = const { RefCell::new(Vec::new()) };
}

fn take_scratch() -> TxScratch {
    SCRATCH_POOL.with(|p| p.borrow_mut().pop().unwrap_or_default())
}

fn put_scratch(s: TxScratch) {
    SCRATCH_POOL.with(|p| p.borrow_mut().push(s));
}

/// A lock whose critical sections execute speculatively when possible.
pub struct ElidedLock {
    domain: Arc<HtmDomain>,
    /// 0 = free, 1 = held. Transactions read it; the fallback path CASes
    /// it under the covering ownership record so speculative readers are
    /// invalidated.
    lock_word: AtomicU64,
    config: ElisionConfig,
    stats: HtmStats,
}

impl ElidedLock {
    /// Creates an elided lock over the given transactional domain.
    pub fn new(domain: Arc<HtmDomain>, config: ElisionConfig) -> Self {
        ElidedLock {
            domain,
            lock_word: AtomicU64::new(0),
            config,
            stats: HtmStats::new(),
        }
    }

    /// The domain this lock's transactions run in.
    pub fn domain(&self) -> &Arc<HtmDomain> {
        &self.domain
    }

    /// Execution statistics (starts, commits, aborts, fallbacks).
    pub fn stats(&self) -> &HtmStats {
        &self.stats
    }

    /// Whether the fallback lock is currently held.
    pub fn fallback_held(&self) -> bool {
        // ORDERING: publish.acquire-load
        self.lock_word.load(Ordering::Acquire) != 0
    }

    /// Runs `f` as an elided critical section and returns its value.
    ///
    /// `f` may run several times (aborted speculative attempts discard all
    /// their buffered writes first), so it must be idempotent up to its
    /// `MemCtx` effects — which is automatic if all shared-memory access
    /// goes through the provided context. `f`'s `Err` returns must
    /// originate from the context's operations (or explicit aborts); in
    /// direct mode the context never fails, so the section always
    /// completes on the fallback path.
    ///
    /// # Panics
    ///
    /// Panics if `f` returns `Err` while running in direct (fallback)
    /// mode, which indicates `f` fabricated an abort.
    pub fn execute<R>(&self, mut f: impl FnMut(&mut ExecCtx<'_, '_>) -> Result<R, Abort>) -> R {
        let mut scratch = take_scratch();
        let lock_ptr = self.lock_word.as_ptr() as *const u64;

        let mut xbegin_retry = 0;
        let mut abort_retry = 0;
        while xbegin_retry < self.config.max_xbegin_retry {
            self.stats.record_start();
            let attempt = self.domain.attempt(&mut scratch, |tx| {
                // Check the fallback lock and put it into the read set
                // (Figure 11): its release-by-CAS bumps our orec, aborting
                // us if anyone takes it mid-flight.
                //
                // SAFETY: the lock word lives as long as `self`.
                let lock = unsafe { tx.read(lock_ptr)? };
                if lock != 0 {
                    return Err(Abort::lock_busy());
                }
                // Hold the lock word's ownership record through commit so
                // buffered-write publication can never interleave with a
                // fallback holder's direct writes (see
                // `Transaction::guard_addr`).
                tx.guard_addr(lock_ptr as usize);
                let mut ctx = ExecCtx::Tx(TxCtx::new(tx));
                let value = f(&mut ctx)?;
                ctx.finish();
                Ok(value)
            });
            match attempt {
                Ok(value) => {
                    self.stats.record_commit();
                    put_scratch(scratch);
                    return value;
                }
                Err(abort) => {
                    self.stats.record_abort(abort.code);
                    if abort.code.is_lock_busy() {
                        // Someone is in the fallback path; speculation
                        // cannot succeed until they leave. Wait without
                        // consuming a retry (glibc does the same).
                        self.wait_fallback_free();
                        continue;
                    }
                    if !abort.code.may_retry() {
                        match self.config.policy {
                            ElisionPolicy::Glibc => break,
                            ElisionPolicy::Optimized => {
                                if abort_retry >= self.config.max_abort_retry {
                                    break;
                                }
                                abort_retry += 1;
                            }
                        }
                    }
                }
            }
            xbegin_retry += 1;
        }

        // Fallback: really take the lock and run directly.
        self.stats.record_fallback();
        self.acquire_fallback();
        let mut ctx = ExecCtx::Direct(DirectCtx::new());
        let result = f(&mut ctx);
        ctx.finish();
        self.release_fallback();
        put_scratch(scratch);
        match result {
            Ok(value) => value,
            Err(abort) => panic!("critical section aborted in direct mode: {abort}"),
        }
    }

    /// Acquires the fallback lock, invalidating all speculative readers of
    /// the lock word in the same step (CAS under the word's orec).
    fn acquire_fallback(&self) {
        let addr = self.lock_word.as_ptr() as usize;
        let mut spins = 0u32;
        loop {
            // ORDERING: seqlock.advisory-probe — the CAS below re-checks.
            if self.lock_word.load(Ordering::Relaxed) == 0 {
                let acquired = self.domain.locked_line_update(addr, || {
                    self.lock_word
                        // ORDERING: handoff.acqrel-rmw
                        .compare_exchange(0, 1, Ordering::Acquire, Ordering::Relaxed)
                        .is_ok()
                });
                if acquired {
                    return;
                }
            }
            backoff(&mut spins);
        }
    }

    fn release_fallback(&self) {
        // ORDERING: seqlock.advisory-probe — we hold the lock; debug-only.
        debug_assert_eq!(self.lock_word.load(Ordering::Relaxed), 1);
        // ORDERING: publish.release-store
        self.lock_word.store(0, Ordering::Release);
    }

    fn wait_fallback_free(&self) {
        let mut spins = 0u32;
        // ORDERING: publish.acquire-load
        while self.lock_word.load(Ordering::Acquire) != 0 {
            backoff(&mut spins);
        }
    }
}

/// Spin briefly, then yield: on machines with fewer cores than threads a
/// pure spin wastes whole scheduler quanta waiting for the lock holder to
/// be scheduled.
#[inline]
pub(crate) fn backoff(spins: &mut u32) {
    if *spins < 64 {
        std::hint::spin_loop();
        *spins += 1;
    } else {
        std::thread::yield_now();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lock() -> ElidedLock {
        ElidedLock::new(Arc::new(HtmDomain::new()), ElisionConfig::optimized())
    }

    #[test]
    fn single_threaded_increment_commits_speculatively() {
        let l = lock();
        let mut x = 0u64;
        let p: *mut u64 = &mut x;
        for _ in 0..100 {
            l.execute(|ctx| {
                // SAFETY: `x` outlives the section.
                let v = unsafe { ctx.load(p)? };
                // SAFETY: as above.
                unsafe { ctx.store(p, v + 1) }
            });
        }
        assert_eq!(x, 100);
        let s = l.stats().snapshot();
        assert_eq!(s.commits, 100);
        assert_eq!(s.fallbacks, 0);
    }

    #[test]
    fn capacity_overflow_takes_fallback() {
        let domain = Arc::new(HtmDomain::with_config(crate::HtmConfig {
            write_capacity_lines: 2,
            ..crate::HtmConfig::default()
        }));
        let l = ElidedLock::new(domain, ElisionConfig::optimized());
        let mut arr = vec![0u64; 256];
        let base = arr.as_mut_ptr();
        l.execute(|ctx| {
            for i in 0..32 {
                // SAFETY: in bounds of `arr`, one write per cache line.
                unsafe { ctx.store(base.add(i * 8), i as u64)? };
            }
            Ok(())
        });
        for i in 0..32 {
            assert_eq!(arr[i * 8], i as u64);
        }
        let s = l.stats().snapshot();
        assert_eq!(s.fallbacks, 1);
        assert!(s.capacity_aborts >= 1);
    }

    #[test]
    fn glibc_policy_falls_back_faster_than_optimized() {
        // Force capacity aborts (no retry hint) and compare attempt counts.
        let mk = |cfg: ElisionConfig| {
            let domain = Arc::new(HtmDomain::with_config(crate::HtmConfig {
                write_capacity_lines: 1,
                ..crate::HtmConfig::default()
            }));
            let l = ElidedLock::new(domain, cfg);
            let mut arr = vec![0u64; 64];
            let base = arr.as_mut_ptr();
            l.execute(|ctx| {
                for i in 0..8 {
                    // SAFETY: in bounds of `arr`.
                    unsafe { ctx.store(base.add(i * 8), 1u64)? };
                }
                Ok(())
            });
            l.stats().snapshot()
        };
        let glibc = mk(ElisionConfig::glibc());
        let optimized = mk(ElisionConfig::optimized());
        assert_eq!(glibc.fallbacks, 1);
        assert_eq!(optimized.fallbacks, 1);
        assert!(
            optimized.starts > glibc.starts,
            "optimized policy should retry more before falling back \
             (optimized {} vs glibc {})",
            optimized.starts,
            glibc.starts
        );
    }

    #[test]
    fn concurrent_counter_is_exact() {
        let l = std::sync::Arc::new(lock());
        let mut x = 0u64;
        let p = SendPtr(&mut x as *mut u64);
        const THREADS: usize = 4;
        const PER: usize = 500;
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                let l = std::sync::Arc::clone(&l);
                s.spawn(move || {
                    let p = p;
                    for _ in 0..PER {
                        l.execute(|ctx| {
                            // SAFETY: `x` outlives the scope; all access to
                            // it is via this lock.
                            let v = unsafe { ctx.load(p.0)? };
                            // SAFETY: as above.
                            unsafe { ctx.store(p.0, v + 1) }
                        });
                    }
                });
            }
        });
        assert_eq!(x, (THREADS * PER) as u64);
        let s = l.stats().snapshot();
        assert_eq!(s.commits + s.fallbacks, (THREADS * PER) as u64);
    }

    #[test]
    fn writes_under_fallback_abort_concurrent_transactions() {
        // Start a transaction, have another "thread" take the fallback
        // lock (same thread here; the protocol is what matters), and
        // verify the transaction cannot commit.
        let l = lock();
        let mut data = 0u64;
        let p: *mut u64 = &mut data;
        let r = l.domain().execute(|tx| {
            // SAFETY: the lock word outlives the transaction.
            let lock_val = unsafe { tx.read(l.lock_word.as_ptr() as *const u64)? };
            assert_eq!(lock_val, 0);
            // Fallback acquisition bumps the lock word's orec...
            l.acquire_fallback();
            // SAFETY: `data` outlives the transaction.
            unsafe { tx.write(p, 42)? };
            Ok(())
        });
        // ...so commit-time validation of our read set must fail.
        assert!(r.is_err());
        assert_eq!(data, 0);
        l.release_fallback();
    }

    #[test]
    fn commit_never_interleaves_with_fallback_writes() {
        // Regression test for the publication race: a transaction that
        // validated the fallback lock free must not apply its buffered
        // writes while a fallback holder is writing directly. Writers
        // publish through a seqlock word; any interleaving corrupts its
        // parity (leaving it odd forever) or tears the 4-word value.
        // Capacity-limited configs force frequent fallbacks.
        let domain = Arc::new(HtmDomain::with_config(crate::HtmConfig {
            write_capacity_lines: 2,
            ..crate::HtmConfig::default()
        }));
        let l = ElidedLock::new(domain, ElisionConfig::optimized());
        let seq = AtomicU64::new(0);
        let mut cells = [0u64; 4];
        let p = SendPtr(cells.as_mut_ptr());
        let big = Box::leak(Box::new([0u64; 64])) as *mut [u64; 64];
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let l = &l;
                let seq = &seq;
                let big = SendPtr(big as *mut u64);
                s.spawn(move || {
                    let p = p;
                    let big = big;
                    for i in 0..2000u64 {
                        l.execute(|ctx| {
                            // SAFETY: `seq` and `cells` outlive the scope;
                            // all writes go through this elided lock.
                            unsafe {
                                ctx.seq_write_begin(seq)?;
                                let v = ctx.load(p.0)?;
                                for k in 0..4 {
                                    ctx.store(p.0.add(k), v + 1)?;
                                }
                                if (t + i) % 7 == 0 {
                                    // Oversized section: forces capacity
                                    // aborts and the fallback path.
                                    for k in 0..48 {
                                        ctx.store(big.0.add(k), i)?;
                                    }
                                }
                            }
                            Ok(())
                        });
                    }
                });
            }
        });
        assert_eq!(seq.load(Ordering::Relaxed) % 2, 0, "seqlock parity broken");
        assert_eq!(cells[0], 8000);
        assert!(cells.iter().all(|&c| c == cells[0]), "torn cells: {cells:?}");
        let stats = l.stats().snapshot();
        assert!(stats.fallbacks > 0, "test must exercise the fallback path");
    }

    #[derive(Clone, Copy)]
    struct SendPtr(*mut u64);
    // SAFETY: test-only wrapper; the pointee outlives all threads using it
    // and access is synchronized by the elided lock under test.
    unsafe impl Send for SendPtr {}
}
