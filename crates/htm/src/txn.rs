//! Transactions: speculative reads, buffered writes, two-phase commit.
//!
//! A [`Transaction`] follows the TL2 recipe:
//!
//! 1. At begin, sample the domain's global version clock (`rv`).
//! 2. Reads validate that the covered ownership records are unlocked and
//!    not newer than `rv` (so the transaction only ever observes a
//!    consistent snapshot — no "zombie" executions), then log the record
//!    and version in the read set.
//! 3. Writes are buffered; memory is untouched until commit, exactly as
//!    hardware HTM keeps speculative stores in the L1 cache.
//! 4. Commit acquires the write-set ownership records in sorted order,
//!    re-validates the read set, applies the buffered writes, and releases
//!    the records stamped with a fresh clock value.
//!
//! Any step can fail, surfacing an [`Abort`] with the same cause taxonomy
//! as Intel RTM (see [`crate::abort`]).
//!
//! # Seqlock-published writes
//!
//! Hardware transactions are atomic with respect to *all* observers,
//! including plain non-transactional readers. A software commit is not: it
//! applies buffered writes one by one. Data structures that let lock-free
//! readers race transactional writers (the paper's optimistic cuckoo
//! readers, §4) therefore publish through per-stripe seqlock version
//! counters: [`Transaction::seq_write_begin`] registers a counter word,
//! and commit makes it odd before the first data write and even again
//! after the last one, so a racing reader always detects the window.

use crate::abort::Abort;
use crate::lineset::LineSet;
use crate::mem::{load_bytes as atomic_load_bytes, store_bytes as atomic_store_bytes};
use crate::orec::{HtmDomain, CACHE_LINE, OREC_LOCKED};
use crate::plain::Plain;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, Ordering};

/// A buffered store: `len` bytes at `write_data[off..]` destined for `addr`.
#[derive(Debug, Clone, Copy)]
struct WriteEntry {
    addr: usize,
    off: u32,
    len: u32,
}

/// Reusable transaction buffers.
///
/// Allocating read/write sets on every attempt would put `malloc` inside
/// what models a transactional region — the exact anti-pattern the paper
/// warns about in §5 ("it is therefore useful to pre-allocate structures
/// that may be needed inside the transactional region"). Callers keep one
/// `TxScratch` per thread and reuse it across attempts.
pub struct TxScratch {
    read_set: Vec<(u32, u64)>,
    write_entries: Vec<WriteEntry>,
    write_data: Vec<u8>,
    read_lines: LineSet,
    write_lines: LineSet,
    seq_words: Vec<usize>,
    guard_addrs: Vec<usize>,
    commit_orecs: Vec<(u32, bool)>,
}

impl TxScratch {
    /// Creates empty scratch buffers.
    pub fn new() -> Self {
        TxScratch {
            read_set: Vec::with_capacity(64),
            write_entries: Vec::with_capacity(16),
            write_data: Vec::with_capacity(256),
            read_lines: LineSet::with_capacity(64),
            write_lines: LineSet::with_capacity(16),
            seq_words: Vec::with_capacity(8),
            guard_addrs: Vec::with_capacity(2),
            commit_orecs: Vec::with_capacity(16),
        }
    }

    fn reset(&mut self) {
        self.read_set.clear();
        self.write_entries.clear();
        self.write_data.clear();
        self.read_lines.clear();
        self.write_lines.clear();
        self.seq_words.clear();
        self.guard_addrs.clear();
        self.commit_orecs.clear();
    }
}

impl Default for TxScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// An in-flight speculative execution against an [`HtmDomain`].
pub struct Transaction<'t> {
    domain: &'t HtmDomain,
    scratch: &'t mut TxScratch,
    rv: u64,
}

impl<'t> Transaction<'t> {
    pub(crate) fn begin(domain: &'t HtmDomain, scratch: &'t mut TxScratch) -> Self {
        scratch.reset();
        let rv = domain.clock_now();
        Transaction {
            domain,
            scratch,
            rv,
        }
    }

    /// Number of distinct cache lines in the read set so far.
    pub fn read_footprint(&self) -> usize {
        self.scratch.read_lines.len()
    }

    /// Number of distinct cache lines in the write set so far.
    pub fn write_footprint(&self) -> usize {
        self.scratch.write_lines.len()
    }

    /// Transactionally reads the value at `ptr`.
    ///
    /// The read is validated against the covering ownership records before
    /// and after the data copy, so on `Ok` the value is consistent with
    /// every other value this transaction has read.
    ///
    /// # Safety
    ///
    /// `ptr` must be non-null, valid for reads of `size_of::<T>()` bytes
    /// for the duration of the call, and point into memory that stays
    /// allocated for the transaction's lifetime. Concurrent writes to the
    /// same bytes are permitted (they are detected and turn into aborts).
    pub unsafe fn read<T: Plain>(&mut self, ptr: *const T) -> Result<T, Abort> {
        let size = std::mem::size_of::<T>();
        if size == 0 {
            // SAFETY: zero-sized types have exactly one value, and reading
            // it touches no memory.
            return Ok(unsafe { std::mem::zeroed() });
        }
        let addr = ptr as usize;
        let first_line = addr / CACHE_LINE;
        let last_line = (addr + size - 1) / CACHE_LINE;

        // Pre-validate and log every covered ownership record.
        let read_set_start = self.scratch.read_set.len();
        for line in first_line..=last_line {
            let idx = self.domain.orec_index(line * CACHE_LINE);
            // ORDERING: publish.acquire-load
            let ver = self.domain.orec(idx).load(Ordering::Acquire);
            if ver & OREC_LOCKED != 0 || ver > self.rv {
                return Err(Abort::conflict());
            }
            self.scratch.read_set.push((idx, ver));
            if self.scratch.read_lines.insert(line as u64)
                && self.scratch.read_lines.len() > self.domain.config().read_capacity_lines
            {
                return Err(Abort::capacity());
            }
        }

        // Copy the bytes with per-chunk atomics: racing a committing writer
        // is detected below, but the copy itself must be race-free.
        let mut value = MaybeUninit::<T>::uninit();
        // SAFETY: `value` provides `size` writable bytes; `ptr` provides
        // `size` readable bytes per this function's contract.
        unsafe { atomic_load_bytes(addr, value.as_mut_ptr().cast::<u8>(), size) };

        // Post-validate: if any covering orec changed during the copy, the
        // bytes may be torn.
        for &(idx, ver) in &self.scratch.read_set[read_set_start..] {
            // ORDERING: publish.acquire-load
            if self.domain.orec(idx).load(Ordering::Acquire) != ver {
                return Err(Abort::conflict());
            }
        }

        // Read-after-write: overlay this transaction's own buffered stores,
        // oldest first, so the value reflects program order.
        for i in 0..self.scratch.write_entries.len() {
            let e = self.scratch.write_entries[i];
            let (e_start, e_end) = (e.addr, e.addr + e.len as usize);
            let (r_start, r_end) = (addr, addr + size);
            if e_start < r_end && r_start < e_end {
                let lo = e_start.max(r_start);
                let hi = e_end.min(r_end);
                let src = &self.scratch.write_data
                    [(e.off as usize + (lo - e_start))..(e.off as usize + (hi - e_start))];
                // SAFETY: `lo - r_start + (hi - lo) <= size`, staying inside
                // `value`'s buffer.
                unsafe {
                    std::ptr::copy_nonoverlapping(
                        src.as_ptr(),
                        value.as_mut_ptr().cast::<u8>().add(lo - r_start),
                        hi - lo,
                    );
                }
            }
        }

        // SAFETY: all `size` bytes were initialized by the atomic copy, and
        // `T: Plain` guarantees any bit pattern is a valid `T`.
        Ok(unsafe { value.assume_init() })
    }

    /// Buffers a transactional store of `value` to `ptr`.
    ///
    /// Memory is not modified until commit; the transaction's own
    /// subsequent [`Transaction::read`]s observe the buffered value.
    ///
    /// # Safety
    ///
    /// `ptr` must be non-null and remain valid for writes of
    /// `size_of::<T>()` bytes until the transaction commits or aborts.
    pub unsafe fn write<T: Plain>(&mut self, ptr: *mut T, value: T) -> Result<(), Abort> {
        let size = std::mem::size_of::<T>();
        if size == 0 {
            return Ok(());
        }
        let addr = ptr as usize;
        let first_line = addr / CACHE_LINE;
        let last_line = (addr + size - 1) / CACHE_LINE;
        for line in first_line..=last_line {
            if self.scratch.write_lines.insert(line as u64)
                && self.scratch.write_lines.len() > self.domain.config().write_capacity_lines
            {
                return Err(Abort::capacity());
            }
        }

        let value_bytes =
            // SAFETY: `T: Plain + Copy`; viewing its bytes is always valid.
            unsafe { std::slice::from_raw_parts(&value as *const T as *const u8, size) };

        // Exact-slot overwrite keeps the buffer small for the common
        // read-modify-write-same-field pattern.
        for e in &self.scratch.write_entries {
            if e.addr == addr && e.len as usize == size {
                self.scratch.write_data[e.off as usize..e.off as usize + size]
                    .copy_from_slice(value_bytes);
                return Ok(());
            }
        }
        let off = self.scratch.write_data.len() as u32;
        self.scratch.write_data.extend_from_slice(value_bytes);
        self.scratch.write_entries.push(WriteEntry {
            addr,
            off,
            len: size as u32,
        });
        Ok(())
    }

    /// Registers a seqlock version word to publish this transaction's
    /// writes through.
    ///
    /// At commit, every registered word is incremented (to odd) before the
    /// first buffered data write lands and incremented again (back to
    /// even) after the last one, with the word's ownership record held so
    /// concurrent transactions conflict on it. Lock-free readers
    /// validating the word therefore never observe a half-applied commit.
    ///
    /// The caller must not also [`Transaction::write`] the same word.
    ///
    /// # Safety
    ///
    /// `word` must remain valid until the transaction commits or aborts,
    /// and its current value must be even (not mid-publication by a
    /// non-transactional writer; mutual exclusion between writers is the
    /// caller's responsibility — under lock elision the fallback-lock
    /// protocol provides it).
    pub unsafe fn seq_write_begin(&mut self, word: &AtomicU64) -> Result<(), Abort> {
        let addr = word as *const AtomicU64 as usize;
        if self.scratch.seq_words.contains(&addr) {
            return Ok(());
        }
        let line = (addr / CACHE_LINE) as u64;
        if self.scratch.write_lines.insert(line)
            && self.scratch.write_lines.len() > self.domain.config().write_capacity_lines
        {
            return Err(Abort::capacity());
        }
        self.scratch.seq_words.push(addr);
        Ok(())
    }

    /// Registers `addr`'s ownership record to be *held* (but not
    /// re-stamped) across commit.
    ///
    /// This closes the publication race between a committing transaction
    /// and non-transactional writers coordinated through a flag at
    /// `addr`: hardware commits are atomic, so on real HTM a fallback-lock
    /// holder can never interleave with a commit's stores. Here, a
    /// transaction that read the fallback lock free could pass read-set
    /// validation and then apply its buffered writes *concurrently* with a
    /// fallback acquirer's direct writes. Guarding the lock word's record
    /// makes the two mutually exclusive: the fallback acquirer takes the
    /// record via [`HtmDomain::locked_line_update`], so either it waits
    /// for the commit to finish, or the commit (re-)validates after the
    /// acquirer's version bump and aborts.
    ///
    /// Guarded records are released with their original version (a guard
    /// is not a write).
    pub fn guard_addr(&mut self, addr: usize) {
        if !self.scratch.guard_addrs.contains(&addr) {
            self.scratch.guard_addrs.push(addr);
        }
    }

    /// Attempts to commit: lock write-set records, validate the read set,
    /// apply buffered writes (bracketed by the seqlock bumps), release.
    pub(crate) fn commit(self) -> Result<(), Abort> {
        let s = &mut *self.scratch;
        if s.write_entries.is_empty() && s.seq_words.is_empty() {
            // Read-only transactions already validated every read against
            // `rv`; nothing to publish.
            return Ok(());
        }

        // Gather the ownership records covering all written lines
        // (`true` = stamped with a fresh version on release) plus the
        // guarded records (`false` = held but released unstamped).
        s.commit_orecs.clear();
        for e in &s.write_entries {
            let first = e.addr / CACHE_LINE;
            let last = (e.addr + e.len as usize - 1) / CACHE_LINE;
            for line in first..=last {
                s.commit_orecs
                    .push((self.domain.orec_index(line * CACHE_LINE), true));
            }
        }
        for &addr in &s.seq_words {
            s.commit_orecs.push((self.domain.orec_index(addr), true));
        }
        for &addr in &s.guard_addrs {
            s.commit_orecs.push((self.domain.orec_index(addr), false));
        }
        // Sort by index; where an index is both written and guarded, the
        // written (stamped) entry wins the dedup.
        s.commit_orecs.sort_unstable_by_key(|e| (e.0, !e.1));
        s.commit_orecs.dedup_by_key(|e| e.0);

        // Phase 1: acquire write-set and guard orecs in sorted order
        // (deadlock-free).
        let mut acquired = 0usize;
        'acquire: for (i, &(idx, _)) in s.commit_orecs.iter().enumerate() {
            let orec = self.domain.orec(idx);
            for _ in 0..self.domain.config().acquire_spin {
                // ORDERING: publish.acquire-load
                let cur = orec.load(Ordering::Acquire);
                // ORDERING: handoff.acqrel-rmw
                if cur & OREC_LOCKED == 0
                    && orec
                        .compare_exchange_weak(
                            cur,
                            cur | OREC_LOCKED,
                            Ordering::Acquire,
                            Ordering::Relaxed,
                        )
                        .is_ok()
                {
                    acquired = i + 1;
                    continue 'acquire;
                }
                std::hint::spin_loop();
            }
            // Could not lock: back out.
            release_orecs(self.domain, &s.commit_orecs[..acquired], None);
            return Err(Abort::conflict());
        }

        // Phase 2: validate the read set. A record we hold locked
        // ourselves validates against its pre-lock version.
        for &(idx, ver) in &s.read_set {
            // ORDERING: publish.acquire-load
            let cur = self.domain.orec(idx).load(Ordering::Acquire);
            let ok = cur == ver
                || (cur == (ver | OREC_LOCKED)
                    && s
                        .commit_orecs
                        .binary_search_by_key(&idx, |e| e.0)
                        .is_ok());
            if !ok {
                release_orecs(self.domain, &s.commit_orecs, None);
                return Err(Abort::conflict());
            }
        }

        // Phase 3: publish. Seqlock words go odd, data lands, words go
        // even; lock-free readers racing us must retry.
        for &addr in &s.seq_words {
            // SAFETY: caller of `seq_write_begin` guaranteed validity.
            let word = unsafe { &*(addr as *const AtomicU64) };
            // ORDERING: handoff.acqrel-rmw — odd-stamp before the data lands.
            word.fetch_add(1, Ordering::AcqRel);
        }
        for e in &s.write_entries {
            let src = &s.write_data[e.off as usize..(e.off + e.len) as usize];
            // SAFETY: caller of `write` guaranteed `e.addr` stays valid for
            // `e.len` bytes until commit; concurrent readers use validated
            // atomic reads.
            unsafe { atomic_store_bytes(e.addr, src.as_ptr(), e.len as usize) };
        }
        for &addr in &s.seq_words {
            // SAFETY: as above.
            let word = unsafe { &*(addr as *const AtomicU64) };
            // ORDERING: handoff.acqrel-rmw — even-stamp publishes the data.
            word.fetch_add(1, Ordering::AcqRel);
        }

        // Phase 4: stamp written records with a fresh timestamp; guarded
        // records go back unmodified.
        let wv = self.domain.clock_advance();
        release_orecs(self.domain, &s.commit_orecs, Some(wv));
        Ok(())
    }
}

/// Releases locked orecs; `stamp` of `None` restores every pre-lock
/// version (abort path), `Some(wv)` publishes the new version to stamped
/// (written) records and restores guarded ones (commit path).
fn release_orecs(domain: &HtmDomain, orecs: &[(u32, bool)], stamp: Option<u64>) {
    for &(idx, stamped) in orecs {
        let orec = domain.orec(idx);
        match stamp {
            // ORDERING: publish.release-store
            Some(wv) if stamped => orec.store(wv, Ordering::Release),
            _ => {
                // ORDERING: seqlock.advisory-probe — we hold the lock bit;
                // the value is ours, no synchronization rides on the load.
                let cur = orec.load(Ordering::Relaxed);
                debug_assert!(cur & OREC_LOCKED != 0);
                // ORDERING: publish.release-store
                orec.store(cur & !OREC_LOCKED, Ordering::Release);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abort::AbortCode;
    use crate::orec::HtmConfig;

    #[test]
    fn read_sees_initial_value() {
        let d = HtmDomain::new();
        let x = 42u64;
        let got = d
            .execute(|tx| {
                // SAFETY: `x` outlives the transaction.
                unsafe { tx.read(&x as *const u64) }
            })
            .unwrap();
        assert_eq!(got, 42);
    }

    #[test]
    fn write_is_buffered_until_commit() {
        let d = HtmDomain::new();
        let mut x = 0u64;
        let p: *mut u64 = &mut x;
        d.execute(|tx| {
            // SAFETY: `x` outlives the transaction.
            unsafe { tx.write(p, 7)? };
            // The store must not have landed yet...
            assert_eq!(x, 0);
            // ...but our own read must observe it.
            // SAFETY: as above.
            let v = unsafe { tx.read(p as *const u64)? };
            assert_eq!(v, 7);
            Ok(())
        })
        .unwrap();
        assert_eq!(x, 7);
    }

    #[test]
    fn aborted_transaction_discards_writes() {
        let d = HtmDomain::new();
        let mut x = 1u64;
        let p: *mut u64 = &mut x;
        let r: Result<(), Abort> = d.execute(|tx| {
            // SAFETY: `x` outlives the transaction.
            unsafe { tx.write(p, 99)? };
            Err(Abort::explicit(5))
        });
        assert_eq!(r.unwrap_err().code, AbortCode::Explicit(5));
        assert_eq!(x, 1);
    }

    #[test]
    fn read_after_write_partial_overlap() {
        let d = HtmDomain::new();
        let mut buf = [0u8; 16];
        let base = buf.as_mut_ptr();
        d.execute(|tx| {
            // SAFETY: `buf` outlives the transaction; offsets in bounds.
            unsafe {
                tx.write(base.add(4) as *mut u32, 0xdead_beefu32)?;
                let whole: [u8; 16] = tx.read(base as *const [u8; 16])?;
                assert_eq!(&whole[0..4], &[0, 0, 0, 0]);
                assert_eq!(
                    u32::from_ne_bytes(whole[4..8].try_into().unwrap()),
                    0xdead_beef
                );
                assert_eq!(&whole[8..16], &[0u8; 8]);
            }
            Ok(())
        })
        .unwrap();
        assert_eq!(u32::from_ne_bytes(buf[4..8].try_into().unwrap()), 0xdead_beef);
    }

    #[test]
    fn same_slot_rewrite_coalesces() {
        let d = HtmDomain::new();
        let mut x = 0u64;
        let p: *mut u64 = &mut x;
        d.execute(|tx| {
            for i in 0..100u64 {
                // SAFETY: `x` outlives the transaction.
                unsafe { tx.write(p, i)? };
            }
            assert_eq!(tx.scratch.write_entries.len(), 1);
            Ok(())
        })
        .unwrap();
        assert_eq!(x, 99);
    }

    #[test]
    fn write_capacity_abort() {
        let d = HtmDomain::with_config(HtmConfig {
            write_capacity_lines: 4,
            ..HtmConfig::default()
        });
        let mut arr = vec![0u64; 1024];
        let base = arr.as_mut_ptr();
        let r: Result<(), Abort> = d.execute(|tx| {
            for i in 0..64 {
                // SAFETY: indices stay inside `arr`; one write per line.
                unsafe { tx.write(base.add(i * 8), 1u64)? };
            }
            Ok(())
        });
        assert_eq!(r.unwrap_err().code, AbortCode::Capacity);
        assert!(arr.iter().all(|&v| v == 0), "aborted tx must not write");
    }

    #[test]
    fn read_capacity_abort() {
        let d = HtmDomain::with_config(HtmConfig {
            read_capacity_lines: 4,
            ..HtmConfig::default()
        });
        let arr = vec![0u64; 1024];
        let base = arr.as_ptr();
        let r: Result<(), Abort> = d.execute(|tx| {
            for i in 0..64 {
                // SAFETY: indices stay inside `arr`; one read per line.
                unsafe { tx.read(base.add(i * 8))? };
            }
            Ok(())
        });
        assert_eq!(r.unwrap_err().code, AbortCode::Capacity);
    }

    #[test]
    fn stale_read_aborts_after_external_invalidation() {
        let d = HtmDomain::new();
        let x = 5u64;
        let addr = &x as *const u64 as usize;
        let r: Result<u64, Abort> = d.execute(|tx| {
            // Simulate a non-transactional writer invalidating the line
            // mid-transaction (as the elision fallback path does).
            d.invalidate_line(addr);
            // SAFETY: `x` outlives the transaction.
            unsafe { tx.read(&x as *const u64) }
        });
        assert_eq!(r.unwrap_err().code, AbortCode::Conflict);
    }

    #[test]
    fn commit_validation_catches_conflicting_commit() {
        let d = HtmDomain::new();
        let x = 5u64;
        let mut y = 0u64;
        let px = &x as *const u64;
        let py: *mut u64 = &mut y;
        let addr_x = px as usize;
        let r: Result<(), Abort> = d.execute(|tx| {
            // SAFETY: both locations outlive the transaction.
            let v = unsafe { tx.read(px)? };
            // Another thread commits to x's line after we read it...
            d.invalidate_line(addr_x);
            // SAFETY: as above.
            unsafe { tx.write(py, v + 1)? };
            Ok(())
        });
        // ...so our commit-time read-set validation must fail.
        assert_eq!(r.unwrap_err().code, AbortCode::Conflict);
        assert_eq!(y, 0);
    }

    #[test]
    fn seq_words_bracket_commit() {
        let d = HtmDomain::new();
        let word = AtomicU64::new(0);
        let mut x = 0u64;
        let p: *mut u64 = &mut x;
        d.execute(|tx| {
            // SAFETY: `word` and `x` outlive the transaction.
            unsafe {
                tx.seq_write_begin(&word)?;
                tx.write(p, 3)?;
            }
            Ok(())
        })
        .unwrap();
        assert_eq!(word.load(Ordering::Relaxed), 2, "odd then even bump");
        assert_eq!(x, 3);
    }

    #[test]
    fn read_only_transaction_commits_without_clock_advance() {
        let d = HtmDomain::new();
        let x = 9u64;
        let before = d.clock_now();
        // SAFETY: `x` outlives the transaction.
        d.execute(|tx| unsafe { tx.read(&x as *const u64) }).unwrap();
        assert_eq!(d.clock_now(), before);
    }

    #[test]
    fn zero_sized_reads_and_writes_are_noops() {
        let d = HtmDomain::new();
        let mut unit = ();
        let p: *mut () = &mut unit;
        d.execute(|tx| {
            // SAFETY: zero-sized access touches no memory.
            unsafe {
                tx.read(p as *const ())?;
                tx.write(p, ())?;
            }
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn footprint_counters_track_distinct_lines() {
        let d = HtmDomain::new();
        let arr = vec![0u64; 64];
        let base = arr.as_ptr();
        d.execute(|tx| {
            // SAFETY: all indices in bounds.
            unsafe {
                tx.read(base)?; // line 0
                tx.read(base.add(1))?; // still line 0
                tx.read(base.add(8))?; // line 1
            }
            assert_eq!(tx.read_footprint(), 2);
            Ok(())
        })
        .unwrap();
    }
}
