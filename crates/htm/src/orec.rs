//! The transactional memory domain: ownership records and a global clock.
//!
//! This is the TL2 half of the simulator. Every 64-byte cache line of the
//! address space maps (by hashing its line number) to one *ownership
//! record* — an `AtomicU64` whose bit 63 is a write lock and whose low 63
//! bits hold the version (a timestamp drawn from the global clock) of the
//! last committed write to any line mapping there. Hardware tracks
//! read/write sets with cache tags at exactly this granularity (paper §5),
//! which is also why *false sharing* causes transactional conflicts: two
//! unrelated variables on one line share an orec here just as they share a
//! cache tag on Haswell.

use crate::abort::Abort;
use std::sync::atomic::{AtomicU64, Ordering};

/// Bit 63 of an orec marks it write-locked by a committing transaction.
pub(crate) const OREC_LOCKED: u64 = 1 << 63;

/// Bytes per tracked cache line.
pub const CACHE_LINE: usize = 64;

/// Tuning knobs for a transactional domain.
#[derive(Debug, Clone)]
pub struct HtmConfig {
    /// Number of ownership records; must be a power of two. More records
    /// mean fewer hash collisions between unrelated lines (less false
    /// conflict aliasing).
    pub orec_count: usize,
    /// Maximum distinct cache lines a transaction may read before aborting
    /// with [`crate::AbortCode::Capacity`]. Haswell tracks the read set
    /// with L1 cache tags (32 KB = 512 lines); larger read sets abort.
    pub read_capacity_lines: usize,
    /// Maximum distinct cache lines a transaction may write before
    /// aborting with [`crate::AbortCode::Capacity`]. The paper (§5) cites a
    /// 16 KB buffering limit: 256 lines.
    pub write_capacity_lines: usize,
    /// How many times to re-poll a locked orec before declaring a conflict
    /// while acquiring the write set at commit.
    pub acquire_spin: usize,
}

impl Default for HtmConfig {
    fn default() -> Self {
        HtmConfig {
            orec_count: 1 << 16,
            read_capacity_lines: 512,
            write_capacity_lines: 256,
            acquire_spin: 64,
        }
    }
}

/// A transactional memory domain: the shared state transactions of one
/// data structure (or several) synchronize through.
///
/// Hardware HTM has exactly one implicit global domain (the coherence
/// fabric); making it an explicit value keeps tests isolated and lets
/// benchmarks construct independent tables that do not alias each other's
/// orecs.
pub struct HtmDomain {
    orecs: Box<[AtomicU64]>,
    clock: AtomicU64,
    mask: u64,
    config: HtmConfig,
}

impl HtmDomain {
    /// Creates a domain with the default configuration.
    pub fn new() -> Self {
        Self::with_config(HtmConfig::default())
    }

    /// Creates a domain with an explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if `orec_count` is not a power of two.
    pub fn with_config(config: HtmConfig) -> Self {
        assert!(
            config.orec_count.is_power_of_two(),
            "orec_count must be a power of two"
        );
        let orecs = (0..config.orec_count)
            .map(|_| AtomicU64::new(0))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        HtmDomain {
            mask: (config.orec_count - 1) as u64,
            orecs,
            clock: AtomicU64::new(0),
            config,
        }
    }

    /// The domain's configuration.
    #[inline]
    pub fn config(&self) -> &HtmConfig {
        &self.config
    }

    /// The cache line number an address belongs to.
    #[inline]
    pub(crate) fn line_of(addr: usize) -> u64 {
        (addr / CACHE_LINE) as u64
    }

    /// Index of the ownership record covering `addr`'s cache line.
    #[inline]
    pub(crate) fn orec_index(&self, addr: usize) -> u32 {
        let line = Self::line_of(addr);
        // Multiplicative mixing: sequential lines (arrays) should spread
        // across the orec table rather than march through it in lockstep
        // with another array at a different base address.
        (line.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 16 & self.mask) as u32
    }

    #[inline]
    pub(crate) fn orec(&self, idx: u32) -> &AtomicU64 {
        &self.orecs[idx as usize]
    }

    /// Current value of the global version clock.
    #[inline]
    pub(crate) fn clock_now(&self) -> u64 {
        // ORDERING: publish.acquire-load
        self.clock.load(Ordering::Acquire)
    }

    /// Advances the global clock, returning the new timestamp.
    #[inline]
    pub(crate) fn clock_advance(&self) -> u64 {
        // ORDERING: handoff.acqrel-rmw
        self.clock.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Invalidate the cache line containing `addr` for all in-flight
    /// transactions that have read it.
    ///
    /// Non-transactional code that is about to write memory which
    /// concurrent transactions may have in their read sets must call this
    /// *before* writing. The canonical user is [`crate::ElidedLock`]'s
    /// fallback path: acquiring the fallback lock bumps the lock word's
    /// orec, which (because every elided transaction reads the lock word
    /// first) aborts every in-flight transaction — exactly the behavior of
    /// a real elided lock, where the fallback acquisition writes a line in
    /// every transaction's read set.
    pub fn invalidate_line(&self, addr: usize) {
        let orec = self.orec(self.orec_index(addr));
        // Acquire the orec lock bit so we do not race a committing writer.
        loop {
            // ORDERING: publish.acquire-load
            let cur = orec.load(Ordering::Acquire);
            if cur & OREC_LOCKED != 0 {
                std::hint::spin_loop();
                continue;
            }
            // ORDERING: handoff.acqrel-rmw
            if orec
                .compare_exchange_weak(cur, cur | OREC_LOCKED, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                break;
            }
        }
        let wv = self.clock_advance();
        debug_assert_eq!(wv & OREC_LOCKED, 0, "version clock overflowed into lock bit");
        // ORDERING: publish.release-store
        orec.store(wv, Ordering::Release);
    }

    /// Runs `f` with the ownership record covering `addr` held, bumping
    /// its version afterwards if `f` returns `true`.
    ///
    /// This is the bridge non-transactional code uses to make a plain
    /// atomic update *visible to the conflict detector*: while the record
    /// is held, transactional reads of the line abort, and once the
    /// version is bumped, transactions that read the line earlier fail
    /// commit-time validation. [`crate::ElidedLock`] acquires its fallback
    /// lock this way.
    ///
    /// `f` must be short and must not start transactions in this domain.
    pub fn locked_line_update(&self, addr: usize, f: impl FnOnce() -> bool) -> bool {
        let orec = self.orec(self.orec_index(addr));
        let mut spins = 0u32;
        loop {
            // ORDERING: publish.acquire-load
            let cur = orec.load(Ordering::Acquire);
            if cur & OREC_LOCKED != 0 {
                crate::elision::backoff(&mut spins);
                continue;
            }
            // ORDERING: handoff.acqrel-rmw
            if orec
                .compare_exchange_weak(cur, cur | OREC_LOCKED, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                let changed = f();
                if changed {
                    let wv = self.clock_advance();
                    debug_assert_eq!(wv & OREC_LOCKED, 0);
                    // ORDERING: publish.release-store
                    orec.store(wv, Ordering::Release);
                } else {
                    // ORDERING: publish.release-store — unlock, version unchanged.
                    orec.store(cur, Ordering::Release);
                }
                return changed;
            }
        }
    }

    /// Runs `f` as a transaction using caller-provided scratch buffers,
    /// committing on `Ok` and discarding all buffered writes on `Err`.
    ///
    /// Returns the closure's value on commit, or the abort that ended the
    /// attempt (from the closure or from commit-time validation). This is a
    /// single attempt — retry policy belongs to the caller (see
    /// [`crate::ElidedLock`] for the paper's policies).
    pub fn attempt<R>(
        &self,
        scratch: &mut crate::txn::TxScratch,
        f: impl FnOnce(&mut crate::txn::Transaction<'_>) -> Result<R, Abort>,
    ) -> Result<R, Abort> {
        let mut tx = crate::txn::Transaction::begin(self, scratch);
        match f(&mut tx) {
            Ok(value) => {
                tx.commit()?;
                Ok(value)
            }
            Err(abort) => Err(abort),
        }
    }

    /// Convenience wrapper around [`HtmDomain::attempt`] that allocates
    /// fresh scratch buffers. Prefer `attempt` in hot paths.
    pub fn execute<R>(
        &self,
        f: impl FnOnce(&mut crate::txn::Transaction<'_>) -> Result<R, Abort>,
    ) -> Result<R, Abort> {
        let mut scratch = crate::txn::TxScratch::new();
        self.attempt(&mut scratch, f)
    }
}

impl Default for HtmDomain {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_mapping_is_line_granular() {
        let d = HtmDomain::new();
        // Two addresses within one line share an orec.
        assert_eq!(d.orec_index(0x1000), d.orec_index(0x1000 + 63));
        // Neighboring lines (usually) do not; with 2^16 orecs and
        // multiplicative hashing collisions on adjacent lines are absent.
        assert_ne!(d.orec_index(0x1000), d.orec_index(0x1000 + 64));
    }

    #[test]
    fn invalidate_line_advances_version() {
        let d = HtmDomain::new();
        let addr = 0xdead_b000usize;
        let idx = d.orec_index(addr);
        let before = d.orec(idx).load(Ordering::Relaxed);
        d.invalidate_line(addr);
        let after = d.orec(idx).load(Ordering::Relaxed);
        assert!(after > before);
        assert_eq!(after & OREC_LOCKED, 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_orec_count() {
        let _ = HtmDomain::with_config(HtmConfig {
            orec_count: 1000,
            ..HtmConfig::default()
        });
    }

    #[test]
    fn false_sharing_conflicts_like_hardware() {
        // Two unrelated variables on one cache line share an ownership
        // record — writing one invalidates transactional readers of the
        // other, exactly like Haswell's line-granularity tracking (§5).
        #[repr(C, align(64))]
        struct Line {
            a: u64,
            b: u64,
        }
        let d = HtmDomain::new();
        let line = Line { a: 1, b: 2 };
        let pa = &line.a as *const u64 as usize;
        let pb = &line.b as *const u64 as usize;
        assert_eq!(d.orec_index(pa), d.orec_index(pb), "same line, same orec");
        let r: Result<u64, Abort> = d.execute(|tx| {
            // SAFETY: `line` outlives the transaction.
            let a = unsafe { tx.read(&line.a as *const u64)? };
            // A non-transactional writer touches the *other* field's
            // line...
            d.invalidate_line(pb);
            // SAFETY: as above.
            let b = unsafe { tx.read(&line.b as *const u64)? };
            Ok(a + b)
        });
        // ...which must abort us even though `a` itself never changed.
        assert!(r.is_err(), "false sharing must conflict");
    }

    #[test]
    fn distant_lines_do_not_conflict() {
        let d = HtmDomain::new();
        let a = [1u64; 16]; // its own lines
        let b = [2u64; 16];
        let r: Result<u64, Abort> = d.execute(|tx| {
            // SAFETY: vectors outlive the transaction.
            let x = unsafe { tx.read(a.as_ptr())? };
            d.invalidate_line(b.as_ptr() as usize);
            // SAFETY: as above.
            let y = unsafe { tx.read(a.as_ptr().add(8))? };
            Ok(x + y)
        });
        assert_eq!(r.unwrap(), 2, "unrelated line writes must not abort us");
    }

    #[test]
    fn clock_is_monotonic() {
        let d = HtmDomain::new();
        let a = d.clock_advance();
        let b = d.clock_advance();
        assert!(b > a);
        assert!(d.clock_now() >= b);
    }
}
