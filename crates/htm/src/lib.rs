//! Software hardware-transactional-memory (HTM) simulator and lock elision.
//!
//! The EuroSys 2014 paper *Algorithmic Improvements for Fast Concurrent
//! Cuckoo Hashing* evaluates its hash table designs both with fine-grained
//! locking and with Intel TSX (Restricted Transactional Memory) lock
//! elision. TSX is a hardware feature; this crate provides a faithful
//! *software* stand-in so the paper's transactional experiments can run on
//! any machine:
//!
//! - [`HtmDomain`] — a TL2-style word-granularity software transactional
//!   memory. Conflict detection happens at 64-byte cache-line granularity
//!   through a table of versioned ownership records ("orecs"), mirroring how
//!   Haswell tracks read/write sets with L1 cache-line tags (paper §5).
//!   Like the hardware, it produces *conflict* aborts (another thread wrote
//!   a tracked line — including false sharing), *capacity* aborts (the
//!   read/write footprint exceeded a fixed budget), and *explicit* aborts
//!   (the transaction called the analogue of `XABORT`).
//! - [`ElidedLock`] — TSX-style lock elision following the paper's Figure
//!   11: critical sections run speculatively as transactions that hold the
//!   fallback lock word in their read set, and fall back to really acquiring
//!   the lock after repeated aborts. Both the released glibc retry policy
//!   and the paper's optimized `TSX*` policy are implemented
//!   ([`ElisionPolicy`]).
//! - [`MemCtx`] — a small memory-access abstraction letting the same
//!   critical-section code run either directly (under a real lock) or
//!   through a transaction, so data structures get genuine conflict
//!   detection without duplicating their logic.
//!
//! # Example
//!
//! ```
//! use htm::{ElidedLock, ElisionConfig, HtmDomain, MemCtx};
//! use std::sync::Arc;
//!
//! let domain = Arc::new(HtmDomain::new());
//! let lock = ElidedLock::new(domain, ElisionConfig::optimized());
//! let mut counter = 0u64;
//! let p: *mut u64 = &mut counter;
//! lock.execute(|ctx| {
//!     // SAFETY: `p` points at `counter`, which outlives the critical
//!     // section and is only accessed through this lock.
//!     let v = unsafe { ctx.load(p)? };
//!     // SAFETY: as above.
//!     unsafe { ctx.store(p, v + 1) }
//! });
//! assert_eq!(counter, 1);
//! ```

pub mod abort;
pub mod ctx;
pub mod elision;
pub mod lineset;
pub mod mem;
pub mod orec;
pub mod plain;
pub mod stats;
pub mod txn;

pub use abort::{Abort, AbortCode};
pub use ctx::{DirectCtx, MemCtx, TxCtx};
pub use elision::{ElidedLock, ElisionConfig, ElisionPolicy, ExecCtx};
pub use orec::{HtmConfig, HtmDomain};
pub use plain::Plain;
pub use stats::{HtmStats, StatsSnapshot};
pub use txn::Transaction;
