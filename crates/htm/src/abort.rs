//! Transaction abort codes, mirroring Intel RTM's `EAX` abort status.
//!
//! Intel TSX reports *why* a transaction aborted through the `EAX` register
//! (paper §5 and Appendix A): a conflict on a transactionally accessed
//! cache line, exhaustion of the hardware's read/write-set tracking
//! capacity, or an explicit `XABORT`. The `_XABORT_RETRY` flag hints
//! whether an immediate retry may succeed. The software simulator reports
//! the same taxonomy.

/// Why a transaction aborted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AbortCode {
    /// Another thread wrote (or locked for writing) a cache line in this
    /// transaction's read set, or raced this transaction's commit.
    ///
    /// Corresponds to a data-conflict abort; RTM would normally set
    /// `_XABORT_RETRY` for these.
    Conflict,
    /// The transaction's read or write footprint exceeded the simulated
    /// hardware tracking capacity (paper §5: "current implementations can
    /// track only 16KB of data"). RTM leaves `_XABORT_RETRY` clear: a
    /// retry of the same transaction will abort again.
    Capacity,
    /// The transaction aborted itself via the analogue of `XABORT imm8`.
    /// The paper's elision wrapper (Figure 11) uses
    /// `_xabort(_ABORT_LOCK_BUSY)` when the fallback lock is held.
    Explicit(u8),
}

/// The `imm8` code used by lock elision when the fallback lock is busy,
/// matching `_ABORT_LOCK_BUSY` in the paper's Figure 11.
pub const ABORT_LOCK_BUSY: u8 = 0xff;

impl AbortCode {
    /// Whether RTM would set the `_XABORT_RETRY` status flag.
    ///
    /// Conflicts are transient, so hardware suggests retrying; capacity
    /// overflows are deterministic, so it does not. Explicit aborts carry
    /// no retry hint (glibc's elision treats them as non-retryable, which
    /// the paper identifies as one of its weaknesses).
    #[inline]
    pub fn may_retry(self) -> bool {
        matches!(self, AbortCode::Conflict)
    }

    /// Whether this is the lock-busy explicit abort from the elision
    /// wrapper.
    #[inline]
    pub fn is_lock_busy(self) -> bool {
        self == AbortCode::Explicit(ABORT_LOCK_BUSY)
    }
}

/// An in-flight abort, propagated out of the transaction closure with `?`.
///
/// Constructing an `Abort` does not by itself unwind anything: the
/// transaction closure returns `Err(Abort)` and the executor discards the
/// transaction's buffered writes, exactly as hardware discards the
/// speculative state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Abort {
    /// The reported abort cause.
    pub code: AbortCode,
}

impl Abort {
    /// An abort caused by a data conflict.
    #[inline]
    pub fn conflict() -> Self {
        Abort {
            code: AbortCode::Conflict,
        }
    }

    /// An abort caused by footprint-capacity overflow.
    #[inline]
    pub fn capacity() -> Self {
        Abort {
            code: AbortCode::Capacity,
        }
    }

    /// An explicit (`XABORT`-style) abort with the given 8-bit code.
    #[inline]
    pub fn explicit(code: u8) -> Self {
        Abort {
            code: AbortCode::Explicit(code),
        }
    }

    /// The explicit lock-busy abort used by [`crate::ElidedLock`].
    #[inline]
    pub fn lock_busy() -> Self {
        Abort::explicit(ABORT_LOCK_BUSY)
    }
}

impl core::fmt::Display for Abort {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self.code {
            AbortCode::Conflict => write!(f, "transaction aborted: data conflict"),
            AbortCode::Capacity => write!(f, "transaction aborted: capacity overflow"),
            AbortCode::Explicit(c) => write!(f, "transaction aborted: explicit (code {c:#x})"),
        }
    }
}

impl std::error::Error for Abort {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_hints_match_rtm_semantics() {
        assert!(AbortCode::Conflict.may_retry());
        assert!(!AbortCode::Capacity.may_retry());
        assert!(!AbortCode::Explicit(0).may_retry());
        assert!(!AbortCode::Explicit(ABORT_LOCK_BUSY).may_retry());
    }

    #[test]
    fn lock_busy_detection() {
        assert!(Abort::lock_busy().code.is_lock_busy());
        assert!(!Abort::conflict().code.is_lock_busy());
        assert!(!Abort::explicit(0x7f).code.is_lock_busy());
    }

    #[test]
    fn display_is_informative() {
        assert!(Abort::conflict().to_string().contains("conflict"));
        assert!(Abort::capacity().to_string().contains("capacity"));
        assert!(Abort::explicit(3).to_string().contains("0x3"));
    }
}
