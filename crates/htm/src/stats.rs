//! Transactional-execution statistics.
//!
//! The paper measures transactional abort rates with the Intel Performance
//! Counter Monitor (§2.3: "the transactional abort rates are above 80% for
//! all three hash tables with 8 concurrent writers"). The simulator keeps
//! the equivalent counters itself, so benchmarks can report abort rates
//! alongside throughput.

// ORDERING-FILE: stats.counter — every atomic here is a monotonic reporting counter.

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared atomic counters for one elided lock (or any transaction user).
///
/// All counters are updated with relaxed ordering: they are monitoring
/// data, not synchronization (paper principle P1 — keep statistics out of
/// the contended path; these are per-lock, off the data cache lines).
#[derive(Debug, Default)]
pub struct HtmStats {
    /// Transactional attempts started.
    pub starts: AtomicU64,
    /// Attempts that committed.
    pub commits: AtomicU64,
    /// Aborts caused by data conflicts.
    pub conflict_aborts: AtomicU64,
    /// Aborts caused by footprint capacity overflow.
    pub capacity_aborts: AtomicU64,
    /// Explicit aborts (`XABORT`), including lock-busy aborts.
    pub explicit_aborts: AtomicU64,
    /// Times execution gave up on speculation and took the fallback lock.
    pub fallbacks: AtomicU64,
}

impl HtmStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub(crate) fn record_start(&self) {
        self.starts.fetch_add(1, Ordering::Relaxed);
        rollup_shard().starts.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn record_commit(&self) {
        self.commits.fetch_add(1, Ordering::Relaxed);
        rollup_shard().commits.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn record_abort(&self, code: crate::AbortCode) {
        let shard = rollup_shard();
        let (counter, global) = match code {
            crate::AbortCode::Conflict => (&self.conflict_aborts, &shard.conflict_aborts),
            crate::AbortCode::Capacity => (&self.capacity_aborts, &shard.capacity_aborts),
            crate::AbortCode::Explicit(_) => (&self.explicit_aborts, &shard.explicit_aborts),
        };
        counter.fetch_add(1, Ordering::Relaxed);
        global.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn record_fallback(&self) {
        self.fallbacks.fetch_add(1, Ordering::Relaxed);
        rollup_shard().fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a consistent-enough snapshot for reporting.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            starts: self.starts.load(Ordering::Relaxed),
            commits: self.commits.load(Ordering::Relaxed),
            conflict_aborts: self.conflict_aborts.load(Ordering::Relaxed),
            capacity_aborts: self.capacity_aborts.load(Ordering::Relaxed),
            explicit_aborts: self.explicit_aborts.load(Ordering::Relaxed),
            fallbacks: self.fallbacks.load(Ordering::Relaxed),
        }
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        self.starts.store(0, Ordering::Relaxed);
        self.commits.store(0, Ordering::Relaxed);
        self.conflict_aborts.store(0, Ordering::Relaxed);
        self.capacity_aborts.store(0, Ordering::Relaxed);
        self.explicit_aborts.store(0, Ordering::Relaxed);
        self.fallbacks.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of [`HtmStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Transactional attempts started.
    pub starts: u64,
    /// Attempts that committed.
    pub commits: u64,
    /// Aborts caused by data conflicts.
    pub conflict_aborts: u64,
    /// Aborts caused by footprint capacity overflow.
    pub capacity_aborts: u64,
    /// Explicit aborts (`XABORT`), including lock-busy aborts.
    pub explicit_aborts: u64,
    /// Times execution took the fallback lock.
    pub fallbacks: u64,
}

impl StatsSnapshot {
    /// Total aborts of all causes.
    pub fn aborts(&self) -> u64 {
        self.conflict_aborts + self.capacity_aborts + self.explicit_aborts
    }

    /// Fraction of started transactions that aborted (0.0 when none ran).
    ///
    /// This is the "transactional abort rate" the paper reports from PCM.
    pub fn abort_rate(&self) -> f64 {
        if self.starts == 0 {
            0.0
        } else {
            self.aborts() as f64 / self.starts as f64
        }
    }

    /// Fraction of critical sections that ended up on the fallback lock.
    pub fn fallback_rate(&self) -> f64 {
        let sections = self.commits + self.fallbacks;
        if sections == 0 {
            0.0
        } else {
            self.fallbacks as f64 / sections as f64
        }
    }
}

impl core::ops::Sub for StatsSnapshot {
    type Output = StatsSnapshot;

    /// Windowed delta. Saturating: relaxed snapshots taken while
    /// transactions run can tear (a field observed ahead of another), so
    /// a "later" snapshot may have an individually smaller field; clamp
    /// to zero rather than panicking in debug builds.
    fn sub(self, rhs: StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            starts: self.starts.saturating_sub(rhs.starts),
            commits: self.commits.saturating_sub(rhs.commits),
            conflict_aborts: self.conflict_aborts.saturating_sub(rhs.conflict_aborts),
            capacity_aborts: self.capacity_aborts.saturating_sub(rhs.capacity_aborts),
            explicit_aborts: self.explicit_aborts.saturating_sub(rhs.explicit_aborts),
            fallbacks: self.fallbacks.saturating_sub(rhs.fallbacks),
        }
    }
}

/// Number of padded shards the process-global rollup spreads across (so
/// unrelated locks' transactions do not contend on one statistics line).
const ROLLUP_SHARDS: usize = 16;

/// One rollup shard: the six counters fit a single 64-byte line, and a
/// thread always hits the same shard, so the line mostly stays in that
/// core's cache.
#[derive(Debug)]
#[repr(align(64))]
struct RollupShard {
    starts: AtomicU64,
    commits: AtomicU64,
    conflict_aborts: AtomicU64,
    capacity_aborts: AtomicU64,
    explicit_aborts: AtomicU64,
    fallbacks: AtomicU64,
}

#[allow(clippy::declare_interior_mutable_const)]
const ZERO_SHARD: RollupShard = RollupShard {
    starts: AtomicU64::new(0),
    commits: AtomicU64::new(0),
    conflict_aborts: AtomicU64::new(0),
    capacity_aborts: AtomicU64::new(0),
    explicit_aborts: AtomicU64::new(0),
    fallbacks: AtomicU64::new(0),
};

/// Process-global rollup across every [`HtmStats`] instance, so the
/// observability layer can report HTM behavior without enumerating
/// individual elided locks.
static ROLLUP: [RollupShard; ROLLUP_SHARDS] = [ZERO_SHARD; ROLLUP_SHARDS];

#[inline]
fn rollup_shard() -> &'static RollupShard {
    use std::sync::atomic::AtomicUsize;
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
    }
    let idx = SHARD.with(|s| {
        let mut v = s.get();
        if v == usize::MAX {
            v = NEXT.fetch_add(1, Ordering::Relaxed) % ROLLUP_SHARDS;
            s.set(v);
        }
        v
    });
    &ROLLUP[idx]
}

/// Snapshot of the process-global HTM rollup (sum over all elided locks
/// that ever ran in this process).
pub fn global_snapshot() -> StatsSnapshot {
    let mut s = StatsSnapshot::default();
    for shard in &ROLLUP {
        s.starts = s.starts.saturating_add(shard.starts.load(Ordering::Relaxed));
        s.commits = s.commits.saturating_add(shard.commits.load(Ordering::Relaxed));
        s.conflict_aborts =
            s.conflict_aborts.saturating_add(shard.conflict_aborts.load(Ordering::Relaxed));
        s.capacity_aborts =
            s.capacity_aborts.saturating_add(shard.capacity_aborts.load(Ordering::Relaxed));
        s.explicit_aborts =
            s.explicit_aborts.saturating_add(shard.explicit_aborts.load(Ordering::Relaxed));
        s.fallbacks = s.fallbacks.saturating_add(shard.fallbacks.load(Ordering::Relaxed));
    }
    s
}

/// Zeroes the process-global rollup (per-instance [`HtmStats`] are
/// unaffected). Not atomic with respect to running transactions.
pub fn reset_global() {
    for shard in &ROLLUP {
        shard.starts.store(0, Ordering::Relaxed);
        shard.commits.store(0, Ordering::Relaxed);
        shard.conflict_aborts.store(0, Ordering::Relaxed);
        shard.capacity_aborts.store(0, Ordering::Relaxed);
        shard.explicit_aborts.store(0, Ordering::Relaxed);
        shard.fallbacks.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AbortCode;

    #[test]
    fn abort_rate_math() {
        let s = HtmStats::new();
        for _ in 0..10 {
            s.record_start();
        }
        for _ in 0..8 {
            s.record_abort(AbortCode::Conflict);
        }
        s.record_abort(AbortCode::Capacity);
        s.record_commit();
        let snap = s.snapshot();
        assert_eq!(snap.aborts(), 9);
        assert!((snap.abort_rate() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn empty_rates_are_zero() {
        let snap = HtmStats::new().snapshot();
        assert_eq!(snap.abort_rate(), 0.0);
        assert_eq!(snap.fallback_rate(), 0.0);
    }

    #[test]
    fn snapshot_subtraction_windows() {
        let s = HtmStats::new();
        s.record_start();
        s.record_commit();
        let a = s.snapshot();
        s.record_start();
        s.record_abort(AbortCode::Conflict);
        s.record_fallback();
        let b = s.snapshot();
        let window = b - a;
        assert_eq!(window.starts, 1);
        assert_eq!(window.conflict_aborts, 1);
        assert_eq!(window.fallbacks, 1);
        assert_eq!(window.commits, 0);
    }

    #[test]
    fn reset_zeroes_counters() {
        let s = HtmStats::new();
        s.record_start();
        s.record_fallback();
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn snapshot_subtraction_saturates_on_torn_windows() {
        let newer = StatsSnapshot { starts: 3, ..Default::default() };
        let older = StatsSnapshot { starts: 5, commits: 1, ..Default::default() };
        let w = newer - older;
        assert_eq!(w.starts, 0, "torn field clamps instead of underflowing");
        assert_eq!(w.commits, 0);
    }

    #[test]
    fn global_rollup_accumulates_across_instances() {
        let before = global_snapshot();
        let a = HtmStats::new();
        let b = HtmStats::new();
        a.record_start();
        a.record_abort(AbortCode::Conflict);
        b.record_start();
        b.record_commit();
        b.record_fallback();
        let w = global_snapshot() - before;
        assert_eq!(w.starts, 2);
        assert_eq!(w.conflict_aborts, 1);
        assert_eq!(w.commits, 1);
        assert_eq!(w.fallbacks, 1);
    }
}
