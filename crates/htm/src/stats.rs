//! Transactional-execution statistics.
//!
//! The paper measures transactional abort rates with the Intel Performance
//! Counter Monitor (§2.3: "the transactional abort rates are above 80% for
//! all three hash tables with 8 concurrent writers"). The simulator keeps
//! the equivalent counters itself, so benchmarks can report abort rates
//! alongside throughput.

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared atomic counters for one elided lock (or any transaction user).
///
/// All counters are updated with relaxed ordering: they are monitoring
/// data, not synchronization (paper principle P1 — keep statistics out of
/// the contended path; these are per-lock, off the data cache lines).
#[derive(Debug, Default)]
pub struct HtmStats {
    /// Transactional attempts started.
    pub starts: AtomicU64,
    /// Attempts that committed.
    pub commits: AtomicU64,
    /// Aborts caused by data conflicts.
    pub conflict_aborts: AtomicU64,
    /// Aborts caused by footprint capacity overflow.
    pub capacity_aborts: AtomicU64,
    /// Explicit aborts (`XABORT`), including lock-busy aborts.
    pub explicit_aborts: AtomicU64,
    /// Times execution gave up on speculation and took the fallback lock.
    pub fallbacks: AtomicU64,
}

impl HtmStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub(crate) fn record_start(&self) {
        self.starts.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn record_commit(&self) {
        self.commits.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn record_abort(&self, code: crate::AbortCode) {
        let counter = match code {
            crate::AbortCode::Conflict => &self.conflict_aborts,
            crate::AbortCode::Capacity => &self.capacity_aborts,
            crate::AbortCode::Explicit(_) => &self.explicit_aborts,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn record_fallback(&self) {
        self.fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a consistent-enough snapshot for reporting.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            starts: self.starts.load(Ordering::Relaxed),
            commits: self.commits.load(Ordering::Relaxed),
            conflict_aborts: self.conflict_aborts.load(Ordering::Relaxed),
            capacity_aborts: self.capacity_aborts.load(Ordering::Relaxed),
            explicit_aborts: self.explicit_aborts.load(Ordering::Relaxed),
            fallbacks: self.fallbacks.load(Ordering::Relaxed),
        }
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        self.starts.store(0, Ordering::Relaxed);
        self.commits.store(0, Ordering::Relaxed);
        self.conflict_aborts.store(0, Ordering::Relaxed);
        self.capacity_aborts.store(0, Ordering::Relaxed);
        self.explicit_aborts.store(0, Ordering::Relaxed);
        self.fallbacks.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of [`HtmStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Transactional attempts started.
    pub starts: u64,
    /// Attempts that committed.
    pub commits: u64,
    /// Aborts caused by data conflicts.
    pub conflict_aborts: u64,
    /// Aborts caused by footprint capacity overflow.
    pub capacity_aborts: u64,
    /// Explicit aborts (`XABORT`), including lock-busy aborts.
    pub explicit_aborts: u64,
    /// Times execution took the fallback lock.
    pub fallbacks: u64,
}

impl StatsSnapshot {
    /// Total aborts of all causes.
    pub fn aborts(&self) -> u64 {
        self.conflict_aborts + self.capacity_aborts + self.explicit_aborts
    }

    /// Fraction of started transactions that aborted (0.0 when none ran).
    ///
    /// This is the "transactional abort rate" the paper reports from PCM.
    pub fn abort_rate(&self) -> f64 {
        if self.starts == 0 {
            0.0
        } else {
            self.aborts() as f64 / self.starts as f64
        }
    }

    /// Fraction of critical sections that ended up on the fallback lock.
    pub fn fallback_rate(&self) -> f64 {
        let sections = self.commits + self.fallbacks;
        if sections == 0 {
            0.0
        } else {
            self.fallbacks as f64 / sections as f64
        }
    }
}

impl core::ops::Sub for StatsSnapshot {
    type Output = StatsSnapshot;

    fn sub(self, rhs: StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            starts: self.starts - rhs.starts,
            commits: self.commits - rhs.commits,
            conflict_aborts: self.conflict_aborts - rhs.conflict_aborts,
            capacity_aborts: self.capacity_aborts - rhs.capacity_aborts,
            explicit_aborts: self.explicit_aborts - rhs.explicit_aborts,
            fallbacks: self.fallbacks - rhs.fallbacks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AbortCode;

    #[test]
    fn abort_rate_math() {
        let s = HtmStats::new();
        for _ in 0..10 {
            s.record_start();
        }
        for _ in 0..8 {
            s.record_abort(AbortCode::Conflict);
        }
        s.record_abort(AbortCode::Capacity);
        s.record_commit();
        let snap = s.snapshot();
        assert_eq!(snap.aborts(), 9);
        assert!((snap.abort_rate() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn empty_rates_are_zero() {
        let snap = HtmStats::new().snapshot();
        assert_eq!(snap.abort_rate(), 0.0);
        assert_eq!(snap.fallback_rate(), 0.0);
    }

    #[test]
    fn snapshot_subtraction_windows() {
        let s = HtmStats::new();
        s.record_start();
        s.record_commit();
        let a = s.snapshot();
        s.record_start();
        s.record_abort(AbortCode::Conflict);
        s.record_fallback();
        let b = s.snapshot();
        let window = b - a;
        assert_eq!(window.starts, 1);
        assert_eq!(window.conflict_aborts, 1);
        assert_eq!(window.fallbacks, 1);
        assert_eq!(window.commits, 0);
    }

    #[test]
    fn reset_zeroes_counters() {
        let s = HtmStats::new();
        s.record_start();
        s.record_fallback();
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }
}
