//! A small open-addressed set of cache-line numbers.
//!
//! Transactions track which distinct 64-byte lines their read and write
//! sets touch so the simulator can model hardware capacity limits. The set
//! is rebuilt for every transaction, so it favors cheap insertion and cheap
//! clearing over generality.

/// An open-addressed hash set of non-zero `u64` line numbers.
///
/// Line number 0 is reserved as the empty-slot marker; callers pass raw
/// cache-line indices, which the set offsets by one internally so index 0
/// remains representable.
pub struct LineSet {
    slots: Box<[u64]>,
    mask: usize,
    len: usize,
}

impl LineSet {
    /// Creates a set able to hold at least `capacity` distinct lines before
    /// growing.
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = (capacity.max(8) * 2).next_power_of_two();
        LineSet {
            slots: vec![0u64; cap].into_boxed_slice(),
            mask: cap - 1,
            len: 0,
        }
    }

    /// Number of distinct lines inserted.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes all lines but keeps the allocation.
    pub fn clear(&mut self) {
        self.slots.fill(0);
        self.len = 0;
    }

    /// Inserts `line`, returning `true` if it was not already present.
    pub fn insert(&mut self, line: u64) -> bool {
        // Reserve 0 as the empty marker by storing line+1.
        let key = line.wrapping_add(1);
        debug_assert_ne!(key, 0, "line u64::MAX unsupported");
        if self.len * 2 >= self.slots.len() {
            self.grow();
        }
        let mut idx = Self::hash(key) as usize & self.mask;
        loop {
            let slot = self.slots[idx];
            if slot == key {
                return false;
            }
            if slot == 0 {
                self.slots[idx] = key;
                self.len += 1;
                return true;
            }
            idx = (idx + 1) & self.mask;
        }
    }

    /// Whether `line` has been inserted.
    pub fn contains(&self, line: u64) -> bool {
        let key = line.wrapping_add(1);
        let mut idx = Self::hash(key) as usize & self.mask;
        loop {
            let slot = self.slots[idx];
            if slot == key {
                return true;
            }
            if slot == 0 {
                return false;
            }
            idx = (idx + 1) & self.mask;
        }
    }

    fn grow(&mut self) {
        let new_cap = self.slots.len() * 2;
        let old = std::mem::replace(&mut self.slots, vec![0u64; new_cap].into_boxed_slice());
        self.mask = new_cap - 1;
        self.len = 0;
        for key in old.iter().copied().filter(|&k| k != 0) {
            // Re-insert without the growth check (new table is big enough).
            let mut idx = Self::hash(key) as usize & self.mask;
            while self.slots[idx] != 0 {
                idx = (idx + 1) & self.mask;
            }
            self.slots[idx] = key;
            self.len += 1;
        }
    }

    /// Fibonacci-style multiplicative hash; line numbers are sequential, so
    /// mixing matters more than speed here.
    #[inline]
    fn hash(key: u64) -> u64 {
        key.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_right(23)
    }
}

#[cfg(test)]
mod tests {
    use super::LineSet;

    #[test]
    fn insert_and_contains() {
        let mut s = LineSet::with_capacity(4);
        assert!(s.insert(0));
        assert!(s.insert(1));
        assert!(s.insert(u64::MAX - 1));
        assert!(!s.insert(0));
        assert!(s.contains(0));
        assert!(s.contains(1));
        assert!(!s.contains(2));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn growth_preserves_members() {
        let mut s = LineSet::with_capacity(4);
        for i in 0..1000u64 {
            assert!(s.insert(i * 7));
        }
        assert_eq!(s.len(), 1000);
        for i in 0..1000u64 {
            assert!(s.contains(i * 7));
            assert!(!s.insert(i * 7));
        }
        assert!(!s.contains(3));
    }

    #[test]
    fn clear_keeps_capacity_and_empties() {
        let mut s = LineSet::with_capacity(8);
        for i in 0..100 {
            s.insert(i);
        }
        s.clear();
        assert!(s.is_empty());
        assert!(!s.contains(5));
        assert!(s.insert(5));
    }

    #[test]
    fn sequential_lines_do_not_degenerate() {
        // Cache lines from a bucket array are sequential; make sure probe
        // chains stay short enough that inserts terminate quickly.
        let mut s = LineSet::with_capacity(16);
        for i in 0..10_000u64 {
            s.insert(i);
        }
        assert_eq!(s.len(), 10_000);
    }
}
