//! The [`Plain`] marker trait for types valid under torn reads.
//!
//! Optimistic concurrency (seqlock-validated reads, speculative
//! transactional reads) materializes a value from memory *before* knowing
//! whether the read raced a concurrent writer. The bytes observed may be an
//! arbitrary mix of old and new data. That is only sound for types where
//! **every bit pattern is a valid value** — otherwise merely constructing
//! the value is undefined behavior, even if it is discarded after
//! validation fails.

/// Marker for types where any bit pattern is a valid value.
///
/// # Safety
///
/// Implementors must guarantee that every possible bit pattern of
/// `size_of::<Self>()` bytes is a valid instance of `Self`, and that the
/// type contains no padding whose contents could be observed (padding is
/// tolerated for reads we immediately validate, but implementors should
/// prefer padding-free layouts). `bool`, enums with niches, references,
/// and `NonZero*` types must **not** implement this trait.
pub unsafe trait Plain: Copy {}

macro_rules! impl_plain {
    ($($t:ty),* $(,)?) => {
        $(
            // SAFETY: all bit patterns of these primitive integer and float
            // types are valid values.
            unsafe impl Plain for $t {}
        )*
    };
}

impl_plain!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64);

// SAFETY: the unit type has size zero; there are no bits to be invalid.
unsafe impl Plain for () {}

// SAFETY: an array of `Plain` values is valid for any bit pattern because
// each element is.
unsafe impl<T: Plain, const N: usize> Plain for [T; N] {}

// SAFETY: a tuple of `Plain` values contains only `Plain` fields; any bit
// pattern of the fields themselves is valid. (Inter-field padding bytes are
// never interpreted.)
unsafe impl<A: Plain, B: Plain> Plain for (A, B) {}

// SAFETY: as for pairs.
unsafe impl<A: Plain, B: Plain, C: Plain> Plain for (A, B, C) {}

#[cfg(test)]
mod tests {
    use super::Plain;

    fn assert_plain<T: Plain>() {}

    #[test]
    fn primitives_are_plain() {
        assert_plain::<u8>();
        assert_plain::<u64>();
        assert_plain::<i128>();
        assert_plain::<f64>();
        assert_plain::<usize>();
    }

    #[test]
    fn composites_are_plain() {
        assert_plain::<[u8; 64]>();
        assert_plain::<[u64; 4]>();
        assert_plain::<(u64, u64)>();
        assert_plain::<(u32, [u8; 12], u64)>();
        assert_plain::<[[u64; 2]; 8]>();
    }
}
