//! Race-free raw byte copies for optimistic concurrency.
//!
//! Seqlock-style readers copy memory that a (version-publishing) writer
//! may be mutating concurrently; doing that with plain loads would be a
//! data race. These helpers copy through per-chunk relaxed atomics
//! (64-bit chunks when alignment allows, bytes otherwise): the values may
//! be *torn*, but observing them is defined behavior, and callers discard
//! torn results via version validation (plus [`crate::Plain`] bounds when
//! materializing typed values).

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

/// Orderings for the deliberately racy per-chunk copies.
///
/// In the real build these are Relaxed: the enclosing seqlock's
/// version/fence pair supplies all ordering, and the atomics exist only
/// to make the intentional race defined. Under `--cfg cuckoo_tsan` they
/// strengthen to Acquire/Release so ThreadSanitizer — which does not
/// model the fence-based validation argument — sees a happens-before
/// edge on every chunk and stays quiet about the copies themselves
/// while still checking everything around them.
// ORDERING: htm.racy-chunk
#[cfg(not(cuckoo_tsan))]
pub(crate) const RACY_LOAD: Ordering = Ordering::Relaxed;
// ORDERING: htm.racy-chunk
#[cfg(not(cuckoo_tsan))]
pub(crate) const RACY_STORE: Ordering = Ordering::Relaxed;
// ORDERING: htm.racy-chunk
#[cfg(cuckoo_tsan)]
pub(crate) const RACY_LOAD: Ordering = Ordering::Acquire;
// ORDERING: htm.racy-chunk
#[cfg(cuckoo_tsan)]
pub(crate) const RACY_STORE: Ordering = Ordering::Release;

/// Scheduling point between per-chunk copies under the model checker:
/// tearing *is* the interesting behavior here, so each chunk boundary
/// must be a place where the scheduler can interleave a writer.
#[inline]
fn model_yield() {
    #[cfg(cuckoo_model)]
    loom::yield_point();
}

/// Copies `len` bytes from `addr` into `dst` using relaxed atomic loads.
///
/// # Safety
///
/// `addr..addr + len` must be readable memory for the duration of the
/// call; `dst` must be valid for `len` writes and not overlap the source.
/// Concurrent writers to the source are permitted.
pub unsafe fn load_bytes(addr: usize, dst: *mut u8, len: usize) {
    if addr.is_multiple_of(8) && len.is_multiple_of(8) && (dst as usize).is_multiple_of(8) {
        for i in 0..len / 8 {
            model_yield();
            // SAFETY: in-bounds by the loop range; 8-aligned by the check.
            let v = unsafe { &*((addr + i * 8) as *const AtomicU64) }.load(RACY_LOAD);
            // SAFETY: `dst` is valid for `len` bytes and 8-aligned.
            unsafe { (dst as *mut u64).add(i).write(v) };
        }
    } else {
        for i in 0..len {
            model_yield();
            // SAFETY: in-bounds by the loop range; u8 has no alignment.
            let v = unsafe { &*((addr + i) as *const AtomicU8) }.load(RACY_LOAD);
            // SAFETY: `dst` is valid for `len` bytes.
            unsafe { dst.add(i).write(v) };
        }
    }
}

/// Copies `len` bytes from `src` to `addr` using relaxed atomic stores.
///
/// # Safety
///
/// `addr..addr + len` must be writable memory for the duration of the
/// call; `src` must be valid for `len` reads and not overlap the
/// destination. Concurrent (validating) readers of the destination are
/// permitted; concurrent writers are not.
pub unsafe fn store_bytes(addr: usize, src: *const u8, len: usize) {
    if addr.is_multiple_of(8) && len.is_multiple_of(8) && (src as usize).is_multiple_of(8) {
        for i in 0..len / 8 {
            model_yield();
            // SAFETY: in-bounds by the loop range; 8-aligned by the check.
            let v = unsafe { (src as *const u64).add(i).read() };
            // SAFETY: `addr` is valid for `len` bytes and 8-aligned.
            unsafe { &*((addr + i * 8) as *const AtomicU64) }.store(v, RACY_STORE);
        }
    } else {
        for i in 0..len {
            model_yield();
            // SAFETY: in-bounds by the loop range.
            let v = unsafe { src.add(i).read() };
            // SAFETY: `addr` is valid for `len` bytes; u8 has no alignment.
            unsafe { &*((addr + i) as *const AtomicU8) }.store(v, RACY_STORE);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_roundtrip() {
        let src = [0x1122_3344_5566_7788u64, 0xaabb_ccdd_eeff_0011];
        let mut dst = [0u64; 2];
        // SAFETY: both buffers are 16 valid, 8-aligned bytes.
        unsafe {
            store_bytes(
                dst.as_mut_ptr() as usize,
                src.as_ptr().cast::<u8>(),
                16,
            );
        }
        assert_eq!(dst, src);
        let mut back = [0u64; 2];
        // SAFETY: as above.
        unsafe { load_bytes(dst.as_ptr() as usize, back.as_mut_ptr().cast::<u8>(), 16) };
        assert_eq!(back, src);
    }

    #[test]
    fn unaligned_roundtrip() {
        let mut buf = [0u8; 32];
        let src: [u8; 13] = *b"hello, world!";
        // SAFETY: offset 3 keeps the 13 bytes inside `buf`.
        unsafe { store_bytes(buf.as_mut_ptr() as usize + 3, src.as_ptr(), 13) };
        assert_eq!(&buf[3..16], b"hello, world!");
        let mut out = [0u8; 13];
        // SAFETY: as above.
        unsafe { load_bytes(buf.as_ptr() as usize + 3, out.as_mut_ptr(), 13) };
        assert_eq!(&out, b"hello, world!");
        assert_eq!(buf[0], 0);
        assert_eq!(buf[16], 0);
    }

    #[test]
    fn zero_length_is_noop() {
        let buf = [7u8; 4];
        // SAFETY: zero bytes touched.
        unsafe { load_bytes(buf.as_ptr() as usize, core::ptr::null_mut(), 0) };
    }
}
