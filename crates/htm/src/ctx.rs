//! The [`MemCtx`] abstraction: one critical section, two execution modes.
//!
//! The paper's elided hash tables run the *same* critical-section logic
//! either speculatively (as a hardware transaction) or under the fallback
//! lock. Writing that logic twice invites divergence bugs, so data
//! structures here write it once against [`MemCtx`] and instantiate it
//! with:
//!
//! - [`TxCtx`] — every access routed through a [`Transaction`], giving
//!   genuine conflict detection and buffered writes;
//! - [`DirectCtx`] — plain (atomic-chunk) loads and stores, for execution
//!   under a real lock. Its operations never return `Err`.
//!
//! Because the methods are generic and the trait is implemented by two
//! zero-cost-ish concrete types, the direct path monomorphizes to code
//! with no transactional overhead.

use crate::abort::Abort;
use crate::plain::Plain;
use crate::mem::{load_bytes as atomic_load_bytes, store_bytes as atomic_store_bytes};
use crate::txn::Transaction;
use std::sync::atomic::{AtomicU64, Ordering};

/// Memory access abstraction for critical sections that must run both
/// transactionally and under a lock.
pub trait MemCtx {
    /// Reads the value at `ptr`.
    ///
    /// # Safety
    ///
    /// `ptr` must be non-null and valid for reads of `size_of::<T>()`
    /// bytes for the duration of the enclosing critical section.
    /// Concurrent writers must either be excluded by the critical
    /// section's mutual-exclusion protocol or detected by it (the
    /// transactional implementation aborts on conflicts).
    unsafe fn load<T: Plain>(&mut self, ptr: *const T) -> Result<T, Abort>;

    /// Writes `value` to `ptr`.
    ///
    /// Transactional implementations buffer the store until commit; the
    /// direct implementation applies it immediately.
    ///
    /// # Safety
    ///
    /// `ptr` must be non-null and valid for writes of `size_of::<T>()`
    /// bytes until the critical section completes.
    unsafe fn store<T: Plain>(&mut self, ptr: *mut T, value: T) -> Result<(), Abort>;

    /// Announces that subsequent stores are published through the seqlock
    /// version counter `word`: lock-free readers validating `word` must
    /// never observe a partial update.
    ///
    /// Transactionally, the word is bumped odd/even around the atomic
    /// commit. Directly, the word is incremented (to odd) immediately and
    /// incremented again by [`MemCtx::finish`].
    ///
    /// # Safety
    ///
    /// `word` must remain valid until the critical section completes and
    /// must currently be even. The caller must hold whatever writer-side
    /// mutual exclusion covers `word`.
    unsafe fn seq_write_begin(&mut self, word: &AtomicU64) -> Result<(), Abort>;

    /// Completes the critical section's published writes (bumps
    /// direct-mode seqlock words back to even). Called exactly once by the
    /// execution wrapper after the critical-section closure returns `Ok`.
    fn finish(&mut self);

    /// Whether this context is speculative (useful for assertions and
    /// statistics, never for algorithmic decisions).
    fn is_transactional(&self) -> bool;
}

/// Direct execution under a real lock: loads and stores go straight to
/// memory (as relaxed atomic chunk copies, so optimistic readers racing a
/// locked writer stay race-free).
pub struct DirectCtx {
    seq_words: Vec<usize>,
}

impl DirectCtx {
    /// Creates a direct context.
    pub fn new() -> Self {
        DirectCtx {
            seq_words: Vec::with_capacity(8),
        }
    }
}

impl Default for DirectCtx {
    fn default() -> Self {
        Self::new()
    }
}

impl MemCtx for DirectCtx {
    // SAFETY: caller contract is `MemCtx::load`'s (trait-level
    // `# Safety`): `ptr` valid for reads of `T` for the call's duration.
    unsafe fn load<T: Plain>(&mut self, ptr: *const T) -> Result<T, Abort> {
        let size = std::mem::size_of::<T>();
        let mut value = std::mem::MaybeUninit::<T>::uninit();
        if size != 0 {
            // SAFETY: caller guarantees `ptr` is valid for `size` bytes;
            // `value` is a fresh buffer of the same size.
            unsafe { atomic_load_bytes(ptr as usize, value.as_mut_ptr().cast::<u8>(), size) };
        }
        // SAFETY: fully initialized above (or zero-sized); `T: Plain`.
        Ok(unsafe { value.assume_init() })
    }

    unsafe fn store<T: Plain>(&mut self, ptr: *mut T, value: T) -> Result<(), Abort> {
        let size = std::mem::size_of::<T>();
        if size != 0 {
            // SAFETY: caller guarantees `ptr` is valid for `size` bytes;
            // `value` is a live `T` providing `size` readable bytes.
            unsafe {
                atomic_store_bytes(ptr as usize, &value as *const T as *const u8, size);
            }
        }
        Ok(())
    }

    // SAFETY: caller contract is `MemCtx::seq_write_begin`'s: `word`
    // must stay valid until `finish`, which re-derefs its address.
    unsafe fn seq_write_begin(&mut self, word: &AtomicU64) -> Result<(), Abort> {
        let addr = word as *const AtomicU64 as usize;
        if !self.seq_words.contains(&addr) {
            self.seq_words.push(addr);
            // ORDERING: handoff.acqrel-rmw — odd-stamp the seqlock word.
            let prev = word.fetch_add(1, Ordering::AcqRel);
            debug_assert_eq!(prev % 2, 0, "seqlock word was already odd");
        }
        Ok(())
    }

    fn finish(&mut self) {
        for &addr in &self.seq_words {
            // SAFETY: `seq_write_begin`'s contract keeps the word valid
            // until the critical section completes, which is now.
            let word = unsafe { &*(addr as *const AtomicU64) };
            // ORDERING: handoff.acqrel-rmw — even-stamp: publishes the writes.
            word.fetch_add(1, Ordering::AcqRel);
        }
        self.seq_words.clear();
    }

    fn is_transactional(&self) -> bool {
        false
    }
}

/// Transactional execution: accesses route through a [`Transaction`].
pub struct TxCtx<'a, 't> {
    tx: &'a mut Transaction<'t>,
}

impl<'a, 't> TxCtx<'a, 't> {
    /// Wraps a transaction as a memory context.
    pub fn new(tx: &'a mut Transaction<'t>) -> Self {
        TxCtx { tx }
    }
}

impl MemCtx for TxCtx<'_, '_> {
    // SAFETY: caller contract is `MemCtx::load`'s, forwarded verbatim
    // to `Transaction::read`.
    unsafe fn load<T: Plain>(&mut self, ptr: *const T) -> Result<T, Abort> {
        // SAFETY: forwarded contract.
        unsafe { self.tx.read(ptr) }
    }

    unsafe fn store<T: Plain>(&mut self, ptr: *mut T, value: T) -> Result<(), Abort> {
        // SAFETY: forwarded contract.
        unsafe { self.tx.write(ptr, value) }
    }

    unsafe fn seq_write_begin(&mut self, word: &AtomicU64) -> Result<(), Abort> {
        // SAFETY: forwarded contract.
        unsafe { self.tx.seq_write_begin(word) }
    }

    fn finish(&mut self) {
        // Commit performs the even-bump atomically with publication.
    }

    fn is_transactional(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::orec::HtmDomain;

    /// A critical section written once against `MemCtx`.
    ///
    /// # Safety
    ///
    /// `cell` and `seq` must outlive the critical section.
    unsafe fn bump_cell<C: MemCtx>(
        ctx: &mut C,
        cell: *mut u64,
        seq: &AtomicU64,
    ) -> Result<(), Abort> {
        // SAFETY: forwarded from this function's contract.
        unsafe {
            ctx.seq_write_begin(seq)?;
            let v = ctx.load(cell)?;
            ctx.store(cell, v + 1)
        }
    }

    #[test]
    fn direct_ctx_applies_immediately_and_brackets_seq() {
        let mut x = 0u64;
        let seq = AtomicU64::new(0);
        let mut ctx = DirectCtx::new();
        // SAFETY: locals outlive the call.
        unsafe { bump_cell(&mut ctx, &mut x, &seq).unwrap() };
        assert_eq!(x, 1);
        assert_eq!(seq.load(Ordering::Relaxed), 1, "odd while open");
        ctx.finish();
        assert_eq!(seq.load(Ordering::Relaxed), 2, "even when finished");
    }

    #[test]
    fn direct_ctx_dedupes_seq_words() {
        let seq = AtomicU64::new(0);
        let mut ctx = DirectCtx::new();
        // SAFETY: `seq` outlives the context.
        unsafe {
            ctx.seq_write_begin(&seq).unwrap();
            ctx.seq_write_begin(&seq).unwrap();
        }
        ctx.finish();
        assert_eq!(seq.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn tx_ctx_runs_same_section_transactionally() {
        let d = HtmDomain::new();
        let mut x = 10u64;
        let seq = AtomicU64::new(0);
        let p: *mut u64 = &mut x;
        d.execute(|tx| {
            let mut ctx = TxCtx::new(tx);
            // SAFETY: locals outlive the transaction.
            unsafe { bump_cell(&mut ctx, p, &seq) }?;
            ctx.finish();
            Ok(())
        })
        .unwrap();
        assert_eq!(x, 11);
        assert_eq!(seq.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn mode_flags() {
        let d = HtmDomain::new();
        assert!(!DirectCtx::new().is_transactional());
        d.execute(|tx| {
            assert!(TxCtx::new(tx).is_transactional());
            Ok(())
        })
        .unwrap();
    }
}
