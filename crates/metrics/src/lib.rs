//! Workspace-wide observability primitives: lock-free counters, gauges
//! and fixed-bucket histograms, plus two text renderers (Prometheus
//! exposition format and memcached `STAT` lines).
//!
//! # Hot-path cost model
//!
//! Every update is a single relaxed `AtomicU64` RMW — no locks, no
//! allocation, no branches beyond the bucket index computation. The
//! paper's principle P1 ("avoid unnecessary contention on shared cache
//! lines") is honored by *callers*, not by this crate: hot subsystems
//! either co-locate their counters on cache lines they already own
//! exclusively (per-stripe lock counters live in the stripe's own
//! padding), or only touch a counter on a path that is already slow
//! (seqlock retry, BFS search, migration chunk). This keeps the
//! instrumented fast path free of *added* cache-line traffic.
//!
//! # Consistency contract
//!
//! All updates and reads use `Ordering::Relaxed`. Snapshots taken while
//! writers are running are *per-cell atomic but not mutually
//! consistent*: a histogram's `count` can momentarily disagree with the
//! sum of its buckets, and derived ratios (e.g. contended/acquired) can
//! be off by in-flight updates. Consumers must treat snapshots as
//! monotone approximations, and all derived math in renderers and
//! snapshot types is saturating so a torn pair of reads can never
//! underflow or panic. `reset` is likewise not atomic with respect to
//! concurrent writers; it is intended for quiescent or
//! operator-initiated use (`stats reset`), where losing a handful of
//! in-flight increments is acceptable.

// ORDERING-FILE: stats.counter — the metrics registry is reporting counters by design (PR 5).

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotone event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        if n != 0 {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// Last-writer-wins instantaneous value (e.g. current graveyard depth).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    pub const fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if it is below it (high-watermark use).
    #[inline]
    pub fn fetch_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// Number of finite power-of-two buckets: upper bounds 2^0 .. 2^16.
pub const HIST_BUCKETS: usize = 17;

/// Prometheus `le` label values, one per bucket plus the overflow.
pub const LE_LABELS: [&str; HIST_BUCKETS + 1] = [
    "1", "2", "4", "8", "16", "32", "64", "128", "256", "512", "1024", "2048", "4096", "8192",
    "16384", "32768", "65536", "+Inf",
];

/// Identifier-safe bucket keys for flat (memcached `STAT`) rendering.
const LE_KEYS: [&str; HIST_BUCKETS + 1] = [
    "1", "2", "4", "8", "16", "32", "64", "128", "256", "512", "1024", "2048", "4096", "8192",
    "16384", "32768", "65536", "inf",
];

/// Fixed power-of-two-bucket histogram, cheap enough for slow-but-warm
/// paths (one relaxed RMW per record plus a `leading_zeros`).
///
/// Bucket `i < HIST_BUCKETS` counts observations `v <= 2^i`; the final
/// bucket is the overflow (`+Inf`). Buckets store *per-bucket* counts;
/// renderers cumulate them for the Prometheus `_bucket` series.
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS + 1],
    sum: AtomicU64,
}

#[inline]
fn bucket_index(v: u64) -> usize {
    if v <= 1 {
        0
    } else {
        // ceil(log2(v)): smallest i with v <= 2^i.
        let i = (64 - (v - 1).leading_zeros()) as usize;
        i.min(HIST_BUCKETS)
    }
}

impl Histogram {
    pub const fn new() -> Self {
        Histogram { buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS + 1], sum: AtomicU64::new(0) }
    }

    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HIST_BUCKETS + 1];
        for (dst, src) in buckets.iter_mut().zip(&self.buckets) {
            *dst = src.load(Ordering::Relaxed);
        }
        HistogramSnapshot { buckets, sum: self.sum.load(Ordering::Relaxed) }
    }

    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
    }
}

/// Point-in-time copy of a [`Histogram`]; all derived math saturates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    pub buckets: [u64; HIST_BUCKETS + 1],
    pub sum: u64,
}

impl HistogramSnapshot {
    pub fn count(&self) -> u64 {
        self.buckets.iter().fold(0u64, |a, &b| a.saturating_add(b))
    }

    /// Mean observation, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }
}

/// A metric's rendered value.
#[derive(Debug, Clone, Copy)]
pub enum Value {
    Counter(u64),
    Gauge(u64),
    Histogram(HistogramSnapshot),
}

/// One named metric ready for exposition.
///
/// Names and labels are `&'static str` by design: collecting a snapshot
/// allocates nothing beyond the sample vector itself, and the exported
/// name set is a stable, greppable API (golden-tested downstream).
#[derive(Debug, Clone, Copy)]
pub struct Sample {
    pub name: &'static str,
    /// Optional single `key="value"` label (e.g. HTM abort code).
    pub label: Option<(&'static str, &'static str)>,
    pub value: Value,
}

impl Sample {
    pub fn counter(name: &'static str, v: u64) -> Self {
        Sample { name, label: None, value: Value::Counter(v) }
    }

    pub fn counter_with(name: &'static str, key: &'static str, val: &'static str, v: u64) -> Self {
        Sample { name, label: Some((key, val)), value: Value::Counter(v) }
    }

    pub fn gauge(name: &'static str, v: u64) -> Self {
        Sample { name, label: None, value: Value::Gauge(v) }
    }

    pub fn histogram(name: &'static str, s: HistogramSnapshot) -> Self {
        Sample { name, label: None, value: Value::Histogram(s) }
    }
}

fn push_num(out: &mut Vec<u8>, v: u64) {
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    let mut v = v;
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    out.extend_from_slice(&buf[i..]);
}

/// Renders samples in the Prometheus text exposition format (v0.0.4).
///
/// Samples sharing a name must be adjacent in `samples` so the single
/// `# TYPE` header covers the whole family.
pub fn render_prometheus(samples: &[Sample], out: &mut Vec<u8>) {
    let mut last_name = "";
    for s in samples {
        if s.name != last_name {
            out.extend_from_slice(b"# TYPE ");
            out.extend_from_slice(s.name.as_bytes());
            out.extend_from_slice(match s.value {
                Value::Counter(_) => b" counter\n".as_slice(),
                Value::Gauge(_) => b" gauge\n".as_slice(),
                Value::Histogram(_) => b" histogram\n".as_slice(),
            });
            last_name = s.name;
        }
        match s.value {
            Value::Counter(v) | Value::Gauge(v) => {
                out.extend_from_slice(s.name.as_bytes());
                if let Some((k, val)) = s.label {
                    out.push(b'{');
                    out.extend_from_slice(k.as_bytes());
                    out.extend_from_slice(b"=\"");
                    out.extend_from_slice(val.as_bytes());
                    out.extend_from_slice(b"\"}");
                }
                out.push(b' ');
                push_num(out, v);
                out.push(b'\n');
            }
            Value::Histogram(h) => {
                let mut cum = 0u64;
                for (i, &b) in h.buckets.iter().enumerate() {
                    cum = cum.saturating_add(b);
                    out.extend_from_slice(s.name.as_bytes());
                    out.extend_from_slice(b"_bucket{le=\"");
                    out.extend_from_slice(LE_LABELS[i].as_bytes());
                    out.extend_from_slice(b"\"} ");
                    push_num(out, cum);
                    out.push(b'\n');
                }
                out.extend_from_slice(s.name.as_bytes());
                out.extend_from_slice(b"_sum ");
                push_num(out, h.sum);
                out.push(b'\n');
                out.extend_from_slice(s.name.as_bytes());
                out.extend_from_slice(b"_count ");
                push_num(out, cum);
                out.push(b'\n');
            }
        }
    }
}

/// Renders samples as memcached `STAT <name> <value>\r\n` lines.
///
/// Labels flatten into the name (`htm_aborts{code="conflict"}` becomes
/// `htm_aborts_conflict`); histograms expand to cumulative
/// `<name>_le_<bound>` lines plus `<name>_sum` / `<name>_count`.
pub fn render_stat_lines(samples: &[Sample], out: &mut Vec<u8>) {
    fn stat(out: &mut Vec<u8>, name: &str, suffix: &str, v: u64) {
        out.extend_from_slice(b"STAT ");
        out.extend_from_slice(name.as_bytes());
        out.extend_from_slice(suffix.as_bytes());
        out.push(b' ');
        push_num(out, v);
        out.extend_from_slice(b"\r\n");
    }
    let mut scratch = String::new();
    for s in samples {
        match s.value {
            Value::Counter(v) | Value::Gauge(v) => {
                if let Some((_, val)) = s.label {
                    scratch.clear();
                    scratch.push_str(s.name);
                    scratch.push('_');
                    scratch.push_str(val);
                    stat(out, &scratch, "", v);
                } else {
                    stat(out, s.name, "", v);
                }
            }
            Value::Histogram(h) => {
                let mut cum = 0u64;
                for (i, &b) in h.buckets.iter().enumerate() {
                    cum = cum.saturating_add(b);
                    scratch.clear();
                    scratch.push_str("_le_");
                    scratch.push_str(LE_KEYS[i]);
                    stat(out, s.name, &scratch, cum);
                }
                stat(out, s.name, "_sum", h.sum);
                stat(out, s.name, "_count", cum);
            }
        }
    }
}

/// The durability tier's metric families (`cuckoo_persist_*`).
///
/// Lives here (rather than in `crates/persist`) so the family set is
/// declared next to the primitives it is built from and the exported
/// name set stays greppable in one crate alongside the renderers. The
/// same placement rules apply as everywhere else: the op-log hot path
/// bumps counters it already owns (the group-commit writer thread), and
/// gauges are last-writer-wins snapshots of background state.
pub mod persist {
    use super::{Counter, Gauge, Histogram, Sample};

    /// All `cuckoo_persist_*` series for one data directory.
    #[derive(Debug, Default)]
    pub struct PersistMetrics {
        /// Operations appended to the op log.
        pub log_records: Counter,
        /// Framed bytes appended to the op log.
        pub log_bytes: Counter,
        /// `fsync` calls issued by the group-commit writer.
        pub fsyncs: Counter,
        /// Group-commit latency in microseconds: age of the oldest
        /// buffered record when its batch became durable.
        pub group_commit_us: Histogram,
        /// Appends that had to wait because the in-flight buffer was at
        /// its bound (write hot path backpressure events).
        pub backpressure_waits: Counter,
        /// Snapshots successfully written and published.
        pub snapshots: Counter,
        /// Entries in the most recent published snapshot.
        pub snapshot_entries: Gauge,
        /// Log records replayed during warm restart.
        pub replayed_records: Counter,
        /// Torn/corrupt log tails truncated during recovery.
        pub torn_tails: Counter,
        /// Highest LSN known durable (fsync'd) on this node.
        pub durable_lsn: Gauge,
        /// Replica feeds currently attached (primary side).
        pub replicas_connected: Gauge,
        /// Records streamed to replicas (primary side).
        pub replication_records_sent: Counter,
        /// Primary LSN minus the slowest attached feed's sent LSN
        /// (primary side), or primary LSN minus applied LSN (replica
        /// side).
        pub replication_lag: Gauge,
        /// Records applied from the replication stream (replica side).
        pub replication_records_applied: Counter,
    }

    impl PersistMetrics {
        pub fn new() -> Self {
            Self::default()
        }

        /// Appends one sample per family, grouped so renderers emit a
        /// single TYPE header each. Names are part of the golden set.
        pub fn samples(&self, out: &mut Vec<Sample>) {
            out.push(Sample::counter("cuckoo_persist_log_records_total", self.log_records.get()));
            out.push(Sample::counter("cuckoo_persist_log_bytes_total", self.log_bytes.get()));
            out.push(Sample::counter("cuckoo_persist_fsyncs_total", self.fsyncs.get()));
            out.push(Sample::histogram(
                "cuckoo_persist_group_commit_us",
                self.group_commit_us.snapshot(),
            ));
            out.push(Sample::counter(
                "cuckoo_persist_backpressure_waits_total",
                self.backpressure_waits.get(),
            ));
            out.push(Sample::counter("cuckoo_persist_snapshots_total", self.snapshots.get()));
            out.push(Sample::gauge(
                "cuckoo_persist_snapshot_last_entries",
                self.snapshot_entries.get(),
            ));
            out.push(Sample::counter(
                "cuckoo_persist_replayed_records_total",
                self.replayed_records.get(),
            ));
            out.push(Sample::counter("cuckoo_persist_torn_tails_total", self.torn_tails.get()));
            out.push(Sample::gauge("cuckoo_persist_durable_lsn", self.durable_lsn.get()));
            out.push(Sample::gauge(
                "cuckoo_persist_replicas_connected",
                self.replicas_connected.get(),
            ));
            out.push(Sample::counter(
                "cuckoo_persist_replication_records_sent_total",
                self.replication_records_sent.get(),
            ));
            out.push(Sample::gauge(
                "cuckoo_persist_replication_lag_records",
                self.replication_lag.get(),
            ));
            out.push(Sample::counter(
                "cuckoo_persist_replication_records_applied_total",
                self.replication_records_applied.get(),
            ));
        }

        /// `stats reset` hook: zeroes event counters and the latency
        /// histogram. LSN/connection gauges are live state, not event
        /// tallies, and are deliberately left alone (as memcached leaves
        /// `curr_connections`).
        pub fn reset(&self) {
            self.log_records.reset();
            self.log_bytes.reset();
            self.fsyncs.reset();
            self.group_commit_us.reset();
            self.backpressure_waits.reset();
            self.snapshots.reset();
            self.replayed_records.reset();
            self.torn_tails.reset();
            self.replication_records_sent.reset();
            self.replication_records_applied.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn persist_family_names_are_stable() {
        // The `cuckoo_persist_*` name set is a golden API: CI greps the
        // live server for these and dashboards key on them.
        let m = persist::PersistMetrics::new();
        m.log_records.add(3);
        m.group_commit_us.record(250);
        let mut out = Vec::new();
        m.samples(&mut out);
        let names: Vec<&str> = out.iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            [
                "cuckoo_persist_log_records_total",
                "cuckoo_persist_log_bytes_total",
                "cuckoo_persist_fsyncs_total",
                "cuckoo_persist_group_commit_us",
                "cuckoo_persist_backpressure_waits_total",
                "cuckoo_persist_snapshots_total",
                "cuckoo_persist_snapshot_last_entries",
                "cuckoo_persist_replayed_records_total",
                "cuckoo_persist_torn_tails_total",
                "cuckoo_persist_durable_lsn",
                "cuckoo_persist_replicas_connected",
                "cuckoo_persist_replication_records_sent_total",
                "cuckoo_persist_replication_lag_records",
                "cuckoo_persist_replication_records_applied_total",
            ]
        );
        // Counters reset; state gauges survive.
        m.durable_lsn.set(9);
        m.reset();
        assert_eq!(m.log_records.get(), 0);
        assert_eq!(m.group_commit_us.snapshot().count(), 0);
        assert_eq!(m.durable_lsn.get(), 9);
    }

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        c.add(0);
        assert_eq!(c.get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);

        let g = Gauge::new();
        g.set(7);
        g.fetch_max(3);
        assert_eq!(g.get(), 7);
        g.fetch_max(9);
        assert_eq!(g.get(), 9);
    }

    #[test]
    fn bucket_index_is_ceil_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(65536), 16);
        assert_eq!(bucket_index(65537), HIST_BUCKETS);
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS);
    }

    #[test]
    fn histogram_snapshot_counts_and_mean() {
        let h = Histogram::new();
        for v in [1, 2, 3, 1000, 1 << 40] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 5);
        assert_eq!(s.sum, 1 + 2 + 3 + 1000 + (1u64 << 40));
        assert_eq!(s.buckets[0], 1); // v=1
        assert_eq!(s.buckets[1], 1); // v=2
        assert_eq!(s.buckets[2], 1); // v=3
        assert_eq!(s.buckets[10], 1); // 1000 <= 1024
        assert_eq!(s.buckets[HIST_BUCKETS], 1); // overflow
        assert!((s.mean() - s.sum as f64 / 5.0).abs() < 1e-9);
        h.reset();
        assert_eq!(h.snapshot().count(), 0);
    }

    #[test]
    fn prometheus_rendering_shapes() {
        let h = Histogram::new();
        h.record(3);
        h.record(100_000);
        let samples = [
            Sample::counter("x_total", 42),
            Sample::counter_with("aborts", "code", "conflict", 7),
            Sample::counter_with("aborts", "code", "capacity", 1),
            Sample::gauge("depth", 2),
            Sample::histogram("path_len", h.snapshot()),
        ];
        let mut out = Vec::new();
        render_prometheus(&samples, &mut out);
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("# TYPE x_total counter\nx_total 42\n"));
        // One TYPE header for the two labeled series.
        assert_eq!(text.matches("# TYPE aborts counter").count(), 1);
        assert!(text.contains("aborts{code=\"conflict\"} 7"));
        assert!(text.contains("aborts{code=\"capacity\"} 1"));
        assert!(text.contains("# TYPE depth gauge\ndepth 2\n"));
        assert!(text.contains("# TYPE path_len histogram"));
        assert!(text.contains("path_len_bucket{le=\"4\"} 1"));
        assert!(text.contains("path_len_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("path_len_sum 100003"));
        assert!(text.contains("path_len_count 2"));
        // Buckets are cumulative: every bucket line value <= count.
        for line in text.lines().filter(|l| l.starts_with("path_len_bucket")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v <= 2);
        }
    }

    #[test]
    fn stat_line_rendering_shapes() {
        let h = Histogram::new();
        h.record(2);
        let samples = [
            Sample::counter("x_total", 1),
            Sample::counter_with("aborts", "code", "conflict", 7),
            Sample::histogram("spin", h.snapshot()),
        ];
        let mut out = Vec::new();
        render_stat_lines(&samples, &mut out);
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("STAT x_total 1\r\n"));
        assert!(text.contains("STAT aborts_conflict 7\r\n"));
        assert!(text.contains("STAT spin_le_1 0\r\n"));
        assert!(text.contains("STAT spin_le_2 1\r\n"));
        assert!(text.contains("STAT spin_le_inf 1\r\n"));
        assert!(text.contains("STAT spin_sum 2\r\n"));
        assert!(text.contains("STAT spin_count 1\r\n"));
        assert!(text.ends_with("\r\n"));
    }

    #[test]
    fn concurrent_updates_are_not_lost_after_join() {
        let c = Counter::new();
        let h = Histogram::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for i in 0..10_000u64 {
                        c.inc();
                        h.record(i % 100);
                    }
                });
            }
        });
        assert_eq!(c.get(), 40_000);
        assert_eq!(h.snapshot().count(), 40_000);
    }
}
