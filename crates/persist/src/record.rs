//! The op-log record codec: CRC-framed, length-prefixed binary records.
//!
//! One frame on disk (and on the replication wire — the stream reuses
//! this exact format) is:
//!
//! ```text
//! [crc32(payload) u32 LE] [len(payload) u32 LE] [payload]
//! ```
//!
//! and the payload is `[tag u8] [lsn u64 LE] [tag-specific fields]`.
//! Integers are little-endian throughout; keys and values are raw bytes
//! with `u32` length prefixes.
//!
//! The CRC is over the payload only, so a torn tail (kill -9 mid-write)
//! is detected at the first frame whose bytes are short or whose CRC
//! mismatches; recovery truncates there. The length field is bounded by
//! [`MAX_RECORD`] *before* the CRC is checked so a corrupt length can
//! never drive a huge allocation.

/// Frame header size: crc32 + len.
pub const FRAME_HEADER: usize = 8;

/// Upper bound on one payload. Keys are ≤ 250 bytes and values ≤ 1 MiB
/// at the protocol layer; anything bigger in a length field is
/// corruption, not data.
pub const MAX_RECORD: usize = 2 * 1024 * 1024;

pub const TAG_SET: u8 = 1;
pub const TAG_DELETE: u8 = 2;
pub const TAG_FLUSH_ALL: u8 = 3;
/// Wire-only (replication stream): never written to the log file.
pub const TAG_HEARTBEAT: u8 = 4;

/// One logged (or replicated) operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// An acknowledged store: the key's durable metadata exactly as the
    /// engine assigned it (`expires_at` is the *absolute* deadline, so
    /// replay needs no clock; `cas` is preserved so restart does not
    /// reissue observed cas values).
    Set { key: Vec<u8>, flags: u32, expires_at: u32, cas: u64, value: Vec<u8> },
    Delete { key: Vec<u8> },
    FlushAll,
    /// Replication keep-alive carrying the primary's latest assigned
    /// LSN, so an idle replica can compute its lag. Wire-only.
    Heartbeat { last_lsn: u64 },
}

/// An [`Op`] with its log sequence number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    pub lsn: u64,
    pub op: Op,
}

/// CRC-32 (IEEE 802.3, the zlib polynomial), table-driven, vendored —
/// the container has no crates.io access.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xedb8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32/IEEE of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xffff_ffffu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xffff_ffff
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

/// Appends one framed record for `op` at `lsn` to `out`, returning the
/// frame's size in bytes.
pub fn encode_op(op: &Op, lsn: u64, out: &mut Vec<u8>) -> usize {
    let start = out.len();
    // Header placeholder; patched once the payload is known.
    out.extend_from_slice(&[0u8; FRAME_HEADER]);
    let payload_start = out.len();
    match op {
        Op::Set { key, flags, expires_at, cas, value } => {
            out.push(TAG_SET);
            put_u64(out, lsn);
            put_bytes(out, key);
            put_u32(out, *flags);
            put_u32(out, *expires_at);
            put_u64(out, *cas);
            put_bytes(out, value);
        }
        Op::Delete { key } => {
            out.push(TAG_DELETE);
            put_u64(out, lsn);
            put_bytes(out, key);
        }
        Op::FlushAll => {
            out.push(TAG_FLUSH_ALL);
            put_u64(out, lsn);
        }
        Op::Heartbeat { last_lsn } => {
            out.push(TAG_HEARTBEAT);
            put_u64(out, lsn);
            put_u64(out, *last_lsn);
        }
    }
    let len = out.len() - payload_start;
    debug_assert!(len <= MAX_RECORD, "record exceeds MAX_RECORD");
    let crc = crc32(&out[payload_start..]);
    out[start..start + 4].copy_from_slice(&crc.to_le_bytes());
    out[start + 4..start + 8].copy_from_slice(&(len as u32).to_le_bytes());
    out.len() - start
}

/// Outcome of [`decode`] on the front of a buffer.
#[derive(Debug, PartialEq, Eq)]
pub enum Decoded {
    /// One whole record occupying `consumed` bytes.
    Frame { record: Record, consumed: usize },
    /// The buffer holds only a prefix of a frame (a torn tail on disk,
    /// or "read more" on a stream).
    Incomplete,
    /// The bytes cannot be a valid frame: CRC mismatch, impossible
    /// length, or an unknown tag.
    Corrupt,
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let s = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(s)
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4).map(|b| u32::from_le_bytes(b.try_into().expect("take(4) is 4 bytes")))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8).map(|b| u64::from_le_bytes(b.try_into().expect("take(8) is 8 bytes")))
    }

    fn bytes(&mut self) -> Option<Vec<u8>> {
        let n = self.u32()? as usize;
        self.take(n).map(|b| b.to_vec())
    }
}

/// Decodes one frame from the front of `buf`.
pub fn decode(buf: &[u8]) -> Decoded {
    if buf.len() < FRAME_HEADER {
        return Decoded::Incomplete;
    }
    let crc = u32::from_le_bytes(buf[0..4].try_into().expect("4-byte range"));
    let len = u32::from_le_bytes(buf[4..8].try_into().expect("4-byte range")) as usize;
    if len == 0 || len > MAX_RECORD {
        return Decoded::Corrupt;
    }
    if buf.len() < FRAME_HEADER + len {
        return Decoded::Incomplete;
    }
    let payload = &buf[FRAME_HEADER..FRAME_HEADER + len];
    if crc32(payload) != crc {
        return Decoded::Corrupt;
    }
    let mut r = Reader { buf: payload, pos: 0 };
    let Some(tag) = r.take(1).map(|b| b[0]) else {
        return Decoded::Corrupt;
    };
    let Some(lsn) = r.u64() else {
        return Decoded::Corrupt;
    };
    let op = match tag {
        TAG_SET => {
            let (Some(key), Some(flags), Some(expires_at), Some(cas), Some(value)) =
                (r.bytes(), r.u32(), r.u32(), r.u64(), r.bytes())
            else {
                return Decoded::Corrupt;
            };
            Op::Set { key, flags, expires_at, cas, value }
        }
        TAG_DELETE => {
            let Some(key) = r.bytes() else {
                return Decoded::Corrupt;
            };
            Op::Delete { key }
        }
        TAG_FLUSH_ALL => Op::FlushAll,
        TAG_HEARTBEAT => {
            let Some(last_lsn) = r.u64() else {
                return Decoded::Corrupt;
            };
            Op::Heartbeat { last_lsn }
        }
        _ => return Decoded::Corrupt,
    };
    if r.pos != payload.len() {
        // Trailing garbage inside a CRC-valid payload: still corrupt —
        // a valid encoder never produces it.
        return Decoded::Corrupt;
    }
    Decoded::Frame { record: Record { lsn, op }, consumed: FRAME_HEADER + len }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ops() -> Vec<Op> {
        vec![
            Op::Set {
                key: b"alpha".to_vec(),
                flags: 7,
                expires_at: 123,
                cas: 42,
                value: b"the value".to_vec(),
            },
            Op::Set { key: vec![], flags: 0, expires_at: 0, cas: 0, value: vec![] },
            Op::Delete { key: b"beta".to_vec() },
            Op::FlushAll,
            Op::Heartbeat { last_lsn: 999 },
        ]
    }

    #[test]
    fn roundtrip_every_op() {
        for (i, op) in sample_ops().into_iter().enumerate() {
            let mut buf = Vec::new();
            let n = encode_op(&op, i as u64 + 1, &mut buf);
            assert_eq!(n, buf.len());
            match decode(&buf) {
                Decoded::Frame { record, consumed } => {
                    assert_eq!(consumed, buf.len());
                    assert_eq!(record.lsn, i as u64 + 1);
                    assert_eq!(record.op, op);
                }
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn concatenated_frames_decode_in_order() {
        let mut buf = Vec::new();
        for (i, op) in sample_ops().into_iter().enumerate() {
            encode_op(&op, i as u64, &mut buf);
        }
        let mut pos = 0;
        let mut lsns = Vec::new();
        while pos < buf.len() {
            match decode(&buf[pos..]) {
                Decoded::Frame { record, consumed } => {
                    lsns.push(record.lsn);
                    pos += consumed;
                }
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(lsns, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn every_truncation_is_incomplete_never_panics() {
        let mut buf = Vec::new();
        encode_op(
            &Op::Set {
                key: b"k".to_vec(),
                flags: 1,
                expires_at: 2,
                cas: 3,
                value: b"vvvv".to_vec(),
            },
            9,
            &mut buf,
        );
        for cut in 0..buf.len() {
            assert_eq!(decode(&buf[..cut]), Decoded::Incomplete, "cut at {cut}");
        }
    }

    #[test]
    fn bit_flips_are_detected() {
        let mut clean = Vec::new();
        encode_op(&Op::Delete { key: b"victim".to_vec() }, 5, &mut clean);
        for byte in 0..clean.len() {
            let mut buf = clean.clone();
            buf[byte] ^= 0x40;
            match decode(&buf) {
                // A flip in the length field may also read as a longer
                // frame that is not all there yet.
                Decoded::Corrupt | Decoded::Incomplete => {}
                Decoded::Frame { .. } => panic!("flip at byte {byte} went undetected"),
            }
        }
    }

    #[test]
    fn absurd_length_is_corrupt_not_alloc() {
        let mut buf = vec![0u8; FRAME_HEADER];
        buf[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode(&buf), Decoded::Corrupt);
        buf[4..8].copy_from_slice(&0u32.to_le_bytes());
        assert_eq!(decode(&buf), Decoded::Corrupt, "zero-length payload");
    }

    #[test]
    fn crc_matches_known_vector() {
        // The classic IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
