//! Snapshot files: a compacted full-table image published atomically.
//!
//! Layout:
//!
//! ```text
//! [magic b"CKSNAP1\n"] [covers_lsn u64 LE] [n_entries u64 LE]
//! n_entries × [klen u32][key][flags u32][expires_at u32][cas u64][vlen u32][value]
//! [crc32 of everything above, u32 LE]
//! ```
//!
//! `covers_lsn` means: every logged op with `lsn ≤ covers_lsn` is
//! already reflected in the entries (or was superseded), so replay may
//! skip them. The file is written to `snapshot.tmp`, fsync'd, then
//! renamed over `snapshot` — a crash mid-write leaves the previous
//! snapshot untouched.

use crate::record::crc32;
use std::fs::{self, File};
use std::io::{self, Read, Write};
use std::path::Path;

pub const MAGIC: &[u8; 8] = b"CKSNAP1\n";
pub const SNAPSHOT_FILE: &str = "snapshot";
const TMP_FILE: &str = "snapshot.tmp";

/// One key's durable state, exactly as the engine stores it
/// (`expires_at` absolute, cas preserved).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    pub key: Vec<u8>,
    pub flags: u32,
    pub expires_at: u32,
    pub cas: u64,
    pub value: Vec<u8>,
}

/// A parsed snapshot.
#[derive(Debug, Default)]
pub struct Snapshot {
    pub covers_lsn: u64,
    pub entries: Vec<Entry>,
}

/// Serializes `entries` covering `covers_lsn` and atomically publishes
/// it as `<dir>/snapshot`. Returns the byte size written.
pub fn write(dir: &Path, covers_lsn: u64, entries: &[Entry]) -> io::Result<usize> {
    let mut buf = Vec::with_capacity(64 + entries.iter().map(|e| e.key.len() + e.value.len() + 24).sum::<usize>());
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&covers_lsn.to_le_bytes());
    buf.extend_from_slice(&(entries.len() as u64).to_le_bytes());
    for e in entries {
        buf.extend_from_slice(&(e.key.len() as u32).to_le_bytes());
        buf.extend_from_slice(&e.key);
        buf.extend_from_slice(&e.flags.to_le_bytes());
        buf.extend_from_slice(&e.expires_at.to_le_bytes());
        buf.extend_from_slice(&e.cas.to_le_bytes());
        buf.extend_from_slice(&(e.value.len() as u32).to_le_bytes());
        buf.extend_from_slice(&e.value);
    }
    let crc = crc32(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());

    let tmp = dir.join(TMP_FILE);
    let mut f = File::create(&tmp)?;
    f.write_all(&buf)?;
    f.sync_all()?;
    drop(f);
    fs::rename(&tmp, dir.join(SNAPSHOT_FILE))?;
    // Persist the rename itself so a crash right after publish cannot
    // resurrect the old snapshot.
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(buf.len())
}

/// Loads `<dir>/snapshot`. `Ok(None)` if no snapshot exists; an error
/// if one exists but fails validation (the caller decides whether a
/// corrupt snapshot is fatal — it is, unlike a torn log tail, because a
/// snapshot is published atomically and should never be half-written).
pub fn load(dir: &Path) -> io::Result<Option<Snapshot>> {
    let path = dir.join(SNAPSHOT_FILE);
    let mut buf = Vec::new();
    match File::open(&path) {
        Ok(mut f) => {
            f.read_to_end(&mut buf)?;
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    }
    parse(&buf).map(Some)
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("snapshot: {msg}"))
}

fn parse(buf: &[u8]) -> io::Result<Snapshot> {
    if buf.len() < MAGIC.len() + 16 + 4 {
        return Err(bad("too short"));
    }
    let (body, trailer) = buf.split_at(buf.len() - 4);
    let stored = u32::from_le_bytes(trailer.try_into().expect("split_at leaves a 4-byte trailer"));
    if crc32(body) != stored {
        return Err(bad("crc mismatch"));
    }
    if &body[..MAGIC.len()] != MAGIC {
        return Err(bad("bad magic"));
    }
    let mut pos = MAGIC.len();
    let u32_at = |buf: &[u8], pos: &mut usize| -> io::Result<u32> {
        let end = *pos + 4;
        let b = buf.get(*pos..end).ok_or_else(|| bad("truncated field"))?;
        *pos = end;
        Ok(u32::from_le_bytes(b.try_into().expect("get(pos..pos + 4) is 4 bytes")))
    };
    let u64_at = |buf: &[u8], pos: &mut usize| -> io::Result<u64> {
        let end = *pos + 8;
        let b = buf.get(*pos..end).ok_or_else(|| bad("truncated field"))?;
        *pos = end;
        Ok(u64::from_le_bytes(b.try_into().expect("get(pos..pos + 8) is 8 bytes")))
    };
    let covers_lsn = u64_at(body, &mut pos)?;
    let n = u64_at(body, &mut pos)?;
    // CRC passed, so n is trustworthy, but still bound the preallocation
    // by what could physically fit in the body.
    if n > (body.len() as u64) / 24 + 1 {
        return Err(bad("entry count exceeds file size"));
    }
    let mut entries = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let klen = u32_at(body, &mut pos)? as usize;
        let key = body.get(pos..pos + klen).ok_or_else(|| bad("truncated key"))?.to_vec();
        pos += klen;
        let flags = u32_at(body, &mut pos)?;
        let expires_at = u32_at(body, &mut pos)?;
        let cas = u64_at(body, &mut pos)?;
        let vlen = u32_at(body, &mut pos)? as usize;
        let value = body.get(pos..pos + vlen).ok_or_else(|| bad("truncated value"))?.to_vec();
        pos += vlen;
        entries.push(Entry { key, flags, expires_at, cas, value });
    }
    if pos != body.len() {
        return Err(bad("trailing bytes"));
    }
    Ok(Snapshot { covers_lsn, entries })
}

#[cfg(all(test, not(cuckoo_model)))]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!(
            "persist-snap-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn sample() -> Vec<Entry> {
        (0..50u32)
            .map(|i| Entry {
                key: format!("key-{i}").into_bytes(),
                flags: i,
                expires_at: if i % 3 == 0 { 0 } else { 1_000_000 + i },
                cas: u64::from(i) * 7 + 1,
                value: vec![i as u8; (i as usize % 40) + 1],
            })
            .collect()
    }

    #[test]
    fn roundtrip() {
        let d = tmpdir("roundtrip");
        let entries = sample();
        write(&d, 123, &entries).unwrap();
        let snap = load(&d).unwrap().unwrap();
        assert_eq!(snap.covers_lsn, 123);
        assert_eq!(snap.entries, entries);
        fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn empty_table_roundtrips() {
        let d = tmpdir("empty");
        write(&d, 0, &[]).unwrap();
        let snap = load(&d).unwrap().unwrap();
        assert_eq!(snap.covers_lsn, 0);
        assert!(snap.entries.is_empty());
        fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn missing_is_none_corrupt_is_err() {
        let d = tmpdir("corrupt");
        assert!(load(&d).unwrap().is_none());
        write(&d, 9, &sample()).unwrap();
        let path = d.join(SNAPSHOT_FILE);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        assert!(load(&d).is_err());
        // Truncation (a torn publish shouldn't happen thanks to
        // tmp+rename, but belt and braces) is also an error, not a panic.
        fs::write(&path, &bytes[..mid]).unwrap();
        assert!(load(&d).is_err());
        fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn rewrite_replaces_atomically() {
        let d = tmpdir("rewrite");
        write(&d, 1, &sample()).unwrap();
        write(&d, 2, &[]).unwrap();
        let snap = load(&d).unwrap().unwrap();
        assert_eq!(snap.covers_lsn, 2);
        assert!(snap.entries.is_empty());
        assert!(!d.join(TMP_FILE).exists());
        fs::remove_dir_all(&d).unwrap();
    }
}
