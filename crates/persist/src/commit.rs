//! The group-commit core: a bounded in-flight buffer between the write
//! hot path and the single log-writer thread.
//!
//! This module is deliberately free of file I/O and timers so the model
//! checker can explore it (`--cfg cuckoo_model` swaps every primitive
//! here for the instrumented loom shim via `cuckoo::sync2`). The
//! protocol it owns:
//!
//! - **LSN assignment and enqueue are one atomic step** (both under the
//!   queue mutex), so the buffer is always in LSN order and two racing
//!   appends can never enqueue out of order.
//! - **Backpressure never blocks on disk**: when the buffer is at its
//!   byte bound the appender spin-yields until the writer drains it —
//!   it waits on *memory*, not on `fsync`.
//! - **Watermarks** (`written_lsn` ≤ everything the writer handed to the
//!   OS; `durable_lsn` ≤ everything fsync'd) only ever advance, and
//!   `durable_lsn ≤ written_lsn ≤ last_lsn` always holds.
//!
//! The std-only writer thread (file writes, fsync cadence, rotation)
//! lives in [`crate::log`]; under the model a test thread plays its role
//! by calling [`CommitQueue::pop_batch`] / [`CommitQueue::mark_durable`]
//! directly.

use crate::record::{encode_op, Op};
use cuckoo::sync2::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use cuckoo::sync2::{thread, Mutex};
use metrics::persist::PersistMetrics;

/// One encoded record waiting for the writer thread.
pub struct PendingRecord {
    pub lsn: u64,
    /// The complete on-disk frame (header + payload).
    pub frame: Vec<u8>,
    /// When the record entered the queue; the writer turns the age at
    /// fsync time into the group-commit latency histogram. Not part of
    /// the modeled protocol.
    pub enqueued: std::time::Instant,
}

struct Pending {
    buf: Vec<PendingRecord>,
    next_lsn: u64,
}

/// See the module docs.
pub struct CommitQueue {
    pending: Mutex<Pending>,
    /// Mirror of the buffered byte total, readable without the mutex so
    /// backpressure polling does not fight the writer for the lock.
    pending_bytes: AtomicUsize,
    /// Highest LSN assigned to an append.
    last_lsn: AtomicU64,
    /// Highest LSN written to the log file (not necessarily durable).
    written_lsn: AtomicU64,
    /// Highest LSN fsync'd.
    durable_lsn: AtomicU64,
    /// An appender wants durability now (graceful drain, tests).
    sync_requested: AtomicBool,
    /// No more appends; writer drains, fsyncs, and exits.
    shutdown: AtomicBool,
    max_pending_bytes: usize,
}

impl CommitQueue {
    /// `start_lsn` is the highest LSN already on disk (recovery hands it
    /// in so restart continues the sequence); `max_pending_bytes` bounds
    /// the in-flight buffer.
    pub fn new(start_lsn: u64, max_pending_bytes: usize) -> Self {
        CommitQueue {
            pending: Mutex::new(Pending { buf: Vec::new(), next_lsn: start_lsn + 1 }),
            pending_bytes: AtomicUsize::new(0),
            last_lsn: AtomicU64::new(start_lsn),
            written_lsn: AtomicU64::new(start_lsn),
            durable_lsn: AtomicU64::new(start_lsn),
            sync_requested: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            max_pending_bytes,
        }
    }

    /// Assigns the next LSN, encodes `op` under it, and enqueues the
    /// frame. Spin-yields (never touches the disk) while the buffer is
    /// over its bound. Returns the assigned LSN.
    pub fn append(&self, op: &Op, metrics: &PersistMetrics) -> u64 {
        debug_assert!(
            !matches!(op, Op::Heartbeat { .. }),
            "heartbeats are wire-only, never logged"
        );
        let mut waited = false;
        loop {
            // Cheap pre-check outside the lock; the authoritative check
            // rides the mutex below.
            // ORDERING: publish.acquire-load
            if self.pending_bytes.load(Ordering::Acquire) >= self.max_pending_bytes
                // ORDERING: publish.acquire-load
                && !self.shutdown.load(Ordering::Acquire)
            {
                if !waited {
                    metrics.backpressure_waits.inc();
                    waited = true;
                }
                thread::yield_now();
                continue;
            }
            let mut st = self.pending.lock().expect("commit queue poisoned");
            // ORDERING: publish.acquire-load
            if self.pending_bytes.load(Ordering::Acquire) >= self.max_pending_bytes
                // ORDERING: publish.acquire-load
                && !self.shutdown.load(Ordering::Acquire)
            {
                drop(st);
                if !waited {
                    metrics.backpressure_waits.inc();
                    waited = true;
                }
                thread::yield_now();
                continue;
            }
            let lsn = st.next_lsn;
            st.next_lsn += 1;
            let mut frame = Vec::new();
            let n = encode_op(op, lsn, &mut frame);
            st.buf.push(PendingRecord { lsn, frame, enqueued: std::time::Instant::now() });
            // ORDERING: publish.release-store
            self.pending_bytes.fetch_add(n, Ordering::Release);
            // ORDERING: publish.release-store
            self.last_lsn.store(lsn, Ordering::Release);
            metrics.log_records.inc();
            metrics.log_bytes.add(n as u64);
            return lsn;
        }
    }

    /// Takes the whole buffered batch (LSN-ordered, possibly empty).
    pub fn pop_batch(&self) -> Vec<PendingRecord> {
        let mut st = self.pending.lock().expect("commit queue poisoned");
        let batch = std::mem::take(&mut st.buf);
        let bytes: usize = batch.iter().map(|r| r.frame.len()).sum();
        drop(st);
        if bytes != 0 {
            // ORDERING: publish.release-store
            self.pending_bytes.fetch_sub(bytes, Ordering::Release);
        }
        batch
    }

    /// Writer: the batch up to `lsn` has been handed to the OS.
    pub fn mark_written(&self, lsn: u64) {
        // ORDERING: publish.release-store
        self.written_lsn.fetch_max(lsn, Ordering::Release);
    }

    /// Writer: everything up to `lsn` survived an fsync.
    pub fn mark_durable(&self, lsn: u64) {
        // ORDERING: publish.acquire-load
        debug_assert!(lsn <= self.written_lsn.load(Ordering::Acquire));
        // ORDERING: publish.release-store
        self.durable_lsn.fetch_max(lsn, Ordering::Release);
    }

    pub fn last_lsn(&self) -> u64 {
        // ORDERING: publish.acquire-load
        self.last_lsn.load(Ordering::Acquire)
    }

    pub fn written_lsn(&self) -> u64 {
        // ORDERING: publish.acquire-load
        self.written_lsn.load(Ordering::Acquire)
    }

    pub fn durable_lsn(&self) -> u64 {
        // ORDERING: publish.acquire-load
        self.durable_lsn.load(Ordering::Acquire)
    }

    /// Asks the writer to fsync at its next opportunity and waits until
    /// everything appended so far is durable.
    pub fn sync(&self) {
        let target = self.last_lsn();
        while self.durable_lsn() < target {
            // ORDERING: publish.release-store
            self.sync_requested.store(true, Ordering::Release);
            thread::yield_now();
        }
    }

    /// Writer side of [`sync`](Self::sync): consumes the request flag.
    pub fn take_sync_request(&self) -> bool {
        // ORDERING: handoff.acqrel-rmw
        self.sync_requested.swap(false, Ordering::AcqRel)
    }

    /// Stops accepting the backpressure wait (appends still succeed so a
    /// drain cannot deadlock) and tells the writer to finish.
    pub fn begin_shutdown(&self) {
        // ORDERING: publish.release-store
        self.shutdown.store(true, Ordering::Release);
    }

    pub fn is_shutdown(&self) -> bool {
        // ORDERING: publish.acquire-load
        self.shutdown.load(Ordering::Acquire)
    }
}

#[cfg(all(test, not(cuckoo_model)))]
mod tests {
    use super::*;

    fn set(i: u64) -> Op {
        Op::Set {
            key: format!("k{i}").into_bytes(),
            flags: 0,
            expires_at: 0,
            cas: i,
            value: vec![0u8; 16],
        }
    }

    #[test]
    fn lsns_are_dense_and_batches_ordered() {
        let q = CommitQueue::new(0, 1 << 20);
        let m = PersistMetrics::new();
        for i in 0..100 {
            assert_eq!(q.append(&set(i), &m), i + 1);
        }
        let batch = q.pop_batch();
        assert_eq!(batch.len(), 100);
        for (i, r) in batch.iter().enumerate() {
            assert_eq!(r.lsn, i as u64 + 1);
        }
        assert!(q.pop_batch().is_empty());
        assert_eq!(m.log_records.get(), 100);
    }

    #[test]
    fn concurrent_appends_fill_one_dense_sequence() {
        let q = std::sync::Arc::new(CommitQueue::new(0, 1 << 20));
        let m = std::sync::Arc::new(PersistMetrics::new());
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let (q, m) = (std::sync::Arc::clone(&q), std::sync::Arc::clone(&m));
                s.spawn(move || {
                    for i in 0..500 {
                        q.append(&set(t * 1000 + i), &m);
                    }
                });
            }
        });
        let batch = q.pop_batch();
        assert_eq!(batch.len(), 2000);
        for (i, r) in batch.iter().enumerate() {
            assert_eq!(r.lsn, i as u64 + 1, "buffer must be LSN-ordered");
        }
    }

    #[test]
    fn backpressure_bounds_the_buffer() {
        let q = std::sync::Arc::new(CommitQueue::new(0, 2_000));
        let m = std::sync::Arc::new(PersistMetrics::new());
        let appender = {
            let (q, m) = (std::sync::Arc::clone(&q), std::sync::Arc::clone(&m));
            std::thread::spawn(move || {
                for i in 0..200 {
                    q.append(&set(i), &m);
                }
            })
        };
        // Drain slowly; the appender must block (on memory, not disk)
        // whenever the buffer is over bound.
        let mut drained = 0;
        while drained < 200 {
            std::thread::sleep(std::time::Duration::from_millis(1));
            let batch = q.pop_batch();
            assert!(
                batch.iter().map(|r| r.frame.len()).sum::<usize>() <= 2_000 + 100,
                "buffer exceeded its bound by more than one record"
            );
            drained += batch.len();
        }
        appender.join().unwrap();
        assert!(m.backpressure_waits.get() > 0, "the bound was never hit");
    }

    #[test]
    fn watermarks_are_monotonic_and_ordered() {
        let q = CommitQueue::new(10, 1 << 20);
        let m = PersistMetrics::new();
        assert_eq!(q.durable_lsn(), 10);
        let lsn = q.append(&set(1), &m);
        assert_eq!(lsn, 11);
        q.pop_batch();
        q.mark_written(11);
        assert_eq!(q.written_lsn(), 11);
        q.mark_durable(11);
        assert_eq!(q.durable_lsn(), 11);
        // Stale marks never move a watermark backwards.
        q.mark_written(5);
        q.mark_durable(5);
        assert_eq!(q.written_lsn(), 11);
        assert_eq!(q.durable_lsn(), 11);
    }
}
