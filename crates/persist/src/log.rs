//! The std-only side of the op log: the writer thread that drains the
//! commit queue to disk, the rotation protocol the snapshotter uses to
//! carve off a compactable prefix, and the recovery-time file scanner.
//!
//! Everything here runs on real files and real time, so it is *not*
//! compiled under the model checker — the protocol it drives (the
//! commit queue) is modeled separately with a test thread standing in
//! for this one.
//!
//! File layout inside a data directory:
//!
//! - `oplog` — the live log; the writer appends framed records here.
//! - `oplog.old` — the previous log generation, complete and fsync'd,
//!   waiting for the snapshotter to cover it and delete it.
//! - rotation = fsync `oplog` → rename it to `oplog.old` → open a fresh
//!   `oplog`. The rename is atomic and the content is already durable,
//!   so no crash point tears `oplog.old`.

use crate::commit::CommitQueue;
use crate::record::{decode, Decoded, Record};
use metrics::persist::PersistMetrics;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

pub const OPLOG: &str = "oplog";
pub const OPLOG_OLD: &str = "oplog.old";

/// How often the idle writer re-polls the queue. Bounds how stale the
/// on-disk (pre-fsync) log can be, which matters for replication
/// visibility, not durability.
const POLL: Duration = Duration::from_millis(1);

/// Rotation handshake between the writer thread (executes rotations at
/// batch boundaries) and the snapshotter / replication feeders.
#[derive(Debug, Default)]
pub struct RotateCtl {
    /// Snapshotter sets this; the writer consumes it.
    pub requested: AtomicBool,
    /// Completed-rotation count. Feeders compare it across reads to
    /// detect that the file they are tailing was renamed away.
    pub rotations: AtomicU64,
    /// Highest LSN contained in `oplog.old` after the last rotation,
    /// i.e. the fresh `oplog` holds exactly the LSNs above this.
    pub rotate_lsn: AtomicU64,
    /// Nonzero while a replication bootstrap needs the current `oplog`
    /// to stay in place; the writer defers rotation requests.
    pub paused: AtomicUsize,
}

impl RotateCtl {
    pub fn new(start_lsn: u64) -> Self {
        let ctl = RotateCtl::default();
        // ORDERING: advisory.relaxed
        ctl.rotate_lsn.store(start_lsn, Ordering::Relaxed);
        ctl
    }
}

/// Spawns the group-commit writer. It exits after
/// [`CommitQueue::begin_shutdown`] once the queue is drained, leaving
/// everything fsync'd.
pub fn spawn_writer(
    dir: PathBuf,
    queue: Arc<CommitQueue>,
    rotate: Arc<RotateCtl>,
    metrics: Arc<PersistMetrics>,
    fsync_interval: Duration,
) -> std::thread::JoinHandle<()> {
    std::thread::Builder::new()
        .name("persist-writer".into())
        .spawn(move || writer_loop(&dir, &queue, &rotate, &metrics, fsync_interval))
        .expect("spawn persist writer")
}

fn open_log(dir: &Path) -> File {
    OpenOptions::new()
        .create(true)
        .append(true)
        .open(dir.join(OPLOG))
        .expect("persist: cannot open op log")
}

fn writer_loop(
    dir: &Path,
    queue: &CommitQueue,
    rotate: &RotateCtl,
    metrics: &PersistMetrics,
    fsync_interval: Duration,
) {
    let mut file = open_log(dir);
    let mut last_fsync = Instant::now();
    // Oldest record written since the last fsync; its age *at* the fsync
    // is the group-commit latency for that batch.
    let mut oldest_unsynced: Option<Instant> = None;

    loop {
        let batch = queue.pop_batch();
        let shutting_down = queue.is_shutdown();

        if let Some(last) = batch.last() {
            let max_lsn = last.lsn;
            if oldest_unsynced.is_none() {
                oldest_unsynced = Some(batch[0].enqueued);
            }
            for r in &batch {
                file.write_all(&r.frame).expect("persist: op log write failed");
            }
            // Written (visible to a tailing replica feeder) but not yet
            // durable until the next fsync below.
            queue.mark_written(max_lsn);
        }

        let sync_now = queue.take_sync_request();
        let dirty = oldest_unsynced.is_some();
        if dirty && (sync_now || shutting_down || last_fsync.elapsed() >= fsync_interval) {
            file.sync_data().expect("persist: fsync failed");
            metrics.fsyncs.inc();
            if let Some(t) = oldest_unsynced.take() {
                metrics.group_commit_us.record(t.elapsed().as_micros() as u64);
            }
            let written = queue.written_lsn();
            queue.mark_durable(written);
            metrics.durable_lsn.set(written);
            last_fsync = Instant::now();
        }

        // Rotation only at a batch boundary, with everything durable,
        // and never while a replication bootstrap holds the pause.
        // ORDERING: publish.acquire-load
        if rotate.requested.load(Ordering::Acquire)
            // ORDERING: publish.acquire-load
            && rotate.paused.load(Ordering::Acquire) == 0
            && queue.durable_lsn() == queue.written_lsn()
        {
            // ORDERING: publish.release-store
            rotate.requested.store(false, Ordering::Release);
            drop(file);
            fs::rename(dir.join(OPLOG), dir.join(OPLOG_OLD))
                .expect("persist: log rotation rename failed");
            file = open_log(dir);
            // ORDERING: publish.release-store
            rotate.rotate_lsn.store(queue.written_lsn(), Ordering::Release);
            // ORDERING: publish.release-store
            rotate.rotations.fetch_add(1, Ordering::Release);
        }

        if shutting_down && batch.is_empty() {
            // One extra empty pop after the flag means the queue is
            // drained (appenders are quiesced before shutdown); the
            // fsync above already ran because `dirty` pairs with
            // `shutting_down`.
            debug_assert_eq!(queue.durable_lsn(), queue.last_lsn());
            return;
        }
        if batch.is_empty() {
            std::thread::sleep(POLL);
        }
    }
}

/// Result of scanning one log file at recovery.
#[derive(Debug)]
pub struct ScannedFile {
    pub records: Vec<Record>,
    /// Bytes up to the end of the last intact frame.
    pub valid_bytes: u64,
    /// True if the file ended in a partial or corrupt frame (torn tail).
    pub torn: bool,
}

/// Decodes every intact frame from the front of `path`. Stops at the
/// first incomplete or corrupt frame and reports it as a torn tail —
/// the caller decides whether that is acceptable (last file on disk)
/// or fatal (an interior file, which rotation guarantees is complete).
/// Returns `None` if the file does not exist.
pub fn scan_file(path: &Path) -> io::Result<Option<ScannedFile>> {
    let mut buf = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut buf)?;
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    }
    let mut records = Vec::new();
    let mut pos = 0usize;
    let mut torn = false;
    while pos < buf.len() {
        match decode(&buf[pos..]) {
            Decoded::Frame { record, consumed } => {
                records.push(record);
                pos += consumed;
            }
            Decoded::Incomplete | Decoded::Corrupt => {
                torn = true;
                break;
            }
        }
    }
    Ok(Some(ScannedFile { records, valid_bytes: pos as u64, torn }))
}

/// Truncates a torn tail off `path`, keeping exactly `valid_bytes`.
pub fn truncate_to(path: &Path, valid_bytes: u64) -> io::Result<()> {
    let f = OpenOptions::new().write(true).open(path)?;
    f.set_len(valid_bytes)?;
    f.sync_all()
}

#[cfg(all(test, not(cuckoo_model)))]
mod tests {
    use super::*;
    use crate::record::{encode_op, Op};

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("persist-log-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn set(i: u64) -> Op {
        Op::Set {
            key: format!("k{i}").into_bytes(),
            flags: 0,
            expires_at: 0,
            cas: i,
            value: vec![b'v'; 8],
        }
    }

    #[test]
    fn writer_drains_fsyncs_and_rotates() {
        let d = tmpdir("writer");
        let queue = Arc::new(CommitQueue::new(0, 1 << 20));
        let rotate = Arc::new(RotateCtl::new(0));
        let metrics = Arc::new(PersistMetrics::new());
        let h = spawn_writer(
            d.clone(),
            Arc::clone(&queue),
            Arc::clone(&rotate),
            Arc::clone(&metrics),
            Duration::from_millis(1),
        );
        for i in 0..20 {
            queue.append(&set(i), &metrics);
        }
        queue.sync();
        assert_eq!(queue.durable_lsn(), 20);
        assert!(metrics.fsyncs.get() >= 1);

        // Rotate: the live log moves aside complete, a fresh one starts.
        rotate.requested.store(true, Ordering::Release);
        while rotate.rotations.load(Ordering::Acquire) == 0 {
            std::thread::yield_now();
        }
        assert_eq!(rotate.rotate_lsn.load(Ordering::Acquire), 20);
        let old = scan_file(&d.join(OPLOG_OLD)).unwrap().unwrap();
        assert_eq!(old.records.len(), 20);
        assert!(!old.torn);

        for i in 20..25 {
            queue.append(&set(i), &metrics);
        }
        queue.begin_shutdown();
        h.join().unwrap();
        let live = scan_file(&d.join(OPLOG)).unwrap().unwrap();
        assert_eq!(
            live.records.iter().map(|r| r.lsn).collect::<Vec<_>>(),
            (21..=25).collect::<Vec<_>>()
        );
        assert_eq!(queue.durable_lsn(), 25);
        fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn pause_defers_rotation() {
        let d = tmpdir("pause");
        let queue = Arc::new(CommitQueue::new(0, 1 << 20));
        let rotate = Arc::new(RotateCtl::new(0));
        let metrics = Arc::new(PersistMetrics::new());
        let h = spawn_writer(
            d.clone(),
            Arc::clone(&queue),
            Arc::clone(&rotate),
            Arc::clone(&metrics),
            Duration::from_millis(1),
        );
        queue.append(&set(1), &metrics);
        queue.sync();
        rotate.paused.fetch_add(1, Ordering::AcqRel);
        rotate.requested.store(true, Ordering::Release);
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(rotate.rotations.load(Ordering::Acquire), 0, "rotated while paused");
        rotate.paused.fetch_sub(1, Ordering::AcqRel);
        while rotate.rotations.load(Ordering::Acquire) == 0 {
            std::thread::yield_now();
        }
        queue.begin_shutdown();
        h.join().unwrap();
        fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn scan_reports_torn_tail_and_truncate_heals_it() {
        let d = tmpdir("torn");
        let path = d.join(OPLOG);
        let mut bytes = Vec::new();
        for i in 1..=5u64 {
            encode_op(&set(i), i, &mut bytes);
        }
        let full = bytes.len();
        bytes.extend_from_slice(&bytes.clone()[..13]); // partial sixth frame
        fs::write(&path, &bytes).unwrap();

        let scan = scan_file(&path).unwrap().unwrap();
        assert!(scan.torn);
        assert_eq!(scan.records.len(), 5);
        assert_eq!(scan.valid_bytes, full as u64);

        truncate_to(&path, scan.valid_bytes).unwrap();
        let scan = scan_file(&path).unwrap().unwrap();
        assert!(!scan.torn);
        assert_eq!(scan.records.len(), 5);

        assert!(scan_file(&d.join("nope")).unwrap().is_none());
        fs::remove_dir_all(&d).unwrap();
    }
}
