//! Durability tier for the cuckoo server: append-only op log with group
//! commit, periodic compacted snapshots, warm restart, and the building
//! blocks the server reuses for primary→replica streaming.
//!
//! # Architecture
//!
//! The write hot path calls [`Persister::append`], which assigns an LSN
//! and buffers an encoded record in the [`commit::CommitQueue`] — it
//! never touches the disk. A single writer thread ([`log`]) drains the
//! queue, appends frames to `oplog`, and fsyncs on a configurable
//! cadence (the *group-commit window*: a `kill -9` loses at most the
//! appends since the last fsync, and nothing that was reported durable).
//!
//! A snapshot thread periodically asks the writer to *rotate* the log
//! (`oplog` → `oplog.old`, atomically, fully fsync'd), scans the live
//! table through a caller-supplied provider, and publishes a snapshot
//! covering the rotation LSN — after which `oplog.old` is garbage and is
//! deleted. The provider scan runs against the live table without
//! blocking writers (the maps' epoch-pinned `scan`), so the snapshot is
//! *fuzzy*; convergence holds because the store applies an op to the map
//! *before* appending it to the log while holding that key's
//! [`WriteStripes`] lock — every op the scan missed has an LSN above the
//! rotation point and replays on top.
//!
//! # Recovery
//!
//! [`Persister::open`] merges `snapshot` + `oplog.old` + `oplog` (in LSN
//! order, torn tail truncated), then *normalizes*: writes a fresh
//! snapshot covering everything and truncates the logs, so a running
//! directory always looks like {recent snapshot, short live log}. A
//! clean shutdown additionally leaves a `clean` marker; when the marker
//! matches, startup is a straight snapshot load with no replay.

pub mod commit;
pub mod log;
pub mod record;
pub mod snapshot;

pub use record::{Op, Record};
pub use snapshot::Entry;

use commit::CommitQueue;
use cuckoo::sync2::{Mutex, MutexGuard};
use log::RotateCtl;
use metrics::persist::PersistMetrics;
use std::collections::HashMap;
use std::fs::{self, File};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const CLEAN_MARKER: &str = "clean";

/// Tuning for one data directory.
#[derive(Debug, Clone)]
pub struct PersistConfig {
    pub dir: PathBuf,
    /// Group-commit window: the writer fsyncs at least this often while
    /// records are in flight. This is the maximum acknowledged-but-lost
    /// window on `kill -9`.
    pub fsync_interval: Duration,
    /// How often the snapshot thread compacts the log. Zero disables the
    /// background thread (snapshots then only happen at shutdown).
    pub snapshot_interval: Duration,
    /// Bound on encoded bytes buffered between appenders and the writer;
    /// appends spin-yield (never block on disk) above it.
    pub max_pending_bytes: usize,
}

impl PersistConfig {
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        PersistConfig {
            dir: dir.into(),
            fsync_interval: Duration::from_millis(5),
            snapshot_interval: Duration::from_secs(60),
            max_pending_bytes: 8 << 20,
        }
    }
}

/// What [`Persister::open`] reconstructed from the data directory.
#[derive(Debug)]
pub struct Recovered {
    /// The merged table image; feed it to the engine before serving.
    pub entries: Vec<Entry>,
    /// Highest LSN recovered; new appends continue right after it.
    pub last_lsn: u64,
    /// True when a clean-shutdown marker matched and no replay was
    /// needed.
    pub clean: bool,
    /// Log records replayed on top of the snapshot.
    pub replayed: u64,
}

/// Per-key write ordering locks. The store holds the key's stripe across
/// *apply to map, then append to log* so two racing writers to the same
/// key cannot log in the opposite order of their map application — the
/// invariant that makes both fuzzy snapshots and replica replay
/// converge. Routed through `cuckoo::sync2` so the model checker can
/// explore the protocol.
///
/// Lock order (enforced by the auditor in `cuckoo`): write stripe →
/// map bucket locks → commit-queue mutex.
pub struct WriteStripes {
    locks: Box<[Mutex<()>]>,
}

impl WriteStripes {
    /// `n` is rounded up to a power of two.
    pub fn new(n: usize) -> Self {
        let n = n.max(1).next_power_of_two();
        WriteStripes { locks: (0..n).map(|_| Mutex::new(())).collect() }
    }

    fn index(&self, key: &[u8]) -> usize {
        // FNV-1a; only stripe dispersion matters here.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in key {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (h as usize) & (self.locks.len() - 1)
    }

    /// Locks the stripe owning `key`.
    pub fn lock_key(&self, key: &[u8]) -> MutexGuard<'_, ()> {
        self.locks[self.index(key)].lock().expect("write stripe poisoned")
    }

    /// Locks every stripe in index order (deadlock-free against
    /// `lock_key`); used by `flush_all`, which must order against every
    /// in-flight write at once.
    pub fn lock_all(&self) -> Vec<MutexGuard<'_, ()>> {
        self.locks.iter().map(|m| m.lock().expect("write stripe poisoned")).collect()
    }

    pub fn len(&self) -> usize {
        self.locks.len()
    }

    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Scans the live table for a snapshot. Implementations must retry
/// internally until they have a consistent pass (the maps' `scan`
/// reports displacement races) and may skip already-expired entries.
pub type EntryProvider = Arc<dyn Fn() -> Vec<Entry> + Send + Sync>;

/// Keeps the log writer from rotating (and thus the live `oplog` file
/// from being renamed away) while held — replication bootstrap pins the
/// file it is about to stream. Dropping releases.
pub struct CompactionPause<'a> {
    ctl: &'a RotateCtl,
}

impl Drop for CompactionPause<'_> {
    fn drop(&mut self) {
        // ORDERING: handoff.acqrel-rmw
        self.ctl.paused.fetch_sub(1, Ordering::AcqRel);
    }
}

/// One open data directory: the commit queue, its writer thread, and
/// (once [`start_snapshots`](Persister::start_snapshots) is called) the
/// compaction thread.
pub struct Persister {
    cfg: PersistConfig,
    queue: Arc<CommitQueue>,
    rotate: Arc<RotateCtl>,
    metrics: Arc<PersistMetrics>,
    // Cold-path state behind std mutexes (never touched by `append`), so
    // the server can drive start/shutdown through a shared `&self`.
    writer: std::sync::Mutex<Option<std::thread::JoinHandle<()>>>,
    snapshotter: std::sync::Mutex<Option<std::thread::JoinHandle<()>>>,
    snap_stop: Arc<AtomicBool>,
    provider: std::sync::Mutex<Option<EntryProvider>>,
    finished: AtomicBool,
}

impl Persister {
    /// Recovers the directory (creating it if needed), normalizes it to
    /// {fresh snapshot, empty log}, and starts the writer thread.
    pub fn open(
        cfg: PersistConfig,
        metrics: Arc<PersistMetrics>,
    ) -> io::Result<(Persister, Recovered)> {
        fs::create_dir_all(&cfg.dir)?;
        let marker = read_clean_marker(&cfg.dir);
        // A corrupt snapshot is fatal: it is published atomically, so a
        // bad one means real damage, unlike an expected torn log tail.
        let snap = snapshot::load(&cfg.dir)?;
        let covers = snap.as_ref().map_or(0, |s| s.covers_lsn);

        let log_paths =
            [cfg.dir.join(log::OPLOG_OLD), cfg.dir.join(log::OPLOG)];
        let logs_empty = log_paths
            .iter()
            .all(|p| fs::metadata(p).map(|m| m.len() == 0).unwrap_or(true));

        let clean = marker == Some(covers) && logs_empty;
        let recovered = if clean {
            Recovered {
                entries: snap.map(|s| s.entries).unwrap_or_default(),
                last_lsn: covers,
                clean: true,
                replayed: 0,
            }
        } else {
            Self::replay(snap, covers, &log_paths, &metrics)?
        };
        // The marker only ever describes the shutdown that wrote it.
        let _ = fs::remove_file(cfg.dir.join(CLEAN_MARKER));

        // Normalize: everything recovered is now in one fresh snapshot,
        // and the logs restart empty. Replay work is thus bounded by one
        // crash, not a lifetime of appends.
        if !recovered.clean {
            snapshot::write(&cfg.dir, recovered.last_lsn, &recovered.entries)?;
            metrics.snapshot_entries.set(recovered.entries.len() as u64);
        }
        for p in &log_paths {
            let _ = fs::remove_file(p);
        }

        metrics.replayed_records.add(recovered.replayed);
        metrics.durable_lsn.set(recovered.last_lsn);

        let queue = Arc::new(CommitQueue::new(recovered.last_lsn, cfg.max_pending_bytes));
        let rotate = Arc::new(RotateCtl::new(recovered.last_lsn));
        let writer = log::spawn_writer(
            cfg.dir.clone(),
            Arc::clone(&queue),
            Arc::clone(&rotate),
            Arc::clone(&metrics),
            cfg.fsync_interval,
        );
        Ok((
            Persister {
                cfg,
                queue,
                rotate,
                metrics,
                writer: std::sync::Mutex::new(Some(writer)),
                snapshotter: std::sync::Mutex::new(None),
                snap_stop: Arc::new(AtomicBool::new(false)),
                provider: std::sync::Mutex::new(None),
                finished: AtomicBool::new(false),
            },
            recovered,
        ))
    }

    fn replay(
        snap: Option<snapshot::Snapshot>,
        covers: u64,
        log_paths: &[PathBuf; 2],
        metrics: &PersistMetrics,
    ) -> io::Result<Recovered> {
        let mut map: HashMap<Vec<u8>, Entry> = snap
            .map(|s| s.entries)
            .unwrap_or_default()
            .into_iter()
            .map(|e| (e.key.clone(), e))
            .collect();
        let mut last_lsn = covers;
        let mut replayed = 0u64;

        let last_present = log_paths.iter().rposition(|p| p.exists());
        for (i, path) in log_paths.iter().enumerate() {
            let Some(scan) = log::scan_file(path)? else {
                continue;
            };
            if scan.torn {
                if Some(i) != last_present {
                    // Rotation renames a complete fsync'd file, so an
                    // interior generation can never legitimately tear.
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("{}: corrupt frame mid-log", path.display()),
                    ));
                }
                metrics.torn_tails.inc();
            }
            for rec in scan.records {
                if rec.lsn <= covers {
                    // Already folded into the snapshot (crash landed
                    // between snapshot publish and oplog.old deletion).
                    continue;
                }
                if rec.lsn <= last_lsn {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("{}: LSN {} out of order", path.display(), rec.lsn),
                    ));
                }
                last_lsn = rec.lsn;
                replayed += 1;
                match rec.op {
                    Op::Set { key, flags, expires_at, cas, value } => {
                        map.insert(
                            key.clone(),
                            Entry { key, flags, expires_at, cas, value },
                        );
                    }
                    Op::Delete { key } => {
                        map.remove(&key);
                    }
                    Op::FlushAll => map.clear(),
                    Op::Heartbeat { .. } => {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            "wire-only heartbeat found in log file",
                        ));
                    }
                }
            }
        }
        Ok(Recovered {
            entries: map.into_values().collect(),
            last_lsn,
            clean: false,
            replayed,
        })
    }

    /// Assigns the next LSN to `op` and buffers it for the writer.
    /// Never blocks on disk. Call under the key's
    /// [`WriteStripes`] lock, *after* applying the op to the map.
    pub fn append(&self, op: &Op) -> u64 {
        self.queue.append(op, &self.metrics)
    }

    /// Blocks until everything appended so far is fsync'd.
    pub fn sync(&self) {
        self.queue.sync();
    }

    pub fn last_lsn(&self) -> u64 {
        self.queue.last_lsn()
    }

    pub fn durable_lsn(&self) -> u64 {
        self.queue.durable_lsn()
    }

    /// Highest LSN the writer has handed to the OS — everything a log
    /// tailer can currently read from the files.
    pub fn written_lsn(&self) -> u64 {
        self.queue.written_lsn()
    }

    pub fn metrics(&self) -> &Arc<PersistMetrics> {
        &self.metrics
    }

    pub fn dir(&self) -> &Path {
        &self.cfg.dir
    }

    pub fn oplog_path(&self) -> PathBuf {
        self.cfg.dir.join(log::OPLOG)
    }

    /// Completed log rotations; a tailer that reaches EOF and sees this
    /// change must reopen [`oplog_path`](Self::oplog_path).
    pub fn rotations(&self) -> u64 {
        // ORDERING: publish.acquire-load
        self.rotate.rotations.load(Ordering::Acquire)
    }

    /// The fresh `oplog` contains exactly the LSNs above this.
    pub fn rotate_lsn(&self) -> u64 {
        // ORDERING: publish.acquire-load
        self.rotate.rotate_lsn.load(Ordering::Acquire)
    }

    /// Pins the current `oplog` file (no rotation, and therefore no
    /// compaction) until the guard drops. Replication bootstrap wraps
    /// its "scan table at S, then stream the log above S" handoff in
    /// this so the file cannot be renamed away mid-handoff.
    pub fn pause_compaction(&self) -> CompactionPause<'_> {
        // ORDERING: handoff.acqrel-rmw
        self.rotate.paused.fetch_add(1, Ordering::AcqRel);
        CompactionPause { ctl: &self.rotate }
    }

    /// Starts the background compaction thread (and remembers the
    /// provider for the shutdown snapshot). With a zero
    /// `snapshot_interval` only the provider is recorded.
    pub fn start_snapshots(&self, provider: EntryProvider) {
        *self.provider.lock().expect("provider mutex poisoned") = Some(Arc::clone(&provider));
        let mut snapshotter = self.snapshotter.lock().expect("snapshotter mutex poisoned");
        if self.cfg.snapshot_interval.is_zero() || snapshotter.is_some() {
            return;
        }
        let dir = self.cfg.dir.clone();
        let queue = Arc::clone(&self.queue);
        let rotate = Arc::clone(&self.rotate);
        let metrics = Arc::clone(&self.metrics);
        let stop = Arc::clone(&self.snap_stop);
        let interval = self.cfg.snapshot_interval;
        let h = std::thread::Builder::new()
            .name("persist-snapshot".into())
            .spawn(move || {
                // ORDERING: publish.acquire-load
                while !stop.load(Ordering::Acquire) {
                    // Sleep in short slices so shutdown is prompt.
                    let mut slept = Duration::ZERO;
                    // ORDERING: publish.acquire-load
                    while slept < interval && !stop.load(Ordering::Acquire) {
                        let step = Duration::from_millis(50).min(interval - slept);
                        std::thread::sleep(step);
                        slept += step;
                    }
                    // ORDERING: publish.acquire-load
                    if stop.load(Ordering::Acquire) {
                        return;
                    }
                    // ORDERING: publish.acquire-load
                    if rotate.paused.load(Ordering::Acquire) != 0 {
                        continue;
                    }
                    if let Err(e) =
                        snapshot_cycle(&dir, &queue, &rotate, &metrics, &provider, &stop)
                    {
                        // Leave the log un-compacted; durability is
                        // unaffected and the next cycle retries.
                        eprintln!("persist: snapshot failed: {e}");
                    }
                }
            })
            .expect("spawn persist snapshotter");
        *snapshotter = Some(h);
    }

    /// Runs one rotate-scan-publish-compact cycle synchronously (tests,
    /// benches, and admin tooling).
    pub fn snapshot_now(&self) -> io::Result<()> {
        let provider = self
            .provider
            .lock()
            .expect("provider mutex poisoned")
            .clone()
            .ok_or_else(|| io::Error::other("no entry provider registered"))?;
        snapshot_cycle(
            &self.cfg.dir,
            &self.queue,
            &self.rotate,
            &self.metrics,
            &provider,
            &self.snap_stop,
        )
    }

    /// Graceful drain: stops the background threads, fsyncs everything,
    /// publishes a final snapshot, truncates the logs, and writes the
    /// clean-shutdown marker so the next start skips replay entirely.
    ///
    /// All appenders must be quiesced first (the server drains
    /// connections before calling this).
    pub fn shutdown(&self) -> io::Result<()> {
        // ORDERING: handoff.acqrel-rmw
        if self.finished.swap(true, Ordering::AcqRel) {
            return Ok(());
        }
        self.stop_threads();
        let last = self.queue.durable_lsn();
        debug_assert_eq!(last, self.queue.last_lsn());
        let provider = self.provider.lock().expect("provider mutex poisoned").clone();
        if let Some(p) = &provider {
            let entries = p();
            snapshot::write(&self.cfg.dir, last, &entries)?;
            self.metrics.snapshots.inc();
            self.metrics.snapshot_entries.set(entries.len() as u64);
            let _ = fs::remove_file(self.cfg.dir.join(log::OPLOG_OLD));
            let _ = fs::remove_file(self.cfg.dir.join(log::OPLOG));
            write_clean_marker(&self.cfg.dir, last)?;
        }
        // Without a provider we cannot compact, so no marker: the next
        // start replays the (fully fsync'd) log, which is merely slower,
        // never wrong.
        Ok(())
    }

    fn stop_threads(&self) {
        // ORDERING: publish.release-store
        self.snap_stop.store(true, Ordering::Release);
        if let Some(h) = self.snapshotter.lock().expect("snapshotter mutex poisoned").take() {
            let _ = h.join();
        }
        self.queue.begin_shutdown();
        if let Some(h) = self.writer.lock().expect("writer mutex poisoned").take() {
            let _ = h.join();
        }
    }
}

impl Drop for Persister {
    fn drop(&mut self) {
        // Ungraceful drop (tests, panics): stop the threads so the final
        // fsync still happens, but leave no clean marker — the next open
        // takes the replay path, which is always safe.
        self.stop_threads();
    }
}

fn snapshot_cycle(
    dir: &Path,
    queue: &CommitQueue,
    rotate: &RotateCtl,
    metrics: &PersistMetrics,
    provider: &EntryProvider,
    stop: &AtomicBool,
) -> io::Result<()> {
    // 1. Rotate, so the records to be covered sit in a frozen file.
    // ORDERING: publish.acquire-load
    let before = rotate.rotations.load(Ordering::Acquire);
    // ORDERING: publish.release-store
    rotate.requested.store(true, Ordering::Release);
    // ORDERING: publish.acquire-load
    while rotate.rotations.load(Ordering::Acquire) == before {
        // ORDERING: publish.acquire-load
        if stop.load(Ordering::Acquire) || queue.is_shutdown() {
            // ORDERING: publish.release-store
            rotate.requested.store(false, Ordering::Release);
            return Ok(());
        }
        std::thread::yield_now();
    }
    // ORDERING: publish.acquire-load
    let r = rotate.rotate_lsn.load(Ordering::Acquire);

    // 2. Scan the live table *after* the rotation. Apply-before-append
    // under the write stripes means any op missing from this scan has
    // an LSN above `r`, so {snapshot@r} + {oplog} still replays to the
    // exact table.
    let entries = provider();

    // 3. Publish, then drop the covered generation.
    snapshot::write(dir, r, &entries)?;
    metrics.snapshots.inc();
    metrics.snapshot_entries.set(entries.len() as u64);
    let _ = fs::remove_file(dir.join(log::OPLOG_OLD));
    Ok(())
}

fn clean_marker_bytes(lsn: u64) -> [u8; 12] {
    let mut b = [0u8; 12];
    b[..8].copy_from_slice(&lsn.to_le_bytes());
    let crc = record::crc32(&b[..8]);
    b[8..].copy_from_slice(&crc.to_le_bytes());
    b
}

fn write_clean_marker(dir: &Path, lsn: u64) -> io::Result<()> {
    let mut f = File::create(dir.join(CLEAN_MARKER))?;
    f.write_all(&clean_marker_bytes(lsn))?;
    f.sync_all()
}

/// A missing, short, or CRC-failing marker all mean the same thing:
/// not a clean shutdown.
fn read_clean_marker(dir: &Path) -> Option<u64> {
    let mut buf = Vec::new();
    File::open(dir.join(CLEAN_MARKER)).ok()?.read_to_end(&mut buf).ok()?;
    let b: &[u8; 12] = buf.as_slice().try_into().ok()?;
    let lsn = u64::from_le_bytes(b[..8].try_into().expect("8-byte slice of a [u8; 12]"));
    let crc = u32::from_le_bytes(b[8..].try_into().expect("4-byte slice of a [u8; 12]"));
    (record::crc32(&b[..8]) == crc).then_some(lsn)
}

#[cfg(all(test, not(cuckoo_model)))]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("persist-lib-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn cfg(dir: &Path) -> PersistConfig {
        let mut c = PersistConfig::new(dir);
        c.fsync_interval = Duration::from_millis(1);
        c.snapshot_interval = Duration::ZERO; // drive snapshots by hand
        c
    }

    fn set_op(key: &str, val: &str, cas: u64) -> Op {
        Op::Set {
            key: key.as_bytes().to_vec(),
            flags: 0,
            expires_at: 0,
            cas,
            value: val.as_bytes().to_vec(),
        }
    }

    fn table(entries: &[Entry]) -> HashMap<Vec<u8>, Vec<u8>> {
        entries.iter().map(|e| (e.key.clone(), e.value.clone())).collect()
    }

    #[test]
    fn dirty_restart_replays_the_log() {
        let d = tmpdir("dirty");
        {
            let (p, rec) =
                Persister::open(cfg(&d), Arc::new(PersistMetrics::new())).unwrap();
            assert_eq!(rec.last_lsn, 0);
            assert!(!rec.clean);
            p.append(&set_op("a", "1", 1));
            p.append(&set_op("b", "2", 2));
            p.append(&Op::Delete { key: b"a".to_vec() });
            p.append(&set_op("c", "3", 3));
            p.sync();
            // Dropped without shutdown(): no marker, log left in place.
        }
        let m = Arc::new(PersistMetrics::new());
        let (_p, rec) = Persister::open(cfg(&d), Arc::clone(&m)).unwrap();
        assert!(!rec.clean);
        assert_eq!(rec.last_lsn, 4);
        assert_eq!(rec.replayed, 4);
        let t = table(&rec.entries);
        assert_eq!(t.len(), 2);
        assert_eq!(t[b"b".as_slice()], b"2");
        assert_eq!(t[b"c".as_slice()], b"3");
        assert_eq!(m.replayed_records.get(), 4);
        drop(_p);
        fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn clean_shutdown_skips_replay_and_lsns_continue() {
        let d = tmpdir("clean");
        {
            let (p, _) =
                Persister::open(cfg(&d), Arc::new(PersistMetrics::new())).unwrap();
            p.append(&set_op("k", "v", 1));
            let entries = vec![Entry {
                key: b"k".to_vec(),
                flags: 0,
                expires_at: 0,
                cas: 1,
                value: b"v".to_vec(),
            }];
            p.start_snapshots(Arc::new(move || entries.clone()));
            p.shutdown().unwrap();
        }
        let m = Arc::new(PersistMetrics::new());
        let (p, rec) = Persister::open(cfg(&d), Arc::clone(&m)).unwrap();
        assert!(rec.clean, "marker + covering snapshot must skip replay");
        assert_eq!(rec.replayed, 0);
        assert_eq!(rec.last_lsn, 1);
        assert_eq!(table(&rec.entries)[b"k".as_slice()], b"v");
        // The marker is single-use: a crash now must not read as clean.
        assert!(!d.join(CLEAN_MARKER).exists());
        assert_eq!(p.append(&set_op("k2", "v2", 2)), 2, "LSNs continue after restart");
        drop(p);
        fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn restart_normalizes_and_replay_is_bounded_by_one_crash() {
        let d = tmpdir("normalize");
        for round in 0u64..3 {
            let (p, rec) =
                Persister::open(cfg(&d), Arc::new(PersistMetrics::new())).unwrap();
            // Each dirty restart folds the previous log into the
            // snapshot, so replay never exceeds one round's appends.
            assert_eq!(rec.replayed, if round == 0 { 0 } else { 10 });
            for i in 0..10 {
                p.append(&set_op(&format!("r{round}-k{i}"), "x", round * 10 + i + 1));
            }
            p.sync();
        }
        let (_p, rec) = Persister::open(cfg(&d), Arc::new(PersistMetrics::new())).unwrap();
        assert_eq!(rec.entries.len(), 30);
        assert_eq!(rec.last_lsn, 30);
        drop(_p);
        fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let d = tmpdir("torn");
        {
            let (p, _) = Persister::open(cfg(&d), Arc::new(PersistMetrics::new())).unwrap();
            p.append(&set_op("a", "1", 1));
            p.append(&set_op("b", "2", 2));
            p.sync();
        }
        // Tear the tail the way kill -9 mid-write does.
        let path = d.join(log::OPLOG);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();

        let m = Arc::new(PersistMetrics::new());
        let (_p, rec) = Persister::open(cfg(&d), Arc::clone(&m)).unwrap();
        assert_eq!(rec.replayed, 1, "only the intact prefix replays");
        assert_eq!(rec.last_lsn, 1);
        assert_eq!(m.torn_tails.get(), 1);
        assert!(table(&rec.entries).contains_key(b"a".as_slice()));
        drop(_p);
        fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn snapshot_cycle_compacts_and_preserves_contents() {
        let d = tmpdir("compact");
        let live: Arc<std::sync::Mutex<HashMap<Vec<u8>, Entry>>> =
            Arc::new(std::sync::Mutex::new(HashMap::new()));
        let (p, _) = Persister::open(cfg(&d), Arc::new(PersistMetrics::new())).unwrap();
        let lp = Arc::clone(&live);
        p.start_snapshots(Arc::new(move || lp.lock().unwrap().values().cloned().collect()));
        for i in 0..20u64 {
            let e = Entry {
                key: format!("k{i}").into_bytes(),
                flags: 0,
                expires_at: 0,
                cas: i + 1,
                value: b"v".to_vec(),
            };
            // Apply-to-table THEN append-to-log, as the store does.
            live.lock().unwrap().insert(e.key.clone(), e.clone());
            p.append(&Op::Set {
                key: e.key,
                flags: 0,
                expires_at: 0,
                cas: e.cas,
                value: e.value,
            });
        }
        p.snapshot_now().unwrap();
        assert_eq!(p.rotations(), 1);
        assert_eq!(p.rotate_lsn(), 20);
        assert!(!d.join(log::OPLOG_OLD).exists(), "covered generation deleted");
        assert_eq!(p.metrics().snapshots.get(), 1);

        // A few more appends after the snapshot land in the fresh log.
        p.append(&Op::Delete { key: b"k0".to_vec() });
        p.sync();
        drop(p);

        let (_p, rec) = Persister::open(cfg(&d), Arc::new(PersistMetrics::new())).unwrap();
        assert_eq!(rec.replayed, 1, "snapshot covered everything before it");
        let t = table(&rec.entries);
        assert_eq!(t.len(), 19);
        assert!(!t.contains_key(b"k0".as_slice()));
        drop(_p);
        fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn pause_compaction_blocks_rotation_until_dropped() {
        let d = tmpdir("pauseguard");
        let (p, _) = Persister::open(cfg(&d), Arc::new(PersistMetrics::new())).unwrap();
        p.start_snapshots(Arc::new(Vec::new));
        p.append(&set_op("a", "1", 1));
        p.sync();
        let guard = p.pause_compaction();
        let before = p.rotations();
        // A cycle started while paused must not rotate; run it from
        // another thread and watch it stay put.
        std::thread::scope(|s| {
            let h = s.spawn(|| p.snapshot_now());
            std::thread::sleep(Duration::from_millis(20));
            assert_eq!(p.rotations(), before, "rotated under pause");
            drop(guard);
            h.join().unwrap().unwrap();
        });
        assert_eq!(p.rotations(), before + 1);
        drop(p);
        fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn flush_all_replays_to_empty() {
        let d = tmpdir("flush");
        {
            let (p, _) = Persister::open(cfg(&d), Arc::new(PersistMetrics::new())).unwrap();
            p.append(&set_op("a", "1", 1));
            p.append(&set_op("b", "2", 2));
            p.append(&Op::FlushAll);
            p.append(&set_op("c", "3", 3));
            p.sync();
        }
        let (_p, rec) = Persister::open(cfg(&d), Arc::new(PersistMetrics::new())).unwrap();
        let t = table(&rec.entries);
        assert_eq!(t.len(), 1, "flush wipes everything logged before it");
        assert!(t.contains_key(b"c".as_slice()));
        drop(_p);
        fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn write_stripes_same_key_same_lock() {
        let s = WriteStripes::new(64);
        assert_eq!(s.len(), 64);
        let g = s.lock_key(b"alpha");
        drop(g);
        let _all = s.lock_all();
    }
}
