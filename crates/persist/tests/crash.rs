//! Crash-recovery property tests: for any op history and any crash
//! point, `Persister::open` reconstructs exactly the state an oracle
//! (in-memory last-writer-wins replay of the intact log prefix) says it
//! should. "Crash point" is modeled the way real crashes present on
//! disk: the log truncated at an arbitrary byte offset (kill -9 mid
//! `write(2)`), or with a flipped byte in its final record (a torn
//! sector). Seeds are fixed unless `PROPTEST_SEED` overrides them, so CI
//! runs are reproducible.

#![cfg(not(cuckoo_model))]

use std::collections::HashMap;
use std::fs;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use metrics::persist::PersistMetrics;
use persist::record::{self, Op};
use persist::{snapshot, Entry, PersistConfig, Persister};
use proptest::prelude::*;

/// `(kind, key, val)` triple → a concrete op over an 8-key space.
/// kind 0..7 = Set (heavy), 7..9 = Delete, 9 = FlushAll.
fn make_op(kind: u8, key: u8, val: u16, lsn: u64) -> Op {
    let key = format!("k{}", key % 8).into_bytes();
    match kind {
        0..=6 => Op::Set {
            key,
            flags: u32::from(val),
            expires_at: 0,
            cas: lsn,
            value: val.to_le_bytes().to_vec(),
        },
        7 | 8 => Op::Delete { key },
        _ => Op::FlushAll,
    }
}

/// Encodes `ops` at LSNs `first_lsn..`, returning the log bytes and the
/// end offset of each frame.
fn encode_log(ops: &[Op], first_lsn: u64) -> (Vec<u8>, Vec<usize>) {
    let mut bytes = Vec::new();
    let mut ends = Vec::with_capacity(ops.len());
    for (i, op) in ops.iter().enumerate() {
        record::encode_op(op, first_lsn + i as u64, &mut bytes);
        ends.push(bytes.len());
    }
    (bytes, ends)
}

/// Last-writer-wins oracle. `cas` mirrors what `make_op` stamped so the
/// comparison covers metadata, not just values.
fn oracle(base: &HashMap<Vec<u8>, Entry>, ops: &[Op], first_lsn: u64) -> HashMap<Vec<u8>, Entry> {
    let mut map = base.clone();
    for (i, op) in ops.iter().enumerate() {
        match op {
            Op::Set { key, flags, expires_at, cas, value } => {
                map.insert(
                    key.clone(),
                    Entry {
                        key: key.clone(),
                        flags: *flags,
                        expires_at: *expires_at,
                        cas: *cas,
                        value: value.clone(),
                    },
                );
                debug_assert_eq!(*cas, first_lsn + i as u64);
            }
            Op::Delete { key } => {
                map.remove(key);
            }
            Op::FlushAll => map.clear(),
            Op::Heartbeat { .. } => unreachable!("never generated"),
        }
    }
    map
}

fn by_key(entries: &[Entry]) -> HashMap<Vec<u8>, Entry> {
    entries.iter().map(|e| (e.key.clone(), e.clone())).collect()
}

fn tmpdir(tag: &str, case: u64) -> PathBuf {
    let d = std::env::temp_dir()
        .join(format!("persist-crash-{tag}-{}-{case}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    fs::create_dir_all(&d).unwrap();
    d
}

fn cfg(dir: &std::path::Path) -> PersistConfig {
    let mut c = PersistConfig::new(dir);
    c.fsync_interval = Duration::from_millis(1);
    c.snapshot_interval = Duration::ZERO;
    c
}

/// Unique-ish case counter so concurrent proptest cases don't share a
/// directory.
fn case_id() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

proptest! {
    /// Truncating the log at *any* byte offset recovers exactly the
    /// oracle state of the frames that survived whole, and the torn
    /// remainder is dropped silently (never an error, never a phantom
    /// record).
    #[test]
    fn truncation_at_any_byte_recovers_the_intact_prefix(
        raw in collection::vec((0u8..10, any::<u8>(), any::<u16>()), 1usize..48),
        cut_seed in any::<u32>(),
    ) {
        let ops: Vec<Op> = raw
            .iter()
            .enumerate()
            .map(|(i, &(k, key, val))| make_op(k, key, val, i as u64 + 1))
            .collect();
        let (bytes, ends) = encode_log(&ops, 1);
        let cut = cut_seed as usize % (bytes.len() + 1);
        let intact = ends.iter().filter(|&&e| e <= cut).count();

        let d = tmpdir("trunc", case_id());
        fs::write(d.join(persist::log::OPLOG), &bytes[..cut]).unwrap();

        let m = Arc::new(PersistMetrics::new());
        let (p, rec) = Persister::open(cfg(&d), Arc::clone(&m)).unwrap();
        prop_assert!(!rec.clean);
        prop_assert_eq!(rec.replayed, intact as u64);
        prop_assert_eq!(rec.last_lsn, intact as u64);
        let want = oracle(&HashMap::new(), &ops[..intact], 1);
        prop_assert_eq!(by_key(&rec.entries), want);
        // Partial trailing bytes — and only those — count a torn tail.
        let torn = cut > 0 && !ends.contains(&cut);
        prop_assert_eq!(m.torn_tails.get(), u64::from(torn));
        drop(p);
        fs::remove_dir_all(&d).unwrap();
    }

    /// A snapshot plus a truncated log tail replays to the oracle over
    /// {snapshot state} + {intact tail frames} — the warm-restart shape
    /// after a crash that interrupted post-snapshot traffic.
    #[test]
    fn snapshot_plus_torn_tail_replays_to_oracle(
        raw in collection::vec((0u8..10, any::<u8>(), any::<u16>()), 2usize..48),
        split_seed in any::<u32>(),
        cut_seed in any::<u32>(),
    ) {
        let ops: Vec<Op> = raw
            .iter()
            .enumerate()
            .map(|(i, &(k, key, val))| make_op(k, key, val, i as u64 + 1))
            .collect();
        let split = 1 + (split_seed as usize % (ops.len() - 1));
        let covers = split as u64;
        let base = oracle(&HashMap::new(), &ops[..split], 1);
        let tail = &ops[split..];
        let (bytes, ends) = encode_log(tail, covers + 1);
        let cut = cut_seed as usize % (bytes.len() + 1);
        let intact = ends.iter().filter(|&&e| e <= cut).count();

        let d = tmpdir("snap", case_id());
        let snap_entries: Vec<Entry> = base.values().cloned().collect();
        snapshot::write(&d, covers, &snap_entries).unwrap();
        fs::write(d.join(persist::log::OPLOG), &bytes[..cut]).unwrap();

        let (p, rec) = Persister::open(cfg(&d), Arc::new(PersistMetrics::new())).unwrap();
        prop_assert!(!rec.clean, "no marker: must take the replay path");
        prop_assert_eq!(rec.replayed, intact as u64);
        prop_assert_eq!(rec.last_lsn, covers + intact as u64);
        let want = oracle(&base, &tail[..intact], covers + 1);
        prop_assert_eq!(by_key(&rec.entries), want);
        drop(p);
        fs::remove_dir_all(&d).unwrap();
    }

    /// A flipped byte anywhere in the final record (torn sector) loses
    /// at most that one record: the CRC rejects it, recovery keeps the
    /// prefix, and the tear is counted.
    #[test]
    fn flipped_byte_in_final_record_loses_at_most_one_op(
        raw in collection::vec((0u8..10, any::<u8>(), any::<u16>()), 1usize..32),
        flip_seed in any::<u32>(),
        flip_with in 1u8..=255,
    ) {
        let ops: Vec<Op> = raw
            .iter()
            .enumerate()
            .map(|(i, &(k, key, val))| make_op(k, key, val, i as u64 + 1))
            .collect();
        let (mut bytes, ends) = encode_log(&ops, 1);
        let last_start = if ops.len() == 1 { 0 } else { ends[ops.len() - 2] };
        let last_len = ends[ops.len() - 1] - last_start;
        let flip_at = last_start + flip_seed as usize % last_len;
        bytes[flip_at] ^= flip_with;

        let d = tmpdir("flip", case_id());
        fs::write(d.join(persist::log::OPLOG), &bytes).unwrap();

        let m = Arc::new(PersistMetrics::new());
        let (p, rec) = Persister::open(cfg(&d), Arc::clone(&m)).unwrap();
        let intact = ops.len() - 1;
        prop_assert_eq!(rec.replayed, intact as u64);
        prop_assert_eq!(rec.last_lsn, intact as u64);
        prop_assert_eq!(by_key(&rec.entries), oracle(&HashMap::new(), &ops[..intact], 1));
        prop_assert_eq!(m.torn_tails.get(), 1);
        drop(p);
        fs::remove_dir_all(&d).unwrap();
    }
}

/// Rotation renames a *complete, fsync'd* file, so a torn frame in
/// `oplog.old` while a newer `oplog` generation exists can only mean
/// real corruption — recovery must refuse, not guess.
#[test]
fn corruption_in_an_interior_generation_is_fatal() {
    let ops: Vec<Op> = (0..3).map(|i| make_op(0, i, 7, u64::from(i) + 1)).collect();
    let (mut old_bytes, ends) = encode_log(&ops, 1);
    let mid = (ends[0] + ends[1]) / 2; // inside the second frame
    old_bytes[mid] ^= 0xff;
    let (new_bytes, _) = encode_log(&[make_op(0, 3, 7, 4)], 4);

    let d = tmpdir("interior", case_id());
    fs::write(d.join(persist::log::OPLOG_OLD), &old_bytes).unwrap();
    fs::write(d.join(persist::log::OPLOG), &new_bytes).unwrap();

    let err = Persister::open(cfg(&d), Arc::new(PersistMetrics::new()))
        .err()
        .expect("interior corruption must refuse to open");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "{err}");
    fs::remove_dir_all(&d).unwrap();
}

/// The same flipped byte in the *live* (last) generation is an ordinary
/// torn tail: everything before it replays.
#[test]
fn corruption_in_the_live_tail_truncates() {
    let ops: Vec<Op> = (0..3).map(|i| make_op(0, i, 7, u64::from(i) + 1)).collect();
    let (mut bytes, ends) = encode_log(&ops, 1);
    bytes[ends[1] + 5] ^= 0xff; // inside the third frame

    let d = tmpdir("tail", case_id());
    fs::write(d.join(persist::log::OPLOG), &bytes).unwrap();

    let m = Arc::new(PersistMetrics::new());
    let (p, rec) = Persister::open(cfg(&d), Arc::clone(&m)).unwrap();
    assert_eq!(rec.replayed, 2);
    assert_eq!(rec.last_lsn, 2);
    assert_eq!(m.torn_tails.get(), 1);
    drop(p);
    fs::remove_dir_all(&d).unwrap();
}
