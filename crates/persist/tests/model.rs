//! Model-checking suite for the durability protocols (build with
//! `RUSTFLAGS="--cfg cuckoo_model"`).
//!
//! `cuckoo::sync2` swaps the primitives inside [`persist::commit`] and
//! [`persist::WriteStripes`] for the instrumented loom shim, and
//! `loom::explore` walks the interleavings of the *real* protocol code:
//!
//! - LSN assignment under concurrent appenders stays dense and the
//!   buffer stays LSN-ordered (the property replica replay relies on);
//! - the `durable ≤ written ≤ last` watermark chain holds at every
//!   observable point while a writer thread drains concurrently;
//! - shutdown cannot deadlock an appender parked in backpressure;
//! - apply-to-map-then-append-to-log under a [`persist::WriteStripes`]
//!   stripe makes a fuzzy scan plus the log tail converge to the final
//!   table — the invariant behind both snapshots and replicas.
#![cfg(cuckoo_model)]

use cuckoo::sync2::atomic::{AtomicU64, Ordering};
use cuckoo::sync2::Mutex;
use metrics::persist::PersistMetrics;
use persist::commit::CommitQueue;
use persist::record::Op;
use persist::WriteStripes;
use std::sync::Arc;

fn set(tag: u64) -> Op {
    Op::Set {
        key: b"k".to_vec(),
        flags: 0,
        expires_at: 0,
        cas: tag,
        value: tag.to_le_bytes().to_vec(),
    }
}

/// Two racing appenders: every schedule must hand out exactly LSNs
/// {1, 2} with the buffer in LSN order — assignment and enqueue are one
/// atomic step, so replica replay can trust file order. Bounded DFS.
#[test]
fn concurrent_appends_stay_dense_and_ordered() {
    loom::explore(loom::Config::dfs(4_000), || {
        let q = Arc::new(CommitQueue::new(0, 1 << 20));
        let m = Arc::new(PersistMetrics::new());
        let threads: Vec<_> = (0..2u64)
            .map(|t| {
                let (q, m) = (Arc::clone(&q), Arc::clone(&m));
                loom::thread::spawn(move || q.append(&set(t), &m))
            })
            .collect();
        let mut lsns: Vec<u64> =
            threads.into_iter().map(|h| h.join().unwrap()).collect();
        lsns.sort_unstable();
        assert_eq!(lsns, [1, 2], "LSNs must be dense, no gap and no dup");
        assert_eq!(q.last_lsn(), 2);
        let batch = q.pop_batch();
        assert_eq!(batch.len(), 2);
        assert!(batch[0].lsn < batch[1].lsn, "buffer out of LSN order");
    })
    .expect("no schedule may tear LSN assignment");
}

/// An appender races the writer's drain/mark cycle; the watermark chain
/// `durable ≤ written ≤ last` must hold at every point either thread
/// can observe it. Bounded DFS.
#[test]
fn watermarks_never_cross_under_a_racing_writer() {
    loom::explore(loom::Config::dfs(4_000), || {
        let q = Arc::new(CommitQueue::new(0, 1 << 20));
        let m = Arc::new(PersistMetrics::new());
        let appender = {
            let (q, m) = (Arc::clone(&q), Arc::clone(&m));
            loom::thread::spawn(move || {
                q.append(&set(1), &m);
                let (d, w, l) = (q.durable_lsn(), q.written_lsn(), q.last_lsn());
                assert!(d <= w && w <= l, "watermarks crossed: {d} {w} {l}");
            })
        };
        let writer = {
            let q = Arc::clone(&q);
            loom::thread::spawn(move || {
                for _ in 0..2 {
                    let batch = q.pop_batch();
                    if let Some(last) = batch.last() {
                        q.mark_written(last.lsn);
                        q.mark_durable(last.lsn);
                    }
                    let (d, w, l) = (q.durable_lsn(), q.written_lsn(), q.last_lsn());
                    assert!(d <= w && w <= l, "watermarks crossed: {d} {w} {l}");
                }
            })
        };
        appender.join().unwrap();
        writer.join().unwrap();
    })
    .expect("watermark ordering must hold in every schedule");
}

/// An appender parked in backpressure (1-byte bound: the second append
/// cannot fit) races `begin_shutdown` + drain. Every schedule must
/// terminate with both records enqueued — shutdown releases the wait
/// rather than deadlocking the drain. Seeded random walks (the spin
/// loop makes DFS explode).
#[test]
fn shutdown_releases_backpressured_appenders() {
    loom::explore(loom::config_from_env(loom::Config::random(0xd00d, 300)), || {
        let q = Arc::new(CommitQueue::new(0, 1));
        let m = Arc::new(PersistMetrics::new());
        let appender = {
            let (q, m) = (Arc::clone(&q), Arc::clone(&m));
            loom::thread::spawn(move || {
                q.append(&set(1), &m);
                q.append(&set(2), &m); // over bound: parks until shutdown
            })
        };
        let closer = {
            let q = Arc::clone(&q);
            loom::thread::spawn(move || q.begin_shutdown())
        };
        closer.join().unwrap();
        appender.join().unwrap();
        let drained: Vec<u64> = q.pop_batch().iter().map(|r| r.lsn).collect();
        assert_eq!(drained, [1, 2]);
    })
    .expect("shutdown must release appenders parked on the byte bound");
}

/// The convergence kernel behind fuzzy snapshots *and* replica
/// bootstrap. Two writers update one key with apply-to-map *then*
/// append-to-log under the key's write stripe; a scanner concurrently
/// takes a fuzzy image the way the snapshot/bootstrap path does: read
/// the cutoff first, then the map (no stripe held). Replaying
/// {image} + {log entries past the cutoff} must land on the final map
/// value in every schedule. Remove the stripe (or log before applying)
/// and schedules exist where it does not. Bounded DFS.
#[test]
fn fuzzy_scan_plus_log_tail_converges_to_the_table() {
    loom::explore(loom::Config::dfs(8_000), || {
        let stripes = Arc::new(WriteStripes::new(1));
        let map = Arc::new(AtomicU64::new(0));
        let log: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));

        let writers: Vec<_> = [7u64, 9u64]
            .into_iter()
            .map(|v| {
                let (stripes, map, log) =
                    (Arc::clone(&stripes), Arc::clone(&map), Arc::clone(&log));
                loom::thread::spawn(move || {
                    let _stripe = stripes.lock_key(b"k");
                    map.store(v, Ordering::Release);
                    log.lock().unwrap().push(v);
                })
            })
            .collect();
        let scanner = {
            let (map, log) = (Arc::clone(&map), Arc::clone(&log));
            loom::thread::spawn(move || {
                // Cutoff first, image second — the snapshot_cycle order.
                let cutoff = log.lock().unwrap().len();
                let image = map.load(Ordering::Acquire);
                (cutoff, image)
            })
        };
        let (cutoff, image) = scanner.join().unwrap();
        for w in writers {
            w.join().unwrap();
        }

        let log = log.lock().unwrap();
        let replayed = log[cutoff..].last().copied().unwrap_or(image);
        let table = map.load(Ordering::Acquire);
        assert_eq!(
            replayed, table,
            "image {image} + tail {:?} diverged from table {table}",
            &log[cutoff..]
        );
    })
    .expect("fuzzy scan + log tail must converge in every schedule");
}
