//! Extension experiment: batched (multi-key) insert throughput.
//!
//! The write-path mirror of `multiget_throughput`: `insert_many`
//! software-pipelines groups of G inserts (hash all keys, prefetch
//! both candidate bucket-metadata lines for write, sort the group by
//! stripe rank and take the stripe locks once in ascending order,
//! then SIMD-probe and write), so up to 2G independent DRAM misses
//! are in flight instead of two, and G/stripe-collision lock
//! acquisitions collapse into one. This bench fills a fresh table to
//! the target load with bursts of G keys per `write_many` call and
//! reports speedup over the single-key `insert` loop (G=1).
//!
//! Outputs `insert_throughput.csv` and `BENCH_insert.json` under
//! `target/bench-results/`.
//!
//! Env knobs (for CI smoke runs):
//! - `INSERT_TABLE_BITS`: log2 of table slots (default 22 — the table
//!   must exceed the last-level cache for the effect this bench
//!   measures, overlapped DRAM misses, to be visible; cache-resident
//!   tables show only the lock-coalescing fraction of the win).
//! - `INSERT_REPS`: fills per (load, batch) cell, best-of (default 3;
//!   each rep builds a fresh table, so reps dominate wall time).
//! - `INSERT_MIN_SPEEDUP`: if set, exit non-zero when the G=8 batch
//!   at the higher load factor is slower than this multiple of the
//!   single-insert baseline (CI regression gate).
//! - `BENCH_COUNTERS`: set to `0` to omit the per-load observability
//!   counter deltas (batch groups/keys/fallbacks, lock contention,
//!   path-search stats...) from the JSON artifact; on by default.

use bench::banner;
use cuckoo::OptimisticCuckooMap;
use workload::driver::{run_fill, FillSpec};
use workload::report::{mops, Table};
use workload::snapshot::{json_object, MetricSnapshot};
use std::collections::BTreeMap;

const BATCHES: [usize; 5] = [1, 4, 8, 16, 32];
const LOADS: [f64; 2] = [0.50, 0.95];

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(4)
}

fn main() {
    let table_bits = env_usize("INSERT_TABLE_BITS", 22);
    let reps = env_usize("INSERT_REPS", 3).max(1);
    let threads = threads();

    banner(
        "Extension: insert throughput",
        "software-pipelined insert_many vs single-key insert, by group size and load",
    );
    let mut out = Table::new(
        "Insert throughput (Mops/s) by batch size",
        &["load", "batch", "mops", "speedup"],
    );

    let dump_counters = std::env::var("BENCH_COUNTERS").map(|v| v != "0").unwrap_or(true);
    // (load, batch) -> mops (best of `reps` fresh-table fills).
    let mut results: BTreeMap<(u64, usize), f64> = BTreeMap::new();
    // load -> JSON object of counter deltas from that load's G=8 fill
    // (the CI-gated configuration), proving the batch pipeline — not
    // the per-key fallback — carried the inserts.
    let mut counters: BTreeMap<u64, String> = BTreeMap::new();
    for &load in &LOADS {
        let load_key = (load * 100.0) as u64;
        for &batch in &BATCHES {
            let mut best = 0.0f64;
            for rep in 0..reps {
                let map: OptimisticCuckooMap<u64, u64, 8> =
                    OptimisticCuckooMap::with_capacity(1 << table_bits);
                let fill = FillSpec {
                    write_batch: batch,
                    threads,
                    insert_ratio: 1.0,
                    fill_to: load,
                    windows: vec![],
                };
                let before = dump_counters.then(|| MetricSnapshot::take(&map));
                let report = run_fill(&map, &fill);
                assert!(!report.hit_full, "fill to {load} at G={batch} failed");
                best = best.max(report.overall_mops);
                // Counters come from the last G=8 rep; every rep of a
                // config drives the same op mix, so any rep is
                // representative.
                if batch == 8 && rep == reps - 1 {
                    if let Some(before) = before {
                        let delta = MetricSnapshot::take(&map).delta(&before);
                        counters.insert(load_key, json_object(&delta));
                    }
                }
            }
            results.insert((load_key, batch), best);
            let base = results[&(load_key, 1)];
            out.row(vec![
                format!("{load:.2}"),
                batch.to_string(),
                mops(best),
                format!("{:.2}x", best / base),
            ]);
        }
    }
    out.print();
    let _ = out.write_csv("insert_throughput");

    let dir = std::path::PathBuf::from("target/bench-results");
    let _ = std::fs::create_dir_all(&dir);

    let json_rows: Vec<String> = results
        .iter()
        .map(|(&(load, batch), &m)| {
            format!(
                "    {{\"load\": 0.{load:02}, \"batch\": {batch}, \"mops\": {m:.3}, \
                 \"speedup\": {:.3}}}",
                m / results[&(load, 1)]
            )
        })
        .collect();
    let counters_json = if counters.is_empty() {
        String::from("{}")
    } else {
        let rows: Vec<String> =
            counters.iter().map(|(load, obj)| format!("\"load_{load}\": {obj}")).collect();
        format!("{{{}}}", rows.join(", "))
    };
    let json = format!(
        "{{\n  \"bench\": \"insert_throughput\",\n  \"table_slots\": {},\n  \
         \"threads\": {},\n  \"reps\": {},\n  \
         \"counters\": {},\n  \"results\": [\n{}\n  ]\n}}\n",
        1u64 << table_bits,
        threads,
        reps,
        counters_json,
        json_rows.join(",\n")
    );
    match std::fs::write(dir.join("BENCH_insert.json"), &json) {
        Ok(()) => println!("\nwrote target/bench-results/BENCH_insert.json"),
        Err(e) => eprintln!("\nfailed to write BENCH_insert.json: {e}"),
    }

    // Optional CI gate: G=8 at the highest load must beat the
    // single-insert baseline by the given factor.
    if let Ok(min) = std::env::var("INSERT_MIN_SPEEDUP") {
        let min: f64 = min.parse().expect("INSERT_MIN_SPEEDUP must be a float");
        let load_key = (LOADS[LOADS.len() - 1] * 100.0) as u64;
        let speedup = results[&(load_key, 8)] / results[&(load_key, 1)];
        println!("gate: G=8 speedup at {load_key}% load = {speedup:.3}x (min {min})");
        if speedup < min {
            eprintln!("FAIL: batched insert speedup {speedup:.3}x below threshold {min}x");
            std::process::exit(1);
        }
    }
}
