//! Figure 8: 8-thread aggregate Lookup-only throughput for 4-, 8-, and
//! 16-way set-associative tables at 95% occupancy (optimized cuckoo with
//! TSX lock elision).

use bench::{banner, slots};
use cuckoo::ElidedCuckooMap;
use workload::driver::{run_fill, run_lookup_only, FillSpec, LookupSpec};
use workload::report::{mops, Table};
use workload::ConcurrentMap;

const THREADS: usize = 8;

fn run<const B: usize>() -> f64 {
    let map: ElidedCuckooMap<u64, u64, B> = ElidedCuckooMap::with_capacity(slots());
    let fill = FillSpec {
            write_batch: 1,
        threads: 2,
        insert_ratio: 1.0,
        fill_to: 0.95,
        windows: vec![],
    };
    let report = run_fill(&map, &fill);
    assert!(!report.hit_full, "{B}-way failed to reach 95%");
    let per_thread = report.inserts / 2;
    let ops = (ConcurrentMap::<u64>::fill_capacity(&map) as u64).max(100_000);
    run_lookup_only(
        &map,
        &LookupSpec {
            threads: THREADS,
            ops_per_thread: ops / THREADS as u64,
            miss_ratio: 0.0,
            batch: 1,
        },
        (2, per_thread),
    )
}

fn main() {
    banner(
        "Figure 8",
        "lookup-only throughput vs set-associativity at 95% load",
    );
    let mut table = Table::new(
        "Figure 8: 8-thread Lookup Mops at 95% occupancy",
        &["associativity", "Mops"],
    );
    let m4 = run::<4>();
    let m8 = run::<8>();
    let m16 = run::<16>();
    table.row(vec!["4-way".into(), mops(m4)]);
    table.row(vec!["8-way".into(), mops(m8)]);
    table.row(vec!["16-way".into(), mops(m16)]);
    table.print();
    let _ = table.write_csv("fig08_assoc_lookup");
    println!(
        "\npaper shape: 4-way > 8-way > 16-way (68.95 / 63.64 / 54.17 in \
         the paper): lower associativity means fewer slots scanned per \
         lookup.\nmeasured: 4-way {:+.1}% over 8-way; 16-way {:+.1}% vs 8-way",
        (m4 / m8 - 1.0) * 100.0,
        (m16 / m8 - 1.0) * 100.0
    );
}
