//! Figure 7: overall throughput vs. number of cores on the (TSX-less)
//! 16-core Xeon — cuckoo+ with fine-grained locking vs. the TBB-style
//! chaining map, three workloads.
//!
//! Thread counts extend to 16 regardless of `CUCKOO_BENCH_THREADS`
//! because the figure's point is the wider sweep.

use baselines::ChainingMap;
use bench::{banner, fill_avg, slots};
use cuckoo::OptimisticCuckooMap;
use workload::driver::FillSpec;
use workload::report::{mops, Table};
use workload::{BenchValue, ConcurrentMap};

fn sweep<V, M, F>(name: &str, make: F, table: &mut Table)
where
    V: BenchValue,
    M: ConcurrentMap<V>,
    F: Fn() -> M,
{
    for ratio in [1.0, 0.5, 0.1] {
        for t in [1usize, 2, 4, 8, 16] {
            let spec = FillSpec {
            write_batch: 1,
                threads: t,
                insert_ratio: ratio,
                fill_to: 0.95,
                windows: vec![],
            };
            let report = fill_avg(&make, &spec);
            table.row(vec![
                name.into(),
                format!("{:.0}%", ratio * 100.0),
                t.to_string(),
                mops(report.overall_mops),
            ]);
        }
    }
}

fn main() {
    banner(
        "Figure 7",
        "16-core scaling: cuckoo+ (fine-grained locking) vs TBB analog",
    );
    let n = slots();
    let mut table = Table::new(
        "Figure 7: overall Mops vs cores (no HTM)",
        &["table", "insert%", "threads", "overall Mops"],
    );
    sweep::<u64, _, _>(
        "cuckoo+ w/ FG locking",
        || OptimisticCuckooMap::<u64, u64, 8>::with_capacity(n),
        &mut table,
    );
    sweep::<u64, _, _>(
        "TBB-style chaining",
        || ChainingMap::<u64, u64>::with_capacity(n),
        &mut table,
    );
    table.print();
    let _ = table.write_csv("fig07_xeon_scaling");
    println!(
        "\npaper shape: cuckoo+ continues to scale for write-heavy \
         workloads where TBB scales only for read-heavy ones. (On this \
         host, thread counts beyond the physical core count measure \
         contention behavior, not parallel speedup.)"
    );
}
