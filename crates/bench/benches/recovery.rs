//! Durability-tier benchmark: warm-restart latency and recovery
//! correctness, gated as `BENCH_recovery.json`.
//!
//! Two restart shapes are measured end to end through the real server:
//!
//! - **clean restart** — populate `cuckood` over TCP with a data dir,
//!   shut down gracefully (final snapshot + clean marker), and time a
//!   respawn: recovery is a straight snapshot load with zero replay.
//! - **dirty restart** — build a crash-shaped directory (op log only:
//!   appended, fsync'd, no marker — exactly what `kill -9` leaves) and
//!   time a respawn that must replay every record.
//!
//! Both cases then read back every key over TCP; `lost` counts
//! acknowledged-durable writes missing after restart. The ship gate is
//! `lost == 0` and `hit_rate == 1.0` in both rows — restart time is
//! reported, not gated (it scales with entry count and disk).
//!
//! Env knobs (for CI smoke runs):
//! - `RECOVERY_KEYS`: entries to persist and verify (default 50_000).
//! - `RECOVERY_VALUE_LEN`: value bytes per entry (default 32).

use bench::banner;
use metrics::persist::PersistMetrics;
use persist::record::Op;
use persist::{PersistConfig, Persister};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn config(dir: &Path) -> server::Config {
    server::Config {
        port: 0,
        capacity: 1 << 20,
        workers: 2,
        data_dir: Some(dir.to_path_buf()),
        fsync_interval_ms: 1,
        snapshot_interval_secs: 0,
        ..Default::default()
    }
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).unwrap();
        Client { reader: BufReader::new(stream.try_clone().unwrap()), writer: stream }
    }

    /// Pipelined sets in batches of 128; every reply must be STORED.
    fn set_all(&mut self, n: usize, value_len: usize) {
        let value = vec![b'v'; value_len];
        let mut line = String::new();
        for batch in (0..n).collect::<Vec<_>>().chunks(128) {
            let mut buf = Vec::new();
            for i in batch {
                buf.extend_from_slice(format!("set key{i} 0 0 {value_len}\r\n").as_bytes());
                buf.extend_from_slice(&value);
                buf.extend_from_slice(b"\r\n");
            }
            self.writer.write_all(&buf).unwrap();
            for i in batch {
                line.clear();
                self.reader.read_line(&mut line).unwrap();
                assert_eq!(line, "STORED\r\n", "set key{i}");
            }
        }
    }

    /// Pipelined gets; returns the hit count.
    fn get_all(&mut self, n: usize, value_len: usize) -> usize {
        let mut hits = 0;
        let mut line = String::new();
        for batch in (0..n).collect::<Vec<_>>().chunks(128) {
            let mut buf = Vec::new();
            for i in batch {
                buf.extend_from_slice(format!("get key{i}\r\n").as_bytes());
            }
            self.writer.write_all(&buf).unwrap();
            for _ in batch {
                line.clear();
                self.reader.read_line(&mut line).unwrap();
                if line.starts_with("VALUE ") {
                    let mut body = vec![0u8; value_len + 2];
                    self.reader.read_exact(&mut body).unwrap();
                    line.clear();
                    self.reader.read_line(&mut line).unwrap(); // END
                    hits += 1;
                }
                // else: the END of a miss.
            }
        }
        hits
    }

    fn stat(&mut self, name: &str) -> u64 {
        self.writer.write_all(b"stats cuckoo\r\n").unwrap();
        let mut found = 0;
        let mut line = String::new();
        loop {
            line.clear();
            self.reader.read_line(&mut line).unwrap();
            if line.starts_with("END") {
                return found;
            }
            if let Some(rest) = line.strip_prefix(&format!("STAT {name} ")) {
                found = rest.trim().parse().unwrap_or(0);
            }
        }
    }
}

struct Row {
    case: &'static str,
    entries: usize,
    populate_ms: f64,
    restart_ms: f64,
    replayed: u64,
    hits: usize,
}

fn verify_restart(dir: &Path, n: usize, value_len: usize) -> (f64, u64, usize) {
    let t0 = Instant::now();
    let handle = server::spawn(config(dir)).expect("respawn");
    let restart_ms = t0.elapsed().as_secs_f64() * 1e3;
    let mut c = Client::connect(handle.local_addr());
    let replayed = c.stat("cuckoo_persist_replayed_records_total");
    let hits = c.get_all(n, value_len);
    handle.shutdown();
    (restart_ms, replayed, hits)
}

/// Populate through the server, wait until everything acknowledged is
/// also durable, shut down cleanly, and time the snapshot-load respawn.
fn clean_case(dir: &Path, n: usize, value_len: usize) -> Row {
    let handle = server::spawn(config(dir)).expect("spawn");
    let mut c = Client::connect(handle.local_addr());
    let t0 = Instant::now();
    c.set_all(n, value_len);
    while (c.stat("cuckoo_persist_durable_lsn") as usize) < n {
        std::thread::sleep(Duration::from_millis(1));
    }
    let populate_ms = t0.elapsed().as_secs_f64() * 1e3;
    handle.shutdown();
    let (restart_ms, replayed, hits) = verify_restart(dir, n, value_len);
    Row { case: "clean_restart", entries: n, populate_ms, restart_ms, replayed, hits }
}

/// Build the post-`kill -9` directory shape — a fully fsync'd op log,
/// no snapshot, no marker — and time the replaying respawn.
fn dirty_case(dir: &Path, n: usize, value_len: usize) -> Row {
    let t0 = Instant::now();
    {
        let mut cfg = PersistConfig::new(dir);
        cfg.fsync_interval = Duration::from_millis(1);
        cfg.snapshot_interval = Duration::ZERO;
        let (p, _) = Persister::open(cfg, Arc::new(PersistMetrics::new())).expect("open log");
        let value = vec![b'v'; value_len];
        for i in 0..n {
            p.append(&Op::Set {
                key: format!("key{i}").into_bytes(),
                flags: 0,
                expires_at: 0,
                cas: i as u64 + 1,
                value: value.clone(),
            });
        }
        p.sync();
        // Dropped without shutdown(): the crash shape.
    }
    let populate_ms = t0.elapsed().as_secs_f64() * 1e3;
    // Recovery normalizes to a snapshot, so replay the log copy itself.
    let (restart_ms, replayed, hits) = verify_restart(dir, n, value_len);
    Row { case: "dirty_restart", entries: n, populate_ms, restart_ms, replayed, hits }
}

fn main() {
    let n = env_usize("RECOVERY_KEYS", 50_000);
    let value_len = env_usize("RECOVERY_VALUE_LEN", 32);
    banner(
        "Durability: warm restart",
        "restart latency + zero-loss verification for clean and crash recovery",
    );

    let base = PathBuf::from("target/bench-results").join(format!("recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    let rows = [
        clean_case(&base.join("clean"), n, value_len),
        dirty_case(&base.join("dirty"), n, value_len),
    ];
    let _ = std::fs::remove_dir_all(&base);

    println!(
        "{:<16} {:>9} {:>13} {:>12} {:>9} {:>9} {:>6} {:>9}",
        "case", "entries", "populate ms", "restart ms", "replayed", "hits", "lost", "hit rate"
    );
    let mut ok = true;
    let mut json = String::from("{\n  \"bench\": \"recovery\",\n");
    json.push_str(&format!("  \"value_len\": {value_len},\n  \"results\": [\n"));
    for (i, r) in rows.iter().enumerate() {
        let lost = r.entries - r.hits;
        let hit_rate = r.hits as f64 / r.entries as f64;
        ok &= lost == 0;
        println!(
            "{:<16} {:>9} {:>13.1} {:>12.1} {:>9} {:>9} {:>6} {:>9.4}",
            r.case, r.entries, r.populate_ms, r.restart_ms, r.replayed, r.hits, lost, hit_rate
        );
        json.push_str(&format!(
            "    {{\"case\": \"{}\", \"entries\": {}, \"restart_ms\": {:.1}, \
             \"replayed\": {}, \"lost\": {}, \"hit_rate\": {:.4}}}{}\n",
            r.case,
            r.entries,
            r.restart_ms,
            r.replayed,
            lost,
            hit_rate,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");

    let dir = PathBuf::from("target/bench-results");
    let _ = std::fs::create_dir_all(&dir);
    match std::fs::write(dir.join("BENCH_recovery.json"), &json) {
        Ok(()) => println!("\nwrote target/bench-results/BENCH_recovery.json"),
        Err(e) => println!("\nBENCH_recovery.json not written: {e}"),
    }
    assert!(ok, "acknowledged-durable ops were lost across restart");
}
