//! Figure 1: "Highest throughput achieved by different hash tables" —
//! 64-bit key/value pairs, read-to-write ratio 1:1, each table at its
//! best thread count.

use baselines::locked::{LockKind, Locked};
use baselines::{dense::DenseTable, node_chain::NodeChainTable, ChainingMap};
use bench::{banner, fill_avg, slots, thread_counts};
use cuckoo::{ElidedCuckooMap, MemC3Config, MemC3Cuckoo, OptimisticCuckooMap};
use std::collections::hash_map::RandomState;
use workload::driver::FillSpec;
use workload::report::{mib, mops, Table};
use workload::{BenchValue, ConcurrentMap};

fn best_over_threads<V, M, F>(make: F) -> (f64, usize, usize)
where
    V: BenchValue,
    M: ConcurrentMap<V>,
    F: Fn() -> M,
{
    let mut best = (0.0f64, 0usize);
    // Memory must be measured on a *filled* table (node-based designs
    // allocate per entry).
    let filled = make();
    let _ = workload::driver::run_fill(
        &filled,
        &FillSpec {
            write_batch: 1,
            threads: 2,
            insert_ratio: 1.0,
            fill_to: 0.9,
            windows: vec![],
        },
    );
    let mem = filled.mem_bytes();
    drop(filled);
    for &t in &thread_counts() {
        let spec = FillSpec {
            write_batch: 1,
            threads: t,
            insert_ratio: 0.5,
            fill_to: 0.9,
            windows: vec![],
        };
        let report = fill_avg(&make, &spec);
        if report.overall_mops > best.0 {
            best = (report.overall_mops, t);
        }
    }
    (best.0, best.1, mem)
}

fn main() {
    banner(
        "Figure 1",
        "best 50/50 read-write throughput per hash table design",
    );
    let n = slots();
    let mut table = Table::new(
        "Figure 1: highest throughput, 1:1 read-to-write (paper order)",
        &["table", "Mops", "best threads", "memory"],
    );

    let (m, t, b) =
        best_over_threads::<u64, _, _>(|| ElidedCuckooMap::<u64, u64, 8>::with_capacity(n));
    table.row(vec![
        "cuckoo+ with HTM (*)".into(),
        mops(m),
        t.to_string(),
        mib(b),
    ]);

    let (m, t, b) =
        best_over_threads::<u64, _, _>(|| OptimisticCuckooMap::<u64, u64, 8>::with_capacity(n));
    table.row(vec![
        "cuckoo+ with fine-grained locking (*)".into(),
        mops(m),
        t.to_string(),
        mib(b),
    ]);

    let (m, t, b) = best_over_threads::<u64, _, _>(|| ChainingMap::<u64, u64>::with_capacity(n));
    table.row(vec![
        "Intel TBB concurrent_hash_map (analog)".into(),
        mops(m),
        t.to_string(),
        mib(b),
    ]);

    let (m, t, b) = best_over_threads::<u64, _, _>(|| {
        MemC3Cuckoo::<u64, u64, 4>::with_capacity(n, MemC3Config::baseline())
    });
    table.row(vec![
        "optimistic concurrent cuckoo (MemC3)".into(),
        mops(m),
        t.to_string(),
        mib(b),
    ]);

    let (m, t, b) = best_over_threads::<u64, _, _>(|| {
        Locked::new(
            NodeChainTable::<u64, u64>::with_capacity_and_hasher(n, RandomState::new()),
            LockKind::Global,
        )
    });
    table.row(vec![
        "C++11 std::unordered_map (analog, global lock)".into(),
        mops(m),
        t.to_string(),
        mib(b),
    ]);

    let (m, t, b) = best_over_threads::<u64, _, _>(|| {
        Locked::new(
            DenseTable::<u64, u64>::with_capacity_and_hasher(n / 2, RandomState::new()),
            LockKind::Global,
        )
    });
    table.row(vec![
        "Google dense_hash_map (analog, global lock)".into(),
        mops(m),
        t.to_string(),
        mib(b),
    ]);

    table.print();
    let _ = table.write_csv("fig01_headline");
    println!(
        "\npaper shape: cuckoo+ (both variants) on top, ~2x over TBB; \
         single-writer global-lock tables at the bottom."
    );
}
