//! Figure 6: throughput vs. number of threads for the six table
//! configurations, three workloads (100%/50%/10% insert), reported (a)
//! over the whole 0→95% fill and (b) for the high-occupancy 0.9–0.95
//! window.

use baselines::ChainingMap;
use bench::{banner, fill_avg, slots, thread_counts};
use cuckoo::{MemC3Config, MemC3Cuckoo, OptimisticCuckooMap, WriterLockKind};
use workload::driver::FillSpec;
use workload::report::{mops, Table};
use workload::{BenchValue, ConcurrentMap};

fn sweep<V, M, F>(name: &str, make: F, table: &mut Table)
where
    V: BenchValue,
    M: ConcurrentMap<V>,
    F: Fn() -> M,
{
    for ratio in [1.0, 0.5, 0.1] {
        for &t in &thread_counts() {
            let spec = FillSpec {
            write_batch: 1,
                threads: t,
                insert_ratio: ratio,
                fill_to: 0.95,
                windows: vec![(0.0, 0.95), (0.90, 0.95)],
            };
            let report = fill_avg(&make, &spec);
            table.row(vec![
                name.into(),
                format!("{:.0}%", ratio * 100.0),
                t.to_string(),
                mops(report.overall_mops),
                mops(report.window_mops[1]),
            ]);
        }
    }
}

fn main() {
    banner(
        "Figure 6",
        "throughput vs threads, six configurations x three workloads",
    );
    let n = slots();
    let mut table = Table::new(
        "Figure 6: Mops vs threads (overall fill | 0.9-0.95 window)",
        &["table", "insert%", "threads", "overall Mops", "0.9-0.95 Mops"],
    );

    sweep::<u64, _, _>(
        "cuckoo",
        || MemC3Cuckoo::<u64, u64, 4>::with_capacity(n, MemC3Config::baseline()),
        &mut table,
    );
    sweep::<u64, _, _>(
        "cuckoo w/ TSX",
        || {
            MemC3Cuckoo::<u64, u64, 4>::with_capacity(
                n,
                MemC3Config::baseline().with_lock(WriterLockKind::ElidedOptimized),
            )
        },
        &mut table,
    );
    sweep::<u64, _, _>(
        "cuckoo+",
        || {
            MemC3Cuckoo::<u64, u64, 8>::with_capacity(
                n,
                MemC3Config::baseline()
                    .plus_lock_later()
                    .plus_bfs()
                    .plus_prefetch(),
            )
        },
        &mut table,
    );
    sweep::<u64, _, _>(
        "cuckoo+ w/ TSX",
        || {
            MemC3Cuckoo::<u64, u64, 8>::with_capacity(
                n,
                MemC3Config::baseline()
                    .plus_lock_later()
                    .plus_bfs()
                    .plus_prefetch()
                    .with_lock(WriterLockKind::ElidedOptimized),
            )
        },
        &mut table,
    );
    sweep::<u64, _, _>(
        "cuckoo+ w/ FG locking",
        || OptimisticCuckooMap::<u64, u64, 8>::with_capacity(n),
        &mut table,
    );
    sweep::<u64, _, _>(
        "TBB-style chaining",
        || ChainingMap::<u64, u64>::with_capacity(n),
        &mut table,
    );

    table.print();
    let _ = table.write_csv("fig06_scaling");
    println!(
        "\npaper shape: cuckoo+ variants scale with threads for all \
         workloads; the single-writer baseline's write throughput drops \
         with more threads except under read-heavy mixes; TBB sits well \
         below cuckoo+."
    );
}
