//! Figure 2: "Insert throughput vs. number of threads for single-writer
//! hash tables with and without TSX lock elision" (§2.3).
//!
//! Also prints the transactional abort rates the paper measured with
//! Intel PCM ("the transactional abort rates are above 80% for all three
//! hash tables with 8 concurrent writers").

use baselines::locked::{LockKind, Locked};
use baselines::{dense::DenseTable, node_chain::NodeChainTable};
use bench::{banner, fill_avg, slots, thread_counts};
use cuckoo::{MemC3Config, MemC3Cuckoo, WriterLockKind};
use std::collections::hash_map::RandomState;
use workload::driver::FillSpec;
use workload::report::{mops, pct, Table};
use workload::{BenchValue, ConcurrentMap};

fn sweep<V, M, F>(name: &str, make: F, table: &mut Table)
where
    V: BenchValue,
    M: ConcurrentMap<V>,
    F: Fn() -> M,
{
    for &t in &thread_counts() {
        let spec = FillSpec {
            write_batch: 1,
            threads: t,
            insert_ratio: 1.0,
            fill_to: 0.45, // all tables support this occupancy (dense caps at 0.5)
            windows: vec![],
        };
        // One instrumented run (for this instance's abort stats), plus
        // the averaged repetitions for the throughput column.
        let map = make();
        let _ = workload::driver::run_fill(&map, &spec);
        let avg = fill_avg(&make, &spec);
        let abort_rate = map
            .htm_stats()
            .map(|s| pct(s.abort_rate()))
            .unwrap_or_else(|| "-".into());
        let fallback_rate = map
            .htm_stats()
            .map(|s| pct(s.fallback_rate()))
            .unwrap_or_else(|| "-".into());
        table.row(vec![
            name.into(),
            t.to_string(),
            mops(avg.overall_mops),
            abort_rate,
            fallback_rate,
        ]);
    }
}

fn main() {
    banner(
        "Figure 2",
        "single-writer tables, 100% insert, global lock vs elided",
    );
    let n = slots();
    let mut table = Table::new(
        "Figure 2: insert throughput vs threads (single-writer tables)",
        &["table", "threads", "Mops", "abort rate", "fallback rate"],
    );

    sweep::<u64, _, _>(
        "cuckoo (MemC3)",
        || MemC3Cuckoo::<u64, u64, 4>::with_capacity(n, MemC3Config::baseline()),
        &mut table,
    );
    sweep::<u64, _, _>(
        "cuckoo w/ TSX",
        || {
            MemC3Cuckoo::<u64, u64, 4>::with_capacity(
                n,
                MemC3Config::baseline().with_lock(WriterLockKind::ElidedGlibc),
            )
        },
        &mut table,
    );
    sweep::<u64, _, _>(
        "dense_hash_map",
        || {
            Locked::new(
                DenseTable::<u64, u64>::with_capacity_and_hasher(n / 2, RandomState::new()),
                LockKind::Global,
            )
        },
        &mut table,
    );
    sweep::<u64, _, _>(
        "dense_hash_map w/ TSX",
        || {
            Locked::new(
                DenseTable::<u64, u64>::with_capacity_and_hasher(n / 2, RandomState::new()),
                LockKind::ElidedGlibc,
            )
        },
        &mut table,
    );
    sweep::<u64, _, _>(
        "std::unordered_map",
        || {
            Locked::new(
                NodeChainTable::<u64, u64>::with_capacity_and_hasher(n, RandomState::new()),
                LockKind::Global,
            )
        },
        &mut table,
    );
    sweep::<u64, _, _>(
        "std::unordered_map w/ TSX",
        || {
            Locked::new(
                NodeChainTable::<u64, u64>::with_capacity_and_hasher(n, RandomState::new()),
                LockKind::ElidedGlibc,
            )
        },
        &mut table,
    );

    table.print();
    let _ = table.write_csv("fig02_naive_elision");
    println!(
        "\npaper shape: multi-thread aggregate throughput below single-thread \
         for the global lock; elision helps but does not restore scaling; \
         abort rates climb with writer count."
    );
}
