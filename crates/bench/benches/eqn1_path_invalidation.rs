//! Appendix B / Eq. 1 validation: the probability that a cuckoo path
//! discovered outside the critical section is invalidated by concurrent
//! writers, measured on the real table and compared with the closed-form
//! upper bound — plus the Eq. 2 (Appendix C) BFS path-length table.

use bench::{banner, slots};
use cuckoo::analysis::{p_invalid_max, p_invalid_exact};
use cuckoo::search::bfs::bfs_max_path_len;
use cuckoo::{MemC3Config, MemC3Cuckoo, OptimisticCuckooMap, SearchKind};
use workload::driver::{run_fill, FillSpec};
use workload::report::Table;
use workload::ConcurrentMap;

const THREADS: usize = 8;

fn main() {
    banner(
        "Eq. 1 / Eq. 2",
        "path invalidation probability + BFS path length bound",
    );

    // --- Eq. 2 table -----------------------------------------------------
    let mut eq2 = Table::new(
        "Eq. 2 (Appendix C): max BFS cuckoo path length L_BFS",
        &["B (ways)", "M (budget)", "L_BFS"],
    );
    for (b, m) in [(2usize, 2000usize), (4, 2000), (8, 2000), (16, 2000), (4, 500)] {
        eq2.row(vec![
            b.to_string(),
            m.to_string(),
            bfs_max_path_len(b, m).to_string(),
        ]);
    }
    eq2.print();
    println!("paper reference: B=4, M=2000 -> L_BFS = 5 (DFS would be 250).");

    // --- Eq. 1: measured vs bound ---------------------------------------
    let mut eq1 = Table::new(
        "Eq. 1 (Appendix B): measured path-invalidation rate vs bound",
        &[
            "search",
            "N (slots)",
            "T",
            "L (bound)",
            "executions",
            "stale",
            "measured P",
            "Eq.1 bound",
            "exact bound",
        ],
    );

    // BFS paths (cuckoo+ fine-grained): L = L_BFS.
    let map: OptimisticCuckooMap<u64, u64, 4> = OptimisticCuckooMap::with_capacity(slots());
    let spec = FillSpec {
            write_batch: 1,
        threads: THREADS,
        insert_ratio: 1.0,
        fill_to: 0.95,
        windows: vec![],
    };
    let _ = run_fill(&map, &spec);
    let stats = map.path_stats();
    let n = ConcurrentMap::<u64>::fill_capacity(&map) as u64;
    let l = bfs_max_path_len(4, 2000) as u64;
    eq1.row(vec![
        "BFS (cuckoo+)".into(),
        n.to_string(),
        THREADS.to_string(),
        l.to_string(),
        stats.executions.to_string(),
        stats.stale.to_string(),
        format!("{:.2e}", stats.invalidation_rate()),
        format!("{:.2e}", p_invalid_max(n, l, THREADS as u64)),
        format!("{:.2e}", p_invalid_exact(n, l, THREADS as u64)),
    ]);

    // DFS paths (MemC3 lock-later): L up to M/2/B per walk; the paper
    // uses L = 250 for M = 2000.
    let cfg = MemC3Config {
        search: SearchKind::Dfs,
        ..MemC3Config::baseline().plus_lock_later()
    };
    let map: MemC3Cuckoo<u64, u64, 4> = MemC3Cuckoo::with_capacity(slots(), cfg);
    let _ = run_fill(&map, &spec);
    let stats = map.path_stats();
    let l_dfs = 250u64;
    eq1.row(vec![
        "DFS (MemC3 lock-later)".into(),
        n.to_string(),
        THREADS.to_string(),
        l_dfs.to_string(),
        stats.executions.to_string(),
        stats.stale.to_string(),
        format!("{:.2e}", stats.invalidation_rate()),
        format!("{:.2e}", p_invalid_max(n, l_dfs, THREADS as u64)),
        format!("{:.2e}", p_invalid_exact(n, l_dfs, THREADS as u64)),
    ]);

    eq1.print();
    let _ = eq1.write_csv("eqn1_path_invalidation");
    println!(
        "\npaper shape: the measured invalidation rate sits below the \
         worst-case bound (the bound assumes every path is at maximum \
         length); BFS rates are orders of magnitude below DFS rates."
    );
}
