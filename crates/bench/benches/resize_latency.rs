//! Extension experiment: insert latency across table doublings.
//!
//! The paper sizes tables up front; a general-purpose map must grow.
//! Stop-the-world expansion rehashes every entry under a global lock,
//! so every insert that arrives during a doubling waits the whole
//! rehash out — a latency cliff that scales with the table. Incremental
//! expansion bounds each insert to a constant amount of migration help.
//!
//! Methodology: **open-loop** fixed arrival rate. Each insert `i` has a
//! scheduled arrival time `t_i = i / rate`; its recorded latency is
//! completion − scheduled arrival, not completion − issue. A closed
//! loop would commit coordinated omission — during a stop-the-world
//! rehash the loop simply stops issuing and the stall shows up as *one*
//! slow op instead of the thousands of queued arrivals it really
//! delays. Open loop charges the stall to every op scheduled under it,
//! which is what a server's clients experience.
//!
//! Outputs `resize_latency.csv` and `BENCH_resize.json` under
//! `target/bench-results/`.

use bench::banner;
use cuckoo::{CuckooMap, ResizeMode};
use workload::keygen::key_of;
use workload::report::Table;
use workload::LatencyHistogram;
use std::time::{Duration, Instant};

/// Starting capacity (slots). Small enough that the fill crosses
/// several doublings, large enough that a stop-the-world rehash of the
/// *last* doubling is a visible (hundreds of µs to ms) stall.
const START_SLOTS: usize = 1 << 18;

/// Total inserts: drives the table through ~3 doublings at 95% load.
const TOTAL_OPS: u64 = (START_SLOTS as u64) * 7;

/// Per-thread arrival rate (ops/sec). Well under the table's sustained
/// insert throughput on purpose: an open-loop stream near saturation
/// measures backlog, not expansion stalls. With headroom, steady-state
/// lateness is ~0 and the tail isolates resize behavior.
const RATE_PER_THREAD: f64 = 50_000.0;

/// Writer threads, each an independent open-loop arrival stream. The
/// open loop spin-waits for its next arrival, so never run more
/// streams than cores — on an oversubscribed host the OS scheduler's
/// timeslices (milliseconds) would drown the resize stalls being
/// measured.
fn writers() -> u64 {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(4) as u64
}

struct RunResult {
    hist: LatencyHistogram,
    wall: Duration,
    doublings: usize,
}

fn run(mode: ResizeMode) -> RunResult {
    let m: CuckooMap<u64, u64, 8> = CuckooMap::with_capacity_and_mode(START_SLOTS, mode);
    let initial_capacity = m.capacity();
    let n_writers = writers();
    let per_thread = TOTAL_OPS / n_writers;
    let period = Duration::from_secs_f64(1.0 / RATE_PER_THREAD);
    let hist = LatencyHistogram::new();
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for w in 0..n_writers {
            let m = &m;
            let hist = &hist;
            s.spawn(move || {
                let local = LatencyHistogram::new();
                let start = Instant::now();
                for i in 0..per_thread {
                    let scheduled = period * (i as u32);
                    // Open loop: wait for the scheduled arrival, never
                    // ahead of it. If the table stalled us past it, issue
                    // immediately — the deficit is charged below.
                    while start.elapsed() < scheduled {
                        std::hint::spin_loop();
                    }
                    m.insert(key_of(w, i), i).unwrap();
                    let late = start.elapsed().saturating_sub(scheduled);
                    local.record(late.as_nanos() as u64);
                }
                hist.merge(&local);
            });
        }
    });
    let wall = t0.elapsed();
    let doublings =
        (m.capacity() as f64 / initial_capacity as f64).log2().round() as usize;
    assert_eq!(
        m.len(),
        (per_thread * n_writers) as usize,
        "lost inserts during expansion"
    );
    RunResult { hist, wall, doublings }
}

fn mode_name(mode: ResizeMode) -> &'static str {
    match mode {
        ResizeMode::StopTheWorld => "stop-the-world",
        ResizeMode::Incremental => "incremental",
    }
}

fn main() {
    banner(
        "Extension: resize latency",
        "open-loop insert latency across doublings, STW vs incremental",
    );
    let mut out = Table::new(
        "Insert latency (ns, completion - scheduled arrival) across doublings",
        &["mode", "doublings", "p50", "p99", "p99.9", "max", "wall_ms"],
    );
    let mut json_rows = Vec::new();
    for mode in [ResizeMode::StopTheWorld, ResizeMode::Incremental] {
        let r = run(mode);
        let (p50, p99, p999, max) = (
            r.hist.percentile(50.0),
            r.hist.percentile(99.0),
            r.hist.percentile(99.9),
            r.hist.max(),
        );
        out.row(vec![
            mode_name(mode).into(),
            r.doublings.to_string(),
            p50.to_string(),
            p99.to_string(),
            p999.to_string(),
            max.to_string(),
            format!("{:.0}", r.wall.as_secs_f64() * 1e3),
        ]);
        json_rows.push(format!(
            "    {{\"mode\": \"{}\", \"doublings\": {}, \"ops\": {}, \
             \"rate_per_thread\": {}, \"writers\": {}, \"p50_ns\": {}, \
             \"p99_ns\": {}, \"p999_ns\": {}, \"max_ns\": {}, \"wall_ms\": {:.1}}}",
            mode_name(mode),
            r.doublings,
            TOTAL_OPS,
            RATE_PER_THREAD,
            writers(),
            p50,
            p99,
            p999,
            max,
            r.wall.as_secs_f64() * 1e3,
        ));
    }
    out.print();
    let _ = out.write_csv("resize_latency");

    // Machine-readable artifact for CI trend tracking.
    let json = format!(
        "{{\n  \"bench\": \"resize_latency\",\n  \"start_slots\": {},\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        START_SLOTS,
        json_rows.join(",\n")
    );
    let dir = std::path::PathBuf::from("target/bench-results");
    let _ = std::fs::create_dir_all(&dir);
    match std::fs::write(dir.join("BENCH_resize.json"), &json) {
        Ok(()) => println!("\nwrote target/bench-results/BENCH_resize.json"),
        Err(e) => eprintln!("\nfailed to write BENCH_resize.json: {e}"),
    }
    println!(
        "expected shape: p50 similar for both modes; stop-the-world p99.9 \
         and max grow with the largest doubling (every arrival queued \
         behind the rehash pays for it), incremental stays flat."
    );
}
