//! Criterion micro-benchmarks for the building blocks: hash functions,
//! single-operation lookup/insert latency, BFS vs DFS path search at
//! high occupancy, and spinlock vs general-purpose mutex acquisition
//! (the paper's P3 rationale: "because the operations that our hash
//! tables support are all very short and have low contention, very
//! simple spinlocks are often the best choice").

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use cuckoo::hash::{FxHasher64, SipHasher13};
use cuckoo::raw::RawTable;
use cuckoo::search::{bfs, dfs, SearchScratch};
use cuckoo::sync::SpinLock;
use cuckoo::{CuckooMap, OptimisticCuckooMap};
use std::hash::Hasher;
use std::hint::black_box;

fn bench_hashers(c: &mut Criterion) {
    let mut g = c.benchmark_group("hash");
    g.bench_function("fx_u64", |b| {
        b.iter(|| {
            let mut h = FxHasher64::default();
            h.write_u64(black_box(0xdead_beef));
            black_box(h.finish())
        })
    });
    g.bench_function("sip13_u64", |b| {
        b.iter(|| {
            let mut h = SipHasher13::new_with_keys(1, 2);
            h.write_u64(black_box(0xdead_beef));
            black_box(h.finish())
        })
    });
    g.bench_function("sip13_64bytes", |b| {
        let data = [7u8; 64];
        b.iter(|| {
            let mut h = SipHasher13::new_with_keys(1, 2);
            h.write(black_box(&data));
            black_box(h.finish())
        })
    });
    g.finish();
}

fn bench_table_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("table_ops");
    let n = 1 << 16;
    let optimistic: OptimisticCuckooMap<u64, u64, 8> = OptimisticCuckooMap::with_capacity(n);
    let locked: CuckooMap<u64, u64, 8> = CuckooMap::with_capacity(n);
    for k in 0..(n as u64 * 9 / 10) {
        optimistic.insert(k, k).unwrap();
        locked.insert(k, k).unwrap();
    }
    g.bench_function("optimistic_get_hit", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 7) % 50_000;
            black_box(optimistic.get(&black_box(k)))
        })
    });
    g.bench_function("optimistic_get_miss", |b| {
        b.iter(|| black_box(optimistic.get(&black_box(u64::MAX))))
    });
    g.bench_function("locked_get_hit", |b| {
        // The paper (§7) prices libcuckoo's locked reads at a 5-20%
        // penalty over optimistic reads.
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 7) % 50_000;
            black_box(locked.get(&black_box(k)))
        })
    });
    g.bench_function("insert_low_occupancy", |b| {
        b.iter_batched(
            || OptimisticCuckooMap::<u64, u64, 8>::with_capacity(1 << 12),
            |m| {
                for k in 0..512u64 {
                    m.insert(k, k).unwrap();
                }
                m
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_search(c: &mut Criterion) {
    let mut g = c.benchmark_group("path_search");
    // Build a 95%-full raw table for search benchmarking.
    let raw: RawTable<u64, u64, 4> = RawTable::with_capacity(1 << 14);
    let total = raw.total_slots() * 95 / 100;
    let mut placed = 0;
    let mut x = 12345u64;
    while placed < total {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        let bi = (x >> 32) as usize & raw.mask();
        let tag = ((x >> 24) as u8).max(1);
        if let Some(s) = raw.meta(bi).empty_slot() {
            // SAFETY: single-threaded setup.
            unsafe { raw.write_entry(bi, s, tag, 0, 0) };
            placed += 1;
        }
    }
    let mut scratch = SearchScratch::default();
    let mut i = 0usize;
    g.bench_function("bfs_95pct", |b| {
        b.iter(|| {
            i = (i + 61) & raw.mask();
            let tag = ((i as u8) | 1).max(1);
            black_box(bfs::search(&raw, i, raw.alt_index(i, tag), 2000, true, &mut scratch).is_ok())
        })
    });
    g.bench_function("dfs_95pct", |b| {
        b.iter(|| {
            i = (i + 61) & raw.mask();
            let tag = ((i as u8) | 1).max(1);
            black_box(dfs::search(&raw, i, raw.alt_index(i, tag), 2000, &mut scratch).is_ok())
        })
    });
    g.finish();
}

fn bench_locks(c: &mut Criterion) {
    let mut g = c.benchmark_group("locks");
    let spin = SpinLock::new();
    let mutex = parking_lot::Mutex::new(());
    let std_mutex = std::sync::Mutex::new(());
    g.bench_function("spinlock_uncontended", |b| {
        b.iter(|| {
            let g = spin.lock();
            black_box(&g);
        })
    });
    g.bench_function("parking_lot_uncontended", |b| {
        b.iter(|| {
            let g = mutex.lock();
            black_box(&g);
        })
    });
    g.bench_function("std_mutex_uncontended", |b| {
        b.iter(|| {
            let g = std_mutex.lock().unwrap();
            black_box(&g);
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_hashers,
    bench_table_ops,
    bench_search,
    bench_locks
);
criterion_main!(benches);
