//! Ablations over the design choices DESIGN.md calls out:
//!
//! 1. **Lock-stripe count** — the paper picks 2048 ("reasonable size lock
//!    tables, such as 1K-8K entries"); sweep 64 → 8192 and watch insert
//!    throughput under concurrent writers.
//! 2. **Search budget `M`** — controls both the achievable load factor
//!    and the worst-case path length (Eq. 2); sweep it and report the
//!    achieved load when the budget runs out.
//! 3. **BFS vs DFS path-length distribution** at several occupancies —
//!    the empirical histogram behind Figure 4 / §4.3.2's expected-length
//!    argument.
//! 4. **Delete throughput** — the paper treats `Delete` as "very similar
//!    to Lookup"; verify remove ≈ lookup cost on this implementation.

use bench::{banner, slots};
use cuckoo::raw::RawTable;
use cuckoo::search::{bfs, dfs, SearchScratch};
use cuckoo::OptimisticCuckooMap;
use workload::driver::{run_fill, run_lookup_only, FillSpec, LookupSpec};
use workload::keygen::key_of;
use workload::report::{mops, Table};
use workload::ConcurrentMap;
use std::time::Instant;

fn stripes_ablation() {
    let mut table = Table::new(
        "Ablation 1: lock-stripe count (4 threads, 100% insert to 95%)",
        &["stripes", "overall Mops"],
    );
    for stripes in [64usize, 256, 1024, 2048, 8192] {
        let map: OptimisticCuckooMap<u64, u64, 8> =
            OptimisticCuckooMap::<u64, u64, 8>::builder(slots())
                .stripes(stripes)
                .build();
        let spec = FillSpec {
            write_batch: 1,
            threads: 4,
            insert_ratio: 1.0,
            fill_to: 0.95,
            windows: vec![],
        };
        let report = run_fill(&map, &spec);
        table.row(vec![stripes.to_string(), mops(report.overall_mops)]);
    }
    table.print();
    let _ = table.write_csv("ablation_stripes");
}

fn search_budget_ablation() {
    let mut table = Table::new(
        "Ablation 2: search budget M vs achievable load (4-way, 1 thread)",
        &["M (slots)", "L_BFS bound", "achieved load", "overall Mops"],
    );
    for m in [50usize, 200, 500, 2000, 8000] {
        let map: OptimisticCuckooMap<u64, u64, 4> =
            OptimisticCuckooMap::<u64, u64, 4>::builder(slots() / 4)
                .search_budget(m)
                .build();
        let spec = FillSpec {
            write_batch: 1,
            threads: 1,
            insert_ratio: 1.0,
            fill_to: 0.99,
            windows: vec![],
        };
        let report = run_fill(&map, &spec);
        table.row(vec![
            m.to_string(),
            bfs::bfs_max_path_len(4, m).to_string(),
            format!("{:.3}", report.achieved_load),
            mops(report.overall_mops),
        ]);
    }
    table.print();
    let _ = table.write_csv("ablation_search_budget");
}

fn path_length_distribution() {
    let mut table = Table::new(
        "Ablation 3: path-length distribution, BFS vs DFS (4-way)",
        &["load", "search", "mean len", "p99 len", "max len", "found%"],
    );
    for load_pct in [80usize, 90, 95] {
        let raw: RawTable<u64, u64, 4> = RawTable::with_capacity(1 << 14);
        let total = raw.total_slots() * load_pct / 100;
        let mut x = 7u64;
        let mut placed = 0;
        while placed < total {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(11);
            let bi = (x >> 32) as usize & raw.mask();
            let tag = ((x >> 24) as u8).max(1);
            if let Some(s) = raw.meta(bi).empty_slot() {
                // SAFETY: single-threaded setup.
                unsafe { raw.write_entry(bi, s, tag, 0, 0) };
                placed += 1;
            }
        }
        let mut scratch = SearchScratch::default();
        for (name, is_bfs) in [("BFS", true), ("DFS", false)] {
            let mut lens: Vec<usize> = Vec::new();
            let mut attempts = 0;
            for i in (0..raw.n_buckets()).step_by(7) {
                attempts += 1;
                let tag = ((i as u8) | 1).max(1);
                let i2 = raw.alt_index(i, tag);
                let found = if is_bfs {
                    bfs::search(&raw, i, i2, 2000, true, &mut scratch).is_ok()
                } else {
                    dfs::search(&raw, i, i2, 2000, &mut scratch).is_ok()
                };
                if found {
                    // Displacements = path entries minus the vacancy.
                    lens.push(scratch.path.len().saturating_sub(1));
                }
            }
            lens.sort_unstable();
            let mean = lens.iter().sum::<usize>() as f64 / lens.len().max(1) as f64;
            let p99 = lens.get(lens.len() * 99 / 100).copied().unwrap_or(0);
            let max = lens.last().copied().unwrap_or(0);
            table.row(vec![
                format!("{}%", load_pct),
                name.into(),
                format!("{mean:.2}"),
                p99.to_string(),
                max.to_string(),
                format!("{:.1}%", lens.len() as f64 / attempts as f64 * 100.0),
            ]);
        }
    }
    table.print();
    let _ = table.write_csv("ablation_path_lengths");
}

fn delete_vs_lookup() {
    let map: OptimisticCuckooMap<u64, u64, 8> = OptimisticCuckooMap::with_capacity(slots());
    let spec = FillSpec {
            write_batch: 1,
        threads: 2,
        insert_ratio: 1.0,
        fill_to: 0.9,
        windows: vec![],
    };
    let report = run_fill(&map, &spec);
    let per_thread = report.inserts / 2;
    let lookup_mops = run_lookup_only(
        &map,
        &LookupSpec {
            threads: 4,
            ops_per_thread: per_thread / 4,
            miss_ratio: 0.0,
            batch: 1,
        },
        (2, per_thread),
    );
    // Delete everything, timed, 4 threads on disjoint ranges.
    let start = Instant::now();
    std::thread::scope(|s| {
        for part in 0..4u64 {
            let map = &map;
            s.spawn(move || {
                for t in 0..2u64 {
                    let lo = per_thread * part / 4;
                    let hi = per_thread * (part + 1) / 4;
                    for i in lo..hi {
                        map.del(&key_of(t, i));
                    }
                }
            });
        }
    });
    let deleted = report.inserts;
    let delete_mops = deleted as f64 / start.elapsed().as_secs_f64() / 1e6;
    let mut table = Table::new(
        "Ablation 4: Delete vs Lookup (paper §2.1: 'Delete is very similar to Lookup')",
        &["op", "Mops (4 threads)"],
    );
    table.row(vec!["Lookup (hit)".into(), mops(lookup_mops)]);
    table.row(vec!["Delete (hit)".into(), mops(delete_mops)]);
    table.print();
    let _ = table.write_csv("ablation_delete_lookup");
    assert_eq!(ConcurrentMap::<u64>::items(&map), 0, "all entries deleted");
}

fn main() {
    banner("Ablations", "stripes, search budget, path lengths, delete cost");
    stripes_ablation();
    search_budget_ablation();
    path_length_distribution();
    delete_vs_lookup();
}
