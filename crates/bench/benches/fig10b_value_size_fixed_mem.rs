//! Figure 10b: throughput with 8-byte keys and value sizes up to 1024
//! bytes in a table of *fixed total bytes* (the paper used 4 GB; scaled
//! here), comparing fine-grained locking against TSX lock elision.
//!
//! The paper's finding: "TSX lock elision outperforms fine-grained
//! locking with small key-value sizes, but is worse at 1024 bytes" —
//! large values inflate the transactional write footprint and the abort
//! rate.

use bench::{banner, fill_avg, slots};
use cuckoo::{ElidedCuckooMap, OptimisticCuckooMap, WriterLockKind};
use htm::{HtmConfig, HtmDomain};
use std::sync::Arc;
use workload::driver::FillSpec;
use workload::report::{mops, pct, Table};
use workload::ConcurrentMap;

/// Total table budget in bytes (scaled stand-in for the paper's 4 GB).
fn budget_bytes() -> usize {
    slots() * 16
}

fn run_size<const N: usize>(table: &mut Table) {
    let entry = 8 + N;
    let entries = (budget_bytes() / entry).max(1 << 12);
    for (threads, ratio, series) in [
        (8usize, 1.0, "8-thr 100% ins"),
        (1, 1.0, "1-thr 100% ins"),
        (8, 0.1, "8-thr 10% ins"),
    ] {
        let spec = FillSpec {
            write_batch: 1,
            threads,
            insert_ratio: ratio,
            fill_to: 0.9,
            windows: vec![],
        };
        // TSX elision variant (with abort stats from one instrumented run).
        let tsx_map = ElidedCuckooMap::<u64, [u8; N], 8>::with_capacity(entries);
        let _ = workload::driver::run_fill(&tsx_map, &spec);
        let tsx_aborts = ConcurrentMap::<[u8; N]>::htm_stats(&tsx_map)
            .map(|s| pct(s.abort_rate()))
            .unwrap_or_default();
        let tsx = fill_avg(
            || ElidedCuckooMap::<u64, [u8; N], 8>::with_capacity(entries),
            &spec,
        );
        table.row(vec![
            N.to_string(),
            series.into(),
            "TSX".into(),
            mops(tsx.overall_mops),
            tsx_aborts,
        ]);
        // Fine-grained locking variant.
        if threads == 8 && ratio == 1.0 {
            let fg = fill_avg(
                || OptimisticCuckooMap::<u64, [u8; N], 8>::with_capacity(entries),
                &spec,
            );
            table.row(vec![
                N.to_string(),
                series.into(),
                "fine-grained".into(),
                mops(fg.overall_mops),
                "-".into(),
            ]);
        }
    }
}

/// The footprint mechanism, isolated: run the elided table in a domain
/// whose write budget models the paper's 16KB store buffer scaled to the
/// workload, so large values genuinely overflow it.
fn constrained_domain_sweep(table: &mut Table) {
    fn one<const N: usize>(table: &mut Table) {
        let entry = 8 + N;
        let entries = (budget_bytes() / entry).max(1 << 12);
        let spec = FillSpec {
            write_batch: 1,
            threads: 8,
            insert_ratio: 1.0,
            fill_to: 0.9,
            windows: vec![],
        };
        // 32-line write budget: a cuckoo path of 8B entries fits easily;
        // a path of 1KB entries does not.
        let domain = Arc::new(HtmDomain::with_config(HtmConfig {
            write_capacity_lines: 32,
            ..HtmConfig::default()
        }));
        let map = ElidedCuckooMap::<u64, [u8; N], 8>::with_capacity_policy_and_domain(
            entries,
            WriterLockKind::ElidedOptimized,
            domain,
        );
        let report = workload::driver::run_fill(&map, &spec);
        let stats = ConcurrentMap::<[u8; N]>::htm_stats(&map).unwrap();
        table.row(vec![
            N.to_string(),
            "8-thr 100% ins".into(),
            "TSX (32-line budget)".into(),
            mops(report.overall_mops),
            format!(
                "{} capacity aborts, {} fallback",
                stats.capacity_aborts,
                pct(stats.fallback_rate())
            ),
        ]);
    }
    one::<8>(table);
    one::<256>(table);
    one::<1024>(table);
}

fn main() {
    banner(
        "Figure 10b",
        "throughput vs value size, fixed table bytes: FG locking vs TSX",
    );
    let mut table = Table::new(
        "Figure 10b: Mops vs value size (fixed memory budget)",
        &["value bytes", "series", "locking", "Mops", "abort rate"],
    );
    run_size::<8>(&mut table);
    run_size::<64>(&mut table);
    run_size::<256>(&mut table);
    run_size::<512>(&mut table);
    run_size::<1024>(&mut table);
    constrained_domain_sweep(&mut table);
    table.print();
    let _ = table.write_csv("fig10b_value_size_fixed_mem");
    println!(
        "\npaper shape: elision ahead of fine-grained locking for small \
         values, behind at 1024 bytes as large values blow up the \
         transactional footprint. On a single-core host the conflict-abort \
         channel is muted; the constrained-budget rows isolate the \
         footprint/capacity channel (abort + fallback growth with value \
         size)."
    );
}
