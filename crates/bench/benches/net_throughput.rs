//! End-to-end network throughput: `cuckood` served over real TCP.
//!
//! The paper's headline numbers are in-process table operations; MemC3's
//! own evaluation adds the full network stack. This bench closes that
//! gap for the reproduction: it spawns the `cuckood` server in-process
//! on an ephemeral loopback port, drives it with the pipelined client in
//! `workload::net`, and reports wire throughput for both storage engines
//! (the bounded CLOCK cache and the unbounded cuckoo map) across read
//! mixes.
//!
//! Loopback numbers measure protocol + connection-handling overhead, not
//! NIC behavior — compare engines and mixes against each other, not
//! against the paper's absolute Mops.
//!
//! Scale knobs (also see `CUCKOO_BENCH_*`):
//!
//! - `CUCKOO_BENCH_NET_OPS` — timed operations per cell (default 200_000)
//! - `CUCKOO_BENCH_NET_DEPTH` — pipeline depth (default 32)

use workload::net::{NetSpec, NetReport};
use workload::report::{mops, Table};

fn net_ops() -> u64 {
    std::env::var("CUCKOO_BENCH_NET_OPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200_000)
}

fn depth() -> usize {
    std::env::var("CUCKOO_BENCH_NET_DEPTH")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32)
}

fn run_cell(no_evict: bool, read_pct: u8, threads: usize) -> NetReport {
    let handle = server::spawn(server::Config {
        port: 0,
        capacity: 1 << 17,
        workers: threads,
        no_evict,
        ..Default::default()
    })
    .expect("spawn cuckood");
    let spec = NetSpec {
        addr: handle.local_addr().to_string(),
        threads,
        connections: threads * 2,
        pipeline_depth: depth(),
        keyspace: 50_000,
        zipf_s: 0.99,
        read_pct,
        value_len: 32,
        total_ops: net_ops(),
        prefill: true,
    };
    let report = workload::net::run(&spec).expect("net driver");
    handle.shutdown();
    report
}

fn main() {
    bench::banner(
        "net_throughput",
        "end-to-end memcached-protocol throughput over loopback TCP",
    );
    let threads = *bench::thread_counts().last().unwrap_or(&4);
    let mut table = Table::new(
        format!(
            "cuckood over loopback: {} ops, depth {}, {} client threads, Zipf 0.99",
            net_ops(),
            depth(),
            threads
        ),
        &[
            "engine",
            "read%",
            "Mops",
            "hit%",
            "batch p50 us",
            "batch p99 us",
            "errors",
        ],
    );
    for &no_evict in &[false, true] {
        let engine = if no_evict { "cuckoo (no-evict)" } else { "clock cache" };
        for &read_pct in &[50u8, 90, 100] {
            let r = run_cell(no_evict, read_pct, threads);
            let hit_rate = if r.gets > 0 { r.hits as f64 / r.gets as f64 } else { 0.0 };
            table.row(vec![
                engine.to_string(),
                format!("{read_pct}"),
                mops(r.mops()),
                format!("{:.1}", hit_rate * 100.0),
                format!("{:.1}", r.batch_rtt.percentile(50.0) as f64 / 1000.0),
                format!("{:.1}", r.batch_rtt.percentile(99.0) as f64 / 1000.0),
                r.errors.to_string(),
            ]);
        }
    }
    table.print();
    match table.write_csv("net_throughput") {
        Ok(path) => println!("(csv: {})", path.display()),
        Err(e) => println!("(csv not written: {e})"),
    }
}
