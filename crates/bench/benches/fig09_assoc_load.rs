//! Figure 9: 8-thread aggregate throughput versus table occupancy
//! (0.3 → 0.95) for 4-, 8-, and 16-way tables under the three workloads
//! (optimized cuckoo with TSX lock elision).

use bench::{banner, fill_avg, slots};
use cuckoo::ElidedCuckooMap;
use workload::driver::FillSpec;
use workload::report::{mops, Table};

const THREADS: usize = 8;

/// Load-factor windows matching the paper's x-axis.
fn windows() -> Vec<(f64, f64)> {
    (0..13)
        .map(|i| (0.25 + i as f64 * 0.05, 0.30 + i as f64 * 0.05))
        .collect()
}

fn sweep<const B: usize>(table: &mut Table) {
    for ratio in [1.0, 0.5, 0.1] {
        let spec = FillSpec {
            write_batch: 1,
            threads: THREADS,
            insert_ratio: ratio,
            fill_to: 0.95,
            windows: windows(),
        };
        let report = fill_avg(
            || ElidedCuckooMap::<u64, u64, B>::with_capacity(slots()),
            &spec,
        );
        for (w, &(lo, hi)) in windows().iter().enumerate() {
            table.row(vec![
                format!("{B}-way"),
                format!("{:.0}%", ratio * 100.0),
                format!("{:.2}-{:.2}", lo, hi),
                mops(report.window_mops[w]),
            ]);
        }
    }
}

fn main() {
    banner(
        "Figure 9",
        "throughput vs load factor x set-associativity x workload",
    );
    let mut table = Table::new(
        "Figure 9: 8-thread Mops by load-factor window",
        &["associativity", "insert%", "load window", "Mops"],
    );
    sweep::<4>(&mut table);
    sweep::<8>(&mut table);
    sweep::<16>(&mut table);
    table.print();
    let _ = table.write_csv("fig09_assoc_load");
    println!(
        "\npaper shape: write throughput degrades as occupancy grows; \
         8-way beats 4-way for write-heavy mixes, 16-way is worst at low \
         occupancy but catches up above ~0.75 load and wins write-heavy \
         mixes above ~0.92."
    );
}
