//! Figure 5b: 8-thread Insert factor analysis, optimizations applied
//! cumulatively in the paper's two orderings:
//!
//! - top plot: elision first (`cuckoo → +TSX-glibc → +TSX* → +lock later
//!   → +BFS w/ prefetch`);
//! - bottom plot: algorithms first (`cuckoo → +lock later → +BFS w/
//!   prefetch → +TSX-glibc → +TSX*`).
//!
//! The paper's conclusion: "neither of these optimizations alone was able
//! to achieve more than 8 million operations per second, but they combine
//! to achieve almost 30 million."

use bench::{banner, fill_avg, slots};
use cuckoo::{MemC3Config, MemC3Cuckoo, WriterLockKind};
use workload::driver::FillSpec;
use workload::report::{mops, Table};

const THREADS: usize = 8;

fn measure(config: MemC3Config) -> (f64, f64, f64) {
    let spec = FillSpec {
            write_batch: 1,
        threads: THREADS,
        insert_ratio: 1.0,
        fill_to: 0.95,
        windows: vec![(0.0, 0.95), (0.75, 0.90), (0.90, 0.95)],
    };
    let report = fill_avg(
        || MemC3Cuckoo::<u64, u64, 4>::with_capacity(slots(), config),
        &spec,
    );
    (
        report.overall_mops,
        report.window_mops[1],
        report.window_mops[2],
    )
}

fn emit(table: &mut Table, ordering: &str, name: &str, cfg: MemC3Config) {
    let (overall, w1, w2) = measure(cfg);
    table.row(vec![
        ordering.into(),
        name.into(),
        mops(overall),
        mops(w1),
        mops(w2),
    ]);
}

fn main() {
    banner(
        "Figure 5b",
        "8-thread insert factor analysis, two cumulative orderings",
    );
    let mut table = Table::new(
        "Figure 5b: 8-thread aggregate Insert Mops by load window",
        &[
            "ordering",
            "config",
            "load 0-0.95",
            "load 0.75-0.9",
            "load 0.9-0.95",
        ],
    );

    let base = MemC3Config::baseline();

    // Upper plot: elision first.
    emit(&mut table, "elision-first", "cuckoo", base);
    emit(
        &mut table,
        "elision-first",
        "+TSX-glibc",
        base.with_lock(WriterLockKind::ElidedGlibc),
    );
    emit(
        &mut table,
        "elision-first",
        "+TSX*",
        base.with_lock(WriterLockKind::ElidedOptimized),
    );
    emit(
        &mut table,
        "elision-first",
        "+lock later",
        base.with_lock(WriterLockKind::ElidedOptimized).plus_lock_later(),
    );
    emit(
        &mut table,
        "elision-first",
        "+BFS w/ prefetch",
        base.with_lock(WriterLockKind::ElidedOptimized)
            .plus_lock_later()
            .plus_bfs()
            .plus_prefetch(),
    );

    // Lower plot: algorithms first.
    emit(&mut table, "algo-first", "cuckoo", base);
    emit(&mut table, "algo-first", "+lock later", base.plus_lock_later());
    emit(
        &mut table,
        "algo-first",
        "+BFS w/ prefetch",
        base.plus_lock_later().plus_bfs().plus_prefetch(),
    );
    emit(
        &mut table,
        "algo-first",
        "+TSX-glibc",
        base.plus_lock_later()
            .plus_bfs()
            .plus_prefetch()
            .with_lock(WriterLockKind::ElidedGlibc),
    );
    emit(
        &mut table,
        "algo-first",
        "+TSX*",
        base.plus_lock_later()
            .plus_bfs()
            .plus_prefetch()
            .with_lock(WriterLockKind::ElidedOptimized),
    );

    table.print();
    let _ = table.write_csv("fig05b_factor_multi");
    println!(
        "\npaper shape: neither elision alone nor algorithms alone wins; \
         the combination dominates, and at high load (0.9-0.95) the \
         algorithmic optimizations matter most."
    );
}
