//! Extension experiment: sustainable load and insert tail latency by
//! eviction policy (the high-density insert engine A/B).
//!
//! BFS finds provably short cuckoo paths but gives up once its breadth
//! budget is exhausted; the loop-detecting random walk keeps kicking.
//! This bench fills one table per [`EvictionPolicy`] insert-only from
//! empty to 99% occupancy, timing **every insert** and windowing the
//! latency histograms by the load factor at which each insert ran
//! (`workload::driver::run_fill_latency`). The output answers the two
//! questions the policy knob trades between: how far each policy can
//! pack the table, and what the insert tail costs at each load step.
//!
//! Outputs `density.csv` and `BENCH_density.json` under
//! `target/bench-results/`.
//!
//! Env knobs (for CI smoke runs):
//! - `DENSITY_TABLE_BITS`: log2 of table slots (default 20).
//! - `DENSITY_THREADS`: fill threads (default min(4, cores)).
//! - `DENSITY_MIN_LOAD`: if set, exit non-zero unless the random-walk
//!   policy reaches at least this load factor (CI gate, e.g. `0.98`).
//! - `DENSITY_MAX_P999_RATIO`: if set, exit non-zero when the
//!   random-walk p99.9 insert latency in the 95–98% window exceeds this
//!   multiple of its 90–95% window (tail-boundedness gate, e.g. `5`).
//! - `BENCH_COUNTERS`: set to `0` to omit per-policy observability
//!   counter deltas (eviction kicks, loop detections, give-ups...).

use bench::banner;
use cuckoo::{EvictionPolicy, OptimisticBuilder, OptimisticCuckooMap};
use std::collections::BTreeMap;
use workload::driver::{run_fill_latency, FillLatencySpec};
use workload::report::Table;
use workload::snapshot::{json_object, MetricSnapshot};

/// Load-factor windows reported per policy. `(0.90, 0.95)` is the
/// paper-territory baseline window; the gates compare the higher windows
/// against it.
const WINDOWS: [(f64, f64); 4] = [(0.0, 0.90), (0.90, 0.95), (0.95, 0.98), (0.98, 0.99)];
const FILL_TO: f64 = 0.99;
/// Kick budget for the walk phases: far beyond typical path lengths, so
/// only a genuinely packed neighborhood exhausts it.
const MAX_KICKS: usize = 500;
/// BFS slot budget for the hybrid's first phase: enough for the common
/// short path, small enough that the walk takes over quickly at 98%+.
const HYBRID_BFS_SLOTS: usize = 512;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn env_f64(name: &str) -> Option<f64> {
    std::env::var(name).ok().map(|v| v.parse().expect("float env var"))
}

fn policies() -> Vec<(&'static str, EvictionPolicy)> {
    vec![
        ("bfs", EvictionPolicy::Bfs),
        ("random_walk", EvictionPolicy::RandomWalk { max_kicks: MAX_KICKS }),
        (
            "hybrid",
            EvictionPolicy::Hybrid { bfs_slots: HYBRID_BFS_SLOTS, max_kicks: MAX_KICKS },
        ),
    ]
}

struct PolicyResult {
    achieved_load: f64,
    hit_full: bool,
    /// Per window: (count, p50, p99, p999, mean).
    windows: Vec<(u64, u64, u64, u64, f64)>,
    counters: Option<String>,
}

fn main() {
    let table_bits = env_usize("DENSITY_TABLE_BITS", 20);
    let threads = env_usize(
        "DENSITY_THREADS",
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(4),
    );
    let dump_counters = std::env::var("BENCH_COUNTERS").map(|v| v != "0").unwrap_or(true);

    banner(
        "Extension: high-density insert engine",
        "sustainable load and insert tail latency by eviction policy",
    );
    let mut out = Table::new(
        "Insert latency (ns) by eviction policy and load window",
        &["policy", "window", "inserts", "p50", "p99", "p99.9", "achieved load"],
    );

    let mut results: BTreeMap<&'static str, PolicyResult> = BTreeMap::new();
    for (name, policy) in policies() {
        let map: OptimisticCuckooMap<u64, u64, 8> =
            OptimisticBuilder::new(1 << table_bits).eviction(policy).build();
        let before = dump_counters.then(|| MetricSnapshot::take(&map));
        let spec = FillLatencySpec {
            threads,
            fill_to: FILL_TO,
            windows: WINDOWS.to_vec(),
        };
        let report = run_fill_latency(&map, &spec);
        let counters = before.map(|b| json_object(&MetricSnapshot::take(&map).delta(&b)));

        let mut windows = Vec::new();
        for (w, h) in report.window_latencies.iter().enumerate() {
            let (lo, hi) = WINDOWS[w];
            windows.push((h.len(), h.percentile(50.0), h.percentile(99.0), h.percentile(99.9), h.mean()));
            out.row(vec![
                name.to_string(),
                format!("{lo:.2}-{hi:.2}"),
                h.len().to_string(),
                h.percentile(50.0).to_string(),
                h.percentile(99.0).to_string(),
                h.percentile(99.9).to_string(),
                format!("{:.4}{}", report.achieved_load, if report.hit_full { " (full)" } else { "" }),
            ]);
        }
        results.insert(
            name,
            PolicyResult {
                achieved_load: report.achieved_load,
                hit_full: report.hit_full,
                windows,
                counters,
            },
        );
    }
    out.print();
    let _ = out.write_csv("density");

    let dir = std::path::PathBuf::from("target/bench-results");
    let _ = std::fs::create_dir_all(&dir);

    let policy_rows: Vec<String> = results
        .iter()
        .map(|(name, r)| {
            let window_rows: Vec<String> = r
                .windows
                .iter()
                .enumerate()
                .map(|(w, &(count, p50, p99, p999, mean))| {
                    let (lo, hi) = WINDOWS[w];
                    format!(
                        "        {{\"lo\": {lo}, \"hi\": {hi}, \"inserts\": {count}, \
                         \"p50_ns\": {p50}, \"p99_ns\": {p99}, \"p999_ns\": {p999}, \
                         \"mean_ns\": {mean:.1}}}"
                    )
                })
                .collect();
            format!(
                "    {{\"policy\": \"{name}\", \"achieved_load\": {:.4}, \
                 \"hit_full\": {}, \"counters\": {},\n      \"windows\": [\n{}\n      ]}}",
                r.achieved_load,
                r.hit_full,
                r.counters.as_deref().unwrap_or("{}"),
                window_rows.join(",\n")
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"density\",\n  \"table_slots\": {},\n  \"threads\": {},\n  \
         \"fill_to\": {FILL_TO},\n  \"max_kicks\": {MAX_KICKS},\n  \
         \"hybrid_bfs_slots\": {HYBRID_BFS_SLOTS},\n  \"results\": [\n{}\n  ]\n}}\n",
        1u64 << table_bits,
        threads,
        policy_rows.join(",\n")
    );
    match std::fs::write(dir.join("BENCH_density.json"), &json) {
        Ok(()) => println!("\nwrote target/bench-results/BENCH_density.json"),
        Err(e) => eprintln!("\nfailed to write BENCH_density.json: {e}"),
    }

    // CI gates, both against the random-walk policy (the scheme whose
    // density claim this bench exists to defend).
    let walk = &results["random_walk"];
    if let Some(min_load) = env_f64("DENSITY_MIN_LOAD") {
        println!(
            "gate: random-walk achieved load = {:.4} (min {min_load})",
            walk.achieved_load
        );
        if walk.achieved_load < min_load {
            eprintln!(
                "FAIL: random-walk load {:.4} below threshold {min_load}",
                walk.achieved_load
            );
            std::process::exit(1);
        }
    }
    if let Some(max_ratio) = env_f64("DENSITY_MAX_P999_RATIO") {
        // Window 2 (95–98%) tail against window 1 (90–95%, the paper's
        // standard territory).
        let base = walk.windows[1].3.max(1);
        let high = walk.windows[2].3;
        let ratio = high as f64 / base as f64;
        println!("gate: random-walk p99.9 95-98% / 90-95% = {ratio:.2} (max {max_ratio})");
        if ratio > max_ratio {
            eprintln!("FAIL: tail ratio {ratio:.2} above threshold {max_ratio}");
            std::process::exit(1);
        }
    }
}
