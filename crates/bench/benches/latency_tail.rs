//! Extension experiment: read tail latency under writer pressure.
//!
//! The paper evaluates throughput; a downstream user of a concurrent
//! table also cares about read *tail* latency while writers displace
//! items. Optimistic readers retry whenever a writer touches their
//! stripes, so the interesting comparison is:
//!
//! - cuckoo+ optimistic reads vs the general map's locked reads, and
//! - quiescent vs write-pressured tails for each.
//!
//! (The §7 "5-20% slowdown" for locked reads is a *mean* claim; tails
//! separate further under load.)

use bench::{banner, slots};
use cuckoo::{CuckooMap, OptimisticCuckooMap};
use workload::keygen::{key_of, SplitMix64};
use workload::report::Table;
use workload::LatencyHistogram;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

const READ_THREADS: usize = 2;
const READS_PER_THREAD: u64 = 200_000;

trait ReadTable: Sync {
    fn fill(&self, n: u64);
    fn read_one(&self, key: &u64) -> Option<u64>;
    fn churn_step(&self, rng: &mut SplitMix64, n: u64);
}

impl ReadTable for OptimisticCuckooMap<u64, u64, 8> {
    fn fill(&self, n: u64) {
        for i in 0..n {
            self.insert(key_of(0, i), i).unwrap();
        }
    }

    fn read_one(&self, key: &u64) -> Option<u64> {
        self.get(key)
    }

    fn churn_step(&self, rng: &mut SplitMix64, n: u64) {
        let i = rng.below(n);
        let k = key_of(0, i);
        if let Some(v) = self.remove(&k) {
            let _ = self.insert(k, v);
        }
    }
}

impl ReadTable for CuckooMap<u64, u64, 8> {
    fn fill(&self, n: u64) {
        for i in 0..n {
            self.insert(key_of(0, i), i).unwrap();
        }
    }

    fn read_one(&self, key: &u64) -> Option<u64> {
        self.get(key)
    }

    fn churn_step(&self, rng: &mut SplitMix64, n: u64) {
        let i = rng.below(n);
        let k = key_of(0, i);
        if let Some(v) = self.remove(&k) {
            let _ = self.insert(k, v);
        }
    }
}

fn measure<T: ReadTable>(table: &T, with_writer: bool) -> LatencyHistogram {
    let n = (slots() / 2) as u64;
    table.fill(n);
    let hist = LatencyHistogram::new();
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        if with_writer {
            let stop = &stop;
            let table = &*table;
            s.spawn(move || {
                let mut rng = SplitMix64::new(0xdead);
                while !stop.load(Ordering::Acquire) {
                    table.churn_step(&mut rng, n);
                }
            });
        }
        for t in 0..READ_THREADS as u64 {
            let hist = &hist;
            let table = &*table;
            s.spawn(move || {
                let mut rng = SplitMix64::new(0xabc + t);
                let local = LatencyHistogram::new();
                for _ in 0..READS_PER_THREAD {
                    let k = key_of(0, rng.below(n));
                    let start = Instant::now();
                    std::hint::black_box(table.read_one(&k));
                    local.record(start.elapsed().as_nanos() as u64);
                }
                hist.merge(&local);
            });
        }
        // Stop the churner once readers are done: scope join order means
        // we set the flag from a watchdog thread.
        let stop = &stop;
        let hist = &hist;
        s.spawn(move || {
            let expect = (READ_THREADS as u64) * READS_PER_THREAD;
            while hist.len() < expect {
                std::thread::yield_now();
            }
            stop.store(true, Ordering::Release);
        });
    });
    hist
}

fn main() {
    banner(
        "Extension: tail latency",
        "read latency percentiles, optimistic vs locked reads",
    );
    let mut out = Table::new(
        "Read latency (ns) under quiescence and writer churn",
        &["table", "writer?", "mean", "p50", "p99", "p99.9", "max"],
    );
    for with_writer in [false, true] {
        let opt: OptimisticCuckooMap<u64, u64, 8> = OptimisticCuckooMap::with_capacity(slots());
        let h = measure(&opt, with_writer);
        out.row(vec![
            "cuckoo+ optimistic".into(),
            if with_writer { "yes" } else { "no" }.into(),
            format!("{:.0}", h.mean()),
            h.percentile(50.0).to_string(),
            h.percentile(99.0).to_string(),
            h.percentile(99.9).to_string(),
            h.max().to_string(),
        ]);
        let locked: CuckooMap<u64, u64, 8> = CuckooMap::with_capacity(slots());
        let h = measure(&locked, with_writer);
        out.row(vec![
            "libcuckoo-style locked".into(),
            if with_writer { "yes" } else { "no" }.into(),
            format!("{:.0}", h.mean()),
            h.percentile(50.0).to_string(),
            h.percentile(99.0).to_string(),
            h.percentile(99.9).to_string(),
            h.max().to_string(),
        ]);
    }
    out.print();
    let _ = out.write_csv("latency_tail");
    println!(
        "\nexpected shape: optimistic reads cheaper at the median; under \
         writer churn both tables grow p99.9 tails (retry loops vs lock \
         waits)."
    );
}
