//! Extension experiment: batched (multi-key) lookup throughput.
//!
//! The paper's §4.3.2 prefetch argument — issue the second bucket's
//! load before the first is consumed so the two misses overlap — is
//! applied here *across keys*: `get_many` software-pipelines groups of
//! G lookups (hash all, prefetch all metadata, prefetch tag-hit data
//! lines, then probe), so up to G independent DRAM misses are in
//! flight instead of one. This bench sweeps the group size at two load
//! factors and reports speedup over the single-key `get` loop.
//!
//! Outputs `multiget_throughput.csv`, `BENCH_multiget.json` (the
//! sweep), and `BENCH_read.json` (the single-get baseline) under
//! `target/bench-results/`.
//!
//! Env knobs (for CI smoke runs):
//! - `MULTIGET_TABLE_BITS`: log2 of table slots (default 20).
//! - `MULTIGET_OPS`: lookups per thread (default 2_000_000).
//! - `MULTIGET_MIN_SPEEDUP`: if set, exit non-zero when the G=8 batch
//!   at the higher load factor is slower than this multiple of the
//!   single-get baseline (CI regression gate).
//! - `BENCH_COUNTERS`: set to `0` to omit the per-load observability
//!   counter deltas (seqlock retries, multiget fallbacks, lock
//!   contention...) from the JSON artifacts; on by default.

use bench::banner;
use cuckoo::OptimisticCuckooMap;
use workload::driver::{run_fill, run_lookup_only, FillSpec, LookupSpec};
use workload::report::{mops, Table};
use workload::snapshot::{json_object, MetricSnapshot};
use std::collections::BTreeMap;

const BATCHES: [usize; 5] = [1, 4, 8, 16, 32];
const LOADS: [f64; 2] = [0.50, 0.95];
const FILL_THREADS: usize = 2;
/// Lookups miss 5% of the time — multi-GETs in cache workloads are
/// mostly hits, and misses exercise the both-buckets worst case anyway.
const MISS_RATIO: f64 = 0.05;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(4)
}

fn main() {
    let table_bits = env_usize("MULTIGET_TABLE_BITS", 20);
    let ops_per_thread = env_usize("MULTIGET_OPS", 2_000_000) as u64;
    let threads = threads();

    banner(
        "Extension: multiget throughput",
        "software-pipelined get_many vs single-key get, by group size and load",
    );
    let mut out = Table::new(
        "Lookup throughput (Mops/s) by batch size",
        &["load", "batch", "mops", "speedup"],
    );

    let dump_counters = std::env::var("BENCH_COUNTERS").map(|v| v != "0").unwrap_or(true);
    // (load, batch) -> mops
    let mut results: BTreeMap<(u64, usize), f64> = BTreeMap::new();
    // load -> JSON object of counter deltas across that load's sweep.
    let mut counters: BTreeMap<u64, String> = BTreeMap::new();
    for &load in &LOADS {
        let map: OptimisticCuckooMap<u64, u64, 8> =
            OptimisticCuckooMap::with_capacity(1 << table_bits);
        let fill = FillSpec {
            write_batch: 1,
            threads: FILL_THREADS,
            insert_ratio: 1.0,
            fill_to: load,
            windows: vec![],
        };
        let report = run_fill(&map, &fill);
        assert!(!report.hit_full, "fill to {load} failed");
        let per_thread_keys = report.inserts / FILL_THREADS as u64;
        let load_key = (load * 100.0) as u64;
        // Window the counter delta over the lookup sweep only, so the
        // artifact explains *read* throughput (fill noise excluded).
        let before = dump_counters.then(|| MetricSnapshot::take(&map));
        for &batch in &BATCHES {
            let spec = LookupSpec { threads, ops_per_thread, miss_ratio: MISS_RATIO, batch };
            let m = run_lookup_only(&map, &spec, (FILL_THREADS as u64, per_thread_keys));
            results.insert((load_key, batch), m);
            let base = results[&(load_key, 1)];
            out.row(vec![
                format!("{load:.2}"),
                batch.to_string(),
                mops(m),
                format!("{:.2}x", m / base),
            ]);
        }
        if let Some(before) = before {
            let delta = MetricSnapshot::take(&map).delta(&before);
            counters.insert(load_key, json_object(&delta));
        }
    }
    out.print();
    let _ = out.write_csv("multiget_throughput");

    let dir = std::path::PathBuf::from("target/bench-results");
    let _ = std::fs::create_dir_all(&dir);

    // Machine-readable artifacts: the sweep, and the single-get
    // baseline on its own for read-path trend tracking.
    let json_rows: Vec<String> = results
        .iter()
        .map(|(&(load, batch), &m)| {
            format!(
                "    {{\"load\": 0.{load:02}, \"batch\": {batch}, \"mops\": {m:.3}, \
                 \"speedup\": {:.3}}}",
                m / results[&(load, 1)]
            )
        })
        .collect();
    let counters_json = if counters.is_empty() {
        String::from("{}")
    } else {
        let rows: Vec<String> =
            counters.iter().map(|(load, obj)| format!("\"load_{load}\": {obj}")).collect();
        format!("{{{}}}", rows.join(", "))
    };
    let json = format!(
        "{{\n  \"bench\": \"multiget_throughput\",\n  \"table_slots\": {},\n  \
         \"threads\": {},\n  \"ops_per_thread\": {},\n  \"miss_ratio\": {},\n  \
         \"counters\": {},\n  \"results\": [\n{}\n  ]\n}}\n",
        1u64 << table_bits,
        threads,
        ops_per_thread,
        MISS_RATIO,
        counters_json,
        json_rows.join(",\n")
    );
    match std::fs::write(dir.join("BENCH_multiget.json"), &json) {
        Ok(()) => println!("\nwrote target/bench-results/BENCH_multiget.json"),
        Err(e) => eprintln!("\nfailed to write BENCH_multiget.json: {e}"),
    }

    let read_rows: Vec<String> = LOADS
        .iter()
        .map(|&load| {
            let load_key = (load * 100.0) as u64;
            format!(
                "    {{\"load\": {load:.2}, \"mops\": {:.3}}}",
                results[&(load_key, 1)]
            )
        })
        .collect();
    let read_json = format!(
        "{{\n  \"bench\": \"single_get_baseline\",\n  \"table_slots\": {},\n  \
         \"threads\": {},\n  \"ops_per_thread\": {},\n  \"miss_ratio\": {},\n  \
         \"counters\": {},\n  \"results\": [\n{}\n  ]\n}}\n",
        1u64 << table_bits,
        threads,
        ops_per_thread,
        MISS_RATIO,
        counters_json,
        read_rows.join(",\n")
    );
    match std::fs::write(dir.join("BENCH_read.json"), &read_json) {
        Ok(()) => println!("wrote target/bench-results/BENCH_read.json"),
        Err(e) => eprintln!("failed to write BENCH_read.json: {e}"),
    }

    // Optional CI gate: G=8 at the highest load must beat the
    // single-get baseline by the given factor.
    if let Ok(min) = std::env::var("MULTIGET_MIN_SPEEDUP") {
        let min: f64 = min.parse().expect("MULTIGET_MIN_SPEEDUP must be a float");
        let load_key = (LOADS[LOADS.len() - 1] * 100.0) as u64;
        let speedup = results[&(load_key, 8)] / results[&(load_key, 1)];
        println!("gate: G=8 speedup at {load_key}% load = {speedup:.3}x (min {min})");
        if speedup < min {
            eprintln!("FAIL: batched speedup {speedup:.3}x below threshold {min}x");
            std::process::exit(1);
        }
    }
}
