//! Figure 5a: single-thread Insert factor analysis with all locks
//! disabled — `cuckoo` (DFS), `+BFS`, `+prefetch` — measured over the
//! load windows 0–0.95 (overall), 0.75–0.9, and 0.9–0.95.

use bench::{banner, reps, slots};
use cuckoo::{MemC3Config, MemC3Cuckoo};
use std::time::Instant;
use workload::keygen::key_of;
use workload::report::{mops, Table};

/// Fills a fresh unlocked table to 95%, returning (overall, 0.75–0.9,
/// 0.9–0.95) Mops.
fn run(config: MemC3Config) -> (f64, f64, f64) {
    let mut m: MemC3Cuckoo<u64, u64, 4> = MemC3Cuckoo::with_capacity(slots(), config);
    let capacity = m.capacity() as u64;
    let target = capacity * 95 / 100;
    let (w1_lo, w1_hi) = (capacity * 75 / 100, capacity * 90 / 100);
    let w2_hi = target;

    let start = Instant::now();
    let mut t_w1_lo = None;
    let mut t_w1_hi = None;
    for i in 0..target {
        if i == w1_lo {
            t_w1_lo = Some(start.elapsed());
        }
        if i == w1_hi {
            t_w1_hi = Some(start.elapsed());
        }
        let key = key_of(0, i);
        m.insert_unlocked(key, key).expect("fill to 95% failed");
    }
    let total = start.elapsed();
    let (t_w1_lo, t_w1_hi) = (t_w1_lo.unwrap(), t_w1_hi.unwrap());

    let overall = target as f64 / total.as_secs_f64() / 1e6;
    let w1 = (w1_hi - w1_lo) as f64 / (t_w1_hi - t_w1_lo).as_secs_f64() / 1e6;
    let w2 = (w2_hi - w1_hi) as f64 / (total - t_w1_hi).as_secs_f64() / 1e6;
    (overall, w1, w2)
}

fn avg(config: MemC3Config) -> (f64, f64, f64) {
    let n = reps();
    let mut acc = (0.0, 0.0, 0.0);
    for _ in 0..n {
        let r = run(config);
        acc = (acc.0 + r.0, acc.1 + r.1, acc.2 + r.2);
    }
    (acc.0 / n as f64, acc.1 / n as f64, acc.2 / n as f64)
}

fn main() {
    banner(
        "Figure 5a",
        "single-thread insert factor analysis, all locks disabled",
    );
    let mut table = Table::new(
        "Figure 5a: single-thread Insert Mops by load window",
        &["config", "load 0-0.95 (overall)", "load 0.75-0.9", "load 0.9-0.95"],
    );

    let configs = [
        ("cuckoo", MemC3Config::baseline()),
        ("+BFS", MemC3Config::baseline().plus_bfs()),
        ("+prefetch", MemC3Config::baseline().plus_bfs().plus_prefetch()),
    ];
    let mut results = Vec::new();
    for (name, cfg) in configs {
        let (overall, w1, w2) = avg(cfg);
        results.push((name, overall, w1, w2));
        table.row(vec![name.into(), mops(overall), mops(w1), mops(w2)]);
    }
    table.print();
    let _ = table.write_csv("fig05a_factor_single");

    let dfs_hi = results[0].3;
    let bfs_hi = results[1].3;
    println!(
        "\npaper shape: at 0.9-0.95 load BFS improves single-thread inserts \
         ~26% and prefetch adds ~9% more.\nmeasured BFS gain at 0.9-0.95: {:+.1}%",
        (bfs_hi / dfs_hi - 1.0) * 100.0
    );
}
