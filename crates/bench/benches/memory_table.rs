//! Memory-efficiency comparison (§6.2): "Cuckoo+ retains the memory
//! efficiency advantages of the core Cuckoo design: it uses 2-3x less
//! memory for these small key-value objects, occupying only about 2GB of
//! DRAM versus TBB's 6GB."

use baselines::locked::{LockKind, Locked};
use baselines::{dense::DenseTable, node_chain::NodeChainTable, ChainingMap};
use bench::{banner, slots};
use cuckoo::{CuckooMap, OptimisticCuckooMap};
use std::collections::hash_map::RandomState;
use workload::driver::{run_fill, FillSpec};
use workload::report::{mib, Table};
use workload::{BenchValue, ConcurrentMap};

fn measure<V, M>(name: &str, map: M, fill_to: f64, table: &mut Table)
where
    V: BenchValue,
    M: ConcurrentMap<V>,
{
    let spec = FillSpec {
            write_batch: 1,
        threads: 2,
        insert_ratio: 1.0,
        fill_to,
        windows: vec![],
    };
    let report = run_fill(&map, &spec);
    let items = map.items();
    let bytes = map.mem_bytes();
    table.row(vec![
        name.into(),
        items.to_string(),
        mib(bytes),
        format!("{:.1}", bytes as f64 / items.max(1) as f64),
        format!("{:.2}", report.achieved_load),
    ]);
}

fn main() {
    banner("§6.2 memory table", "bytes per 8B/8B item across designs");
    let n = slots();
    let mut table = Table::new(
        "Memory efficiency at high fill (8-byte keys and values)",
        &["table", "items", "memory", "bytes/item", "achieved load"],
    );

    measure::<u64, _>(
        "cuckoo+ FG 8-way",
        OptimisticCuckooMap::<u64, u64, 8>::with_capacity(n),
        0.95,
        &mut table,
    );
    measure::<u64, _>(
        "libcuckoo-style map",
        CuckooMap::<u64, u64, 8>::with_capacity(n),
        0.95,
        &mut table,
    );
    measure::<u64, _>(
        "TBB-style chaining",
        ChainingMap::<u64, u64>::with_capacity(n),
        0.95,
        &mut table,
    );
    measure::<u64, _>(
        "std::unordered analog",
        Locked::new(
            NodeChainTable::<u64, u64>::with_capacity_and_hasher(n, RandomState::new()),
            LockKind::Global,
        ),
        0.95,
        &mut table,
    );
    measure::<u64, _>(
        "dense_hash_map analog",
        Locked::new(
            DenseTable::<u64, u64>::with_capacity_and_hasher(n, RandomState::new()),
            LockKind::Global,
        ),
        0.95,
        &mut table,
    );

    table.print();
    let _ = table.write_csv("memory_table");
    println!(
        "\npaper shape: pointer-free cuckoo buckets at ~95% occupancy use \
         2-3x less memory per small item than node-based chaining; dense \
         hashing pays its 0.5 max load factor."
    );
}
