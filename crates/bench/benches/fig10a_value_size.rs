//! Figure 10a: throughput with 8-byte keys and growing value sizes, in a
//! table with a fixed number of entries (the paper used ~33.4M; scaled
//! here), using optimized cuckoo with TSX lock elision.
//!
//! Series: 8-thread 100% insert, 4-thread 100% insert, 1-thread 100%
//! insert, 8-thread 10% insert, 1-thread 10% insert.

use bench::{banner, fill_avg, slots};
use cuckoo::ElidedCuckooMap;
use workload::driver::FillSpec;
use workload::report::{mops, Table};

fn run_size<const N: usize>(table: &mut Table) {
    // Fixed entry count: a quarter of the default slots so the largest
    // value size stays within memory.
    let entries = slots() / 4;
    for (threads, ratio, label) in [
        (8usize, 1.0, "8-thr 100% ins"),
        (4, 1.0, "4-thr 100% ins"),
        (1, 1.0, "1-thr 100% ins"),
        (8, 0.1, "8-thr 10% ins"),
        (1, 0.1, "1-thr 10% ins"),
    ] {
        let spec = FillSpec {
            write_batch: 1,
            threads,
            insert_ratio: ratio,
            fill_to: 0.95,
            windows: vec![],
        };
        let report = fill_avg(
            || ElidedCuckooMap::<u64, [u8; N], 8>::with_capacity(entries),
            &spec,
        );
        table.row(vec![
            N.to_string(),
            label.into(),
            mops(report.overall_mops),
        ]);
    }
}

fn main() {
    banner(
        "Figure 10a",
        "throughput vs value size, fixed entry count (TSX elision)",
    );
    let mut table = Table::new(
        "Figure 10a: Mops vs value size (bytes)",
        &["value bytes", "series", "Mops"],
    );
    run_size::<8>(&mut table);
    run_size::<16>(&mut table);
    run_size::<32>(&mut table);
    run_size::<64>(&mut table);
    run_size::<128>(&mut table);
    run_size::<256>(&mut table);
    table.print();
    let _ = table.write_csv("fig10a_value_size");
    println!(
        "\npaper shape: throughput decreases as value size grows (memory \
         bandwidth); with 256-byte values extra threads stop helping."
    );
}
