//! Shared configuration for the figure benches.
//!
//! Every table and figure from the paper's evaluation (§6) has a
//! `harness = false` bench target in `benches/`; this module provides the
//! scaling knobs so the whole suite completes in minutes on a laptop
//! while preserving the load-factor-dependent behavior the paper studies
//! (occupancy, not absolute size, drives cuckoo-path statistics).
//!
//! Environment variables:
//!
//! - `CUCKOO_BENCH_SLOTS_POW` — log2 of the default table slot count
//!   (default 18 → 262 144 slots; the paper used 2²⁷).
//! - `CUCKOO_BENCH_THREADS` — comma-separated thread counts for scaling
//!   sweeps (default `1,2,4,8`).
//! - `CUCKOO_BENCH_REPS` — repetitions averaged per data point
//!   (default 1; the paper used 10).

use workload::adapter::{BenchValue, ConcurrentMap};
use workload::driver::{run_fill, FillReport, FillSpec};

/// log2 of the default table slot count.
pub fn slots_pow() -> u32 {
    std::env::var("CUCKOO_BENCH_SLOTS_POW")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(18)
}

/// Default table slot count.
pub fn slots() -> usize {
    1usize << slots_pow()
}

/// Thread counts for scaling sweeps.
pub fn thread_counts() -> Vec<usize> {
    std::env::var("CUCKOO_BENCH_THREADS")
        .ok()
        .map(|v| {
            v.split(',')
                .filter_map(|s| s.trim().parse().ok())
                .collect::<Vec<usize>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![1, 2, 4, 8])
}

/// Repetitions per data point.
pub fn reps() -> usize {
    std::env::var("CUCKOO_BENCH_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

/// Runs the fill workload `reps()` times on fresh tables from `make`,
/// averaging the report fields.
pub fn fill_avg<V, M, F>(make: F, spec: &FillSpec) -> FillReport
where
    V: BenchValue,
    M: ConcurrentMap<V>,
    F: Fn() -> M,
{
    let mut reports: Vec<FillReport> = Vec::new();
    for _ in 0..reps() {
        let map = make();
        reports.push(run_fill(&map, spec));
    }
    average(reports)
}

/// Averages fill reports (NaN windows propagate as NaN-aware means).
pub fn average(reports: Vec<FillReport>) -> FillReport {
    assert!(!reports.is_empty());
    let n = reports.len() as f64;
    let windows = reports[0].window_mops.len();
    let mut avg = reports[0].clone();
    avg.overall_mops = reports.iter().map(|r| r.overall_mops).sum::<f64>() / n;
    avg.window_mops = (0..windows)
        .map(|w| {
            let vals: Vec<f64> = reports
                .iter()
                .map(|r| r.window_mops[w])
                .filter(|v| v.is_finite())
                .collect();
            if vals.is_empty() {
                f64::NAN
            } else {
                vals.iter().sum::<f64>() / vals.len() as f64
            }
        })
        .collect();
    avg.total_ops = (reports.iter().map(|r| r.total_ops).sum::<u64>() as f64 / n) as u64;
    avg.inserts = (reports.iter().map(|r| r.inserts).sum::<u64>() as f64 / n) as u64;
    avg.hit_full = reports.iter().any(|r| r.hit_full);
    avg
}

/// Standard banner so bench logs are self-describing.
pub fn banner(figure: &str, what: &str) {
    println!("\n######################################################");
    println!("# {figure}: {what}");
    println!(
        "# slots=2^{} threads={:?} reps={} (scale with CUCKOO_BENCH_* envs)",
        slots_pow(),
        thread_counts(),
        reps()
    );
    println!("# machine note: results collected on whatever this host is;");
    println!("# compare *shapes* against the paper, not absolute Mops.");
    println!("######################################################");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_defaults() {
        assert!(slots() >= 1 << 10);
        assert!(!thread_counts().is_empty());
        assert!(reps() >= 1);
    }

    #[test]
    fn average_handles_nan_windows() {
        let mk = |overall: f64, w: f64| FillReport {
            total_ops: 100,
            inserts: 100,
            elapsed: std::time::Duration::from_secs(1),
            overall_mops: overall,
            window_mops: vec![w],
            achieved_load: 0.95,
            hit_full: false,
        };
        let avg = average(vec![mk(1.0, f64::NAN), mk(3.0, 4.0)]);
        assert_eq!(avg.overall_mops, 2.0);
        assert_eq!(avg.window_mops[0], 4.0);
    }
}
